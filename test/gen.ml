(* Random EXL programs with matching elementary data, for property
   tests.  The generator itself was promoted to the library level
   (lib/fuzz, driving [exlc fuzz]); this shim keeps the historical
   distribution — the [compat] profile, the default of
   [Fuzz.Gen.program_of_seed] — so the in-tree qcheck properties run on
   exactly the program shapes they always did, while the fuzzer layers
   richer profiles (compound statements, exotic literals) on top. *)

include Fuzz.Gen

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)
