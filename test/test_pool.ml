(* Edge cases for the domain pool (lib/engine/pool.ml): degenerate
   sizes, tasks crashing mid-burst, reentrant submission from inside a
   worker task, and the result-ordering contract of [try_all]. *)

open Engine

let test_size_zero_runs_inline () =
  Pool.with_pool ~size:0 (fun pool ->
      Alcotest.(check int) "size" 0 (Pool.size pool);
      let results = Pool.run_all pool (List.init 5 (fun i () -> i * i)) in
      Alcotest.(check (list int)) "results" [ 0; 1; 4; 9; 16 ] results)

let test_size_one_ordering () =
  Pool.with_pool ~size:1 (fun pool ->
      let results =
        Pool.run_all pool
          (List.init 32 (fun i () ->
               Domain.cpu_relax ();
               i))
      in
      Alcotest.(check (list int)) "order" (List.init 32 Fun.id) results)

let test_raise_mid_burst () =
  Pool.with_pool ~size:2 (fun pool ->
      let tasks =
        List.init 8 (fun i ->
            (Printf.sprintf "t%d" i, fun () -> if i = 3 then failwith "boom" else i))
      in
      let outcomes = Pool.try_all pool tasks in
      Alcotest.(check int) "all outcomes delivered" 8 (List.length outcomes);
      List.iteri
        (fun i outcome ->
          match outcome with
          | Ok v ->
              Alcotest.(check bool) "crashed task not Ok" true (i <> 3);
              Alcotest.(check int) "value" i v
          | Error (label, Failure msg) ->
              Alcotest.(check string) "label" "t3" label;
              Alcotest.(check string) "message" "boom" msg
          | Error (label, exn) ->
              Alcotest.failf "unexpected %s from %s" (Printexc.to_string exn)
                label)
        outcomes;
      (* the crash must not poison the pool for the next burst *)
      let again = Pool.run_all pool (List.init 4 (fun i () -> i + 10)) in
      Alcotest.(check (list int)) "pool survives" [ 10; 11; 12; 13 ] again)

let test_run_all_reraises () =
  Pool.with_pool ~size:2 (fun pool ->
      match Pool.run_all pool [ (fun () -> 1); (fun () -> failwith "kaput") ] with
      | _ -> Alcotest.fail "expected run_all to re-raise"
      | exception Failure msg -> Alcotest.(check string) "message" "kaput" msg)

(* A task may itself submit a burst to the same pool (the dispatcher's
   wave tasks drive the parallel chase this way).  The submitter helps
   drain the queue, so this must complete even on a size-1 pool whose
   only worker is the one doing the nested submit. *)
let test_submit_from_worker_reentrant () =
  Pool.with_pool ~size:1 (fun pool ->
      let results =
        Pool.run_all pool
          [
            (fun () ->
              List.fold_left ( + ) 0
                (Pool.run_all pool (List.init 4 (fun i () -> i + 1))));
            (fun () -> 100);
          ]
      in
      Alcotest.(check (list int)) "nested burst" [ 10; 100 ] results)

let test_try_all_ordering_under_skew () =
  Pool.with_pool ~size:3 (fun pool ->
      (* early tasks sleep longest, so completion order is roughly the
         reverse of submission order — results must still line up *)
      let n = 12 in
      let tasks =
        List.init n (fun i ->
            ( Printf.sprintf "t%d" i,
              fun () ->
                Unix.sleepf (0.002 *. float_of_int (n - i));
                i ))
      in
      let outcomes = Pool.try_all pool tasks in
      List.iteri
        (fun i outcome ->
          match outcome with
          | Ok v -> Alcotest.(check int) "position" i v
          | Error (label, exn) ->
              Alcotest.failf "task %s raised %s" label (Printexc.to_string exn))
        outcomes)

(* --- work-stealing bursts --- *)

let test_stealing_runs_everything () =
  Pool.with_pool ~size:3 (fun pool ->
      let n = 100 in
      let hits = Array.make n (Atomic.make 0) in
      Array.iteri (fun i _ -> hits.(i) <- Atomic.make 0) hits;
      Pool.run_stealing pool
        (List.init n (fun i () -> Atomic.incr hits.(i)));
      Array.iteri
        (fun i a ->
          Alcotest.(check int)
            (Printf.sprintf "task %d ran exactly once" i)
            1 (Atomic.get a))
        hits)

let test_stealing_size_zero () =
  Pool.with_pool ~size:0 (fun pool ->
      let sum = ref 0 in
      (* single participant: everything runs inline, in deal order *)
      Pool.run_stealing pool (List.init 10 (fun i () -> sum := !sum + i));
      Alcotest.(check int) "sum" 45 !sum)

let test_stealing_reraises () =
  Pool.with_pool ~size:2 (fun pool ->
      let ran = Atomic.make 0 in
      (match
         Pool.run_stealing pool
           (List.init 8 (fun i () ->
                if i = 5 then failwith "shard down" else Atomic.incr ran))
       with
      | () -> Alcotest.fail "expected run_stealing to re-raise"
      | exception Failure msg ->
          Alcotest.(check string) "message" "shard down" msg);
      (* a crash aborts nothing else: the burst still drains fully *)
      Alcotest.(check int) "other tasks still ran" 7 (Atomic.get ran);
      (* and the pool survives for the next burst *)
      let again = Pool.run_all pool (List.init 4 (fun i () -> i)) in
      Alcotest.(check (list int)) "pool survives" [ 0; 1; 2; 3 ] again)

(* Steal-half is load-bearing, not an optimization: task t0 (dealt to
   the submitter's deque, ahead of t2) spins until t2 has run.  Without
   stealing the submitter would sit in t0 forever with t2 parked behind
   it in the same deque; a second participant must take t2 from the
   deque's back half.  A bounded spin turns a broken scheduler into a
   test failure instead of a hang. *)
let test_stealing_rebalances () =
  Pool.with_pool ~size:1 (fun pool ->
      let flag = Atomic.make false in
      let spun_out = Atomic.make false in
      let spin_until_flag () =
        let deadline = Unix.gettimeofday () +. 10.0 in
        while (not (Atomic.get flag)) && Unix.gettimeofday () < deadline do
          Domain.cpu_relax ()
        done;
        if not (Atomic.get flag) then Atomic.set spun_out true
      in
      (* two participants: deque0 = [t0; t2], deque1 = [t1; t3] *)
      Pool.run_stealing pool
        [
          spin_until_flag;
          (fun () -> ());
          (fun () -> Atomic.set flag true);
          (fun () -> ());
        ];
      Alcotest.(check bool) "t2 was stolen and unblocked t0" false
        (Atomic.get spun_out))

(* Steal events are observable.  Round-robin dealing puts the even
   (slow) tasks in deque 0 and the odd (instant) ones in deque 1; the
   second participant drains its own deque in microseconds while the
   first is asleep inside its first task, so it must steal — and the
   pool.steals counters must say so. *)
let test_stealing_counters () =
  let c = Obs.create () in
  Obs.with_collector c (fun () ->
      Pool.with_pool ~size:1 (fun pool ->
          Pool.run_stealing pool
            (List.init 16 (fun i () ->
                 if i mod 2 = 0 then Unix.sleepf 0.01))));
  Alcotest.(check bool) "steals counted" true
    (Obs.Metrics.counter_value c.Obs.metrics "pool.steals" > 0);
  Alcotest.(check bool) "stolen tasks counted" true
    (Obs.Metrics.counter_value c.Obs.metrics "pool.steal_tasks" > 0)

let suite =
  [
    ("size 0: tasks run on the submitter", `Quick, test_size_zero_runs_inline);
    ("stealing: every task runs exactly once", `Quick, test_stealing_runs_everything);
    ("stealing: size-0 pool runs inline", `Quick, test_stealing_size_zero);
    ("stealing: re-raises after the burst", `Quick, test_stealing_reraises);
    ("stealing: idle participant steals the back half", `Quick, test_stealing_rebalances);
    ("stealing: steals hit the Obs counters", `Quick, test_stealing_counters);
    ("size 1: results in submission order", `Quick, test_size_one_ordering);
    ("try_all: crash mid-burst is isolated", `Quick, test_raise_mid_burst);
    ("run_all: re-raises after the burst", `Quick, test_run_all_reraises);
    ("reentrancy: submit from a worker task", `Quick, test_submit_from_worker_reentrant);
    ("try_all: ordering under skewed latencies", `Quick, test_try_all_ordering_under_skew);
  ]
