(* Edge cases for the domain pool (lib/engine/pool.ml): degenerate
   sizes, tasks crashing mid-burst, reentrant submission from inside a
   worker task, and the result-ordering contract of [try_all]. *)

open Engine

let test_size_zero_runs_inline () =
  Pool.with_pool ~size:0 (fun pool ->
      Alcotest.(check int) "size" 0 (Pool.size pool);
      let results = Pool.run_all pool (List.init 5 (fun i () -> i * i)) in
      Alcotest.(check (list int)) "results" [ 0; 1; 4; 9; 16 ] results)

let test_size_one_ordering () =
  Pool.with_pool ~size:1 (fun pool ->
      let results =
        Pool.run_all pool
          (List.init 32 (fun i () ->
               Domain.cpu_relax ();
               i))
      in
      Alcotest.(check (list int)) "order" (List.init 32 Fun.id) results)

let test_raise_mid_burst () =
  Pool.with_pool ~size:2 (fun pool ->
      let tasks =
        List.init 8 (fun i ->
            (Printf.sprintf "t%d" i, fun () -> if i = 3 then failwith "boom" else i))
      in
      let outcomes = Pool.try_all pool tasks in
      Alcotest.(check int) "all outcomes delivered" 8 (List.length outcomes);
      List.iteri
        (fun i outcome ->
          match outcome with
          | Ok v ->
              Alcotest.(check bool) "crashed task not Ok" true (i <> 3);
              Alcotest.(check int) "value" i v
          | Error (label, Failure msg) ->
              Alcotest.(check string) "label" "t3" label;
              Alcotest.(check string) "message" "boom" msg
          | Error (label, exn) ->
              Alcotest.failf "unexpected %s from %s" (Printexc.to_string exn)
                label)
        outcomes;
      (* the crash must not poison the pool for the next burst *)
      let again = Pool.run_all pool (List.init 4 (fun i () -> i + 10)) in
      Alcotest.(check (list int)) "pool survives" [ 10; 11; 12; 13 ] again)

let test_run_all_reraises () =
  Pool.with_pool ~size:2 (fun pool ->
      match Pool.run_all pool [ (fun () -> 1); (fun () -> failwith "kaput") ] with
      | _ -> Alcotest.fail "expected run_all to re-raise"
      | exception Failure msg -> Alcotest.(check string) "message" "kaput" msg)

(* A task may itself submit a burst to the same pool (the dispatcher's
   wave tasks drive the parallel chase this way).  The submitter helps
   drain the queue, so this must complete even on a size-1 pool whose
   only worker is the one doing the nested submit. *)
let test_submit_from_worker_reentrant () =
  Pool.with_pool ~size:1 (fun pool ->
      let results =
        Pool.run_all pool
          [
            (fun () ->
              List.fold_left ( + ) 0
                (Pool.run_all pool (List.init 4 (fun i () -> i + 1))));
            (fun () -> 100);
          ]
      in
      Alcotest.(check (list int)) "nested burst" [ 10; 100 ] results)

let test_try_all_ordering_under_skew () =
  Pool.with_pool ~size:3 (fun pool ->
      (* early tasks sleep longest, so completion order is roughly the
         reverse of submission order — results must still line up *)
      let n = 12 in
      let tasks =
        List.init n (fun i ->
            ( Printf.sprintf "t%d" i,
              fun () ->
                Unix.sleepf (0.002 *. float_of_int (n - i));
                i ))
      in
      let outcomes = Pool.try_all pool tasks in
      List.iteri
        (fun i outcome ->
          match outcome with
          | Ok v -> Alcotest.(check int) "position" i v
          | Error (label, exn) ->
              Alcotest.failf "task %s raised %s" label (Printexc.to_string exn))
        outcomes)

let suite =
  [
    ("size 0: tasks run on the submitter", `Quick, test_size_zero_runs_inline);
    ("size 1: results in submission order", `Quick, test_size_one_ordering);
    ("try_all: crash mid-burst is isolated", `Quick, test_raise_mid_burst);
    ("run_all: re-raises after the burst", `Quick, test_run_all_reraises);
    ("reentrancy: submit from a worker task", `Quick, test_submit_from_worker_reentrant);
    ("try_all: ordering under skewed latencies", `Quick, test_try_all_ordering_under_skew);
  ]
