(* EXLEngine architecture (Section 6): determination engine,
   dispatcher, historicity, and the facade. *)
open Matrix
open Helpers

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let overview_determination () =
  let d = Engine.Determination.create () in
  ok (Engine.Determination.register_source d ~name:"overview" Helpers.overview_program);
  d

(* --- determination --- *)

let test_affected_from_pdr () =
  let d = overview_determination () in
  Alcotest.(check (list string)) "all downstream of PDR"
    [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]
    (Engine.Determination.affected d ~changed:[ "PDR" ])

let test_affected_from_rgdppc () =
  let d = overview_determination () in
  Alcotest.(check (list string)) "PQR not affected"
    [ "RGDP"; "GDP"; "GDPT"; "PCHNG" ]
    (Engine.Determination.affected d ~changed:[ "RGDPPC" ])

let test_affected_empty () =
  let d = overview_determination () in
  Alcotest.(check (list string)) "nothing" []
    (Engine.Determination.affected d ~changed:[])

let test_dependents () =
  let d = overview_determination () in
  Alcotest.(check (list string)) "GDP feeds GDPT" [ "GDPT" ]
    (Engine.Determination.dependents_of d "GDP");
  Alcotest.(check (list string)) "GDPT feeds PCHNG" [ "PCHNG" ]
    (Engine.Determination.dependents_of d "GDPT")

let test_multi_program_sharing () =
  let d = overview_determination () in
  (* A second program reading GDP is fine... *)
  ok
    (Engine.Determination.register_source d ~name:"extra"
       "GDP2 := 2 * GDP;\n");
  Alcotest.(check (list string)) "GDP2 downstream"
    [ "RGDP"; "GDP"; "GDPT"; "PCHNG"; "GDP2" ]
    (Engine.Determination.affected d ~changed:[ "RGDPPC" ]);
  (* ... but redefining a derived cube is rejected. *)
  match
    Engine.Determination.register_source d ~name:"conflict" "GDP := 1 * GDP2;\n"
  with
  | Error msg ->
      Alcotest.(check bool) "mentions definition" true
        (Astring_contains.contains msg "defined")
  | Ok () -> Alcotest.fail "expected redefinition error"

let test_build_program_subset () =
  let d = overview_determination () in
  let checked = ok (Engine.Determination.build_program d ~cubes:[ "GDP"; "GDPT" ]) in
  let env = checked.Exl.Typecheck.env in
  (* RGDP becomes an input declaration. *)
  Alcotest.(check (option string)) "RGDP is input"
    (Some "elementary")
    (Option.map Registry.kind_to_string (Exl.Typecheck.Env.kind env "RGDP"));
  Alcotest.(check (option string)) "GDP derived"
    (Some "derived")
    (Option.map Registry.kind_to_string (Exl.Typecheck.Env.kind env "GDP"))

let test_partition_groups_runs () =
  let groups =
    Engine.Determination.partition
      ~assign:(fun c -> if c = "GDPT" then "vector" else "etl")
      [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]
  in
  Alcotest.(check int) "three subgraphs" 3 (List.length groups);
  Alcotest.(check (list string)) "first run" [ "PQR"; "RGDP"; "GDP" ]
    (snd (List.nth groups 0));
  Alcotest.(check string) "second target" "vector" (fst (List.nth groups 1))

let test_dot_output () =
  let d = overview_determination () in
  let dot = Engine.Determination.dot d in
  Alcotest.(check bool) "edge" true
    (Astring_contains.contains dot "GDP -> GDPT")

(* --- dispatcher assignment --- *)

let test_assignment_respects_capabilities () =
  let d = overview_determination () in
  let policy =
    { Engine.Dispatcher.priority = [ "etl"; "vector"; "sql" ]; overrides = [] }
  in
  (* The ETL target lacks seasonal decomposition: GDPT must fall through
     to the vector engine. *)
  Alcotest.(check string) "GDPT goes to vector" "vector"
    (ok
       (Engine.Dispatcher.assign ~targets:Engine.Target.builtins ~policy d "GDPT"));
  Alcotest.(check string) "RGDP stays on etl" "etl"
    (ok (Engine.Dispatcher.assign ~targets:Engine.Target.builtins ~policy d "RGDP"))

let test_assignment_override () =
  let d = overview_determination () in
  let policy =
    {
      Engine.Dispatcher.priority = [ "sql" ];
      overrides = [ ("GDP", "vector") ];
    }
  in
  Alcotest.(check string) "override wins" "vector"
    (ok (Engine.Dispatcher.assign ~targets:Engine.Target.builtins ~policy d "GDP"))

let test_assignment_override_rejected_when_unsupported () =
  let d = overview_determination () in
  let policy =
    {
      Engine.Dispatcher.priority = [ "sql" ];
      overrides = [ ("GDPT", "etl") ];
    }
  in
  match Engine.Dispatcher.assign ~targets:Engine.Target.builtins ~policy d "GDPT" with
  | Error msg ->
      Alcotest.(check bool) "explains" true
        (Astring_contains.contains msg "cannot compute")
  | Ok t -> Alcotest.failf "expected rejection, got %s" t

(* --- historicity --- *)

let date y m d = Calendar.Date.make ~year:y ~month:m ~day:d

let test_historicity_as_of () =
  let h = Engine.Historicity.create () in
  let mk v =
    cube_of "GDP" [ ("q", Domain.Period (Some Calendar.Quarter)) ]
      [ [ vq 2020 1; vf v ] ]
  in
  Engine.Historicity.store h ~valid_from:(date 2026 1 1) (mk 100.);
  Engine.Historicity.store h ~valid_from:(date 2026 2 1) (mk 105.);
  Alcotest.(check int) "two versions" 2 (Engine.Historicity.version_count h "GDP");
  let v_jan = Option.get (Engine.Historicity.as_of h (date 2026 1 15) "GDP") in
  Alcotest.check value "january view" (vf 100.)
    (Option.get (Cube.find v_jan (key [ vq 2020 1 ])));
  let v_now = Option.get (Engine.Historicity.latest h "GDP") in
  Alcotest.check value "latest view" (vf 105.)
    (Option.get (Cube.find v_now (key [ vq 2020 1 ])));
  Alcotest.(check (option Helpers.cube_eq |> fun _ -> Alcotest.bool))
    "before first version" true
    (Engine.Historicity.as_of h (date 2025 1 1) "GDP" = None)

(* --- the facade --- *)

let make_engine ?config () =
  let engine = Engine.Exlengine.create ?config () in
  ok (Engine.Exlengine.register_program engine ~name:"overview" Helpers.overview_program);
  let data = overview_registry () in
  ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "PDR"));
  ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "RGDPPC"));
  (engine, data)

let overview_names = [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]

let test_facade_end_to_end () =
  let engine, data = make_engine () in
  let report = ok (Engine.Exlengine.recompute engine) in
  Alcotest.(check (list string)) "all recomputed" overview_names
    report.Engine.Dispatcher.recomputed;
  let reference = check_ok (Exl.Interp.run (load_overview ()) data) in
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name)
        (Registry.find_exn reference name)
        (Option.get (Engine.Exlengine.cube engine name)))
    overview_names;
  Alcotest.(check (list string)) "dirty cleared" [] (Engine.Exlengine.changed engine)

let test_facade_incremental () =
  let engine, data = make_engine () in
  ignore (ok (Engine.Exlengine.recompute engine));
  (* Change only RGDPPC: PQR must not be recomputed. *)
  ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "RGDPPC"));
  let report = ok (Engine.Exlengine.recompute engine) in
  Alcotest.(check (list string)) "partial recomputation"
    [ "RGDP"; "GDP"; "GDPT"; "PCHNG" ]
    report.Engine.Dispatcher.recomputed

let test_facade_translation_cache () =
  let engine, data = make_engine () in
  ignore (ok (Engine.Exlengine.recompute engine));
  let misses_after_first =
    Engine.Translation.cache_misses (Engine.Exlengine.translation_cache engine)
  in
  ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "PDR"));
  ignore (ok (Engine.Exlengine.recompute engine));
  Alcotest.(check int) "no new misses on identical recomputation"
    misses_after_first
    (Engine.Translation.cache_misses (Engine.Exlengine.translation_cache engine));
  Alcotest.(check bool) "cache hits recorded" true
    (Engine.Translation.cache_hits (Engine.Exlengine.translation_cache engine) > 0)

let test_facade_multi_target_split () =
  let config =
    {
      Engine.Exlengine.default_config with
      Engine.Exlengine.policy =
        { Engine.Dispatcher.priority = [ "etl"; "vector"; "sql" ]; overrides = [] };
    }
  in
  let engine, data = make_engine ~config () in
  let report = ok (Engine.Exlengine.recompute engine) in
  let targets_used =
    List.sort_uniq String.compare
      (List.map
         (fun (s : Engine.Dispatcher.subgraph_report) -> s.Engine.Dispatcher.target)
         report.Engine.Dispatcher.subgraphs)
  in
  Alcotest.(check (list string)) "split across engines" [ "etl"; "vector" ]
    targets_used;
  (* Results still agree with the reference interpreter. *)
  let reference = check_ok (Exl.Interp.run (load_overview ()) data) in
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name)
        (Registry.find_exn reference name)
        (Option.get (Engine.Exlengine.cube engine name)))
    overview_names

let test_facade_parallel_dispatch () =
  (* Two independent programs over disjoint data: with the etl-priority
     policy they form independent subgraphs; parallel dispatch must
     produce the same cubes as sequential. *)
  let two_programs engine =
    ok
      (Engine.Exlengine.register_program engine ~name:"overview"
         Helpers.overview_program);
    ok
      (Engine.Exlengine.register_program engine ~name:"second"
         "cube S(m: month);\nS2 := 2 * S;\nS3 := cumsum(S2);\n");
    let data = overview_registry () in
    ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "PDR"));
    ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "RGDPPC"));
    let s =
      cube_of "S"
        [ ("m", Domain.Period (Some Calendar.Month)) ]
        (List.init 8 (fun i -> [ vm 2024 (i + 1); vf (float_of_int i) ]))
    in
    ok (Engine.Exlengine.load_elementary engine s)
  in
  let run parallel =
    let config =
      { Engine.Exlengine.default_config with Engine.Exlengine.parallel_dispatch = parallel }
    in
    let engine = Engine.Exlengine.create ~config () in
    two_programs engine;
    ignore (ok (Engine.Exlengine.recompute engine));
    engine
  in
  let sequential = run false and parallel = run true in
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name)
        (Option.get (Engine.Exlengine.cube sequential name))
        (Option.get (Engine.Exlengine.cube parallel name)))
    [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG"; "S2"; "S3" ]

let test_facade_history_versions () =
  let engine, data = make_engine () in
  ignore (ok (Engine.Exlengine.recompute ~as_of:(date 2026 1 1) engine));
  ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "RGDPPC"));
  ignore (ok (Engine.Exlengine.recompute ~as_of:(date 2026 2 1) engine));
  Alcotest.(check int) "GDP has two versions" 2
    (Engine.Historicity.version_count (Engine.Exlengine.history engine) "GDP");
  Alcotest.(check int) "PQR has one version" 1
    (Engine.Historicity.version_count (Engine.Exlengine.history engine) "PQR")

let test_facade_store_persistence () =
  let engine, _ = make_engine () in
  ignore (ok (Engine.Exlengine.recompute engine));
  let dir = Filename.temp_file "exl_engine_store" "" in
  Sys.remove dir;
  ok (Engine.Exlengine.save_store engine ~dir);
  (* a fresh engine restores the saved state *)
  let engine2 = Engine.Exlengine.create () in
  ok
    (Engine.Exlengine.register_program engine2 ~name:"overview"
       Helpers.overview_program);
  ok (Engine.Exlengine.load_store engine2 ~dir);
  Alcotest.check cube_eq "GDP restored"
    (Option.get (Engine.Exlengine.cube engine "GDP"))
    (Option.get (Engine.Exlengine.cube engine2 "GDP"));
  (* elementary cubes are marked dirty: recompute refreshes everything *)
  Alcotest.(check bool) "dirty after load" true
    (Engine.Exlengine.changed engine2 <> []);
  let report = ok (Engine.Exlengine.recompute engine2) in
  Alcotest.(check int) "all recomputed" 5
    (List.length report.Engine.Dispatcher.recomputed)

let test_facade_rejects_unknown_elementary () =
  let engine = Engine.Exlengine.create () in
  ok (Engine.Exlengine.register_program engine ~name:"p" "cube A(x: int);\nB := A + 1;\n");
  let stray = cube_of "Z" [ ("x", Domain.Int) ] [ [ vi 1; vf 1. ] ] in
  match Engine.Exlengine.load_elementary engine stray with
  | Error msg ->
      Alcotest.(check bool) "mentions cube" true (Astring_contains.contains msg "Z")
  | Ok () -> Alcotest.fail "expected rejection"

let prop_engine_matches_interp =
  QCheck.Test.make ~count:25
    ~name:"EXLEngine facade == interpreter on random programs" Gen.arb_seed
    (fun seed ->
      let src, reg = Gen.program_of_seed seed in
      let engine = Engine.Exlengine.create () in
      (match Engine.Exlengine.register_program engine ~name:"p" src with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "register: %s\n%s" msg src);
      List.iter
        (fun name ->
          match Engine.Exlengine.load_elementary engine (Registry.find_exn reg name) with
          | Ok () -> ()
          | Error msg -> QCheck.Test.fail_reportf "load: %s" msg)
        (Registry.elementary_names reg);
      (match Engine.Exlengine.recompute engine with
      | Ok _ -> ()
      | Error msg -> QCheck.Test.fail_reportf "recompute: %s\n%s" msg src);
      let checked = Exl.Program.load_exn src in
      let reference = check_ok (Exl.Interp.run checked reg) in
      List.for_all
        (fun name ->
          match Engine.Exlengine.cube engine name with
          | Some got ->
              Cube.equal_data ~eps:1e-7 (Registry.find_exn reference name) got
              || QCheck.Test.fail_reportf "cube %s differs on\n%s" name src
          | None ->
              Registry.kind_of reference name = Some Registry.Elementary
              || QCheck.Test.fail_reportf "missing %s on\n%s" name src)
        (Registry.derived_names reference))

(* --- the domain pool --- *)

let test_pool_run_all_order () =
  Engine.Pool.with_pool ~size:3 (fun pool ->
      Alcotest.(check int) "size" 3 (Engine.Pool.size pool);
      Alcotest.(check (list int)) "empty" [] (Engine.Pool.run_all pool []);
      Alcotest.(check (list int)) "single" [ 42 ]
        (Engine.Pool.run_all pool [ (fun () -> 42) ]);
      (* results come back in submission order, not completion order *)
      let thunks = List.init 20 (fun i () -> i * i) in
      Alcotest.(check (list int)) "ordered"
        (List.init 20 (fun i -> i * i))
        (Engine.Pool.run_all pool thunks);
      (* the pool is reusable across bursts *)
      Alcotest.(check (list int)) "second burst" [ 1; 2; 3 ]
        (Engine.Pool.run_all pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ]))

let test_pool_zero_size () =
  (* every task runs on the submitting domain; must not deadlock *)
  Engine.Pool.with_pool ~size:0 (fun pool ->
      Alcotest.(check (list int)) "inline" [ 10; 20 ]
        (Engine.Pool.run_all pool [ (fun () -> 10); (fun () -> 20) ]))

let test_pool_exception_propagates () =
  Engine.Pool.with_pool ~size:2 (fun pool ->
      Alcotest.check_raises "re-raised" (Failure "boom") (fun () ->
          ignore
            (Engine.Pool.run_all pool
               [ (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) ]
              : int list));
      (* the failed burst must not poison the pool *)
      Alcotest.(check (list int)) "still alive" [ 7 ]
        (Engine.Pool.run_all pool [ (fun () -> 7) ]))

let test_pool_shutdown_idempotent () =
  let pool = Engine.Pool.create ~size:2 () in
  Alcotest.(check (list int)) "works" [ 1 ] (Engine.Pool.run_all pool [ (fun () -> 1) ]);
  Engine.Pool.shutdown pool;
  Engine.Pool.shutdown pool

(* --- parallel chase strata --- *)

let test_chase_parallel_stratum_matches_sequential () =
  (* six independent tgds off the same source: one stratum, pairwise
     distinct targets — eligible for the pool executor *)
  let src =
    "cube A(q: quarter, r: string);\n\
     B1 := A + 1;\n\
     B2 := 2 * A;\n\
     B3 := abs(A);\n\
     B4 := A - 3;\n\
     B5 := A * 4;\n\
     B6 := sum(A, group by q);\n"
  in
  let mapping =
    (check_ok (Mappings.Generate.of_source src)).Mappings.Generate.mapping
  in
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A"
       [ ("q", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
       (List.concat_map
          (fun r ->
            List.init 12 (fun i ->
                [ vq (2020 + (i / 4)) ((i mod 4) + 1); vs r; vf (float_of_int (i + 1)) ]))
          [ "x"; "y" ]));
  let source = Exchange.Instance.of_registry reg in
  let sequential =
    match Exchange.Chase.run mapping source with
    | Ok r -> r
    | Error msg -> Alcotest.failf "sequential chase: %s" msg
  in
  Engine.Pool.with_pool ~size:3 (fun pool ->
      match
        Exchange.Chase.run ~executor:(Engine.Pool.executor pool) mapping source
      with
      | Error msg -> Alcotest.failf "parallel chase: %s" msg
      | Ok (parallel_j, parallel_stats) ->
          let sequential_j, sequential_stats = sequential in
          List.iter
            (fun name ->
              Alcotest.check cube_eq ("cube " ^ name)
                (Exchange.Instance.cube_of_relation sequential_j name)
                (Exchange.Instance.cube_of_relation parallel_j name))
            [ "B1"; "B2"; "B3"; "B4"; "B5"; "B6" ];
          (* deterministic merge: identical work counters either way *)
          Alcotest.(check int) "tuples"
            sequential_stats.Exchange.Chase.tuples_generated
            parallel_stats.Exchange.Chase.tuples_generated;
          Alcotest.(check int) "matches"
            sequential_stats.Exchange.Chase.matches_examined
            parallel_stats.Exchange.Chase.matches_examined)

(* --- dispatcher wave reports --- *)

let test_dispatcher_wave_report () =
  let engine, _ = make_engine () in
  let report = ok (Engine.Exlengine.recompute engine) in
  let waves = report.Engine.Dispatcher.waves in
  Alcotest.(check bool) "at least one wave" true (List.length waves >= 1);
  List.iter
    (fun (w : Engine.Dispatcher.wave_report) ->
      Alcotest.(check bool) "wave not empty" true
        (w.Engine.Dispatcher.wave_subgraphs <> []);
      Alcotest.(check bool) "wall clock sane" true
        (w.Engine.Dispatcher.wave_seconds >= 0.))
    waves;
  (* every recomputed cube appears in exactly one wave subgraph *)
  let all_cubes =
    List.concat_map
      (fun (w : Engine.Dispatcher.wave_report) ->
        List.concat_map snd w.Engine.Dispatcher.wave_subgraphs)
      waves
  in
  Alcotest.(check (list string)) "waves cover the recomputation"
    (List.sort String.compare report.Engine.Dispatcher.recomputed)
    (List.sort String.compare all_cubes)

let suite =
  [
    ("determination: affected from PDR", `Quick, test_affected_from_pdr);
    ("determination: affected from RGDPPC", `Quick, test_affected_from_rgdppc);
    ("determination: affected empty", `Quick, test_affected_empty);
    ("determination: dependents", `Quick, test_dependents);
    ("determination: multi-program", `Quick, test_multi_program_sharing);
    ("determination: build subset program", `Quick, test_build_program_subset);
    ("determination: partition runs", `Quick, test_partition_groups_runs);
    ("determination: dot", `Quick, test_dot_output);
    ("dispatcher: capability assignment", `Quick, test_assignment_respects_capabilities);
    ("dispatcher: override", `Quick, test_assignment_override);
    ("dispatcher: unsupported override rejected", `Quick, test_assignment_override_rejected_when_unsupported);
    ("historicity: as-of reads", `Quick, test_historicity_as_of);
    ("facade: end to end", `Quick, test_facade_end_to_end);
    ("facade: incremental recomputation", `Quick, test_facade_incremental);
    ("facade: translation cache", `Quick, test_facade_translation_cache);
    ("facade: multi-target split", `Quick, test_facade_multi_target_split);
    ("facade: parallel dispatch", `Quick, test_facade_parallel_dispatch);
    ("facade: history versions", `Quick, test_facade_history_versions);
    ("facade: store persistence", `Quick, test_facade_store_persistence);
    ("facade: rejects unknown elementary", `Quick, test_facade_rejects_unknown_elementary);
    ("pool: run_all preserves order", `Quick, test_pool_run_all_order);
    ("pool: zero-size runs inline", `Quick, test_pool_zero_size);
    ("pool: exceptions propagate", `Quick, test_pool_exception_propagates);
    ("pool: shutdown idempotent", `Quick, test_pool_shutdown_idempotent);
    ("chase: parallel stratum == sequential", `Quick, test_chase_parallel_stratum_matches_sequential);
    ("dispatcher: wave report", `Quick, test_dispatcher_wave_report);
    QCheck_alcotest.to_alcotest prop_engine_matches_interp;
  ]
