(* Incremental recomputation: dirty-set classification, update-batch
   parsing, the delta-seeded chase, and the engine's solution cache
   (docs/INCREMENTAL.md). *)
open Matrix
open Helpers

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let err what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error msg -> (msg : string)

(* --- determination: dirty sets on a diamond DAG --- *)

let diamond_determination () =
  let d = Engine.Determination.create () in
  ok
    (Engine.Determination.register_source d ~name:"diamond"
       "cube A(t: quarter);\nB := A + 1;\nC := 2 * A;\nD := B + C;\n");
  d

let test_dirty_set_elementary () =
  let d = diamond_determination () in
  let ds = Engine.Determination.dirty_set d ~changed:[ "A" ] in
  Alcotest.(check (list string)) "elementary" [ "A" ]
    ds.Engine.Determination.changed_elementary;
  Alcotest.(check (list string)) "no derived changed" []
    ds.Engine.Determination.changed_derived;
  Alcotest.(check (list string)) "whole diamond, D once"
    [ "B"; "C"; "D" ] ds.Engine.Determination.dirty_derived

let test_dirty_set_derived () =
  let d = diamond_determination () in
  let ds = Engine.Determination.dirty_set d ~changed:[ "B" ] in
  Alcotest.(check (list string)) "derived change reported distinctly" [ "B" ]
    ds.Engine.Determination.changed_derived;
  (* B's new content is the change: only its dependents recompute. *)
  Alcotest.(check (list string)) "B itself not recomputed" [ "D" ]
    ds.Engine.Determination.dirty_derived;
  Alcotest.(check (list string)) "affected agrees" [ "D" ]
    (Engine.Determination.affected d ~changed:[ "B" ])

let test_dirty_set_mixed () =
  let d = diamond_determination () in
  let ds = Engine.Determination.dirty_set d ~changed:[ "A"; "B" ] in
  Alcotest.(check (list string)) "kinds split" [ "A" ]
    ds.Engine.Determination.changed_elementary;
  Alcotest.(check (list string)) "kinds split derived" [ "B" ]
    ds.Engine.Determination.changed_derived;
  Alcotest.(check (list string)) "C and D dirty, B excluded"
    [ "C"; "D" ] ds.Engine.Determination.dirty_derived

(* --- update-batch text format --- *)

let test_update_parse () =
  let d = diamond_determination () in
  let schema_of = Engine.Determination.schema d in
  let batch =
    "# revisions for Q1\nset A 2024Q1 3.5\n\ndel A 2024Q2  # retract\n"
  in
  let updates = ok (Engine.Update.of_string ~schema_of batch) in
  Alcotest.(check int) "two updates" 2 (List.length updates);
  (match updates with
  | [ u1; u2 ] ->
      Alcotest.(check string) "set line" "set A 2024Q1 3.5"
        (Engine.Update.to_string u1);
      Alcotest.(check string) "del line" "del A 2024Q2"
        (Engine.Update.to_string u2)
  | _ -> Alcotest.fail "expected two updates");
  let check_err what text needle =
    let msg = err what (Engine.Update.of_string ~schema_of text) in
    Alcotest.(check bool)
      (what ^ ": " ^ msg)
      true
      (Astring_contains.contains msg needle)
  in
  check_err "unknown cube" "set X 2024Q1 1\n" "unknown cube";
  check_err "bad arity" "set A 2024Q1\n" "expects 2 value(s)";
  check_err "excess values" "set A 2024Q1 1 2\n" "expects 2 value(s), got 3";
  check_err "del arity" "del A 2024Q1 extra\n" "expects 1 value(s), got 2";
  check_err "missing cube" "set\n" "missing cube name";
  check_err "key domain" "set A nope 1\n" "out of domain";
  check_err "measure domain" "set A 2024Q1 north\n" "measure";
  check_err "unknown verb" "zap A 2024Q1\n" "unknown verb";
  (* errors carry the 1-based line number of the offending line *)
  check_err "line number" "set A 2024Q1 1\n\nset A oops 1\n" "line 3:";
  (* comments and blank lines alone make an empty, valid batch *)
  Alcotest.(check int) "comment-only batch is empty" 0
    (List.length (ok (Engine.Update.of_string ~schema_of "# nothing\n\n  \n")))

(* --- batch compaction (the server coalescer's merge step) --- *)

let update_line = Alcotest.testable Fmt.string String.equal
let lines us = List.map Engine.Update.to_string us

let test_compact_last_wins () =
  let u v = Engine.Update.set ~cube:"A" ~key:[ vq 2024 1 ] (vf v) in
  Alcotest.(check (list update_line))
    "three writes net to the last one"
    [ "set A 2024Q1 3" ]
    (lines (Engine.Update.compact [ u 1.; u 2.; u 3. ]))

let test_compact_set_del_cancel () =
  let k = [ vq 2024 1 ] in
  let set v = Engine.Update.set ~cube:"A" ~key:k (vf v) in
  let del = Engine.Update.remove ~cube:"A" ~key:k in
  Alcotest.(check (list update_line))
    "set then del nets to the del" [ "del A 2024Q1" ]
    (lines (Engine.Update.compact [ set 1.; del ]));
  Alcotest.(check (list update_line))
    "del then set nets to the set" [ "set A 2024Q1 2" ]
    (lines (Engine.Update.compact [ del; set 2. ]))

let test_compact_stable_idempotent () =
  let u cube q v = Engine.Update.set ~cube ~key:[ vq 2024 q ] (vf v) in
  let batch = [ u "B" 2 1.; u "A" 1 1.; u "B" 2 9.; u "A" 3 5.; u "A" 1 7. ] in
  let once = Engine.Update.compact batch in
  (* first-appearance order of the surviving keys, last value each *)
  Alcotest.(check (list update_line))
    "stable order, last value"
    [ "set B 2024Q2 9"; "set A 2024Q1 7"; "set A 2024Q3 5" ]
    (lines once);
  Alcotest.(check (list update_line))
    "idempotent" (lines once)
    (lines (Engine.Update.compact once))

let test_compact_value_aware_keys () =
  (* Int 2 and Float 2. address the same store key; compaction must
     identify them or interleaved writes replay in the wrong order. *)
  let a = Engine.Update.set ~cube:"A" ~key:[ vi 2 ] (vf 1.) in
  let b = Engine.Update.set ~cube:"A" ~key:[ vf 2. ] (vf 9.) in
  match Engine.Update.compact [ a; b ] with
  | [ { Engine.Update.action = Set v; _ } ] ->
      Alcotest.check value "last write survives" (vf 9.) v
  | us -> Alcotest.failf "expected one update, got %d" (List.length us)

let test_concat_across_batches () =
  let k = [ vq 2024 1 ] in
  let set c v = Engine.Update.set ~cube:c ~key:k (vf v) in
  let del c = Engine.Update.remove ~cube:c ~key:k in
  (* opposing updates queued by different clients cancel across the
     batch boundary; unrelated cubes keep their own last writes *)
  Alcotest.(check (list update_line))
    "merge of three queued batches"
    [ "set A 2024Q1 4"; "set B 2024Q1 2" ]
    (lines
       (Engine.Update.concat
          [ [ set "A" 1.; del "B" ]; [ set "B" 2.; del "A" ]; [ set "A" 4. ] ]));
  Alcotest.(check (list update_line)) "concat of empties" []
    (lines (Engine.Update.concat [ []; [] ]))

(* Applying the concat of queued batches equals applying them one by
   one — the equivalence the server's coalescer relies on. *)
let test_concat_equals_sequential_apply () =
  let mk () =
    let engine = Engine.Exlengine.create () in
    ok
      (Engine.Exlengine.register_program engine ~name:"p"
         "cube A(t: quarter);\nD := A + 1;\n");
    ok
      (Engine.Exlengine.load_elementary engine
         (cube_of "A"
            [ ("t", Domain.Period (Some Calendar.Quarter)) ]
            [ [ vq 2024 1; vf 1. ]; [ vq 2024 2; vf 2. ] ]));
    ignore (ok (Engine.Exlengine.recompute_all engine));
    ok (Engine.Exlengine.warm engine);
    engine
  in
  let set q v = Engine.Update.set ~cube:"A" ~key:[ vq 2024 q ] (vf v) in
  let del q = Engine.Update.remove ~cube:"A" ~key:[ vq 2024 q ] in
  let batches =
    [ [ set 1 10.; set 3 30. ]; [ del 3; set 2 20. ]; [ set 3 33.; del 1 ] ]
  in
  let sequential = mk () in
  List.iter
    (fun b -> ignore (ok (Engine.Exlengine.apply_updates sequential b)))
    batches;
  let coalesced = mk () in
  ignore
    (ok (Engine.Exlengine.apply_updates coalesced (Engine.Update.concat batches)));
  List.iter
    (fun name ->
      Alcotest.check cube_eq
        (name ^ " agrees")
        (Option.get (Engine.Exlengine.cube sequential name))
        (Option.get (Engine.Exlengine.cube coalesced name)))
    [ "A"; "D" ]

(* --- the delta-seeded chase --- *)

let mapping_of source ~cubes =
  let d = Engine.Determination.create () in
  ok (Engine.Determination.register_source d ~name:"m" source);
  ok (Engine.Translation.submapping d ~cubes)

let join_source =
  "cube A(t: quarter, r: string);\ncube B(t: quarter, r: string);\nJ := A * B;\n"

let join_registry () =
  let reg = Registry.create () in
  let a = cube_of "A" [ ("t", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
      [ [ vq 2024 1; vs "n"; vf 2. ]; [ vq 2024 2; vs "n"; vf 3. ] ]
  in
  let b = cube_of "B" [ ("t", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
      [ [ vq 2024 1; vs "n"; vf 10. ]; [ vq 2024 2; vs "n"; vf 20. ];
        [ vq 2024 3; vs "n"; vf 30. ] ]
  in
  Registry.add reg Registry.Elementary a;
  Registry.add reg Registry.Elementary b;
  reg

let solve mapping reg =
  let inst, _ = ok (Exchange.Chase.run mapping (Exchange.Instance.of_registry reg)) in
  inst

let check_relation_eq msg inst1 inst2 rel =
  Alcotest.check cube_eq msg
    (Exchange.Instance.cube_of_relation inst2 rel)
    (Exchange.Instance.cube_of_relation inst1 rel)

let test_chase_incremental_insert_only () =
  let mapping = mapping_of join_source ~cubes:[ "J" ] in
  let reg = join_registry () in
  let solution = solve mapping reg in
  let deltas =
    [ ("A", { Exchange.Chase.added = [ [| vq 2024 3; vs "n"; vf 4. |] ]; removed = [] }) ]
  in
  let _, istats =
    ok (Exchange.Chase.incremental mapping ~solution ~deltas)
  in
  Alcotest.(check int) "insert-only fast path" 1
    istats.Exchange.Chase.strata_delta;
  Alcotest.(check int) "no rederivation" 0
    istats.Exchange.Chase.strata_rederived;
  (* scratch comparison on the updated source *)
  Cube.set (Registry.find_exn reg "A") (key [ vq 2024 3; vs "n" ]) (vf 4.);
  let scratch = solve mapping reg in
  check_relation_eq "J repaired" solution scratch "J";
  check_relation_eq "A source copy repaired" solution scratch "A"

let test_chase_incremental_removal_rederives () =
  let mapping = mapping_of join_source ~cubes:[ "J" ] in
  let reg = join_registry () in
  let solution = solve mapping reg in
  let deltas =
    [ ("A", { Exchange.Chase.added = []; removed = [ [| vq 2024 2; vs "n"; vf 3. |] ] }) ]
  in
  let _, istats =
    ok (Exchange.Chase.incremental mapping ~solution ~deltas)
  in
  Alcotest.(check int) "DRed rederivation" 1
    istats.Exchange.Chase.strata_rederived;
  Cube.remove (Registry.find_exn reg "A") (key [ vq 2024 2; vs "n" ]);
  let scratch = solve mapping reg in
  check_relation_eq "J repaired after deletion" solution scratch "J"

let test_chase_incremental_skips_unreached_strata () =
  (* Two levels: updating A touches only B's stratum; D (over C over E)
     lives in a stratum no delta reaches. *)
  let source =
    "cube A(t: quarter);\ncube E(t: quarter);\n\
     B := A + 1;\nC := 2 * E;\nD := C + 1;\n"
  in
  let mapping = mapping_of source ~cubes:[ "B"; "C"; "D" ] in
  let reg = Registry.create () in
  let quarter = Domain.Period (Some Calendar.Quarter) in
  Registry.add reg Registry.Elementary
    (cube_of "A" [ ("t", quarter) ] [ [ vq 2024 1; vf 1. ] ]);
  Registry.add reg Registry.Elementary
    (cube_of "E" [ ("t", quarter) ] [ [ vq 2024 1; vf 5. ] ]);
  let solution = solve mapping reg in
  let deltas =
    [ ("A", { Exchange.Chase.added = [ [| vq 2024 2; vf 7. |] ]; removed = [] }) ]
  in
  let _, istats =
    ok (Exchange.Chase.incremental mapping ~solution ~deltas)
  in
  Alcotest.(check bool) "some stratum skipped outright" true
    (istats.Exchange.Chase.strata_skipped >= 1);
  Cube.set (Registry.find_exn reg "A") (key [ vq 2024 2 ]) (vf 7.);
  let scratch = solve mapping reg in
  List.iter (check_relation_eq "all targets agree" solution scratch)
    [ "B"; "C"; "D" ]

let test_chase_incremental_aggregation_revision () =
  let source = "cube A(t: quarter, r: string);\nS := sum(A, group by t);\n" in
  let mapping = mapping_of source ~cubes:[ "S" ] in
  let reg = join_registry () in
  let solution = solve mapping reg in
  let deltas =
    [
      ( "A",
        {
          Exchange.Chase.added = [ [| vq 2024 1; vs "n"; vf 9. |] ];
          removed = [ [| vq 2024 1; vs "n"; vf 2. |] ];
        } );
    ]
  in
  let _, istats =
    ok (Exchange.Chase.incremental mapping ~solution ~deltas)
  in
  Alcotest.(check int) "aggregation stratum rederived" 1
    istats.Exchange.Chase.strata_rederived;
  Cube.set (Registry.find_exn reg "A") (key [ vq 2024 1; vs "n" ]) (vf 9.);
  let scratch = solve mapping reg in
  check_relation_eq "S repaired" solution scratch "S"

(* With persistent aggregation state the same revision takes the
   group-scoped path (no stratum rederived), and a second batch — the
   steady state, bags maintained rather than rebuilt — still matches a
   from-scratch run, including a deletion that empties a group. *)
let test_chase_incremental_aggregation_state () =
  let source = "cube A(t: quarter, r: string);\nS := sum(A, group by t);\n" in
  let mapping = mapping_of source ~cubes:[ "S" ] in
  let reg = join_registry () in
  let solution = solve mapping reg in
  let state = Exchange.Chase.create_incr_state () in
  let batch deltas =
    ok (Exchange.Chase.incremental ~state mapping ~solution ~deltas)
  in
  let _, istats1 =
    batch
      [
        ( "A",
          {
            Exchange.Chase.added = [ [| vq 2024 1; vs "n"; vf 9. |] ];
            removed = [ [| vq 2024 1; vs "n"; vf 2. |] ];
          } );
      ]
  in
  Alcotest.(check int) "no stratum rederived" 0
    istats1.Exchange.Chase.strata_rederived;
  Alcotest.(check int) "group-scoped stratum counted as delta" 1
    istats1.Exchange.Chase.strata_delta;
  Cube.set (Registry.find_exn reg "A") (key [ vq 2024 1; vs "n" ]) (vf 9.);
  check_relation_eq "S repaired (first batch)" solution (solve mapping reg) "S";
  let _, istats2 =
    batch
      [
        ( "A",
          { Exchange.Chase.added = []; removed = [ [| vq 2024 2; vs "n"; vf 3. |] ] }
        );
      ]
  in
  Alcotest.(check int) "steady state stays group-scoped" 0
    istats2.Exchange.Chase.strata_rederived;
  Cube.remove (Registry.find_exn reg "A") (key [ vq 2024 2; vs "n" ]);
  check_relation_eq "S repaired (deletion empties group)" solution
    (solve mapping reg) "S"

(* --- the engine facade: apply_updates --- *)

let make_engine ?config source data =
  let engine = Engine.Exlengine.create ?config () in
  ok (Engine.Exlengine.register_program engine ~name:"main" source);
  List.iter
    (fun name ->
      ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data name)))
    (Registry.elementary_names data);
  engine

(* A from-scratch engine over the same final data: apply the batches
   directly to a copy of the registry, then recompute everything. *)
let scratch_engine source data batches =
  let data = Registry.copy data in
  List.iter
    (fun (u : Engine.Update.t) ->
      let cube = Registry.find_exn data u.Engine.Update.cube in
      let k = Tuple.of_list u.Engine.Update.key in
      match u.Engine.Update.action with
      | Engine.Update.Set v -> Cube.set cube k v
      | Engine.Update.Remove -> Cube.remove cube k)
    (List.concat batches);
  let engine = make_engine source data in
  ignore (ok (Engine.Exlengine.recompute_all engine));
  engine

let check_derived_agree what a b =
  List.iter
    (fun name ->
      match
        (Engine.Exlengine.cube a name, Engine.Exlengine.cube b name)
      with
      | Some ca, Some cb ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s agrees" what name)
            true
            (Cube.equal_data ~eps:1e-7 cb ca)
      | None, None -> ()
      | _ -> Alcotest.failf "%s: %s present on one side only" what name)
    (Engine.Determination.derived_order (Engine.Exlengine.determination a))

(* Two years: stl_t needs at least eight quarters. *)
let small_overview () = Helpers.overview_registry ~years:2 ()

let test_apply_updates_end_to_end () =
  let data = small_overview () in
  let engine = make_engine Helpers.overview_program data in
  ignore (ok (Engine.Exlengine.recompute engine));
  let batch1 =
    [
      Engine.Update.set ~cube:"PDR"
        ~key:[ vd 2020 1 1; vs "north" ]
        (vf 1234.);
    ]
  in
  let r1 = ok (Engine.Exlengine.apply_updates engine batch1) in
  Alcotest.(check bool) "first batch builds the cache" false
    r1.Engine.Exlengine.cache_hit;
  Alcotest.(check (list string)) "updated" [ "PDR" ] r1.Engine.Exlengine.updated;
  Alcotest.(check (list string)) "whole downstream recomputed"
    [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]
    r1.Engine.Exlengine.recomputed;
  Alcotest.(check int) "one revision = one removed + one added" 2
    r1.Engine.Exlengine.facts_changed;
  let batch2 =
    [
      Engine.Update.set ~cube:"PDR"
        ~key:[ vd 2020 6 1; vs "south" ]
        (vf 4321.);
    ]
  in
  let r2 = ok (Engine.Exlengine.apply_updates engine batch2) in
  Alcotest.(check bool) "second batch hits the cache" true
    r2.Engine.Exlengine.cache_hit;
  Alcotest.(check bool) "incremental work bounded" true
    (r2.Engine.Exlengine.facts_rederived < r2.Engine.Exlengine.total_facts);
  check_derived_agree "after two batches" engine
    (scratch_engine Helpers.overview_program data [ batch1; batch2 ])

let test_apply_updates_empty_batch () =
  let data = small_overview () in
  let engine = make_engine Helpers.overview_program data in
  ignore (ok (Engine.Exlengine.recompute engine));
  let before = Engine.Historicity.version_count (Engine.Exlengine.history engine) "GDP" in
  let r = ok (Engine.Exlengine.apply_updates engine []) in
  Alcotest.(check (list string)) "nothing updated" [] r.Engine.Exlengine.updated;
  Alcotest.(check (list string)) "nothing recomputed" [] r.Engine.Exlengine.recomputed;
  Alcotest.(check int) "no facts changed" 0 r.Engine.Exlengine.facts_changed;
  Alcotest.(check int) "no new versions" before
    (Engine.Historicity.version_count (Engine.Exlengine.history engine) "GDP")

let test_apply_updates_noop_batch () =
  let data = small_overview () in
  let engine = make_engine Helpers.overview_program data in
  ignore (ok (Engine.Exlengine.recompute engine));
  let k = key [ vd 2020 1 1; vs "north" ] in
  let current = Option.get (Cube.find (Registry.find_exn data "PDR") k) in
  let r =
    ok
      (Engine.Exlengine.apply_updates engine
         [ Engine.Update.set ~cube:"PDR" ~key:(Tuple.to_list k) current ])
  in
  Alcotest.(check (list string)) "no net change" [] r.Engine.Exlengine.updated;
  Alcotest.(check (list string)) "no recomputation" []
    r.Engine.Exlengine.recomputed

let test_apply_updates_unused_cube () =
  let quarter = Domain.Period (Some Calendar.Quarter) in
  let source = "cube A(t: quarter);\ncube U(t: quarter);\nB := A + 1;\n" in
  let data = Registry.create () in
  Registry.add data Registry.Elementary
    (cube_of "A" [ ("t", quarter) ] [ [ vq 2024 1; vf 1. ] ]);
  Registry.add data Registry.Elementary
    (cube_of "U" [ ("t", quarter) ] [ [ vq 2024 1; vf 1. ] ]);
  let engine = make_engine source data in
  ignore (ok (Engine.Exlengine.recompute engine));
  let b_before = Option.get (Engine.Exlengine.cube engine "B") in
  let r =
    ok
      (Engine.Exlengine.apply_updates engine
         [ Engine.Update.set ~cube:"U" ~key:[ vq 2024 2 ] (vf 9.) ])
  in
  Alcotest.(check (list string)) "store updated" [ "U" ] r.Engine.Exlengine.updated;
  Alcotest.(check (list string)) "nothing depends on U" []
    r.Engine.Exlengine.recomputed;
  Alcotest.check cube_eq "B untouched" b_before
    (Option.get (Engine.Exlengine.cube engine "B"));
  Alcotest.check value "U stored" (vf 9.)
    (Option.get (Cube.find (Option.get (Engine.Exlengine.cube engine "U")) (key [ vq 2024 2 ])))

let test_apply_updates_repeated_key () =
  let quarter = Domain.Period (Some Calendar.Quarter) in
  let source = "cube A(t: quarter);\nB := A + 1;\n" in
  let data = Registry.create () in
  Registry.add data Registry.Elementary
    (cube_of "A" [ ("t", quarter) ] [ [ vq 2024 1; vf 1. ] ]);
  let engine = make_engine source data in
  ignore (ok (Engine.Exlengine.recompute engine));
  let batch =
    [
      Engine.Update.set ~cube:"A" ~key:[ vq 2024 1 ] (vf 5.);
      Engine.Update.set ~cube:"A" ~key:[ vq 2024 1 ] (vf 7.);
    ]
  in
  let r = ok (Engine.Exlengine.apply_updates engine batch) in
  (* compacted: one removed (the original) + one added (the last write) *)
  Alcotest.(check int) "net change only" 2 r.Engine.Exlengine.facts_changed;
  Alcotest.check value "last write wins" (vf 8.)
    (Option.get
       (Cube.find (Option.get (Engine.Exlengine.cube engine "B")) (key [ vq 2024 1 ])));
  check_derived_agree "repeated key" engine (scratch_engine source data [ batch ])

let test_apply_updates_revert_within_batch () =
  let quarter = Domain.Period (Some Calendar.Quarter) in
  let source = "cube A(t: quarter);\nB := A + 1;\n" in
  let data = Registry.create () in
  Registry.add data Registry.Elementary
    (cube_of "A" [ ("t", quarter) ] [ [ vq 2024 1; vf 1. ] ]);
  let engine = make_engine source data in
  ignore (ok (Engine.Exlengine.recompute engine));
  (* a revision followed by a revision back to the original value, in
     the same batch: compaction nets the key to no change at all *)
  let batch =
    [
      Engine.Update.set ~cube:"A" ~key:[ vq 2024 1 ] (vf 5.);
      Engine.Update.set ~cube:"A" ~key:[ vq 2024 1 ] (vf 1.);
    ]
  in
  let r = ok (Engine.Exlengine.apply_updates engine batch) in
  Alcotest.(check (list string)) "no net update" [] r.Engine.Exlengine.updated;
  Alcotest.(check (list string)) "no recomputation" []
    r.Engine.Exlengine.recomputed;
  Alcotest.(check int) "no facts changed" 0 r.Engine.Exlengine.facts_changed;
  Alcotest.check value "B unchanged" (vf 2.)
    (Option.get
       (Cube.find (Option.get (Engine.Exlengine.cube engine "B")) (key [ vq 2024 1 ])))

let test_apply_updates_set_then_del () =
  let quarter = Domain.Period (Some Calendar.Quarter) in
  let source = "cube A(t: quarter);\nB := A + 1;\n" in
  let data = Registry.create () in
  Registry.add data Registry.Elementary
    (cube_of "A" [ ("t", quarter) ] [ [ vq 2024 1; vf 1. ] ]);
  let engine = make_engine source data in
  ignore (ok (Engine.Exlengine.recompute engine));
  (* set-then-del on an existing key nets to a pure removal; the same
     pair on a fresh key cancels out entirely *)
  let batch =
    [
      Engine.Update.set ~cube:"A" ~key:[ vq 2024 1 ] (vf 5.);
      Engine.Update.remove ~cube:"A" ~key:[ vq 2024 1 ];
      Engine.Update.set ~cube:"A" ~key:[ vq 2024 2 ] (vf 7.);
      Engine.Update.remove ~cube:"A" ~key:[ vq 2024 2 ];
    ]
  in
  let r = ok (Engine.Exlengine.apply_updates engine batch) in
  Alcotest.(check int) "one removal is the whole net delta" 1
    r.Engine.Exlengine.facts_changed;
  let b = Option.get (Engine.Exlengine.cube engine "B") in
  Alcotest.(check bool) "derived key retracted" true
    (Cube.find b (key [ vq 2024 1 ]) = None);
  Alcotest.(check int) "phantom key never materialized" 0 (Cube.cardinality b);
  check_derived_agree "set then del" engine (scratch_engine source data [ batch ])

let test_apply_updates_deletion_empties_stratum () =
  let quarter = Domain.Period (Some Calendar.Quarter) in
  let source =
    "cube A(t: quarter, r: string);\nS := sum(A, group by t);\nT := S * 2;\n"
  in
  let data = Registry.create () in
  Registry.add data Registry.Elementary
    (cube_of "A" [ ("t", quarter); ("r", Domain.String) ]
       [ [ vq 2024 1; vs "n"; vf 2. ]; [ vq 2024 1; vs "s"; vf 3. ] ]);
  let engine = make_engine source data in
  ignore (ok (Engine.Exlengine.recompute engine));
  (* build the cache with a warm-up revision, then delete everything *)
  ignore
    (ok
       (Engine.Exlengine.apply_updates engine
          [ Engine.Update.set ~cube:"A" ~key:[ vq 2024 1; vs "n" ] (vf 4.) ]));
  let batch =
    [
      Engine.Update.remove ~cube:"A" ~key:[ vq 2024 1; vs "n" ];
      Engine.Update.remove ~cube:"A" ~key:[ vq 2024 1; vs "s" ];
    ]
  in
  let r = ok (Engine.Exlengine.apply_updates engine batch) in
  Alcotest.(check bool) "incremental path" true r.Engine.Exlengine.cache_hit;
  Alcotest.(check int) "S emptied" 0
    (Cube.cardinality (Option.get (Engine.Exlengine.cube engine "S")));
  Alcotest.(check int) "T emptied" 0
    (Cube.cardinality (Option.get (Engine.Exlengine.cube engine "T")))

let test_apply_updates_history_versions () =
  let data = small_overview () in
  let engine = make_engine Helpers.overview_program data in
  let d1 = Calendar.Date.make ~year:2026 ~month:1 ~day:1 in
  let d2 = Calendar.Date.make ~year:2026 ~month:2 ~day:1 in
  ignore (ok (Engine.Exlengine.recompute ~as_of:d1 engine));
  let history = Engine.Exlengine.history engine in
  let gdp_v1 = Option.get (Engine.Exlengine.cube engine "GDP") in
  let r =
    ok
      (Engine.Exlengine.apply_updates ~as_of:d2 engine
         [
           Engine.Update.set ~cube:"RGDPPC" ~key:[ vq 2020 1; vs "north" ] (vf 99.);
         ])
  in
  (* RGDPPC feeds RGDP but not PQR: transitive invalidation versions
     only the affected cubes, the rest keep their history. *)
  Alcotest.(check (list string)) "PQR untouched"
    [ "RGDP"; "GDP"; "GDPT"; "PCHNG" ]
    r.Engine.Exlengine.recomputed;
  Alcotest.(check int) "PQR keeps one version" 1
    (Engine.Historicity.version_count history "PQR");
  Alcotest.(check int) "GDP gained a version" 2
    (Engine.Historicity.version_count history "GDP");
  Alcotest.check cube_eq "as-of d1 still answers the old GDP" gdp_v1
    (Option.get (Engine.Exlengine.cube_as_of engine d1 "GDP"));
  Alcotest.(check bool) "as-of d2 sees the revision" false
    (Cube.equal_data ~eps:1e-7 gdp_v1
       (Option.get (Engine.Exlengine.cube_as_of engine d2 "GDP")))

let test_apply_updates_cache_invalidation () =
  let data = small_overview () in
  let engine = make_engine Helpers.overview_program data in
  ignore (ok (Engine.Exlengine.recompute engine));
  let batch n =
    [ Engine.Update.set ~cube:"PDR" ~key:[ vd 2020 1 2; vs "north" ] (vf n) ]
  in
  ignore (ok (Engine.Exlengine.apply_updates engine (batch 1.)));
  let r2 = ok (Engine.Exlengine.apply_updates engine (batch 2.)) in
  Alcotest.(check bool) "cache warm" true r2.Engine.Exlengine.cache_hit;
  (* a wholesale load invalidates the cached solution *)
  ok (Engine.Exlengine.load_elementary engine (Registry.find_exn data "PDR"));
  ignore (ok (Engine.Exlengine.recompute engine));
  let r3 = ok (Engine.Exlengine.apply_updates engine (batch 3.)) in
  Alcotest.(check bool) "cache rebuilt after load" false
    r3.Engine.Exlengine.cache_hit

let test_apply_updates_validation_atomic () =
  let data = small_overview () in
  let engine = make_engine Helpers.overview_program data in
  ignore (ok (Engine.Exlengine.recompute engine));
  let k = key [ vd 2020 1 1; vs "north" ] in
  let before = Option.get (Cube.find (Option.get (Engine.Exlengine.cube engine "PDR")) k) in
  let msg =
    err "derived target"
      (Engine.Exlengine.apply_updates engine
         [
           Engine.Update.set ~cube:"PDR" ~key:(Tuple.to_list k) (vf 0.);
           Engine.Update.set ~cube:"PQR" ~key:[ vq 2020 1; vs "north" ] (vf 0.);
         ])
  in
  Alcotest.(check bool) ("mentions derived: " ^ msg) true
    (Astring_contains.contains msg "derived");
  Alcotest.check value "whole batch rejected, store untouched" before
    (Option.get (Cube.find (Option.get (Engine.Exlengine.cube engine "PDR")) k));
  let msg =
    err "unknown cube"
      (Engine.Exlengine.apply_updates engine
         [ Engine.Update.set ~cube:"NOPE" ~key:[ vq 2020 1 ] (vf 0.) ])
  in
  Alcotest.(check bool) ("mentions cube: " ^ msg) true
    (Astring_contains.contains msg "NOPE")

(* --- incremental == from-scratch, property-tested ---

   For random programs (test/gen.ml) and random revision batches, two
   apply_updates calls (the first builds the cache, the second runs the
   delta-seeded chase against it) must leave every derived cube equal
   to a from-scratch recompute_all over the final data. *)

let qcheck_count =
  Helpers.qcheck_count ~var:"EXL_INCR_QCHECK_COUNT" ~default:30

let arb_seeds =
  QCheck.pair Gen.arb_seed
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000))

let random_batch st data ~factor =
  List.concat_map
    (fun name ->
      let cube = Registry.find_exn data name in
      let ups = ref [] in
      Cube.iter
        (fun k v ->
          if Random.State.float st 1.0 < 0.1 then
            let f = Option.value ~default:1. (Value.to_float v) in
            ups :=
              Engine.Update.set ~cube:name ~key:(Tuple.to_list k)
                (vf ((f *. factor) +. 1.))
              :: !ups)
        cube;
      !ups)
    (Registry.elementary_names data)

let prop_incremental_equals_scratch =
  QCheck.Test.make ~count:qcheck_count
    ~name:"apply_updates == from-scratch recompute_all" arb_seeds
    (fun (seed, rev_seed) ->
      let src, data = Gen.program_of_seed seed in
      let st = Random.State.make [| rev_seed |] in
      let engine = make_engine src data in
      (match Engine.Exlengine.recompute_all engine with
      | Ok _ -> ()
      | Error msg -> QCheck.Test.fail_reportf "recompute_all: %s\n%s" msg src);
      let batch1 = random_batch st data ~factor:1.5 in
      let batch2 = random_batch st data ~factor:0.5 in
      let apply what batch =
        match Engine.Exlengine.apply_updates engine batch with
        | Ok r -> r
        | Error msg -> QCheck.Test.fail_reportf "%s: %s\n%s" what msg src
      in
      let r1 = apply "batch1" batch1 in
      let r2 = apply "batch2" batch2 in
      (* the second propagating batch must run against the cache the
         first one built (batches that propagate nothing build none) *)
      (r1.Engine.Exlengine.recomputed = []
      || r2.Engine.Exlengine.recomputed = []
      || r2.Engine.Exlengine.cache_hit
      || QCheck.Test.fail_reportf "second batch missed the cache\n%s" src)
      &&
      let scratch = scratch_engine src data [ batch1; batch2 ] in
      List.for_all
        (fun name ->
          match
            ( Engine.Exlengine.cube engine name,
              Engine.Exlengine.cube scratch name )
          with
          | Some got, Some want ->
              Cube.equal_data ~eps:1e-6 want got
              || QCheck.Test.fail_reportf "cube %s differs on\n%s" name src
          | None, None -> true
          | _ -> QCheck.Test.fail_reportf "cube %s on one side only\n%s" name src)
        (Engine.Determination.derived_order
           (Engine.Exlengine.determination engine)))

let suite =
  [
    ("determination: diamond dirty set from elementary", `Quick, test_dirty_set_elementary);
    ("determination: changed derived reported distinctly", `Quick, test_dirty_set_derived);
    ("determination: mixed change set", `Quick, test_dirty_set_mixed);
    ("update: text format round trip and errors", `Quick, test_update_parse);
    ("update: compact keeps the last write per key", `Quick, test_compact_last_wins);
    ("update: compact cancels set against del", `Quick, test_compact_set_del_cancel);
    ("update: compact is stable and idempotent", `Quick, test_compact_stable_idempotent);
    ("update: compact identifies value-equal keys", `Quick, test_compact_value_aware_keys);
    ("update: concat merges queued batches", `Quick, test_concat_across_batches);
    ("update: concat equals sequential apply", `Quick, test_concat_equals_sequential_apply);
    ("chase: incremental insert-only fast path", `Quick, test_chase_incremental_insert_only);
    ("chase: incremental deletion rederives", `Quick, test_chase_incremental_removal_rederives);
    ("chase: incremental skips unreached strata", `Quick, test_chase_incremental_skips_unreached_strata);
    ("chase: incremental aggregation revision", `Quick, test_chase_incremental_aggregation_revision);
    ("chase: group-scoped aggregation state", `Quick, test_chase_incremental_aggregation_state);
    ("facade: apply_updates end to end", `Quick, test_apply_updates_end_to_end);
    ("facade: empty update batch", `Quick, test_apply_updates_empty_batch);
    ("facade: no-op batch propagates nothing", `Quick, test_apply_updates_noop_batch);
    ("facade: update to an unused cube", `Quick, test_apply_updates_unused_cube);
    ("facade: repeated key compacts to last write", `Quick, test_apply_updates_repeated_key);
    ("facade: revert within batch is a no-op", `Quick, test_apply_updates_revert_within_batch);
    ("facade: set then del nets to removal", `Quick, test_apply_updates_set_then_del);
    ("facade: deletion empties a stratum", `Quick, test_apply_updates_deletion_empties_stratum);
    ("facade: history versions only affected cubes", `Quick, test_apply_updates_history_versions);
    ("facade: cache invalidation on load", `Quick, test_apply_updates_cache_invalidation);
    ("facade: batch validation is atomic", `Quick, test_apply_updates_validation_atomic);
    QCheck_alcotest.to_alcotest prop_incremental_equals_scratch;
  ]
