(* exlserve: HTTP parser totality, routing, the single-writer commit
   loop, snapshot isolation, admission control, degraded serving, and
   concurrent point-in-time reads (docs/SERVING.md). *)
open Matrix
open Helpers
module Http = Serve.Http
module Server = Serve.Server
module Snapshot = Serve.Snapshot

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let contains = Astring_contains.contains

let check_contains what haystack needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S in %S" what needle
       (String.sub haystack 0 (min 120 (String.length haystack))))
    true (contains haystack needle)

(* --- fixture: a tiny shop-sales engine --- *)

let sales_program =
  "cube SALES(m: month, shop: string);\n\
   TOTAL := sum(SALES, group by m);\n\
   ROME := filter(SALES, shop = \"rome\");\n"

let sales_cube () =
  cube_of "SALES"
    [ ("m", Domain.Period (Some Calendar.Month)); ("shop", Domain.String) ]
    [
      [ vm 2024 1; vs "rome"; vf 10. ];
      [ vm 2024 1; vs "milan"; vf 20. ];
      [ vm 2024 2; vs "rome"; vf 13. ];
    ]

let boot_server ?faults ?(config = Server.default_config) () =
  let econfig = { Engine.Exlengine.default_config with faults } in
  let engine = Engine.Exlengine.create ~config:econfig () in
  ok (Engine.Exlengine.register_program engine ~name:"p" sales_program);
  ok (Engine.Exlengine.load_elementary engine (sales_cube ()));
  let report = ok (Engine.Exlengine.recompute_all engine) in
  (* a quarantined boot cannot warm the full cache; that is fine *)
  (match Engine.Exlengine.warm engine with Ok () | Error _ -> ());
  Server.create ~config ~report engine

(* Build a parsed request the way the connection loop would. *)
let request ?(headers = []) ?body meth target =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (k ^ ": " ^ v ^ "\r\n"))
    headers;
  (match body with
  | Some b ->
      Buffer.add_string buf
        (Printf.sprintf "content-length: %d\r\n" (String.length b))
  | None -> ());
  Buffer.add_string buf "\r\n";
  Option.iter (Buffer.add_string buf) body;
  match Http.parse (Buffer.contents buf) 0 with
  | Http.Complete (r, _) -> r
  | Http.Incomplete -> Alcotest.fail "request fixture incomplete"
  | Http.Failed e -> Alcotest.failf "request fixture rejected: %s" e.Http.reason

(* --- the parser --- *)

let test_parse_request_line () =
  let r =
    request "GET" "/v1/cube/TOTAL%20X?shop=ro%2Fme&q=a+b"
      ~headers:[ ("Host", "x"); ("X-Trace", "7") ]
  in
  Alcotest.(check string) "method" "GET" r.Http.meth;
  Alcotest.(check (list string))
    "path decoded" [ "v1"; "cube"; "TOTAL X" ] r.Http.path;
  Alcotest.(check (list (pair string string)))
    "query decoded, + is space"
    [ ("shop", "ro/me"); ("q", "a b") ]
    r.Http.query;
  Alcotest.(check (option string))
    "headers lowercased" (Some "7") (Http.header r "x-trace");
  Alcotest.(check (option string))
    "query_param" (Some "ro/me") (Http.query_param r "shop");
  Alcotest.(check bool) "keep-alive by default" false (Http.wants_close r)

let test_parse_pipelined () =
  let one = "GET /a HTTP/1.1\r\n\r\n" in
  let two = "POST /b HTTP/1.1\r\ncontent-length: 3\r\n\r\nxyz" in
  let buf = one ^ two in
  (match Http.parse buf 0 with
  | Http.Complete (r, used) ->
      Alcotest.(check (list string)) "first path" [ "a" ] r.Http.path;
      Alcotest.(check int) "first consumed" (String.length one) used;
      (match Http.parse buf used with
      | Http.Complete (r2, used2) ->
          Alcotest.(check (list string)) "second path" [ "b" ] r2.Http.path;
          Alcotest.(check string) "second body" "xyz" r2.Http.body;
          Alcotest.(check int)
            "all bytes consumed" (String.length buf) (used + used2)
      | _ -> Alcotest.fail "second request did not parse")
  | _ -> Alcotest.fail "first request did not parse");
  (* bare-LF endings are accepted too *)
  match Http.parse "GET /lf HTTP/1.1\nhost: x\n\n" 0 with
  | Http.Complete (r, _) ->
      Alcotest.(check (list string)) "bare LF" [ "lf" ] r.Http.path
  | _ -> Alcotest.fail "bare-LF request did not parse"

let test_parse_incomplete () =
  let whole = "POST /u HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello" in
  for cut = 1 to String.length whole - 1 do
    match Http.parse (String.sub whole 0 cut) 0 with
    | Http.Incomplete -> ()
    | Http.Complete _ -> Alcotest.failf "complete at prefix %d" cut
    | Http.Failed e -> Alcotest.failf "failed at prefix %d: %s" cut e.Http.reason
  done

let test_parse_fails_closed () =
  let status input =
    match Http.parse input 0 with
    | Http.Failed e -> e.Http.status
    | Http.Complete _ -> Alcotest.failf "%S parsed" input
    | Http.Incomplete -> Alcotest.failf "%S incomplete" input
  in
  Alcotest.(check int) "garbage request line" 400 (status "what even\r\n\r\n");
  Alcotest.(check int) "bad content-length" 400
    (status "POST /u HTTP/1.1\r\ncontent-length: nope\r\n\r\n");
  Alcotest.(check int) "transfer-encoding unimplemented" 501
    (status "POST /u HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n");
  Alcotest.(check int) "oversized declared body" 413
    (status
       (Printf.sprintf "POST /u HTTP/1.1\r\ncontent-length: %d\r\n\r\n"
          (Http.default_limits.Http.max_body + 1)));
  (* an unterminated request line past the limit fails before more
     bytes arrive — the accept loop can bound memory *)
  Alcotest.(check int) "unterminated giant line" 400
    (status (String.make (Http.default_limits.Http.max_request_line + 1) 'A'))

let test_fuzz_campaign () =
  match Serve.Http_fuzz.run ~seed:1234 ~count:400 () with
  | None -> ()
  | Some v ->
      Alcotest.failf "parser totality violated (%s) on %S"
        v.Serve.Http_fuzz.reason v.Serve.Http_fuzz.input

(* --- routing (transport-independent) --- *)

let test_route_catalog () =
  let t = boot_server () in
  let r = Server.handle_request t (request "GET" "/") in
  Alcotest.(check int) "index" 200 r.Server.status;
  let h = Server.handle_request t (request "GET" "/healthz") in
  Alcotest.(check int) "healthz" 200 h.Server.status;
  check_contains "healthz" h.Server.body "\"ok\"";
  let c = Server.handle_request t (request "GET" "/v1/cubes") in
  Alcotest.(check int) "catalog" 200 c.Server.status;
  List.iter
    (fun cube -> check_contains "catalog" c.Server.body cube)
    [ "SALES"; "TOTAL"; "ROME"; "healthy" ];
  let missing = Server.handle_request t (request "GET" "/v1/cube/NOPE") in
  Alcotest.(check int) "unknown cube" 404 missing.Server.status;
  let bad = Server.handle_request t (request "GET" "/nope") in
  Alcotest.(check int) "unknown route" 404 bad.Server.status;
  let wrong = Server.handle_request t (request "POST" "/v1/cubes") in
  Alcotest.(check int) "post to a read route" 404 wrong.Server.status;
  let del = Server.handle_request t (request "DELETE" "/v1/cubes") in
  Alcotest.(check int) "method not allowed" 405 del.Server.status;
  Server.shutdown t

let test_route_slice_filters () =
  let t = boot_server () in
  let get target = Server.handle_request t (request "GET" target) in
  let all = get "/v1/cube/SALES" in
  Alcotest.(check int) "slice" 200 all.Server.status;
  check_contains "slice carries data" all.Server.body "\"cardinality\":3";
  let rome = get "/v1/cube/SALES?shop=rome" in
  check_contains "filtered rows" rome.Server.body "\"returned\":2";
  check_contains "filter keeps cardinality" rome.Server.body "\"cardinality\":3";
  Alcotest.(check bool) "milan filtered out" false
    (contains rome.Server.body "milan");
  let limited = get "/v1/cube/SALES?limit=1" in
  check_contains "limit" limited.Server.body "\"returned\":1";
  let bad_dim = get "/v1/cube/SALES?region=x" in
  Alcotest.(check int) "unknown dimension is 400" 400 bad_dim.Server.status;
  let bad_limit = get "/v1/cube/SALES?limit=many" in
  Alcotest.(check int) "bad limit is 400" 400 bad_limit.Server.status;
  let sdmx = get "/v1/sdmx/TOTAL" in
  Alcotest.(check int) "sdmx" 200 sdmx.Server.status;
  check_contains "sdmx generic data" sdmx.Server.body "GenericData";
  check_contains "sdmx content type" sdmx.Server.content_type "xml";
  Server.shutdown t

let test_route_update_and_asof () =
  let t = boot_server () in
  let post ?headers target body =
    Server.handle_request t (request "POST" ?headers ~body target)
  in
  (* text format *)
  let r1 = post "/v1/update?as_of=2026-02-01" "set SALES 2024M01 rome 100\n" in
  Alcotest.(check int) "text update" 200 r1.Server.status;
  check_contains "committed" r1.Server.body "\"committed\":true";
  check_contains "recomputed" r1.Server.body "TOTAL";
  (* read-your-writes through the published snapshot *)
  let total = Server.handle_request t (request "GET" "/v1/cube/TOTAL") in
  check_contains "new total visible" total.Server.body "120";
  (* JSON format, explicit as_of in the document *)
  let r2 =
    post "/v1/update"
      ~headers:[ ("content-type", "application/json") ]
      {|{"updates":[{"cube":"SALES","key":["2024M01","rome"],"value":200}],
         "as_of":"2026-03-01"}|}
  in
  Alcotest.(check int) "json update" 200 r2.Server.status;
  (* as-of reads pick the latest version at or before the date *)
  let asof d = Server.handle_request t (request "GET" ("/v1/cube/TOTAL/asof/" ^ d)) in
  check_contains "asof first commit" (asof "2026-02-15").Server.body "120";
  check_contains "asof second commit" (asof "2026-04-01").Server.body "220";
  Alcotest.(check int) "asof before any version" 404 (asof "2020-01-01").Server.status;
  Alcotest.(check int) "unparseable date" 400 (asof "not-a-date").Server.status;
  (* malformed and invalid batches answer 400 without queueing *)
  Alcotest.(check int) "parse error" 400
    (post "/v1/update" "zap SALES 2024M01 rome 1\n").Server.status;
  Alcotest.(check int) "unknown cube" 400
    (post "/v1/update" "set NOPE 2024M01 rome 1\n").Server.status;
  Alcotest.(check int) "derived cube rejected" 400
    (post "/v1/update" "set TOTAL 2024M01 1\n").Server.status;
  (* an empty batch commits trivially *)
  Alcotest.(check int) "empty batch" 200
    (post "/v1/update" "# nothing\n").Server.status;
  Server.shutdown t

let test_route_quarantined () =
  (* Permanent execute fault on the TOTAL group: the boot recompute
     quarantines it; the server keeps serving the healthy cubes and
     answers 503 with the structured diagnostic for the rest. *)
  let faults =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~cube:"TOTAL" ~times:Engine.Faults.always
          Engine.Faults.Execute (Engine.Faults.Execute_error "injected outage");
      ]
  in
  let t = boot_server ~faults () in
  let got = Server.handle_request t (request "GET" "/v1/cube/TOTAL") in
  Alcotest.(check int) "quarantined cube" 503 got.Server.status;
  check_contains "structured diagnostic" got.Server.body "\"error\":\"quarantined\"";
  check_contains "diagnostic stage" got.Server.body "\"stage\":\"execute\"";
  check_contains "diagnostic failure" got.Server.body "injected outage";
  let sales = Server.handle_request t (request "GET" "/v1/cube/SALES") in
  Alcotest.(check int) "healthy sibling still serves" 200 sales.Server.status;
  let catalog = Server.handle_request t (request "GET" "/v1/cubes") in
  check_contains "catalog shows degradation" catalog.Server.body "quarantined";
  Server.shutdown t

(* --- the single-writer loop --- *)

let test_snapshot_isolation_and_429 () =
  let config = { Server.default_config with max_queue = 1 } in
  let t = boot_server ~config () in
  let seq0 = Snapshot.seq (Server.snapshot t) in
  Server.pause_writer t;
  (* a queued-but-uncommitted batch is invisible to readers *)
  let posted = Atomic.make None in
  let poster =
    Thread.create
      (fun () ->
        Atomic.set posted
          (Some
             (Server.handle_request t
                (request "POST" "/v1/update"
                   ~body:"set SALES 2024M01 rome 100\n"))))
      ()
  in
  let rec wait_queued n =
    if Server.queue_depth t = 0 && n > 0 then begin
      Thread.delay 0.002;
      wait_queued (n - 1)
    end
  in
  wait_queued 500;
  Alcotest.(check int) "batch queued" 1 (Server.queue_depth t);
  let during = Server.handle_request t (request "GET" "/v1/cube/TOTAL") in
  check_contains "old value still served" during.Server.body "30";
  Alcotest.(check int) "snapshot seq unchanged" seq0
    (Snapshot.seq (Server.snapshot t));
  (* the queue is full (max_queue = 1): admission control answers 429
     with a Retry-After hint instead of queueing without bound *)
  let overflow =
    Server.handle_request t
      (request "POST" "/v1/update" ~body:"set SALES 2024M02 rome 1\n")
  in
  Alcotest.(check int) "overflow rejected" 429 overflow.Server.status;
  Alcotest.(check bool) "retry-after hint" true
    (List.mem_assoc "retry-after" overflow.Server.headers);
  Server.resume_writer t;
  Thread.join poster;
  (match Atomic.get posted with
  | Some r -> Alcotest.(check int) "queued batch commits" 200 r.Server.status
  | None -> Alcotest.fail "poster thread produced no reply");
  (* read-your-writes: the POST reply was sent after publish *)
  let after = Server.handle_request t (request "GET" "/v1/cube/TOTAL") in
  check_contains "new value" after.Server.body "120";
  Alcotest.(check int) "snapshot advanced" (seq0 + 1)
    (Snapshot.seq (Server.snapshot t));
  Server.shutdown t

let test_coalescing_merges_batches () =
  (* With the writer held, several queued batches — including opposing
     updates — commit as ONE compacted batch and one snapshot flip. *)
  let config =
    { Server.default_config with max_queue = 16; coalesce_window = 0.001 }
  in
  let t = boot_server ~config () in
  let seq0 = Snapshot.seq (Server.snapshot t) in
  Server.pause_writer t;
  let post body =
    let out = Atomic.make None in
    let th =
      Thread.create
        (fun () ->
          Atomic.set out
            (Some (Server.handle_request t (request "POST" "/v1/update" ~body))))
        ()
    in
    (th, out)
  in
  let p1 = post "set SALES 2024M03 rome 5\n" in
  let p2 = post "del SALES 2024M03 rome\n" in
  let p3 = post "set SALES 2024M01 rome 40\n" in
  let rec wait_queued n =
    if Server.queue_depth t < 3 && n > 0 then begin
      Thread.delay 0.002;
      wait_queued (n - 1)
    end
  in
  wait_queued 500;
  Alcotest.(check int) "three batches queued" 3 (Server.queue_depth t);
  Server.resume_writer t;
  List.iter
    (fun (th, out) ->
      Thread.join th;
      match Atomic.get out with
      | Some r ->
          Alcotest.(check int) "each client sees its commit" 200 r.Server.status
      | None -> Alcotest.fail "client thread produced no reply")
    [ p1; p2; p3 ];
  Alcotest.(check int) "one snapshot flip for the whole group" (seq0 + 1)
    (Snapshot.seq (Server.snapshot t));
  let total = Server.handle_request t (request "GET" "/v1/cube/TOTAL") in
  check_contains "net effect applied" total.Server.body "60";
  Alcotest.(check bool) "opposing updates cancelled" false
    (contains total.Server.body "2024M03");
  Server.shutdown t

let test_drain_rejects_updates () =
  let t = boot_server () in
  Server.shutdown t;
  Alcotest.(check bool) "draining" true (Server.draining t);
  let r =
    Server.handle_request t
      (request "POST" "/v1/update" ~body:"set SALES 2024M01 rome 1\n")
  in
  Alcotest.(check int) "updates refused while draining" 503 r.Server.status;
  check_contains "draining diagnostic" r.Server.body "draining";
  let g = Server.handle_request t (request "GET" "/v1/cube/TOTAL") in
  Alcotest.(check int) "reads still answer during drain" 200 g.Server.status;
  Server.shutdown t

(* --- metrics --- *)

let test_metrics_exposition () =
  let c = Obs.create () in
  Obs.with_collector c (fun () ->
      let t = boot_server () in
      for _ = 1 to 5 do
        ignore (Server.handle_request t (request "GET" "/v1/cube/TOTAL"))
      done;
      ignore
        (Server.handle_request t
           (request "POST" "/v1/update" ~body:"set SALES 2024M01 rome 99\n"));
      ignore (Server.handle_request t (request "GET" "/nope"));
      let m = Server.handle_request t (request "GET" "/metrics") in
      Alcotest.(check int) "metrics endpoint" 200 m.Server.status;
      check_contains "prometheus content type" m.Server.content_type "text/plain";
      (* parse the exposition line by line: every sample line is
         [name{labels} value] with a float value *)
      let samples = Hashtbl.create 64 in
      String.split_on_char '\n' m.Server.body
      |> List.iter (fun line ->
             if line <> "" && line.[0] <> '#' then
               match String.rindex_opt line ' ' with
               | None -> Alcotest.failf "unparseable sample line %S" line
               | Some i ->
                   let name = String.sub line 0 i in
                   let v =
                     String.sub line (i + 1) (String.length line - i - 1)
                   in
                   (match float_of_string_opt v with
                   | Some f -> Hashtbl.replace samples name f
                   | None ->
                       Alcotest.failf "non-numeric value %S in %S" v line));
      let get name =
        match Hashtbl.find_opt samples name with
        | Some v -> v
        | None -> Alcotest.failf "metric %s not exposed" name
      in
      (* 5 slices + 1 update + 1 miss + this scrape *)
      Alcotest.(check (float 0.)) "request counter" 8. (get "exl_serve_requests");
      Alcotest.(check (float 0.)) "4xx counter" 1. (get "exl_serve_responses_4xx");
      Alcotest.(check (float 0.)) "commits" 1. (get "exl_serve_commits");
      Alcotest.(check (float 0.)) "coalesced jobs" 1.
        (get "exl_serve_coalesced_jobs");
      Alcotest.(check (float 0.)) "queue drained" 0. (get "exl_serve_queue_depth");
      (* histograms: +Inf bucket equals the count — every request
         except the scrape itself, whose duration is still in flight *)
      Alcotest.(check (float 0.))
        "duration histogram saw every finished request"
        (get "exl_serve_requests" -. 1.)
        (get {|exl_serve_request_seconds_bucket{le="+Inf"}|});
      let buckets =
        Hashtbl.fold
          (fun name v acc ->
            if
              contains name "exl_serve_request_seconds_bucket"
              && not (contains name "+Inf")
            then (name, v) :: acc
            else acc)
          samples []
      in
      Alcotest.(check bool) "finite buckets exposed" true (buckets <> []);
      List.iter
        (fun (_, v) ->
          Alcotest.(check bool) "bucket within count" true
            (v <= get {|exl_serve_request_seconds_bucket{le="+Inf"}|}))
        buckets;
      Alcotest.(check (float 0.))
        "coalesced batch histogram count" 1.
        (get "exl_serve_coalesced_batch_count");
      Server.shutdown t)

(* --- sockets end to end --- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let read_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Buffer.contents buf
  in
  go ()

(* One-shot client: send a request with [Connection: close], read the
   whole response, split into (status, body). *)
let http ~port ?(headers = []) ?body meth target =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let b = Buffer.create 256 in
      Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
      Buffer.add_string b "connection: close\r\n";
      List.iter
        (fun (k, v) -> Buffer.add_string b (k ^ ": " ^ v ^ "\r\n"))
        headers;
      (match body with
      | Some s ->
          Buffer.add_string b
            (Printf.sprintf "content-length: %d\r\n" (String.length s))
      | None -> ());
      Buffer.add_string b "\r\n";
      Option.iter (Buffer.add_string b) body;
      write_all fd (Buffer.contents b);
      let raw = read_all fd in
      let status =
        try Scanf.sscanf raw "HTTP/1.1 %d" (fun d -> d)
        with Scanf.Scan_failure _ | End_of_file ->
          Alcotest.failf "malformed response %S" raw
      in
      let body =
        match Astring_contains.contains raw "\r\n\r\n" with
        | false -> ""
        | true ->
            let rec find i =
              if i + 4 > String.length raw then String.length raw
              else if String.sub raw i 4 = "\r\n\r\n" then i + 4
              else find (i + 1)
            in
            let start = find 0 in
            String.sub raw start (String.length raw - start)
      in
      (status, body))

let test_socket_end_to_end () =
  let t = boot_server () in
  let fd, port = Server.listen_inet ~host:"127.0.0.1" ~port:0 () in
  let server_thread = Server.serve_background t fd in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown t;
      Thread.join server_thread)
    (fun () ->
      (* concurrent readers against the boot snapshot *)
      let readers =
        List.init 4 (fun _ ->
            let out = Atomic.make None in
            let th =
              Thread.create
                (fun () ->
                  Atomic.set out (Some (http ~port "GET" "/v1/cube/TOTAL")))
                ()
            in
            (th, out))
      in
      List.iter
        (fun (th, out) ->
          Thread.join th;
          match Atomic.get out with
          | Some (status, body) ->
              Alcotest.(check int) "concurrent read" 200 status;
              check_contains "boot value" body "30"
          | None -> Alcotest.fail "reader produced no response")
        readers;
      (* read-your-writes across real sockets *)
      let status, body =
        http ~port "POST" "/v1/update" ~body:"set SALES 2024M01 rome 100\n"
      in
      Alcotest.(check int) "socket update" 200 status;
      check_contains "commit report" body "\"committed\":true";
      let status, body = http ~port "GET" "/v1/cube/TOTAL" in
      Alcotest.(check int) "socket read back" 200 status;
      check_contains "write visible" body "120";
      (* pipelining: two requests in one segment, two responses back *)
      let fd2 = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd2 (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          write_all fd2
            "GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n";
          let raw = read_all fd2 in
          let count = ref 0 in
          let rec scan i =
            match String.index_from_opt raw i 'H' with
            | Some j when j + 8 <= String.length raw ->
                if String.sub raw j 8 = "HTTP/1.1" then incr count;
                scan (j + 1)
            | _ -> ()
          in
          scan 0;
          Alcotest.(check int) "two pipelined responses" 2 !count);
      (* a malformed request gets a 400, not a hung or dead connection *)
      let fd3 = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd3 with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd3 (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          write_all fd3 "definitely not http\r\n\r\n";
          let raw = read_all fd3 in
          check_contains "parse error answered" raw "400"))

(* --- concurrent point-in-time reads (the PR 8 scenario, threaded) --- *)

(* Readers hammer [cube_as_of] while the single writer commits dated
   batches: every read must observe exactly one committed version —
   value [10 * i + 1] for some already-committed batch [i] — never a
   torn or intermediate state. *)
let test_concurrent_asof_reads () =
  let engine = Engine.Exlengine.create () in
  ok
    (Engine.Exlengine.register_program engine ~name:"p"
       "cube A(q: quarter);\nD := A + 1;\n");
  ok
    (Engine.Exlengine.load_elementary engine
       (cube_of "A"
          [ ("q", Domain.Period (Some Calendar.Quarter)) ]
          [ [ vq 2024 1; vf 1. ] ]));
  let date i = Calendar.Date.make ~year:2026 ~month:1 ~day:(1 + i) in
  ignore (ok (Engine.Exlengine.recompute_all ~as_of:(date 0) engine));
  ok (Engine.Exlengine.warm engine);
  let batches = 15 and committed = Atomic.make 0 in
  let expected i = if i = 0 then 2. else (10. *. float_of_int i) +. 1. in
  let failures = Atomic.make [] in
  let fail msg = Atomic.set failures (msg :: Atomic.get failures) in
  let reader _ =
    (* read at the frontier: any already-committed version is legal *)
    for _ = 1 to 400 do
      let hi = Atomic.get committed in
      match Engine.Exlengine.cube_as_of engine (date batches) "D" with
      | None -> fail "as-of read lost every version"
      | Some cube -> (
          match Cube.find cube (key [ vq 2024 1 ]) with
          | None -> fail "version lost its fact"
          | Some (Value.Float v) ->
              let legal = ref false in
              for i = hi - 1 to Atomic.get committed + 1 do
                if i >= 0 && i <= batches && expected i = v then legal := true
              done;
              if not !legal then
                fail (Printf.sprintf "torn read: %g at frontier %d" v hi)
          | Some v -> fail ("non-float measure: " ^ Value.to_string v))
    done
  in
  let readers = List.init 4 (fun i -> Thread.create reader i) in
  for i = 1 to batches do
    ignore
      (ok
         (Engine.Exlengine.apply_updates ~as_of:(date i) engine
            [
              Engine.Update.set ~cube:"A" ~key:[ vq 2024 1 ]
                (vf (10. *. float_of_int i));
            ]));
    Atomic.set committed i
  done;
  List.iter Thread.join readers;
  (match Atomic.get failures with
  | [] -> ()
  | msg :: _ -> Alcotest.fail msg);
  (* and the frozen past stays frozen: every dated version still
     answers with its own value after all the churn *)
  List.iter
    (fun i ->
      match Engine.Exlengine.cube_as_of engine (date i) "D" with
      | None -> Alcotest.failf "version %d vanished" i
      | Some cube ->
          Alcotest.(check (option value))
            (Printf.sprintf "version %d intact" i)
            (Some (vf (expected i)))
            (Cube.find cube (key [ vq 2024 1 ])))
    [ 0; 1; 7; batches ]

let suite =
  [
    ("http: request line, path and query decoding", `Quick, test_parse_request_line);
    ("http: pipelined requests and bare LF", `Quick, test_parse_pipelined);
    ("http: every proper prefix is incomplete", `Quick, test_parse_incomplete);
    ("http: malformed input fails closed", `Quick, test_parse_fails_closed);
    ("http: parser totality fuzz campaign", `Quick, test_fuzz_campaign);
    ("route: index, healthz and catalog", `Quick, test_route_catalog);
    ("route: slices, filters, limits and sdmx", `Quick, test_route_slice_filters);
    ("route: updates commit and as-of reads answer", `Quick, test_route_update_and_asof);
    ("route: quarantined cube serves 503 diagnostics", `Quick, test_route_quarantined);
    ("writer: snapshot isolation and 429 overflow", `Quick, test_snapshot_isolation_and_429);
    ("writer: queued batches coalesce into one commit", `Quick, test_coalescing_merges_batches);
    ("writer: drain refuses updates, keeps reads", `Quick, test_drain_rejects_updates);
    ("metrics: prometheus exposition parses", `Quick, test_metrics_exposition);
    ("socket: concurrent clients end to end", `Quick, test_socket_end_to_end);
    ("history: concurrent as-of reads see no torn state", `Quick, test_concurrent_asof_reads);
  ]
