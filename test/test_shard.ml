(* The sharded chase (lib/shard): co-partitioning plans on the worked
   example, the split's disjoint-union invariant, solution equality
   against the unsharded chase (hash and range, chosen and explicit
   keys), deferred egd checks firing identically after the merge, and
   the qcheck property sharded == unsharded over random programs. *)
open Matrix
open Helpers
module M = Mappings
module X = Exchange

(* Binaries reach sharding through [Chase.run ~shards]; make sure the
   hook is installed even though nothing else references the library. *)
let () = Shard.Driver.install ()

let overview_mapping () =
  let checked = load_overview () in
  let { M.Generate.mapping; _ } = check_ok (M.Generate.of_checked checked) in
  mapping

(* --- the co-partitioning plan on the worked example --- *)

let test_plan_overview () =
  let mapping = overview_mapping () in
  let plan =
    match Shard.Partition.make ~shards:4 mapping with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan failed: %s" e
  in
  (* "r" keeps the heavy statements (PQR's aggregation, RGDP's join)
     shard-local; "q" would replicate the PQR aggregation per shard. *)
  Alcotest.(check string) "chosen key" "r" plan.Shard.Partition.key;
  let status rel =
    match List.assoc_opt rel plan.Shard.Partition.status with
    | Some s -> Shard.Partition.status_to_string s
    | None -> Alcotest.failf "%s not classified" rel
  in
  List.iter
    (fun rel ->
      Alcotest.(check string) (rel ^ " partitioned") "partitioned@1"
        (status rel))
    [ "PDR"; "RGDPPC"; "PQR"; "RGDP" ];
  (* the total aggregate drops r, so GDP and everything downstream is
     computed only after the merge *)
  List.iter
    (fun rel ->
      Alcotest.(check string) (rel ^ " residual") "residual" (status rel))
    [ "GDP"; "GDPT"; "PCHNG" ];
  Alcotest.(check int) "local tgds" 2
    (List.length plan.Shard.Partition.local);
  (* normalization splits statement (5) into intermediates, so the
     residual set is larger than the three visible statements *)
  Alcotest.(check int) "residual tgds" 6
    (List.length plan.Shard.Partition.residual);
  let report = Shard.Partition.report plan in
  Alcotest.(check bool) "report names the broken group-by" true
    (let needle = "group-by drops the shard key" in
     let n = String.length needle and m = String.length report in
     let rec scan i =
       i + n <= m && (String.sub report i n = needle || scan (i + 1))
     in
     scan 0)

let test_plan_explicit_bad_key () =
  let mapping = overview_mapping () in
  match Shard.Partition.make ~key:"nope" ~shards:2 mapping with
  | Error msg ->
      Alcotest.(check bool) "names the key" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "bogus key accepted"

(* --- the split: partitioned relations shatter into a disjoint union --- *)

let test_split_disjoint_union () =
  let mapping = overview_mapping () in
  let plan =
    match Shard.Partition.make ~key:"r" ~shards:3 mapping with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan failed: %s" e
  in
  let regions = [ "north"; "south"; "east"; "west"; "center" ] in
  let source =
    X.Instance.of_registry (overview_registry ~years:1 ~regions ())
  in
  let parts = Shard.Partition.split plan source in
  Alcotest.(check int) "one instance per shard" 3 (Array.length parts);
  List.iter
    (fun rel ->
      let total = X.Instance.cardinality source rel in
      let sum =
        Array.fold_left (fun a p -> a + X.Instance.cardinality p rel) 0 parts
      in
      Alcotest.(check int) (rel ^ " cardinalities add up") total sum;
      (* disjoint + union = the shards' sorted fact lists merge back to
         exactly the source's *)
      let merged =
        List.sort_uniq compare
          (Array.fold_left
             (fun acc p -> X.Instance.facts p rel @ acc)
             [] parts)
      in
      Alcotest.(check int)
        (rel ^ " union is exact and disjoint")
        total (List.length merged))
    [ "PDR"; "RGDPPC" ];
  (* every key value sits in exactly one shard: each shard's region set
     must be disjoint from the others' *)
  let region_of fact = fact.(1) in
  let shard_regions =
    Array.map
      (fun p ->
        List.sort_uniq Value.compare
          (List.map region_of (X.Instance.facts p "PDR")))
      parts
  in
  let all = Array.to_list shard_regions |> List.concat in
  Alcotest.(check int) "regions never straddle shards"
    (List.length regions)
    (List.length all)

(* --- sharded == unsharded --- *)

let facts_equal f1 f2 =
  List.length f1 = List.length f2
  && List.for_all2
       (fun a b ->
         Array.length a = Array.length b && Array.for_all2 Value.equal a b)
       f1 f2

let check_same_solution what mapping reg ~shards ?shard_key ?(shard_range = false)
    () =
  let run ~shards =
    X.Chase.run ~shards ?shard_key ~shard_range mapping
      (X.Instance.of_registry reg)
  in
  match (run ~shards:1, run ~shards) with
  | Ok (j1, _), Ok (j2, _) ->
      List.iter
        (fun (s : Schema.t) ->
          let name = s.Schema.name in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s facts identical" what name)
            true
            (facts_equal (X.Instance.facts j1 name) (X.Instance.facts j2 name)))
        mapping.M.Mapping.target
  | Error e1, Error e2 ->
      Alcotest.(check string) (what ^ ": same error") e1 e2
  | Ok _, Error e -> Alcotest.failf "%s: sharded failed, unsharded ok: %s" what e
  | Error e, Ok _ -> Alcotest.failf "%s: unsharded failed, sharded ok: %s" what e

let test_sharded_matches_unsharded () =
  let mapping = overview_mapping () in
  let reg =
    overview_registry ~years:2
      ~regions:[ "north"; "south"; "east"; "west"; "center"; "isles" ]
      ()
  in
  check_same_solution "auto key, hash" mapping reg ~shards:4 ();
  check_same_solution "explicit r, hash" mapping reg ~shards:3 ~shard_key:"r" ();
  check_same_solution "explicit r, range" mapping reg ~shards:3 ~shard_key:"r"
    ~shard_range:true ();
  (* "q" is a poor key (PQR replicates) but must still be correct *)
  check_same_solution "explicit q, hash" mapping reg ~shards:2 ~shard_key:"q" ();
  (* more shards than key values: some shards are empty *)
  check_same_solution "more shards than regions" mapping reg ~shards:16 ()

let test_sharded_bad_key_errors () =
  let mapping = overview_mapping () in
  let reg = overview_registry () in
  match
    X.Chase.run ~shards:2 ~shard_key:"nope" mapping
      (X.Instance.of_registry reg)
  with
  | Error msg ->
      Alcotest.(check bool) "mentions sharding" true
        (String.length msg >= 13 && String.sub msg 0 13 = "sharded chase")
  | Ok _ -> Alcotest.fail "bogus explicit key accepted"

(* --- deferred egds: a violation across shards fires after the merge,
   with the unsharded run's exact message --- *)

let test_sharded_egd_parity () =
  let schema_s =
    Schema.make ~name:"S" ~dims:[ ("r", Domain.String); ("x", Domain.Int) ] ()
  in
  let schema_t = Schema.make ~name:"T" ~dims:[ ("x", Domain.Int) ] () in
  let bad_tgd =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom "S" [ M.Term.Var "r"; M.Term.Var "x"; M.Term.Var "m" ] ];
        rhs = M.Tgd.atom "T" [ M.Term.Var "x"; M.Term.Var "m" ];
      }
  in
  let mapping =
    {
      M.Mapping.source = [ schema_s ];
      target = [ schema_s; schema_t ];
      st_tgds = [];
      t_tgds = [ bad_tgd ];
      egds = [ M.Egd.of_schema schema_t ];
    }
  in
  (* the plan keeps the tgd local but marks T merged: the projection
     drops the key, so its egd must wait for the merge *)
  (match Shard.Partition.make ~key:"r" ~shards:3 mapping with
  | Error e -> Alcotest.failf "plan failed: %s" e
  | Ok plan ->
      Alcotest.(check int) "tgd stays local" 1
        (List.length plan.Shard.Partition.local);
      Alcotest.(check string) "T is merged-only" "merged"
        (Shard.Partition.status_to_string
           (List.assoc "T" plan.Shard.Partition.status)));
  let build () =
    let inst = X.Instance.create () in
    X.Instance.add_relation inst schema_s;
    (* same x from several regions, conflicting measures: each fact may
       land in a different shard, so no shard sees the conflict alone *)
    List.iteri
      (fun i r ->
        ignore
          (X.Instance.insert inst "S"
             [| vs r; vi 1; vf (10. *. float_of_int (i + 1)) |]))
      [ "a"; "b"; "c"; "d" ];
    inst
  in
  match
    ( X.Chase.run mapping (build ()),
      X.Chase.run ~shards:3 ~shard_key:"r" mapping (build ()) )
  with
  | Error e1, Error e2 ->
      Alcotest.(check string) "identical egd error" e1 e2
  | Ok _, _ -> Alcotest.fail "unsharded run missed the egd violation"
  | _, Ok _ -> Alcotest.fail "sharded run missed the egd violation"

(* --- the property: chase ~shards:3 == chase ~shards:1 --- *)

let qcheck_count =
  Helpers.qcheck_count ~var:"EXL_SHARD_QCHECK_COUNT" ~default:30

let prop_sharded_matches_unsharded =
  QCheck.Test.make ~count:qcheck_count
    ~name:"chase ~shards:3 == unsharded chase on random programs"
    Gen.arb_seed (fun seed ->
      let src, reg = Gen.program_of_seed seed in
      match Exl.Program.load src with
      | Error e ->
          QCheck.Test.fail_reportf "generated program does not check: %s\n%s"
            (Exl.Errors.to_string e) src
      | Ok checked -> (
          let { M.Generate.mapping; _ } =
            check_ok (M.Generate.of_checked checked)
          in
          match
            ( X.Chase.run mapping (X.Instance.of_registry reg),
              X.Chase.run ~shards:3 mapping (X.Instance.of_registry reg) )
          with
          | Ok (j1, _), Ok (j2, _) ->
              List.iter
                (fun (s : Schema.t) ->
                  let name = s.Schema.name in
                  if
                    not
                      (facts_equal
                         (X.Instance.facts j1 name)
                         (X.Instance.facts j2 name))
                  then
                    QCheck.Test.fail_reportf "relation %s differs on\n%s" name
                      src)
                mapping.M.Mapping.target;
              true
          | Error _, Error _ ->
              (* both fail: tgd errors may surface in a different order
                 (per-shard tasks race to the first error), so message
                 equality is not required — only the verdict is *)
              true
          | Ok _, Error e ->
              QCheck.Test.fail_reportf "sharded failed, unsharded passed: %s\n%s"
                e src
          | Error e, Ok _ ->
              QCheck.Test.fail_reportf "unsharded failed, sharded passed: %s\n%s"
                e src))

let suite =
  [
    ("plan: overview picks r, splits local/residual", `Quick, test_plan_overview);
    ("plan: explicit unknown key is rejected", `Quick, test_plan_explicit_bad_key);
    ("split: partitioned relations form a disjoint union", `Quick, test_split_disjoint_union);
    ("chase: sharded == unsharded on the overview", `Quick, test_sharded_matches_unsharded);
    ("chase: explicit bad key errors out", `Quick, test_sharded_bad_key_errors);
    ("chase: cross-shard egd violation caught after merge", `Quick, test_sharded_egd_parity);
    QCheck_alcotest.to_alcotest prop_sharded_matches_unsharded;
  ]
