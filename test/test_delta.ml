(* The incremental (delta) chase: tuple-level change propagation must
   agree exactly with a full re-chase. *)
open Matrix
open Helpers
module M = Mappings
module X = Exchange

let mapping_of src =
  (check_ok (M.Generate.of_source src)).M.Generate.mapping

let chase_ok mapping source =
  match X.Chase.run mapping source with
  | Ok (j, _) -> j
  | Error msg -> Alcotest.failf "chase: %s" msg

let incr_ok mapping ~base ~source =
  match X.Delta.run_incremental mapping ~base ~source with
  | Ok r -> r
  | Error msg -> Alcotest.failf "incremental: %s" msg

let instances_agree mapping a b =
  List.iter
    (fun schema ->
      let name = schema.Schema.name in
      Alcotest.check cube_eq ("relation " ^ name)
        (X.Instance.cube_of_relation a name)
        (X.Instance.cube_of_relation b name))
    mapping.M.Mapping.target

(* revise one measure of a cube in a registry copy *)
let revise_measure reg name key factor =
  let out = Registry.copy reg in
  let cube = Registry.find_exn out name in
  (match Cube.find cube key with
  | Some v -> Cube.set cube key (Value.Float (Value.to_float_exn v *. factor))
  | None -> Alcotest.failf "no tuple %s in %s" (Tuple.to_string key) name);
  out

let test_diff () =
  let d =
    X.Delta.diff
      ~old_facts:[ [| vi 1; vf 1. |]; [| vi 2; vf 2. |] ]
      ~new_facts:[ [| vi 2; vf 2. |]; [| vi 3; vf 3. |] ]
  in
  Alcotest.(check int) "one added" 1 (List.length d.X.Delta.added);
  Alcotest.(check int) "one removed" 1 (List.length d.X.Delta.removed)

let test_no_change_is_noop () =
  let reg = overview_registry () in
  let mapping = mapping_of Helpers.overview_program in
  let base = chase_ok mapping (X.Instance.of_registry reg) in
  let j, stats = incr_ok mapping ~base ~source:(X.Instance.of_registry reg) in
  instances_agree mapping base j;
  Alcotest.(check int) "no work" 0 stats.X.Chase.tuples_generated

let test_single_revision_overview () =
  let reg = overview_registry () in
  let mapping = mapping_of Helpers.overview_program in
  let base = chase_ok mapping (X.Instance.of_registry reg) in
  (* revise one quarterly per-capita figure *)
  let revised =
    revise_measure reg "RGDPPC" (key [ vq 2021 2; vs "north" ]) 1.05
  in
  let source = X.Instance.of_registry revised in
  let full = chase_ok mapping source in
  let incremental, stats = incr_ok mapping ~base ~source in
  instances_agree mapping full incremental;
  (* far less work than the full chase: the full solution has thousands
     of facts, the revision touches a handful per relation *)
  Alcotest.(check bool)
    (Printf.sprintf "little work (%d)" stats.X.Chase.tuples_generated)
    true
    (stats.X.Chase.tuples_generated < 60)

let test_revision_skips_unaffected_branch () =
  let reg = overview_registry () in
  let mapping = mapping_of Helpers.overview_program in
  let base = chase_ok mapping (X.Instance.of_registry reg) in
  let revised =
    revise_measure reg "RGDPPC" (key [ vq 2021 2; vs "north" ]) 1.05
  in
  let incremental, _ =
    incr_ok mapping ~base ~source:(X.Instance.of_registry revised)
  in
  (* PQR depends only on PDR: identical facts, untouched *)
  Alcotest.check cube_eq "PQR untouched"
    (X.Instance.cube_of_relation base "PQR")
    (X.Instance.cube_of_relation incremental "PQR")

let test_insertion_and_deletion () =
  let dims = [ ("q", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ] in
  let src =
    "cube A(q: quarter, r: string);\n\
     cube B(q: quarter, r: string);\n\
     C := A * B;\n\
     S := sum(C, group by q);\n"
  in
  let mapping = mapping_of src in
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A" dims
       [ [ vq 2024 1; vs "x"; vf 2. ]; [ vq 2024 2; vs "x"; vf 3. ] ]);
  Registry.add reg Registry.Elementary
    (cube_of "B" dims
       [ [ vq 2024 1; vs "x"; vf 10. ]; [ vq 2024 2; vs "x"; vf 10. ] ]);
  let base = chase_ok mapping (X.Instance.of_registry reg) in
  (* delete one A tuple, insert another *)
  let revised = Registry.copy reg in
  let a = Registry.find_exn revised "A" in
  Cube.remove a (key [ vq 2024 1; vs "x" ]);
  Cube.set a (key [ vq 2024 3; vs "x" ]) (vf 7.);
  Cube.set (Registry.find_exn revised "B") (key [ vq 2024 3; vs "x" ]) (vf 10.);
  let source = X.Instance.of_registry revised in
  let full = chase_ok mapping source in
  let incremental, _ = incr_ok mapping ~base ~source in
  instances_agree mapping full incremental;
  (* sanity: the deleted join result is gone, the new one present *)
  let c = X.Instance.cube_of_relation incremental "C" in
  Alcotest.(check bool) "old gone" false (Cube.mem c (key [ vq 2024 1; vs "x" ]));
  Alcotest.check value "new there" (vf 70.)
    (Option.get (Cube.find c (key [ vq 2024 3; vs "x" ])))

let test_blackbox_slice_recompute () =
  (* changing one slice of a two-slice cube only re-derives that slice *)
  let src = "cube A(q: quarter, r: string);\nT := cumsum(A);\n" in
  let mapping = mapping_of src in
  let rows r0 =
    List.concat_map
      (fun (r, offset) ->
        List.init 8 (fun i ->
            [ vq (2020 + (i / 4)) ((i mod 4) + 1); vs r; vf (offset +. float_of_int i) ]))
      [ ("a", r0); ("b", 100.) ]
  in
  let make r0 =
    let reg = Registry.create () in
    Registry.add reg Registry.Elementary
      (cube_of "A"
         [ ("q", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
         (rows r0));
    reg
  in
  let base_reg = make 0. and revised_reg = make 1. in
  let base = chase_ok mapping (X.Instance.of_registry base_reg) in
  let source = X.Instance.of_registry revised_reg in
  let full = chase_ok mapping source in
  let incremental, stats = incr_ok mapping ~base ~source in
  instances_agree mapping full incremental;
  (* only slice "a" (8 points) re-derived, not the 16 total *)
  Alcotest.(check int) "slice-local work" 8 stats.X.Chase.tuples_generated

let test_in_place_both_sides_changed () =
  (* both join sides revised at the same key: the removal derivation
     must see the OLD other side (the overlay), even in_place *)
  let dims = [ ("q", Domain.Period (Some Calendar.Quarter)) ] in
  let src = "cube A(q: quarter);\ncube B(q: quarter);\nC := A * B;\n" in
  let mapping = mapping_of src in
  let make av bv =
    let reg = Registry.create () in
    Registry.add reg Registry.Elementary (cube_of "A" dims [ [ vq 2024 1; vf av ] ]);
    Registry.add reg Registry.Elementary (cube_of "B" dims [ [ vq 2024 1; vf bv ] ]);
    reg
  in
  let base = chase_ok mapping (X.Instance.of_registry (make 2. 10.)) in
  let source = X.Instance.of_registry (make 3. 20.) in
  let updated, _ =
    match X.Delta.run_incremental ~in_place:true mapping ~base ~source with
    | Ok r -> r
    | Error msg -> Alcotest.failf "in place: %s" msg
  in
  let c = X.Instance.cube_of_relation updated "C" in
  Alcotest.(check int) "one fact" 1 (Cube.cardinality c);
  Alcotest.check value "3*20" (vf 60.) (Option.get (Cube.find c (key [ vq 2024 1 ])))

let prop_incremental_equals_full =
  QCheck.Test.make ~count:40
    ~name:"incremental chase == full chase under random revisions"
    (QCheck.pair Gen.arb_seed (QCheck.int_range 0 1_000_000))
    (fun (seed, rev_seed) ->
      let src, reg = Gen.program_of_seed seed in
      let mapping =
        match M.Generate.of_source src with
        | Ok g -> g.M.Generate.mapping
        | Error e -> QCheck.Test.fail_reportf "gen: %s" (Exl.Errors.to_string e)
      in
      let base_source = X.Instance.of_registry reg in
      let base =
        match X.Chase.run mapping base_source with
        | Ok (j, _) -> j
        | Error msg -> QCheck.Test.fail_reportf "base chase: %s" msg
      in
      (* random revision: scale some measures, drop a few tuples *)
      let st = Random.State.make [| rev_seed; 77 |] in
      let revised = Registry.copy reg in
      List.iter
        (fun name ->
          let cube = Registry.find_exn revised name in
          let keys = Cube.keys cube in
          List.iter
            (fun k ->
              let roll = Random.State.float st 1.0 in
              if roll < 0.05 then Cube.remove cube k
              else if roll < 0.15 then
                match Cube.find cube k with
                | Some v ->
                    Cube.set cube k
                      (Value.Float (Value.to_float_exn v +. 1.25))
                | None -> ())
            keys)
        (Registry.elementary_names revised);
      let source = X.Instance.of_registry revised in
      let full =
        match X.Chase.run mapping source with
        | Ok (j, _) -> j
        | Error msg -> QCheck.Test.fail_reportf "full chase: %s" msg
      in
      match X.Delta.run_incremental mapping ~base ~source with
      | Error msg -> QCheck.Test.fail_reportf "incremental: %s\n%s" msg src
      | Ok (incremental, _) ->
          List.for_all
            (fun schema ->
              let name = schema.Schema.name in
              Cube.equal_data ~eps:1e-7
                (X.Instance.cube_of_relation full name)
                (X.Instance.cube_of_relation incremental name)
              || QCheck.Test.fail_reportf "relation %s differs on\n%s" name src)
            mapping.M.Mapping.target)

(* Secondary indexes built on the live solution must stay consistent
   through the insert/remove traffic of an in-place incremental run. *)
let test_indexes_survive_in_place_update () =
  let reg = overview_registry () in
  let mapping = mapping_of Helpers.overview_program in
  let base = chase_ok mapping (X.Instance.of_registry reg) in
  List.iter
    (fun (schema : Schema.t) ->
      if Array.length schema.Schema.dims > 0 then
        X.Instance.ensure_index base schema.Schema.name [ 0 ])
    mapping.M.Mapping.target;
  let revised =
    revise_measure reg "RGDPPC" (key [ vq 2021 2; vs "north" ]) 1.07
  in
  let source = X.Instance.of_registry revised in
  (match X.Delta.run_incremental ~in_place:true mapping ~base ~source with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "incremental: %s" msg);
  let full = chase_ok mapping source in
  instances_agree mapping full base;
  (* every index bucket agrees with a fresh scan of the relation *)
  List.iter
    (fun (schema : Schema.t) ->
      let name = schema.Schema.name in
      if Array.length schema.Schema.dims > 0 then begin
        (* the run may add further indexes of its own; ours must survive *)
        Alcotest.(check bool)
          (name ^ " still indexed") true
          (List.mem [ 0 ] (X.Instance.indexed_positions base name));
        List.iter
          (fun fact ->
            let bucket = X.Instance.lookup_index base name [ 0 ] [ fact.(0) ] in
            let scan =
              List.filter
                (fun f -> Value.equal f.(0) fact.(0))
                (X.Instance.facts base name)
            in
            Alcotest.(check int)
              (Printf.sprintf "%s bucket size" name)
              (List.length scan) (List.length bucket);
            Alcotest.(check bool)
              (Printf.sprintf "%s bucket member" name)
              true
              (List.exists (fun f -> Tuple.equal (Tuple.of_array f) (Tuple.of_array fact)) bucket))
          (X.Instance.facts base name)
      end)
    mapping.M.Mapping.target

let suite =
  [
    ("diff", `Quick, test_diff);
    ("no change is a no-op", `Quick, test_no_change_is_noop);
    ("single revision on the overview", `Quick, test_single_revision_overview);
    ("unaffected branch untouched", `Quick, test_revision_skips_unaffected_branch);
    ("insertion and deletion", `Quick, test_insertion_and_deletion);
    ("blackbox slice recompute", `Quick, test_blackbox_slice_recompute);
    ("in place, both join sides changed", `Quick, test_in_place_both_sides_changed);
    ("indexes survive in-place update", `Quick, test_indexes_survive_in_place_update);
    QCheck_alcotest.to_alcotest prop_incremental_equals_full;
  ]
