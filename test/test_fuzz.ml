(* The fuzzer's own suite: generated scenarios must agree on every
   lattice axis, repro files must round-trip, the checked-in corpus of
   shrunk counterexamples must replay clean, and — the acceptance check
   — the deliberately unsafe aggregation fuser must be caught and
   shrunk to a tiny repro. *)

let qcheck_count = Helpers.qcheck_count ~var:"EXL_FUZZ_QCHECK_COUNT" ~default:25

let spec_of (c : Fuzz.Harness.check) =
  Fuzz.Lattice.to_spec c.Fuzz.Harness.axis c.Fuzz.Harness.fuse

let no_disagreement what checks =
  List.iter
    (fun (c : Fuzz.Harness.check) ->
      match c.Fuzz.Harness.outcome with
      | Fuzz.Harness.Disagree d ->
          Alcotest.failf "%s: axis %s disagrees\n%s" what (spec_of c) d
      | Fuzz.Harness.Agree | Fuzz.Harness.Skip _ -> ())
    checks

(* --- every generated scenario agrees on every axis --- *)

let arb_fuzz_seed = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000)

let agree_prop ~profile =
  QCheck.Test.make ~count:qcheck_count
    ~name:(Printf.sprintf "fuzz: %s scenarios agree on all axes" profile)
    arb_fuzz_seed
    (fun seed ->
      let s = Fuzz.Scenario.generate ~profile seed in
      no_disagreement (Printf.sprintf "%s seed %d" profile seed)
        (Fuzz.Harness.run s);
      true)

let prop_quick_agree = agree_prop ~profile:"quick"
let prop_deep_agree = agree_prop ~profile:"deep"

(* --- repro files round-trip --- *)

let batches_to_strings = List.map (List.map Engine.Update.to_string)

let prop_repro_roundtrip =
  QCheck.Test.make ~count:qcheck_count ~name:"fuzz: repro file round-trips"
    arb_fuzz_seed
    (fun seed ->
      let s = Fuzz.Scenario.generate ~profile:"deep" seed in
      let s = { s with Fuzz.Scenario.axes = [ "columnar"; "fusion:unsafe" ] } in
      match Fuzz.Scenario.of_string (Fuzz.Scenario.to_string s) with
      | Error e -> QCheck.Test.fail_reportf "seed %d: parse failed: %s" seed e
      | Ok s' ->
          let open Fuzz.Scenario in
          s'.seed = s.seed && s'.profile = s.profile && s'.axes = s.axes
          && String.trim s'.source = String.trim s.source
          && batches_to_strings s'.updates = batches_to_strings s.updates
          && Option.map Engine.Faults.to_string s'.faults
             = Option.map Engine.Faults.to_string s.faults
          && Matrix.Registry.equal_data ~eps:1e-9 s'.data s.data
          || QCheck.Test.fail_reportf "seed %d: repro round-trip diverged" seed)

(* --- the checked-in corpus replays clean --- *)

let corpus_files () =
  if Sys.file_exists "corpus" && Sys.is_directory "corpus" then
    Sys.readdir "corpus" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort String.compare
  else []

let test_corpus_replay () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is not empty" true (files <> []);
  List.iter
    (fun f ->
      match Fuzz.Scenario.load (Filename.concat "corpus" f) with
      | Error e -> Alcotest.failf "%s: %s" f e
      | Ok s ->
          let checks = Fuzz.Harness.replay s in
          Alcotest.(check bool)
            (f ^ " ran at least one check")
            true (checks <> []);
          no_disagreement f checks)
    files

(* --- acceptance: the unsafe fuser is caught and shrunk small --- *)

let test_unsafe_fuser_caught_and_shrunk () =
  let rec find seed =
    if seed > 60 then
      Alcotest.fail "no unsafe-fusion disagreement in seeds 1..60"
    else
      let s = Fuzz.Scenario.generate ~profile:"quick" seed in
      match
        Fuzz.Harness.check_axis ~fuse:Fuzz.Lattice.Unsafe s Fuzz.Lattice.Fusion
      with
      | Fuzz.Harness.Disagree _ -> (seed, s)
      | Fuzz.Harness.Agree | Fuzz.Harness.Skip _ -> find (seed + 1)
  in
  let seed, s = find 1 in
  let shrunk =
    Fuzz.Harness.shrink ~fuse:Fuzz.Lattice.Unsafe ~axis:Fuzz.Lattice.Fusion s
  in
  (match
     Fuzz.Harness.check_axis ~fuse:Fuzz.Lattice.Unsafe shrunk
       Fuzz.Lattice.Fusion
   with
  | Fuzz.Harness.Disagree _ -> ()
  | Fuzz.Harness.Agree | Fuzz.Harness.Skip _ ->
      Alcotest.fail "shrunk scenario no longer disagrees");
  Alcotest.(check bool)
    (Printf.sprintf "seed %d shrinks to at most 5 statements (got %d)" seed
       (Fuzz.Harness.stmt_count shrunk))
    true
    (Fuzz.Harness.stmt_count shrunk <= 5)

(* --- a small campaign through the driver --- *)

let test_driver_campaign () =
  let r = Fuzz.Driver.run ~profile:"quick" ~seed:1 ~count:8 () in
  Alcotest.(check int) "eight scenarios" 8 r.Fuzz.Driver.r_scenarios;
  Alcotest.(check int) "all axes checked" (8 * List.length Fuzz.Lattice.all)
    r.Fuzz.Driver.r_checks;
  Alcotest.(check int) "no disagreements" 0
    (List.length r.Fuzz.Driver.r_disagreements);
  Alcotest.(check bool) "summary states the totals" true
    (Astring_contains.contains (Fuzz.Driver.summary r) "8 scenario(s)")

let suite =
  [
    ("corpus: every repro replays clean", `Quick, test_corpus_replay);
    ( "acceptance: unsafe fuser caught, shrunk to <= 5 statements",
      `Quick,
      test_unsafe_fuser_caught_and_shrunk );
    ("driver: quick campaign is clean", `Quick, test_driver_campaign);
    QCheck_alcotest.to_alcotest prop_quick_agree;
    QCheck_alcotest.to_alcotest prop_deep_agree;
    QCheck_alcotest.to_alcotest prop_repro_roundtrip;
  ]
