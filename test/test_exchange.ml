(* Data exchange: instances, the stratified chase, and the machine-checked
   equivalence theorem (Section 4.2). *)
open Matrix
open Helpers
module M = Mappings
module X = Exchange

let run_chase src reg =
  let { M.Generate.mapping; _ } = check_ok (M.Generate.of_source src) in
  let source = X.Instance.of_registry reg in
  match X.Chase.run mapping source with
  | Ok (j, stats) -> (j, stats)
  | Error msg -> Alcotest.failf "chase failed: %s" msg

(* --- instances --- *)

let test_instance_set_semantics () =
  let inst = X.Instance.create () in
  X.Instance.add_relation inst
    (Schema.make ~name:"A" ~dims:[ ("x", Domain.Int) ] ());
  Alcotest.(check bool) "new" true (X.Instance.insert inst "A" [| vi 1; vf 2. |]);
  Alcotest.(check bool) "dup" false (X.Instance.insert inst "A" [| vi 1; vf 2. |]);
  Alcotest.(check int) "one fact" 1 (X.Instance.cardinality inst "A")

let test_instance_roundtrip () =
  let reg = overview_registry () in
  let inst = X.Instance.of_registry reg in
  let pdr = Registry.find_exn reg "PDR" in
  Alcotest.(check int) "facts = tuples" (Cube.cardinality pdr)
    (X.Instance.cardinality inst "PDR");
  let back = X.Instance.cube_of_relation inst "PDR" in
  Alcotest.check cube_eq "roundtrip" pdr back

let test_instance_detects_conflict () =
  let inst = X.Instance.create () in
  X.Instance.add_relation inst
    (Schema.make ~name:"A" ~dims:[ ("x", Domain.Int) ] ());
  ignore (X.Instance.insert inst "A" [| vi 1; vf 2. |]);
  ignore (X.Instance.insert inst "A" [| vi 1; vf 3. |]);
  Alcotest.check_raises "functionality"
    (Cube.Functionality_violation { cube = "A"; key = key [ vi 1 ] })
    (fun () -> ignore (X.Instance.cube_of_relation inst "A"))

(* --- chase on single tgds --- *)

let test_chase_copy () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 2. ] ]);
  let j, _ = run_chase "cube A(x: int);\nB := A;\n" reg in
  Alcotest.check cube_eq "copied"
    (X.Instance.cube_of_relation j "A")
    (Cube.with_schema (Cube.schema (X.Instance.cube_of_relation j "A"))
       (X.Instance.cube_of_relation j "B"))

let test_chase_join_tgd () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 2. ]; [ vi 2; vf 3. ] ]);
  Registry.add reg Registry.Elementary
    (cube_of "B" [ ("x", Domain.Int) ] [ [ vi 2; vf 10. ] ]);
  let j, stats = run_chase "cube A(x: int);\ncube B(x: int);\nC := A * B;\n" reg in
  let c = X.Instance.cube_of_relation j "C" in
  Alcotest.(check int) "one joined tuple" 1 (Cube.cardinality c);
  Alcotest.check value "2*10=30?" (vf 30.) (Option.get (Cube.find c (key [ vi 2 ])));
  Alcotest.(check bool) "stats counted" true (stats.X.Chase.tuples_generated >= 1)

let test_chase_aggregation_tgd () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A"
       [ ("x", Domain.Int); ("y", Domain.String) ]
       [
         [ vi 1; vs "a"; vf 2. ];
         [ vi 1; vs "b"; vf 4. ];
         [ vi 2; vs "a"; vf 10. ];
       ]);
  let j, _ = run_chase "cube A(x: int, y: string);\nS := sum(A, group by x);\n" reg in
  let s = X.Instance.cube_of_relation j "S" in
  Alcotest.check value "sum x=1" (vf 6.) (Option.get (Cube.find s (key [ vi 1 ])));
  Alcotest.check value "sum x=2" (vf 10.) (Option.get (Cube.find s (key [ vi 2 ])))

let test_chase_dimension_function () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A"
       [ ("d", Domain.Date) ]
       [ [ vd 2020 1 5; vf 2. ]; [ vd 2020 2 5; vf 4. ]; [ vd 2020 7 1; vf 8. ] ]);
  let j, _ =
    run_chase "cube A(d: date);\nQ := avg(A, group by quarter(d) as q);\n" reg
  in
  let q = X.Instance.cube_of_relation j "Q" in
  Alcotest.check value "q1 avg" (vf 3.) (Option.get (Cube.find q (key [ vq 2020 1 ])));
  Alcotest.check value "q3 avg" (vf 8.) (Option.get (Cube.find q (key [ vq 2020 3 ])))

let test_chase_table_fn_tgd () =
  let reg = Registry.create () in
  let rows =
    List.init 16 (fun i ->
        [
          Value.Period (Calendar.Period.make Calendar.Quarter ((2019 * 4) + i));
          vf (float_of_int (i + 1));
        ])
  in
  Registry.add reg Registry.Elementary (cube_of "A" [ ("t", Domain.Period (Some Calendar.Quarter)) ] rows);
  let j, _ = run_chase "cube A(t: quarter);\nB := cumsum(A);\n" reg in
  let b = X.Instance.cube_of_relation j "B" in
  Alcotest.(check int) "all tuples" 16 (Cube.cardinality b);
  Alcotest.check value "last cumsum" (vf 136.)
    (Option.get
       (Cube.find b
          (key [ Value.Period (Calendar.Period.make Calendar.Quarter ((2019 * 4) + 15)) ])))

let test_chase_division_hole () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 5. ]; [ vi 2; vf 0. ] ]);
  let j, _ = run_chase "cube A(x: int);\nB := 1 / A;\n" reg in
  Alcotest.(check int) "hole at zero" 1
    (Cube.cardinality (X.Instance.cube_of_relation j "B"))

let test_chase_egd_detects_violation () =
  (* Force an egd violation by chasing a handcrafted mapping whose tgd
     projects away a dimension without aggregating. *)
  let schema_a = Schema.make ~name:"A" ~dims:[ ("x", Domain.Int); ("y", Domain.Int) ] () in
  let schema_b = Schema.make ~name:"B" ~dims:[ ("x", Domain.Int) ] () in
  let bad_tgd =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom "A" [ M.Term.Var "x"; M.Term.Var "y"; M.Term.Var "m" ] ];
        rhs = M.Tgd.atom "B" [ M.Term.Var "x"; M.Term.Var "m" ];
      }
  in
  let mapping =
    {
      M.Mapping.source = [ schema_a ];
      target = [ schema_a; schema_b ];
      st_tgds = [];
      t_tgds = [ bad_tgd ];
      egds = [ M.Egd.of_schema schema_b ];
    }
  in
  let inst = X.Instance.create () in
  X.Instance.add_relation inst schema_a;
  ignore (X.Instance.insert inst "A" [| vi 1; vi 1; vf 10. |]);
  ignore (X.Instance.insert inst "A" [| vi 1; vi 2; vf 20. |]);
  match X.Chase.run mapping inst with
  | Error msg ->
      Alcotest.(check bool) "mentions egd" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected egd violation"

let test_chase_empty_source () =
  let reg = Registry.create () in
  let j, _ = run_chase "cube A(x: int);\nB := A + 1;\nC := sum(B, group by x);\n" reg in
  Alcotest.(check int) "no facts" 0 (X.Instance.cardinality j "C")

(* --- incremental secondary indexes --- *)

let test_instance_incremental_indexes () =
  let inst = X.Instance.create () in
  X.Instance.add_relation inst
    (Schema.make ~name:"A" ~dims:[ ("x", Domain.Int); ("y", Domain.String) ] ());
  ignore (X.Instance.insert inst "A" [| vi 1; vs "a"; vf 10. |]);
  ignore (X.Instance.insert inst "A" [| vi 1; vs "b"; vf 20. |]);
  (* built from the facts already present *)
  X.Instance.ensure_index inst "A" [ 0 ];
  Alcotest.(check int) "initial bucket" 2
    (List.length (X.Instance.lookup_index inst "A" [ 0 ] [ vi 1 ]));
  (* maintained on insert... *)
  ignore (X.Instance.insert inst "A" [| vi 1; vs "c"; vf 30. |]);
  ignore (X.Instance.insert inst "A" [| vi 2; vs "a"; vf 40. |]);
  Alcotest.(check int) "after insert" 3
    (List.length (X.Instance.lookup_index inst "A" [ 0 ] [ vi 1 ]));
  (* ...and on remove, dropping emptied buckets *)
  ignore (X.Instance.remove inst "A" [| vi 1; vs "b"; vf 20. |]);
  ignore (X.Instance.remove inst "A" [| vi 2; vs "a"; vf 40. |]);
  Alcotest.(check int) "after remove" 2
    (List.length (X.Instance.lookup_index inst "A" [ 0 ] [ vi 1 ]));
  Alcotest.(check int) "emptied bucket" 0
    (List.length (X.Instance.lookup_index inst "A" [ 0 ] [ vi 2 ]));
  (* a second index on another position set coexists *)
  X.Instance.ensure_index inst "A" [ 1 ];
  Alcotest.(check (list (list int))) "indexed positions" [ [ 0 ]; [ 1 ] ]
    (X.Instance.indexed_positions inst "A");
  (* every index agrees with a full scan at all times *)
  let scan_count v =
    List.length
      (List.filter (fun f -> f.(1) = v) (X.Instance.facts inst "A"))
  in
  Alcotest.(check int) "index == scan" (scan_count (vs "a"))
    (List.length (X.Instance.lookup_index inst "A" [ 1 ] [ vs "a" ]))

(* --- naive vs semi-naive evaluation --- *)

let mapping_of_source src =
  let { M.Generate.mapping; _ } = check_ok (M.Generate.of_source src) in
  mapping

let facts_by_relation mapping j =
  List.map
    (fun schema ->
      let name = schema.Schema.name in
      (name, List.map Tuple.of_array (X.Instance.facts j name)))
    mapping.M.Mapping.target

let check_same_solution src reg =
  let mapping = mapping_of_source src in
  let source = X.Instance.of_registry reg in
  let run mode =
    match X.Chase.run ~mode mapping source with
    | Ok r -> r
    | Error msg -> Alcotest.failf "chase (%s): %s"
        (match mode with X.Chase.Naive -> "naive" | _ -> "semi-naive")
        msg
  in
  let naive_j, naive_stats = run X.Chase.Naive in
  let semi_j, semi_stats = run X.Chase.Semi_naive in
  List.iter2
    (fun (name, naive_facts) (_, semi_facts) ->
      if
        not
          (List.length naive_facts = List.length semi_facts
          && List.for_all2 Tuple.equal naive_facts semi_facts)
      then
        Alcotest.failf "fact sets differ on %s (naive %d, semi-naive %d)" name
          (List.length naive_facts) (List.length semi_facts))
    (facts_by_relation mapping naive_j)
    (facts_by_relation mapping semi_j);
  (naive_stats, semi_stats)

let test_chase_modes_agree_overview () =
  let naive_stats, semi_stats =
    check_same_solution overview_program (overview_registry ())
  in
  (* the Jacobi baseline needs ~depth+2 rounds; the stratified pass is
     one productive round per stratum *)
  Alcotest.(check bool) "naive iterates" true (naive_stats.X.Chase.rounds > 2);
  Alcotest.(check bool) "match-count win >= 5x" true
    (naive_stats.X.Chase.matches_examined
    >= 5 * semi_stats.X.Chase.matches_examined)

let prop_semi_naive_equals_naive =
  QCheck.Test.make ~count:40
    ~name:"semi-naive chase == naive chase on random programs" Gen.arb_seed
    (fun seed ->
      let src, reg = Gen.program_of_seed seed in
      ignore (check_same_solution src reg : X.Chase.stats * X.Chase.stats);
      true)

(* --- the equivalence theorem --- *)

let test_equivalence_overview () =
  let reg = overview_registry () in
  let checked = load_overview () in
  match X.Verify.equivalent checked reg with
  | Ok stats ->
      Alcotest.(check bool) "work done" true (stats.X.Chase.tuples_generated > 0)
  | Error msg -> Alcotest.failf "not equivalent: %s" msg

let test_equivalence_overview_fused () =
  (* Fused mapping produces the same final relations as the interpreter. *)
  let reg = overview_registry () in
  let checked = load_overview () in
  let { M.Generate.mapping; _ } = check_ok (M.Generate.of_checked checked) in
  let fused = M.Fuse.mapping mapping in
  let j, _ =
    match X.Chase.run fused (X.Instance.of_registry reg) with
    | Ok r -> r
    | Error m -> Alcotest.failf "chase: %s" m
  in
  let reference = check_ok (Exl.Interp.run checked reg) in
  List.iter
    (fun name ->
      Alcotest.check cube_eq name
        (Registry.find_exn reference name)
        (X.Instance.cube_of_relation j name))
    [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]

let prop_chase_equals_interp =
  QCheck.Test.make ~count:60 ~name:"chase == interpreter on random programs"
    Gen.arb_seed (fun seed ->
      let src, reg = Gen.program_of_seed seed in
      match Exl.Program.load src with
      | Error e ->
          QCheck.Test.fail_reportf "generated program does not check: %s\n%s"
            (Exl.Errors.to_string e) src
      | Ok checked -> (
          match X.Verify.equivalent checked reg with
          | Ok _ -> true
          | Error msg ->
              QCheck.Test.fail_reportf "mismatch on\n%s\n%s" src msg))

let suite =
  [
    ("instance: set semantics", `Quick, test_instance_set_semantics);
    ("instance: registry roundtrip", `Quick, test_instance_roundtrip);
    ("instance: conflict detection", `Quick, test_instance_detects_conflict);
    ("chase: copy tgd", `Quick, test_chase_copy);
    ("chase: join tgd", `Quick, test_chase_join_tgd);
    ("chase: aggregation tgd", `Quick, test_chase_aggregation_tgd);
    ("chase: dimension function", `Quick, test_chase_dimension_function);
    ("chase: table function tgd", `Quick, test_chase_table_fn_tgd);
    ("chase: division hole", `Quick, test_chase_division_hole);
    ("chase: egd violation detected", `Quick, test_chase_egd_detects_violation);
    ("chase: empty source", `Quick, test_chase_empty_source);
    ("instance: incremental indexes", `Quick, test_instance_incremental_indexes);
    ("chase: modes agree on overview", `Quick, test_chase_modes_agree_overview);
    QCheck_alcotest.to_alcotest prop_semi_naive_equals_naive;
    ("verify: overview equivalence", `Quick, test_equivalence_overview);
    ("verify: fused equivalence", `Quick, test_equivalence_overview_fused);
    QCheck_alcotest.to_alcotest prop_chase_equals_interp;
  ]
