(* exl-opt: containment decisions, certified rewrites, the fusion
   regression the cross-check exists for, and the end-to-end
   semantics-preservation property. *)
open Matrix
module M = Mappings
module X = Exchange
module A = Analysis
module C = A.Containment
module O = A.Optimize
module Term = M.Term
module Tgd = M.Tgd
open Helpers

let var x = Term.Var x
let atom rel args = Tgd.atom rel args
let tl lhs rhs = Tgd.Tuple_level { lhs; rhs }
let quarter = Domain.Period (Some Calendar.Quarter)

let ok_s = function
  | Ok v -> v
  | Error (e : string) -> Alcotest.failf "unexpected error: %s" e

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- containment decisions ------------------------------------------- *)

let test_subsumes () =
  let general = tl [ atom "A" [ var "q"; var "m" ] ] (atom "B" [ var "q"; var "m" ]) in
  let specific =
    tl
      [ atom "A" [ var "q"; var "m" ]; atom "C" [ var "q"; var "x" ] ]
      (atom "B" [ var "q"; var "m" ])
  in
  Alcotest.(check bool) "extra-atom tgd is subsumed" true
    (C.subsumes ~general ~specific <> None);
  Alcotest.(check bool) "not the other way around" true
    (C.subsumes ~general:specific ~specific:general = None);
  (* alpha-renaming: mutual subsumption *)
  let renamed = tl [ atom "A" [ var "t"; var "y" ] ] (atom "B" [ var "t"; var "y" ]) in
  Alcotest.(check bool) "alpha-equivalent" true (C.equivalent general renamed <> None);
  (* shift sugar on one side must not block the match *)
  let sugar =
    tl [ atom "A" [ Term.Shifted (var "q", 1); var "m" ] ] (atom "B" [ var "q"; var "m" ])
  in
  let plain =
    tl
      [ atom "A" [ Term.Binapp (Ops.Binop.Add, var "q", Term.Const (Value.Float 1.)); var "m" ] ]
      (atom "B" [ var "q"; var "m" ])
  in
  Alcotest.(check bool) "shift sugar normalized" true (C.equivalent sugar plain <> None)

let test_redundant_atom () =
  let head = atom "B" [ var "q"; var "m" ] in
  let a1 = atom "A" [ var "q"; var "m" ] in
  let a2 = atom "A" [ var "q2"; var "m2" ] in
  (match C.redundant_atom ~head ~body:[ a1; a2 ] a2 with
  | Some (onto, _) -> Alcotest.(check string) "folds onto the used atom" "A" onto.Tgd.rel
  | None -> Alcotest.fail "unused atom should fold");
  (* not redundant when the head uses its variables *)
  let head2 = atom "B" [ var "q"; Term.Binapp (Ops.Binop.Add, var "m", var "m2") ] in
  Alcotest.(check bool) "head use blocks folding" true
    (C.redundant_atom ~head:head2 ~body:[ a1; a2 ] a2 = None)

let test_mergeable_atoms () =
  let a1 = atom "A" [ var "q"; var "m1" ] in
  let a2 = atom "A" [ var "q"; var "m2" ] in
  (match C.mergeable_atoms ~body:[ a1; a2 ] with
  | Some (_, _, dropped_var, kept_var) ->
      Alcotest.(check (list string)) "measure vars merged" [ "m1"; "m2" ]
        (List.sort compare [ dropped_var; kept_var ])
  | None -> Alcotest.fail "same-grid atoms should merge");
  (* different dimension terms: no egd justification *)
  let a3 = atom "A" [ Term.Shifted (var "q", 1); var "m2" ] in
  Alcotest.(check bool) "shifted grid does not merge" true
    (C.mergeable_atoms ~body:[ a1; a3 ] = None)

let test_fd_determines () =
  (* the paper's tgd (5): measure determined by the head dimension *)
  let body =
    [
      atom "GDPT" [ var "q"; var "m1" ];
      atom "GDPT" [ Term.Shifted (var "q", -1); var "m2" ];
    ]
  in
  let head = atom "PCHNG" [ var "q"; Term.Binapp (Ops.Binop.Sub, var "m1", var "m2") ] in
  (match C.fd_determines ~body ~head with
  | Some chain -> Alcotest.(check bool) "chain nonempty" true (chain <> [])
  | None -> Alcotest.fail "head dims determine the measure");
  (* a body atom whose dims are not reachable leaves its measure free *)
  let loose = [ atom "A" [ var "q2"; var "m" ] ] in
  Alcotest.(check bool) "unreachable dims: not determined" true
    (C.fd_determines ~body:loose ~head:(atom "B" [ var "q"; var "m" ]) = None)

let test_is_identity () =
  let id = tl [ atom "A" [ var "q"; var "m" ] ] (atom "B" [ var "q"; var "m" ]) in
  Alcotest.(check bool) "plain copy" true (C.is_identity id);
  let selection =
    tl
      [ atom "A" [ var "q"; Term.Const (Value.String "x"); var "m" ] ]
      (atom "B" [ var "q"; Term.Const (Value.String "x"); var "m" ])
  in
  Alcotest.(check bool) "constant selection is not a copy" false (C.is_identity selection);
  let diagonal =
    tl [ atom "A" [ var "q"; var "q"; var "m" ] ] (atom "B" [ var "q"; var "q"; var "m" ])
  in
  Alcotest.(check bool) "repeated variable is not a copy" false (C.is_identity diagonal);
  let shifted =
    tl [ atom "A" [ var "q"; var "m" ] ] (atom "B" [ Term.Shifted (var "q", 1); var "m" ])
  in
  Alcotest.(check bool) "shift is not a copy" false (C.is_identity shifted)

(* --- hand-built mappings for the certified rewrites ------------------- *)

let schema name dims = Schema.make ~name ~dims ()

let hand_mapping ~t_tgds ~targets =
  let a = schema "A" [ ("q", quarter); ("r", Domain.String) ] in
  {
    M.Mapping.source = [ a ];
    target = a :: targets;
    st_tgds = [];
    t_tgds;
    egds = M.Egd.of_schema a :: List.map M.Egd.of_schema targets;
  }

let instance_a () =
  let inst = X.Instance.create () in
  X.Instance.add_relation inst (schema "A" [ ("q", quarter); ("r", Domain.String) ]);
  List.iter
    (fun i ->
      List.iteri
        (fun j r ->
          ignore
            (X.Instance.insert inst "A"
               [|
                 Value.Period (Calendar.Period.quarter 2020 i);
                 Value.String r;
                 Value.Float (10. +. (3.1 *. float_of_int ((4 * i) + j)));
               |]))
        [ "north"; "south" ])
    [ 1; 2; 3; 4 ];
  inst

let chase_rel m inst rel =
  match X.Chase.run m inst with
  | Ok (j, stats) -> (X.Instance.facts j rel, stats)
  | Error e -> Alcotest.failf "chase: %s" e

let test_prune_subsumed () =
  let b = schema "B" [ ("q", quarter); ("r", Domain.String) ] in
  let keep =
    tl [ atom "A" [ var "q"; var "r"; var "m" ] ] (atom "B" [ var "q"; var "r"; var "m" ])
  in
  let redundant =
    tl
      [ atom "A" [ var "q"; var "r"; var "m" ]; atom "A" [ var "q2"; var "r2"; var "m2" ] ]
      (atom "B" [ var "q"; var "r"; var "m" ])
  in
  let m = hand_mapping ~t_tgds:[ keep; redundant ] ~targets:[ b ] in
  let report = O.run ~fuse:false m in
  Alcotest.(check int) "one tgd left" 1 (List.length report.O.optimized.M.Mapping.t_tgds);
  Alcotest.(check bool) "I301 emitted" true
    (List.exists (fun (a : O.action) -> a.O.code = "I301") report.O.actions);
  Alcotest.(check (result unit string)) "certificates verify" (Ok ()) (O.verify report);
  let before, _ = chase_rel m (instance_a ()) "B" in
  let after, _ = chase_rel report.O.optimized (instance_a ()) "B" in
  Alcotest.(check int) "same facts" (List.length before) (List.length after)

let test_minimize_and_merge () =
  let b = schema "B" [ ("q", quarter); ("r", Domain.String) ] in
  (* duplicate functional atoms: A's egd forces m1 = m2 *)
  let doubled =
    tl
      [ atom "A" [ var "q"; var "r"; var "m1" ]; atom "A" [ var "q"; var "r"; var "m2" ] ]
      (atom "B" [ var "q"; var "r"; Term.Binapp (Ops.Binop.Add, var "m1", var "m2") ])
  in
  let m = hand_mapping ~t_tgds:[ doubled ] ~targets:[ b ] in
  let report = O.run ~fuse:false m in
  Alcotest.(check bool) "I303 emitted" true
    (List.exists (fun (a : O.action) -> a.O.code = "I303") report.O.actions);
  (match report.O.optimized.M.Mapping.t_tgds with
  | [ Tgd.Tuple_level { lhs = [ _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "body should shrink to one atom");
  Alcotest.(check (result unit string)) "certificates verify" (Ok ()) (O.verify report);
  let before, _ = chase_rel m (instance_a ()) "B" in
  let after, _ = chase_rel report.O.optimized (instance_a ()) "B" in
  Alcotest.(check int) "same fact count" (List.length before) (List.length after);
  List.iter2
    (fun f1 f2 -> Alcotest.(check bool) "same fact" true (f1 = f2))
    before after

(* --- the fusion regression: aggregation over a shifted operand -------- *)

let shifted_agg_source =
  {|
cube A(q: quarter, r: string);
S := sum(shift(A, 1), group by q);
|}

let shifted_agg_mapping () =
  let checked = Exl.Program.load_exn shifted_agg_source in
  let { M.Generate.mapping; _ } = check_ok (M.Generate.of_checked checked) in
  let producer = Option.get (M.Mapping.tgd_for mapping "S__1") in
  let consumer = Option.get (M.Mapping.tgd_for mapping "S") in
  (mapping, producer, consumer)

let replace_pair (m : M.Mapping.t) ~producer ~consumer fused =
  {
    m with
    M.Mapping.t_tgds =
      List.filter_map
        (fun t ->
          if t == producer then None
          else if t == consumer then Some fused
          else Some t)
        m.M.Mapping.t_tgds;
    target = List.filter (fun (s : Schema.t) -> s.Schema.name <> "S__1") m.M.Mapping.target;
    egds = List.filter (fun (e : M.Egd.t) -> e.M.Egd.relation <> "S__1") m.M.Mapping.egds;
  }

let test_fuse_step_agg_rewrites_keys () =
  let _, producer, consumer = shifted_agg_mapping () in
  match M.Fuse.fuse_step_agg ~producer ~consumer with
  | None -> Alcotest.fail "shifted producer should fuse into the aggregation"
  | Some (Tgd.Aggregation { source; group_by; _ }) ->
      Alcotest.(check string) "reads the base relation" "A" source.Tgd.rel;
      (* the group-by key must be shifted, not a plain variable *)
      Alcotest.(check bool) "group-by key rewritten" true
        (List.for_all (fun t -> not (Term.is_var t)) group_by)
  | Some _ -> Alcotest.fail "fusion of an aggregation should stay an aggregation"

let test_naive_agg_fusion_changes_semantics () =
  let m, producer, consumer = shifted_agg_mapping () in
  let correct = Option.get (M.Fuse.fuse_step_agg ~producer ~consumer) in
  (* the historical bug this PR fixes: substitute the source atom
     without rewriting the group-by keys through the unifier *)
  let naive =
    match (producer, consumer) with
    | Tgd.Tuple_level { lhs = [ p_atom ]; _ }, Tgd.Aggregation { aggr; target; _ } ->
        let q = match p_atom.Tgd.args with t :: _ -> t | [] -> assert false in
        let measure =
          match List.rev p_atom.Tgd.args with
          | Term.Var mv :: _ -> mv
          | _ -> assert false
        in
        Tgd.Aggregation { source = p_atom; group_by = [ q ]; aggr; measure; target }
    | _ -> Alcotest.fail "unexpected tgd shapes"
  in
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A"
       [ ("q", quarter); ("r", Domain.String) ]
       [
         [ vq 2020 1; vs "north"; vf 1.0 ];
         [ vq 2020 1; vs "south"; vf 2.0 ];
         [ vq 2020 2; vs "north"; vf 40.0 ];
         [ vq 2020 2; vs "south"; vf 50.0 ];
       ]);
  let run m' =
    match X.Chase.run m' (X.Instance.of_registry reg) with
    | Ok (j, _) -> X.Instance.facts j "S"
    | Error e -> Alcotest.failf "chase: %s" e
  in
  let reference = run m in
  let fused_facts = run (replace_pair m ~producer ~consumer correct) in
  let naive_facts = run (replace_pair m ~producer ~consumer naive) in
  Alcotest.(check bool) "correct fusion preserves S" true (reference = fused_facts);
  Alcotest.(check bool) "naive fusion changes S" true (reference <> naive_facts);
  (* and the verified fusion driver keeps only rewrites the
     equivalence checker accepts *)
  let verify ~before ~after =
    match O.equivalent_on_critical before after with Ok _ -> true | Error _ -> false
  in
  let safe = M.Fuse.mapping ~verify m in
  Alcotest.(check bool) "safe fusion ran to completion" true
    (List.length safe.M.Mapping.t_tgds <= List.length m.M.Mapping.t_tgds)

(* --- the overview pipeline end to end -------------------------------- *)

let overview_mapping () =
  let checked = load_overview () in
  let { M.Generate.mapping; _ } = check_ok (M.Generate.of_checked checked) in
  mapping

let test_optimize_overview () =
  let m = overview_mapping () in
  let report = O.run m in
  Alcotest.(check bool) "tgds eliminated" true
    (List.length report.O.optimized.M.Mapping.t_tgds < List.length m.M.Mapping.t_tgds);
  Alcotest.(check bool) "fusion certificates present" true
    (List.exists (fun (a : O.action) -> a.O.code = "I304") report.O.actions);
  Alcotest.(check bool) "duplicate-atom merge fired on the PCHNG chain" true
    (List.exists (fun (a : O.action) -> a.O.code = "I303") report.O.actions);
  Alcotest.(check bool) "cost estimate improves" true (report.O.est_after < report.O.est_before);
  Alcotest.(check (result unit string)) "all certificates verify" (Ok ()) (O.verify report);
  (* the optimized mapping computes the same cubes on real data *)
  let reg = overview_registry () in
  let j1 =
    match X.Chase.run m (X.Instance.of_registry reg) with
    | Ok (j, _) -> j
    | Error e -> Alcotest.failf "chase original: %s" e
  in
  let j2, stats2 =
    match X.Chase.run report.O.optimized (X.Instance.of_registry reg) with
    | Ok r -> r
    | Error e -> Alcotest.failf "chase optimized: %s" e
  in
  List.iter
    (fun name ->
      Alcotest.check cube_eq name
        (X.Instance.cube_of_relation j1 name)
        (X.Instance.cube_of_relation j2 name))
    [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ];
  (* the laconic effect: the optimized chase emits no temporary facts *)
  Alcotest.(check int) "no non-core facts" 0 stats2.X.Chase.nulls_created

let test_nulls_created_counts_temps () =
  let m = overview_mapping () in
  let _, stats = chase_rel m (X.Instance.of_registry (overview_registry ())) "PCHNG" in
  Alcotest.(check bool) "unoptimized chase pads temporaries" true
    (stats.X.Chase.nulls_created > 0)

let test_tampered_certificate_rejected () =
  let report = O.run (overview_mapping ()) in
  let tampered =
    {
      report with
      O.actions =
        List.map
          (fun (a : O.action) ->
            match a.O.certificate with
            | O.Determination { chain } when chain <> [] ->
                { a with O.certificate = O.Determination { chain = [ "bogus" ] } }
            | _ -> a)
          report.O.actions;
    }
  in
  Alcotest.(check bool) "bogus determination chain rejected" true
    (Result.is_error (O.verify tampered))

let test_optimizer_report_json () =
  let report = O.run (overview_mapping ()) in
  let json = O.report_to_json report in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains json needle))
    [ {|"actions":[|}; {|"kind":"fusion_equivalence"|}; {|"est_matches_before"|}; {|"tgds_after"|} ]

(* --- engine wiring ---------------------------------------------------- *)

let test_engine_optimize_flag () =
  let run_with optimize =
    let config = { Engine.Exlengine.default_config with optimize } in
    let t = Engine.Exlengine.create ~config () in
    ok_s (Engine.Exlengine.register_program t ~name:"overview" overview_program);
    let reg = overview_registry () in
    List.iter
      (fun name -> ok_s (Engine.Exlengine.load_elementary t (Registry.find_exn reg name)))
      [ "PDR"; "RGDPPC" ];
    ignore (ok_s (Engine.Exlengine.recompute t));
    match Engine.Exlengine.cube t "PCHNG" with
    | Some c -> c
    | None -> Alcotest.fail "PCHNG not recomputed"
  in
  Alcotest.check cube_eq "same PCHNG with and without the optimizer" (run_with false)
    (run_with true)

(* --- docs drift -------------------------------------------------------- *)

let is_code s =
  String.length s = 4
  && (match s.[0] with 'E' | 'W' | 'I' -> true | _ -> false)
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 3)

let test_diagnostics_docs_drift () =
  let doc =
    (* cwd is _build/default/test under [dune runtest] but the project
       root under [dune exec test/main.exe] (the CI drills) *)
    let path =
      List.find Sys.file_exists
        [ "../docs/DIAGNOSTICS.md"; "docs/DIAGNOSTICS.md" ]
    in
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* every documented code (a `| Wxxx |` table row) is in the catalogue,
     and every catalogue code has a table row *)
  let documented =
    String.split_on_char '\n' doc
    |> List.filter_map (fun line ->
           match String.split_on_char '|' line with
           | "" :: cell :: _ ->
               let c = String.trim cell in
               if is_code c then Some c else None
           | _ -> None)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string))
    "docs/DIAGNOSTICS.md and Diagnostic.catalogue agree" documented
    (List.sort_uniq compare A.Diagnostic.known_codes);
  (* and every code has a one-line description for `lint --explain` *)
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " has a description") true
        (A.Diagnostic.description c <> None))
    A.Diagnostic.known_codes

(* --- the property: chase(optimize m) == chase m ----------------------- *)

let qcheck_count =
  Helpers.qcheck_count ~var:"EXL_OPT_QCHECK_COUNT" ~default:30

let prop_optimize_preserves_chase =
  QCheck.Test.make ~count:qcheck_count
    ~name:"chase(optimize m) == chase m on random programs" Gen.arb_seed (fun seed ->
      let src, reg = Gen.program_of_seed seed in
      match Exl.Program.load src with
      | Error e ->
          QCheck.Test.fail_reportf "generated program does not check: %s\n%s"
            (Exl.Errors.to_string e) src
      | Ok checked -> (
          let { M.Generate.mapping; _ } = check_ok (M.Generate.of_checked checked) in
          let report = O.run mapping in
          (match O.verify report with
          | Ok () -> ()
          | Error msg -> QCheck.Test.fail_reportf "certificate rejected: %s\n%s" msg src);
          match
            ( X.Chase.run mapping (X.Instance.of_registry reg),
              X.Chase.run report.O.optimized (X.Instance.of_registry reg) )
          with
          | Ok (j1, _), Ok (j2, _) ->
              List.iter
                (fun (s : Schema.t) ->
                  let name = s.Schema.name in
                  if
                    not
                      (Cube.equal_data ~eps:1e-7
                         (X.Instance.cube_of_relation j1 name)
                         (X.Instance.cube_of_relation j2 name))
                  then QCheck.Test.fail_reportf "relation %s differs on\n%s" name src)
                report.O.optimized.M.Mapping.target;
              true
          | Error e, _ | _, Error e ->
              QCheck.Test.fail_reportf "chase failed: %s\n%s" e src))

let suite =
  [
    ("containment: subsumption", `Quick, test_subsumes);
    ("containment: redundant atom", `Quick, test_redundant_atom);
    ("containment: egd merge", `Quick, test_mergeable_atoms);
    ("containment: fd chase", `Quick, test_fd_determines);
    ("containment: identity", `Quick, test_is_identity);
    ("optimize: prune subsumed (I301)", `Quick, test_prune_subsumed);
    ("optimize: minimize + merge (I303)", `Quick, test_minimize_and_merge);
    ("fuse: agg step rewrites keys", `Quick, test_fuse_step_agg_rewrites_keys);
    ("fuse: naive agg fusion is wrong", `Quick, test_naive_agg_fusion_changes_semantics);
    ("optimize: overview end to end", `Quick, test_optimize_overview);
    ("chase: nulls_created counts temps", `Quick, test_nulls_created_counts_temps);
    ("optimize: tampered certificate rejected", `Quick, test_tampered_certificate_rejected);
    ("optimize: json report", `Quick, test_optimizer_report_json);
    ("engine: optimize flag A/B", `Quick, test_engine_optimize_flag);
    ("docs: diagnostics catalogue drift", `Quick, test_diagnostics_docs_drift);
    QCheck_alcotest.to_alcotest prop_optimize_preserves_chase;
  ]
