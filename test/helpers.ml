(* Shared helpers for the test suites. *)
open Matrix

let value = Alcotest.testable Value.pp Value.equal
let date = Alcotest.testable Calendar.Date.pp Calendar.Date.equal
let period = Alcotest.testable Calendar.Period.pp Calendar.Period.equal

let cube_eq =
  Alcotest.testable Cube.pp (fun a b -> Cube.equal_data ~eps:1e-7 a b)

let floats = Alcotest.float 1e-7

let float_array =
  Alcotest.testable
    (Fmt.Dump.array Fmt.float)
    (fun a b ->
      Array.length a = Array.length b
      && Array.for_all2
           (fun x y ->
             (Float.is_nan x && Float.is_nan y) || Float.abs (x -. y) < 1e-7)
           a b)

let vi i = Value.Int i
let vf f = Value.Float f
let vs s = Value.String s
let vq y q = Value.Period (Calendar.Period.quarter y q)
let vm y m = Value.Period (Calendar.Period.month y m)
let vd y m d = Value.Date (Calendar.Date.make ~year:y ~month:m ~day:d)
let key vs = Tuple.of_list vs

let cube_of name dims rows =
  let schema = Schema.make ~name ~dims () in
  Cube.of_rows schema rows

(* A registry with the paper's overview cubes: PDR (population by day and
   region) and RGDPPC (regional GDP per capita by quarter and region). *)
let overview_registry ?(years = 2) ?(regions = [ "north"; "south" ]) () =
  let reg = Registry.create () in
  let pdr_schema =
    Schema.make ~name:"PDR"
      ~dims:[ ("d", Domain.Date); ("r", Domain.String) ]
      ()
  in
  let pdr = Cube.create pdr_schema in
  let rgdppc_schema =
    Schema.make ~name:"RGDPPC"
      ~dims:[ ("q", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
      ()
  in
  let rgdppc = Cube.create rgdppc_schema in
  List.iteri
    (fun ri region ->
      (* Daily population: slow linear growth, different base per region. *)
      let base = 1000. +. (float_of_int ri *. 500.) in
      for year = 2020 to 2020 + years - 1 do
        for doy = 0 to 364 do
          let d =
            Calendar.Date.add_days
              (Calendar.Date.make ~year ~month:1 ~day:1)
              doy
          in
          let day_index =
            float_of_int (((year - 2020) * 365) + doy)
          in
          Cube.set pdr
            (key [ Value.Date d; vs region ])
            (vf (base +. (0.1 *. day_index)))
        done;
        (* Quarterly GDP per capita with seasonality. *)
        for q = 1 to 4 do
          let t = float_of_int (((year - 2020) * 4) + q - 1) in
          let seasonal = 5. *. sin (Float.pi /. 2. *. float_of_int (q - 1)) in
          Cube.set rgdppc
            (key [ vq year q; vs region ])
            (vf (30. +. (0.5 *. t) +. seasonal +. (2. *. float_of_int ri)))
        done
      done)
    regions;
  Registry.add reg Registry.Elementary pdr;
  Registry.add reg Registry.Elementary rgdppc;
  reg

(* The paper's Section 2 worked example, in concrete EXL syntax.
   Statement (5) is the fused form with four operators. *)
let overview_program =
  {|
cube PDR(d: date, r: string);
cube RGDPPC(q: quarter, r: string);

PQR   := avg(PDR, group by quarter(d) as q, r);
RGDP  := RGDPPC * PQR;
GDP   := sum(RGDP, group by q);
GDPT  := stl_t(GDP);
PCHNG := 100 * (GDPT - shift(GDPT, 1)) / GDPT;
|}

let load_overview () = Exl.Program.load_exn overview_program

let check_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Exl.Errors.to_string e)

let check_err what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error (e : Exl.Errors.t) -> e.Exl.Errors.msg

(* Unified qcheck budget reader (docs/TESTING.md): each property suite
   reads its own variable, every variable falls back to the shared
   EXL_QCHECK_COUNT, then to the suite's default.  Non-numeric and
   non-positive values are ignored. *)
let qcheck_count ~var ~default =
  let read v =
    match Option.bind (Sys.getenv_opt v) int_of_string_opt with
    | Some n when n > 0 -> Some n
    | _ -> None
  in
  match read var with
  | Some n -> n
  | None -> Option.value ~default (read "EXL_QCHECK_COUNT")
