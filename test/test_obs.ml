(* Tests for the exl-obs telemetry library (lib/obs): the monotonic
   clock, the metrics registry, span nesting and parent links, the
   disabled no-op path, the exporters (re-read through Obs.Json), and
   end-to-end provenance through an engine run. *)

open Matrix
open Helpers

let test_clock_monotonic () =
  let prev = ref (Obs.Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now () in
    Alcotest.(check bool) "never goes backwards" true (t >= !prev);
    prev := t
  done;
  Alcotest.(check bool) "elapsed non-negative" true
    (Obs.Clock.elapsed (Obs.Clock.now ()) >= 0.)

let test_metrics_counters () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.count m "a" 1;
  Obs.Metrics.count m "a" 4;
  Obs.Metrics.count m "b" 2;
  Alcotest.(check int) "accumulates" 5 (Obs.Metrics.counter_value m "a");
  Alcotest.(check int) "untouched is 0" 0 (Obs.Metrics.counter_value m "zzz");
  Alcotest.(check (list (pair string int)))
    "sorted snapshot"
    [ ("a", 5); ("b", 2) ]
    (Obs.Metrics.counters m)

let test_metrics_gauges_and_histograms () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.gauge m "depth" 3.;
  Obs.Metrics.gauge m "depth" 7.;
  Alcotest.(check (list (pair string (float 0.))))
    "gauge keeps latest" [ ("depth", 7.) ] (Obs.Metrics.gauges m);
  Obs.Metrics.observe ~buckets:[| 1.; 10. |] m "h" 0.5;
  Obs.Metrics.observe ~buckets:[| 1.; 10. |] m "h" 5.;
  Obs.Metrics.observe ~buckets:[| 1.; 10. |] m "h" 50.;
  match Obs.Metrics.histograms m with
  | [ ("h", h) ] ->
      Alcotest.(check (array (float 0.))) "bounds kept" [| 1.; 10. |] h.buckets;
      Alcotest.(check (array int)) "one per bucket + overflow" [| 1; 1; 1 |]
        h.Obs.Metrics.counts;
      Alcotest.(check (float 1e-9)) "sum" 55.5 h.Obs.Metrics.sum;
      Alcotest.(check int) "total" 3 h.Obs.Metrics.total
  | other -> Alcotest.failf "expected one histogram, got %d" (List.length other)

let test_disabled_is_noop () =
  Alcotest.(check bool) "no ambient collector" false (Obs.enabled ());
  (* every entry point must be callable (and cheap) with no collector *)
  Obs.count "nope";
  Obs.count ~n:5 "nope";
  Obs.gauge "nope" 1.;
  Obs.observe "nope" 1.;
  let r = Obs.with_span "nope" ~attrs:[ ("k", "v") ] (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span passes the result through" 42 r

let test_span_nesting_and_parents () =
  let c = Obs.create () in
  Obs.with_collector c (fun () ->
      Obs.with_span "outer" (fun () ->
          Obs.with_span "inner-1" (fun () -> ());
          Obs.with_span "inner-2"
            ~attrs_after:(fun () -> [ ("late", "yes") ])
            (fun () -> ())));
  match Obs.Trace.spans c.Obs.trace with
  | [ outer; i1; i2 ] ->
      Alcotest.(check string) "outer name" "outer" outer.Obs.Trace.name;
      Alcotest.(check (option int)) "outer is a root" None outer.Obs.Trace.parent;
      Alcotest.(check (option int))
        "inner-1 parented" (Some outer.Obs.Trace.id) i1.Obs.Trace.parent;
      Alcotest.(check (option int))
        "inner-2 parented" (Some outer.Obs.Trace.id) i2.Obs.Trace.parent;
      Alcotest.(check bool) "ids in open order" true
        (outer.Obs.Trace.id < i1.Obs.Trace.id && i1.Obs.Trace.id < i2.Obs.Trace.id);
      Alcotest.(check (list (pair string string)))
        "attrs_after lands on the span"
        [ ("late", "yes") ]
        i2.Obs.Trace.attrs;
      Alcotest.(check bool) "outer covers inner" true
        (outer.Obs.Trace.duration_s >= i1.Obs.Trace.duration_s)
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_span_recorded_on_raise () =
  let c = Obs.create () in
  (try
     Obs.with_collector c (fun () ->
         Obs.with_span "doomed" (fun () -> failwith "bang"))
   with Failure _ -> ());
  match Obs.Trace.spans c.Obs.trace with
  | [ s ] -> Alcotest.(check string) "span survives the raise" "doomed" s.Obs.Trace.name
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_with_collector_restores () =
  let outer = Obs.create () in
  let inner = Obs.create () in
  let installed c = match Obs.get () with Some c' -> c' == c | None -> false in
  Obs.with_collector outer (fun () ->
      Obs.with_collector inner (fun () ->
          Alcotest.(check bool) "inner installed" true (installed inner));
      Alcotest.(check bool) "outer restored" true (installed outer));
  Alcotest.(check bool) "nothing installed after" false (Obs.enabled ())

let test_chrome_trace_parses () =
  let c = Obs.create () in
  Obs.with_collector c (fun () ->
      Obs.with_span "root" ~attrs:[ ("k", "v\"quoted\"") ] (fun () ->
          Obs.with_span "child" (fun () -> ())));
  let text = Obs.Export.chrome_trace ~normalize:true c.Obs.trace in
  match Obs.Json.parse text with
  | Error msg -> Alcotest.failf "chrome trace is not valid JSON: %s" msg
  | Ok json ->
      let events =
        match Obs.Json.member "traceEvents" json with
        | Some ev -> Obs.Json.elements ev
        | None -> Alcotest.fail "no traceEvents"
      in
      let span_names =
        List.filter_map
          (fun e ->
            match Obs.Json.(member "ph" e, member "name" e) with
            | Some (Obs.Json.Str "X"), Some name -> Obs.Json.string_value name
            | _ -> None)
          events
      in
      Alcotest.(check (list string)) "X events" [ "root"; "child" ] span_names;
      List.iter
        (fun e ->
          match Obs.Json.member "ph" e with
          | Some (Obs.Json.Str "X") ->
              Alcotest.(check (option (float 0.)))
                "normalized ts" (Some 0.)
                (Option.bind (Obs.Json.member "ts" e) Obs.Json.number)
          | _ -> ())
        events

let test_prometheus_format () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.count m "chase.rounds" 3;
  Obs.Metrics.gauge m "pool.queue_depth" 2.;
  Obs.Metrics.observe ~buckets:[| 0.1; 1. |] m "wave.seconds" 0.05;
  let text = Obs.Export.prometheus m in
  let contains needle =
    let n = String.length needle and l = String.length text in
    let rec loop i = i + n <= l && (String.sub text i n = needle || loop (i + 1)) in
    loop 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains needle))
    [
      "exl_chase_rounds 3";
      "exl_pool_queue_depth 2";
      "exl_wave_seconds_bucket{le=\"0.1\"} 1";
      "exl_wave_seconds_bucket{le=\"+Inf\"} 1";
      "exl_wave_seconds_count 1";
    ]

let test_jsonl_lines_parse () =
  let c = Obs.create () in
  Obs.with_collector c (fun () ->
      Obs.with_span "s" (fun () -> Obs.count "c");
      Obs.record_provenance
        {
          Obs.Provenance.cube = "GDP";
          tgds = [ "RGDP(q,r,v) -> GDP(q,r,v)" ];
          wave = 0;
          target = "sql";
          status = Obs.Provenance.Computed;
          attempts = 1;
          translate_attempts = 1;
          translate_seconds = 0.;
          execute_seconds = 0.;
        });
  let text = Obs.Export.jsonl ~normalize:true c.Obs.trace c.Obs.metrics c.Obs.provenance in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  Alcotest.(check bool) "several lines" true (List.length lines >= 3);
  List.iter
    (fun line ->
      match Obs.Json.parse line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "bad JSONL line %S: %s" line msg)
    lines

(* End-to-end: run a tiny program through the engine facade under a
   collector and check that provenance names a producing target and at
   least one tgd for every derived cube. *)
let test_engine_run_provenance () =
  let source = "cube A(q: quarter);\nB := A + 1;\nC := 2 * B;\n" in
  let series name base =
    cube_of name
      [ ("q", Domain.Period (Some Calendar.Quarter)) ]
      (List.init 8 (fun i ->
           [ vq (2020 + (i / 4)) ((i mod 4) + 1); vf (base +. float_of_int i) ]))
  in
  let engine = Engine.Exlengine.create () in
  (match Engine.Exlengine.register_program engine ~name:"p" source with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "register: %s" msg);
  (match Engine.Exlengine.load_elementary engine (series "A" 1.) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "load A: %s" msg);
  let c = Obs.create () in
  Obs.with_collector c (fun () ->
      match Engine.Exlengine.recompute engine with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "recompute: %s" msg);
  (match Obs.Provenance.records c.Obs.provenance with
  | [ b; cc ] ->
      Alcotest.(check string) "first cube" "B" b.Obs.Provenance.cube;
      Alcotest.(check string) "second cube" "C" cc.Obs.Provenance.cube;
      List.iter
        (fun r ->
          Alcotest.(check string) "status" "computed"
            (Obs.Provenance.status_to_string r.Obs.Provenance.status);
          Alcotest.(check bool) "a producing target is named" true
            (r.Obs.Provenance.target <> "");
          Alcotest.(check bool) "at least one tgd recorded" true
            (r.Obs.Provenance.tgds <> []);
          Alcotest.(check bool) "attempts counted" true
            (r.Obs.Provenance.attempts >= 1))
        [ b; cc ]
  | records ->
      Alcotest.failf "expected 2 provenance records, got %d"
        (List.length records));
  Alcotest.(check bool) "dispatcher waves counted" true
    (Obs.Metrics.counter_value c.Obs.metrics "dispatcher.waves" >= 1);
  Alcotest.(check bool) "spans recorded" true
    (List.exists
       (fun s -> s.Obs.Trace.name = "dispatcher.run")
       (Obs.Trace.spans c.Obs.trace))

let suite =
  [
    ("clock: monotonic, non-negative elapsed", `Quick, test_clock_monotonic);
    ("metrics: counters accumulate, sorted", `Quick, test_metrics_counters);
    ( "metrics: gauges latest, histogram buckets",
      `Quick,
      test_metrics_gauges_and_histograms );
    ("disabled: every entry point is a no-op", `Quick, test_disabled_is_noop);
    ("spans: nesting, parents, attrs_after", `Quick, test_span_nesting_and_parents);
    ("spans: recorded when the thunk raises", `Quick, test_span_recorded_on_raise);
    ("collector: with_collector restores", `Quick, test_with_collector_restores);
    ("export: chrome trace is valid JSON", `Quick, test_chrome_trace_parses);
    ("export: prometheus text exposition", `Quick, test_prometheus_format);
    ("export: every JSONL line parses", `Quick, test_jsonl_lines_parse);
    ("provenance: engine run names tgd + target", `Quick, test_engine_run_provenance);
  ]
