(* Front-end tests: lexer, parser, typechecker, normalizer, interpreter. *)
open Matrix
open Helpers

let parse_ok src = check_ok (Exl.Parser.parse src)
let parse_err src = check_err ("parse " ^ src) (Exl.Parser.parse src)

let load_err src = check_err "load" (Exl.Program.load src)

(* --- lexer --- *)

let test_lexer_basic () =
  let tokens = check_ok (Exl.Lexer.tokenize "A := B + 2.5; -- comment\n") in
  let kinds = List.map (fun t -> t.Exl.Token.token) tokens in
  Alcotest.(check int) "token count" 7 (List.length kinds);
  match kinds with
  | [ IDENT "A"; ASSIGN; IDENT "B"; PLUS; NUMBER n; SEMI; EOF ] ->
      Alcotest.(check (float 0.)) "number" 2.5 n
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_keywords_case_insensitive () =
  let tokens = check_ok (Exl.Lexer.tokenize "CUBE Group BY aS") in
  let kinds = List.map (fun t -> t.Exl.Token.token) tokens in
  Alcotest.(check bool) "keywords"
    true
    (kinds = Exl.Token.[ KW_CUBE; KW_GROUP; KW_BY; KW_AS; EOF ])

let test_lexer_rejects_garbage () =
  let msg = check_err "lex" (Exl.Lexer.tokenize "A := $3;") in
  Alcotest.(check bool) "mentions char" true
    (String.length msg > 0)

let test_lexer_positions () =
  let tokens = check_ok (Exl.Lexer.tokenize "A :=\n  B;") in
  let b = List.nth tokens 2 in
  Alcotest.(check int) "line" 2 b.Exl.Token.pos.Exl.Ast.line;
  Alcotest.(check int) "col" 3 b.Exl.Token.pos.Exl.Ast.col

(* --- parser --- *)

let test_parse_precedence () =
  let e = check_ok (Exl.Parser.parse_expr "A + B * C") in
  match e with
  | Exl.Ast.Binop (Ops.Binop.Add, Cube_ref "A", Binop (Ops.Binop.Mul, _, _)) ->
      ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_power_right_assoc () =
  let e = check_ok (Exl.Parser.parse_expr "A ^ B ^ C") in
  match e with
  | Exl.Ast.Binop (Ops.Binop.Pow, Cube_ref "A", Binop (Ops.Binop.Pow, _, _)) ->
      ()
  | _ -> Alcotest.fail "power should be right-associative"

let test_parse_unary_minus () =
  let e = check_ok (Exl.Parser.parse_expr "-A * B") in
  match e with
  | Exl.Ast.Binop (Ops.Binop.Mul, Neg (Cube_ref "A"), Cube_ref "B") -> ()
  | _ -> Alcotest.fail "unary minus binds tighter than *"

let test_parse_group_by () =
  let e = check_ok (Exl.Parser.parse_expr "avg(PDR, group by quarter(d) as q, r)") in
  match e with
  | Exl.Ast.Call { fn = "avg"; args = [ Cube_ref "PDR" ]; group_by = Some items; _ }
    ->
      Alcotest.(check int) "two items" 2 (List.length items);
      let first = List.hd items in
      Alcotest.(check (option string)) "fn" (Some "quarter") first.Exl.Ast.fn;
      Alcotest.(check string) "src" "d" first.Exl.Ast.src;
      Alcotest.(check (option string)) "alias" (Some "q") first.Exl.Ast.alias
  | _ -> Alcotest.fail "group by parse"

let test_parse_decl () =
  let p = parse_ok "cube PDR(d: date, r: string): float;" in
  match p with
  | [ Exl.Ast.Decl d ] ->
      Alcotest.(check string) "name" "PDR" d.Exl.Ast.d_name;
      Alcotest.(check int) "dims" 2 (List.length d.Exl.Ast.d_dims)
  | _ -> Alcotest.fail "decl parse"

let test_parse_errors () =
  List.iter
    (fun src -> ignore (parse_err src))
    [
      "A := ;";
      "A := B +;";
      "cube A(;";
      "A := f(x, group by a, b);extra";
      "A := (B;";
      "A B;";
    ]

let test_group_by_must_be_last () =
  let msg = parse_err "A := avg(B, group by x, 3);" in
  Alcotest.(check bool) "explains" true
    (String.length msg > 0)

let test_roundtrip_overview () =
  let p = parse_ok Helpers.overview_program in
  let printed = Exl.Pretty.program_to_string p in
  let p2 = parse_ok printed in
  Alcotest.(check bool) "roundtrip" true (Exl.Ast.equal_program p p2)

(* Regressions found by the scenario fuzzer (exlc fuzz, roundtrip axis). *)

let test_pretty_float_shortest_roundtrip () =
  (* %.12g would print 0.30000000000000004 (the fold of 0.1 + 0.2) as
     0.3 — a different float; the printer must widen until the decimal
     form parses back exactly *)
  List.iter
    (fun f ->
      let s = Exl.Pretty.number_to_string f in
      Alcotest.(check (float 0.))
        (Printf.sprintf "%h round-trips via %s" f s)
        f (float_of_string s))
    [ 0.1 +. 0.2; 0.3; 1. /. 3.; 1.05 *. 0.7; 2.675; -0.30000000000000004 ];
  (* end to end: normalization folds the constant, pretty must not lose
     the fold's low bits *)
  let p =
    Exl.Normalize.program
      (parse_ok "cube A(t: quarter);\nB := A * (0.1 + 0.2);\n")
  in
  let p2 = parse_ok (Exl.Pretty.program_to_string p) in
  Alcotest.(check bool) "folded constant round-trips" true
    (Exl.Ast.equal_program p p2)

let test_pretty_string_escapes_lexable () =
  (* OCaml's %S emits \r, \b and decimal escapes the EXL lexer rejects;
     the printer must stick to the lexer's repertoire *)
  List.iter
    (fun text ->
      let lit = Exl.Pretty.literal_to_string (Value.String text) in
      let src = Printf.sprintf "cube A(r: string);\nB := filter(A, r = %s);\n" lit in
      let p = parse_ok src in
      match Exl.Ast.stmts p with
      | [ { rhs = Exl.Ast.Call { conditions = [ (_, Value.String back) ]; _ }; _ } ] ->
          Alcotest.(check string) ("escape of " ^ String.escaped text) text back
      | _ -> Alcotest.fail "unexpected parse of filter condition")
    [ "qu\"ote"; "back\\slash"; "tab\tsep"; "new\nline"; "caf\xc3\xa9"; " pad "; "cr\rlf" ]

let test_negative_literal_spellings_equal () =
  (* the lexer has no negative-number token: Number (-1.) (a constant
     fold) and Neg (Number 1.) (a re-parse) print identically, so they
     must compare equal *)
  Alcotest.(check bool) "Number (-1.) = Neg (Number 1.)" true
    (Exl.Ast.equal_expr (Exl.Ast.Number (-1.)) (Exl.Ast.Neg (Exl.Ast.Number 1.)));
  let p =
    Exl.Normalize.program
      (parse_ok "cube A(t: quarter);\nB := A + A;\nC := shift(B, -1);\n")
  in
  let p2 = parse_ok (Exl.Pretty.program_to_string p) in
  Alcotest.(check bool) "normalized shift(-1) round-trips" true
    (Exl.Ast.equal_program p p2)

(* --- typechecker --- *)

let test_check_overview () =
  let checked = load_overview () in
  let env = checked.Exl.Typecheck.env in
  let pqr = Exl.Typecheck.Env.schema_exn env "PQR" in
  Alcotest.(check (list string)) "PQR dims" [ "q"; "r" ] (Schema.dim_names pqr);
  Alcotest.(check (option string))
    "q domain" (Some "quarter")
    (Option.map Domain.to_string (Schema.dim_domain pqr "q"));
  let gdp = Exl.Typecheck.Env.schema_exn env "GDP" in
  Alcotest.(check (list string)) "GDP dims" [ "q" ] (Schema.dim_names gdp);
  let pchng = Exl.Typecheck.Env.schema_exn env "PCHNG" in
  Alcotest.(check (list string)) "PCHNG dims" [ "q" ] (Schema.dim_names pchng)

let test_check_rejects_redefinition () =
  let msg =
    load_err "cube A(x: int);\nB := A + 1;\nB := A + 2;\n"
  in
  Alcotest.(check bool) "mentions B" true
    (String.length msg > 0 && String.index_opt msg 'B' <> None)

let test_check_rejects_unknown_cube () =
  ignore (load_err "B := MISSING + 1;\n")

let test_check_rejects_dim_mismatch () =
  ignore
    (load_err
       "cube A(x: int);\ncube B(y: int);\nC := A + B;\n")

let test_check_rejects_unknown_operator () =
  ignore (load_err "cube A(x: int);\nB := frobnicate(A);\n")

let test_check_rejects_recursion () =
  (* Self reference: lhs not yet defined when rhs is checked. *)
  ignore (load_err "cube A(x: int);\nB := B + A;\n")

let test_check_rejects_groupby_on_missing_dim () =
  ignore (load_err "cube A(x: int);\nB := sum(A, group by z);\n")

let test_check_rejects_quarter_on_int () =
  ignore (load_err "cube A(x: int);\nB := sum(A, group by quarter(x));\n")

let test_check_rejects_blackbox_without_time () =
  ignore (load_err "cube A(x: int);\nB := stl_t(A);\n")

let test_check_shift_needs_temporal () =
  ignore (load_err "cube A(x: int);\nB := shift(A, 1);\n")

let test_check_scalar_param_count () =
  ignore (load_err "cube A(t: quarter);\nB := log(2, 3, A);\n")

let test_check_total_aggregate_is_zero_dim () =
  let checked =
    check_ok (Exl.Program.load "cube A(x: int);\nB := sum(A);\n")
  in
  let b = Exl.Typecheck.Env.schema_exn checked.Exl.Typecheck.env "B" in
  Alcotest.(check int) "0-dim" 0 (Schema.arity b)

let test_check_measure_must_be_numeric () =
  ignore (load_err "cube A(x: int): string;\n")

(* --- normalizer --- *)

let test_normalize_overview () =
  let checked = load_overview () in
  let normalized = check_ok (Exl.Normalize.checked checked) in
  Alcotest.(check bool) "is_normal" true
    (Exl.Normalize.is_normal normalized.Exl.Typecheck.program);
  (* PCHNG := 100 * (GDPT - shift(GDPT,1)) / GDPT has 4 operators ->
     4 statements; the others stay single. *)
  let stmts = Exl.Ast.stmts normalized.Exl.Typecheck.program in
  Alcotest.(check int) "statement count" 8 (List.length stmts)

let test_normalize_preserves_semantics () =
  let reg = overview_registry () in
  let checked = load_overview () in
  let normalized = check_ok (Exl.Normalize.checked checked) in
  let out1 = check_ok (Exl.Interp.run checked reg) in
  let out2 = check_ok (Exl.Interp.run normalized reg) in
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name)
        (Registry.find_exn out1 name)
        (Registry.find_exn out2 name))
    [ "PQR"; "RGDP"; "GDP"; "GDPT"; "PCHNG" ]

let test_normalize_constant_folding () =
  let checked =
    Exl.Program.load_exn "cube A(x: int);\nB := A * (60 * 60);\nC := A + log(2, 8);\n"
  in
  let normalized = check_ok (Exl.Normalize.checked checked) in
  let stmts = Exl.Ast.stmts normalized.Exl.Typecheck.program in
  (* both statements stay single: the constant subtrees folded away *)
  Alcotest.(check int) "no temps" 2 (List.length stmts);
  match (List.nth stmts 0).Exl.Ast.rhs with
  | Exl.Ast.Binop (Ops.Binop.Mul, _, Exl.Ast.Number f) ->
      Alcotest.(check (float 0.)) "3600" 3600. f
  | _ -> Alcotest.fail "expected folded constant"

let test_normalize_folding_keeps_undefined () =
  (* 1/0 must not fold away: the runtime error should still surface *)
  let checked = Exl.Program.load_exn "cube A(x: int);\nB := A + 1 / 0;\n" in
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 1. ] ]);
  match Exl.Interp.run checked reg with
  | Error e ->
      Alcotest.(check bool) "mentions undefined" true
        (Astring_contains.contains (Exl.Errors.to_string e) "undefined")
  | Ok _ -> Alcotest.fail "expected a runtime error"

let test_normalize_temp_names () =
  Alcotest.(check bool) "temp" true (Exl.Normalize.is_temp "PCHNG__2");
  Alcotest.(check bool) "not temp" false (Exl.Normalize.is_temp "PCHNG");
  Alcotest.(check string) "base" "PCHNG" (Exl.Normalize.temp_base "PCHNG__2")

(* --- interpreter --- *)

let test_interp_scalar_mult () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "C1"
       [ ("x", Domain.Int) ]
       [ [ vi 1; vf 10. ]; [ vi 2; vf 20. ] ]);
  let out =
    check_ok (Exl.Program.run_source "cube C1(x: int);\nC2 := 3 * C1;\n" reg)
  in
  let c2 = Registry.find_exn out "C2" in
  Alcotest.check value "3*10" (vf 30.) (Option.get (Cube.find c2 (key [ vi 1 ])));
  Alcotest.check value "3*20" (vf 60.) (Option.get (Cube.find c2 (key [ vi 2 ])))

let test_interp_vector_sum_intersection () =
  (* Vectorial ops keep only dimension tuples present in both operands. *)
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 1. ]; [ vi 2; vf 2. ] ]);
  Registry.add reg Registry.Elementary
    (cube_of "B" [ ("x", Domain.Int) ] [ [ vi 2; vf 10. ]; [ vi 3; vf 30. ] ]);
  let out =
    check_ok
      (Exl.Program.run_source "cube A(x: int);\ncube B(x: int);\nC := A + B;\n"
         reg)
  in
  let c = Registry.find_exn out "C" in
  Alcotest.(check int) "only shared tuple" 1 (Cube.cardinality c);
  Alcotest.check value "2+10" (vf 12.) (Option.get (Cube.find c (key [ vi 2 ])))

let test_interp_division_by_zero_drops () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 1. ]; [ vi 2; vf 0. ] ]);
  let out =
    check_ok (Exl.Program.run_source "cube A(x: int);\nB := 1 / A;\n" reg)
  in
  let b = Registry.find_exn out "B" in
  Alcotest.(check int) "zero divisor dropped" 1 (Cube.cardinality b);
  Alcotest.check value "1/1" (vf 1.) (Option.get (Cube.find b (key [ vi 1 ])))

let test_interp_dims_aligned_by_name () =
  (* B has dimensions in the opposite order; the join must align by name. *)
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A"
       [ ("x", Domain.Int); ("y", Domain.String) ]
       [ [ vi 1; vs "a"; vf 5. ] ]);
  Registry.add reg Registry.Elementary
    (cube_of "B"
       [ ("y", Domain.String); ("x", Domain.Int) ]
       [ [ vs "a"; vi 1; vf 7. ] ]);
  let out =
    check_ok
      (Exl.Program.run_source
         "cube A(x: int, y: string);\ncube B(y: string, x: int);\nC := A + B;\n"
         reg)
  in
  let c = Registry.find_exn out "C" in
  Alcotest.check value "5+7" (vf 12.)
    (Option.get (Cube.find c (key [ vi 1; vs "a" ])))

let test_interp_shift_lags () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A"
       [ ("q", Domain.Period (Some Calendar.Quarter)) ]
       [ [ vq 2020 1; vf 10. ]; [ vq 2020 2; vf 20. ] ]);
  let out =
    check_ok
      (Exl.Program.run_source "cube A(q: quarter);\nB := shift(A, 1);\n" reg)
  in
  let b = Registry.find_exn out "B" in
  (* B(q) = A(q-1): the 2020Q1 value appears at 2020Q2. *)
  Alcotest.check value "lagged" (vf 10.)
    (Option.get (Cube.find b (key [ vq 2020 2 ])));
  Alcotest.check value "lagged2" (vf 20.)
    (Option.get (Cube.find b (key [ vq 2020 3 ])))

let test_interp_agg_average_by_quarter () =
  let reg = Registry.create () in
  let rows =
    [
      [ vd 2020 1 10; vs "n"; vf 10. ];
      [ vd 2020 2 10; vs "n"; vf 20. ];
      [ vd 2020 4 10; vs "n"; vf 99. ];
    ]
  in
  Registry.add reg Registry.Elementary
    (cube_of "PDR" [ ("d", Domain.Date); ("r", Domain.String) ] rows);
  let out =
    check_ok
      (Exl.Program.run_source
         "cube PDR(d: date, r: string);\nPQR := avg(PDR, group by quarter(d) as q, r);\n"
         reg)
  in
  let pqr = Registry.find_exn out "PQR" in
  Alcotest.(check int) "two quarters" 2 (Cube.cardinality pqr);
  Alcotest.check value "q1 avg" (vf 15.)
    (Option.get (Cube.find pqr (key [ vq 2020 1; vs "n" ])))

let test_interp_total_aggregate () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "A" [ ("x", Domain.Int) ] [ [ vi 1; vf 2. ]; [ vi 2; vf 3. ] ]);
  let out =
    check_ok (Exl.Program.run_source "cube A(x: int);\nB := sum(A);\n" reg)
  in
  let b = Registry.find_exn out "B" in
  Alcotest.check value "total" (vf 5.) (Option.get (Cube.find b (key [])))

let test_interp_overview_end_to_end () =
  let reg = overview_registry () in
  let out = check_ok (Exl.Interp.run (load_overview ()) reg) in
  let gdp = Registry.find_exn out "GDP" in
  Alcotest.(check int) "8 quarters" 8 (Cube.cardinality gdp);
  (* GDP = sum over regions of RGDPPC * avg population: check one value
     by hand. 2020Q1: population north = avg over Q1 days, etc. *)
  let pqr = Registry.find_exn out "PQR" in
  let p_north = Option.get (Cube.find pqr (key [ vq 2020 1; vs "north" ])) in
  let rgdp = Registry.find_exn out "RGDP" in
  let g_north = Option.get (Cube.find rgdp (key [ vq 2020 1; vs "north" ])) in
  let rgdppc_val = 30. +. 0. +. (5. *. sin 0.) in
  Alcotest.check value "rgdp = pqr * rgdppc"
    (vf (Value.to_float_exn p_north *. rgdppc_val))
    g_north;
  let pchng = Registry.find_exn out "PCHNG" in
  (* PCHNG is undefined on the first quarter (no predecessor). *)
  Alcotest.(check bool) "first quarter missing" false
    (Cube.mem pchng (key [ vq 2020 1 ]));
  Alcotest.(check int) "7 changes" 7 (Cube.cardinality pchng)

let test_interp_blackbox_per_slice () =
  (* stl per region: extension for cubes with extra dimensions. *)
  let reg = Registry.create () in
  let rows = ref [] in
  List.iter
    (fun r ->
      for y = 2019 to 2021 do
        for q = 1 to 4 do
          let t = float_of_int (((y - 2019) * 4) + q) in
          rows :=
            [ vq y q; vs r; vf (t +. (3. *. Float.rem t 4.)) ] :: !rows
        done
      done)
    [ "a"; "b" ];
  Registry.add reg Registry.Elementary
    (cube_of "S"
       [ ("q", Domain.Period (Some Calendar.Quarter)); ("r", Domain.String) ]
       !rows);
  let out =
    check_ok
      (Exl.Program.run_source "cube S(q: quarter, r: string);\nT := stl_t(S);\n"
         reg)
  in
  let t = Registry.find_exn out "T" in
  Alcotest.(check int) "same tuples" 24 (Cube.cardinality t)

let test_interp_missing_elementary_is_empty () =
  let reg = Registry.create () in
  let out =
    check_ok (Exl.Program.run_source "cube A(x: int);\nB := A * 2;\n" reg)
  in
  Alcotest.(check int) "empty" 0 (Cube.cardinality (Registry.find_exn out "B"))

(* --- robustness and edge frequencies --- *)

let prop_parser_never_crashes =
  QCheck.Test.make ~count:300 ~name:"parser is total (Ok or Error, no exception)"
    QCheck.(string_gen_of_size Gen.(0 -- 60) (Gen.char_range ' ' '~'))
    (fun junk ->
      match Exl.Parser.parse junk with Ok _ | Error _ -> true)

let prop_lexer_never_crashes =
  QCheck.Test.make ~count:300 ~name:"lexer is total"
    QCheck.string
    (fun junk ->
      match Exl.Lexer.tokenize junk with Ok _ | Error _ -> true)

let test_weekly_frequency_end_to_end () =
  (* weekly series: stl period inference = 52, needs two years *)
  let reg = Registry.create () in
  let schema =
    Schema.make ~name:"W" ~dims:[ ("w", Domain.Period (Some Calendar.Week)) ] ()
  in
  let cube = Cube.create schema in
  for i = 0 to 119 do
    let p = Calendar.Period.shift (Calendar.Period.week 2022 1) i in
    Cube.set cube
      (Tuple.of_list [ Value.Period p ])
      (Value.Float
         (50. +. (0.2 *. float_of_int i)
         +. (4. *. sin (2. *. Float.pi *. float_of_int i /. 52.))))
  done;
  Registry.add reg Registry.Elementary cube;
  let checked =
    Exl.Program.load_exn
      "cube W(w: week);\nT := stl_t(W);\nG := 100 * (W - shift(W, 52)) / shift(W, 52);\n"
  in
  match Core.verify_all_backends checked reg with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_semester_group_by () =
  let reg = Registry.create () in
  Registry.add reg Registry.Elementary
    (cube_of "M"
       [ ("m", Domain.Period (Some Calendar.Month)) ]
       (List.init 12 (fun i -> [ vm 2024 (i + 1); vf (float_of_int (i + 1)) ])));
  let out =
    check_ok
      (Exl.Program.run_source
         "cube M(m: month);\nS := sum(M, group by semester(m) as s);\n" reg)
  in
  let s_cube = Registry.find_exn out "S" in
  Alcotest.(check int) "two semesters" 2 (Cube.cardinality s_cube);
  (* 1+..+6 = 21, 7+..+12 = 57 *)
  Alcotest.check value "s1" (vf 21.)
    (Option.get
       (Cube.find s_cube
          (key [ Value.Period (Calendar.Period.semester 2024 1) ])))

let test_warnings_unused_elementary () =
  let checked =
    Exl.Program.load_exn "cube A(x: int);\ncube UNUSED(y: int);\nB := A + 1;\n"
  in
  match Exl.Typecheck.warnings checked with
  | [ w ] ->
      Alcotest.(check bool) "names the cube" true
        (Astring_contains.contains w "UNUSED")
  | ws -> Alcotest.failf "expected one warning, got %d" (List.length ws)

let test_load_all_accumulates_errors () =
  (* every independent error in one run, ordered by source position;
     statements depending on a failed one are suppressed, not re-reported *)
  match
    Exl.Program.load_all
      "cube A(x: int, x: int);\ncube B(y: int);\nC := B + NOPE;\nD := C * 2;\nE := frobnicate(B);\n"
  with
  | Ok _ -> Alcotest.fail "expected errors"
  | Error errs ->
      Alcotest.(check int) "three independent errors" 3 (List.length errs);
      let lines =
        List.map
          (fun (e : Exl.Errors.t) ->
            match e.Exl.Errors.pos with Some p -> p.Exl.Ast.line | None -> -1)
          errs
      in
      Alcotest.(check (list int)) "in position order" [ 1; 3; 5 ] lines;
      Alcotest.(check (list (option string))) "stable codes"
        [ Some "E003"; Some "E007"; Some "E005" ]
        (List.map (fun (e : Exl.Errors.t) -> e.Exl.Errors.code) errs)

let suite =
  [
    ("lexer: basic", `Quick, test_lexer_basic);
    ("lexer: keywords case-insensitive", `Quick, test_lexer_keywords_case_insensitive);
    ("lexer: rejects garbage", `Quick, test_lexer_rejects_garbage);
    ("lexer: positions", `Quick, test_lexer_positions);
    ("parser: precedence", `Quick, test_parse_precedence);
    ("parser: power right-assoc", `Quick, test_parse_power_right_assoc);
    ("parser: unary minus", `Quick, test_parse_unary_minus);
    ("parser: group by", `Quick, test_parse_group_by);
    ("parser: declaration", `Quick, test_parse_decl);
    ("parser: error cases", `Quick, test_parse_errors);
    ("parser: group by must be last", `Quick, test_group_by_must_be_last);
    ("pretty: overview round-trips", `Quick, test_roundtrip_overview);
    ("pretty: floats shortest round-trip", `Quick, test_pretty_float_shortest_roundtrip);
    ("pretty: string escapes lexable", `Quick, test_pretty_string_escapes_lexable);
    ("ast: negative literal spellings equal", `Quick, test_negative_literal_spellings_equal);
    ("check: overview schemas", `Quick, test_check_overview);
    ("check: rejects redefinition", `Quick, test_check_rejects_redefinition);
    ("check: rejects unknown cube", `Quick, test_check_rejects_unknown_cube);
    ("check: rejects dim mismatch", `Quick, test_check_rejects_dim_mismatch);
    ("check: rejects unknown operator", `Quick, test_check_rejects_unknown_operator);
    ("check: rejects recursion", `Quick, test_check_rejects_recursion);
    ("check: rejects bad group by dim", `Quick, test_check_rejects_groupby_on_missing_dim);
    ("check: rejects quarter(int)", `Quick, test_check_rejects_quarter_on_int);
    ("check: rejects stl without time", `Quick, test_check_rejects_blackbox_without_time);
    ("check: shift needs temporal", `Quick, test_check_shift_needs_temporal);
    ("check: scalar param count", `Quick, test_check_scalar_param_count);
    ("check: total aggregate type", `Quick, test_check_total_aggregate_is_zero_dim);
    ("check: measure numeric", `Quick, test_check_measure_must_be_numeric);
    ("normalize: overview", `Quick, test_normalize_overview);
    ("normalize: preserves semantics", `Quick, test_normalize_preserves_semantics);
    ("normalize: constant folding", `Quick, test_normalize_constant_folding);
    ("normalize: 1/0 not folded", `Quick, test_normalize_folding_keeps_undefined);
    ("normalize: temp names", `Quick, test_normalize_temp_names);
    ("interp: scalar multiplication", `Quick, test_interp_scalar_mult);
    ("interp: vector sum intersection", `Quick, test_interp_vector_sum_intersection);
    ("interp: division by zero drops", `Quick, test_interp_division_by_zero_drops);
    ("interp: dims aligned by name", `Quick, test_interp_dims_aligned_by_name);
    ("interp: shift lags", `Quick, test_interp_shift_lags);
    ("interp: avg by quarter", `Quick, test_interp_agg_average_by_quarter);
    ("interp: total aggregate", `Quick, test_interp_total_aggregate);
    ("interp: overview end-to-end", `Quick, test_interp_overview_end_to_end);
    ("interp: blackbox per slice", `Quick, test_interp_blackbox_per_slice);
    ("interp: missing elementary empty", `Quick, test_interp_missing_elementary_is_empty);
    QCheck_alcotest.to_alcotest prop_parser_never_crashes;
    QCheck_alcotest.to_alcotest prop_lexer_never_crashes;
    ("weekly frequency end-to-end", `Quick, test_weekly_frequency_end_to_end);
    ("semester group by", `Quick, test_semester_group_by);
    ("warnings: unused elementary", `Quick, test_warnings_unused_elementary);
    ("check: load_all accumulates errors", `Quick, test_load_all_accumulates_errors);
  ]
