(* Fault-tolerant dispatch: deterministic fault injection through
   scripted plans — retry-then-succeed, fallback-to-next-target,
   quarantine-with-downstream-skip, timeouts, worker crashes — plus the
   failure-transparency property: when every cube keeps a fault-free
   capable target, injected faults never change the computed values. *)
open Matrix
open Helpers

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* --- fixture: two chains over elementary A and X ---

   B -> C is a dependent chain (C must be skipped when B is
   quarantined); Y is an independent sibling (it must survive any
   B-side outage). *)

let chain_program =
  "cube A(q: quarter);\ncube X(q: quarter);\nB := A + 1;\nC := 2 * B;\nY := X + 10;\n"

let quarters n = List.init n (fun i -> vq (2020 + (i / 4)) ((i mod 4) + 1))

let chain_data () =
  let series name base =
    cube_of name
      [ ("q", Domain.Period (Some Calendar.Quarter)) ]
      (List.mapi (fun i q -> [ q; vf (base +. float_of_int i) ]) (quarters 8))
  in
  [ series "A" 1.; series "X" 100. ]

let mk ?(program = chain_program) ?(data = chain_data ()) () =
  let d = Engine.Determination.create () in
  ok (Engine.Determination.register_source d ~name:"p" program);
  let store = Registry.create () in
  List.iter
    (fun c ->
      let schema = Option.get (Engine.Determination.schema d (Cube.name c)) in
      Registry.add store Registry.Elementary (Cube.with_schema schema c))
    data;
  (d, store)

(* Backoff-free: these tests exercise logic, not waiting. *)
let fast_retry =
  { Engine.Dispatcher.default_retry with base_backoff = 0.; max_attempts = 3 }

(* Overrides split [B; C; Y] into three single-cube subgraphs. *)
let split_policy =
  {
    Engine.Dispatcher.priority = [ "sql"; "vector"; "etl" ];
    overrides = [ ("C", "vector") ];
  }

let run ?parallel ?faults ?(retry = fast_retry)
    ?(targets = Engine.Target.builtins) ?(policy = split_policy) (d, store) =
  Engine.Dispatcher.run ?parallel ?faults ~retry ~targets ~policy
    ~translation:(Engine.Translation.create ()) ~determination:d ~store
    ~affected:(Engine.Determination.derived_order d)
    ()

let check_values ~expected:(_, expected_store) ~got:(_, got_store) cubes =
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name)
        (Registry.find_exn expected_store name)
        (Registry.find_exn got_store name))
    cubes

let baseline () =
  let ctx = mk () in
  ignore (ok (run ctx));
  ctx

let exec_error = Engine.Faults.Execute_error "injected"
let trans_error = Engine.Faults.Translate_error "injected"

(* --- retry-then-succeed --- *)

let test_clean_run () =
  let ctx = mk () in
  let report = ok (run ctx) in
  Alcotest.(check (list string)) "recomputed" [ "B"; "C"; "Y" ]
    report.Engine.Dispatcher.recomputed;
  Alcotest.(check int) "no failures" 0
    (List.length report.Engine.Dispatcher.failures);
  Alcotest.(check (list string)) "no quarantine" []
    report.Engine.Dispatcher.quarantined;
  Alcotest.(check (list string)) "no skips" [] report.Engine.Dispatcher.skipped;
  Alcotest.(check bool) "not degraded" false
    (Engine.Dispatcher.degraded report);
  List.iter
    (fun (s : Engine.Dispatcher.subgraph_report) ->
      Alcotest.(check int) "single attempt" 1 s.Engine.Dispatcher.attempts;
      Alcotest.(check int) "single translation" 1
        s.Engine.Dispatcher.translate_attempts)
    report.Engine.Dispatcher.subgraphs

let test_transient_execute_retried () =
  let faults =
    Engine.Faults.plan [ Engine.Faults.trigger ~times:1 Execute exec_error ]
  in
  let ctx = mk () in
  let report = ok (run ~faults ctx) in
  Alcotest.(check int) "fault fired" 1 (Engine.Faults.fired faults);
  Alcotest.(check (list string)) "nothing lost" [ "B"; "C"; "Y" ]
    report.Engine.Dispatcher.recomputed;
  Alcotest.(check int) "recovered: no failure reports" 0
    (List.length report.Engine.Dispatcher.failures);
  Alcotest.(check bool) "a retry happened" true
    (List.exists
       (fun (s : Engine.Dispatcher.subgraph_report) ->
         s.Engine.Dispatcher.attempts > 1)
       report.Engine.Dispatcher.subgraphs);
  check_values ~expected:(baseline ()) ~got:ctx [ "B"; "C"; "Y" ]

(* The first acceptance criterion: one transient Execute_error per
   subgraph — the run completes with failures = [], attempts > 1
   everywhere, and values identical to the fault-free run. *)
let test_transient_fault_per_subgraph () =
  let faults =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~cube:"B" ~times:1 Execute exec_error;
        Engine.Faults.trigger ~cube:"C" ~times:1 Execute exec_error;
        Engine.Faults.trigger ~cube:"Y" ~times:1 Execute exec_error;
      ]
  in
  let ctx = mk () in
  let report = ok (run ~faults ctx) in
  Alcotest.(check int) "all faults fired" 3 (Engine.Faults.fired faults);
  Alcotest.(check int) "failures empty" 0
    (List.length report.Engine.Dispatcher.failures);
  Alcotest.(check int) "three subgraphs" 3
    (List.length report.Engine.Dispatcher.subgraphs);
  List.iter
    (fun (s : Engine.Dispatcher.subgraph_report) ->
      Alcotest.(check int)
        ("attempts for " ^ String.concat "," s.Engine.Dispatcher.cubes)
        2 s.Engine.Dispatcher.attempts)
    report.Engine.Dispatcher.subgraphs;
  check_values ~expected:(baseline ()) ~got:ctx [ "B"; "C"; "Y" ]

let test_transient_translate_retried () =
  let faults =
    Engine.Faults.plan
      [ Engine.Faults.trigger ~cube:"B" ~times:1 Translate trans_error ]
  in
  let ctx = mk () in
  let report = ok (run ~faults ctx) in
  Alcotest.(check int) "no failure reports" 0
    (List.length report.Engine.Dispatcher.failures);
  Alcotest.(check bool) "translate retried" true
    (List.exists
       (fun (s : Engine.Dispatcher.subgraph_report) ->
         s.Engine.Dispatcher.translate_attempts > 1)
       report.Engine.Dispatcher.subgraphs);
  check_values ~expected:(baseline ()) ~got:ctx [ "B"; "C"; "Y" ]

let test_injected_timeout_retried () =
  let faults =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~cube:"B" ~times:1 Execute
          (Engine.Faults.Timeout 0.);
      ]
  in
  let ctx = mk () in
  let report = ok (run ~faults ctx) in
  Alcotest.(check int) "no failure reports" 0
    (List.length report.Engine.Dispatcher.failures);
  check_values ~expected:(baseline ()) ~got:ctx [ "B"; "C"; "Y" ]

(* --- fallback to the next capable target --- *)

let test_persistent_fault_falls_back () =
  let faults =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~cube:"B" ~target:"sql"
          ~times:Engine.Faults.always Execute exec_error;
      ]
  in
  let ctx = mk () in
  let report = ok (run ~faults ctx) in
  Alcotest.(check bool) "not degraded" false (Engine.Dispatcher.degraded report);
  (match report.Engine.Dispatcher.failures with
  | [ f ] ->
      Alcotest.(check string) "failed target" "sql" f.Engine.Faults.f_target;
      Alcotest.(check int) "exhausted attempts" 3 f.Engine.Faults.f_attempts;
      Alcotest.(check bool) "fell back to vector" true
        (f.Engine.Faults.f_resolution = Engine.Faults.Fell_back "vector")
  | fs -> Alcotest.failf "expected one failure report, got %d" (List.length fs));
  let b =
    List.find
      (fun (s : Engine.Dispatcher.subgraph_report) ->
        s.Engine.Dispatcher.cubes = [ "B" ])
      report.Engine.Dispatcher.subgraphs
  in
  Alcotest.(check string) "B computed by vector" "vector"
    b.Engine.Dispatcher.target;
  Alcotest.(check int) "3 failed + 1 good execute" 4 b.Engine.Dispatcher.attempts;
  check_values ~expected:(baseline ()) ~got:ctx [ "B"; "C"; "Y" ]

let test_fallback_retranslates () =
  let faults =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~cube:"B" ~target:"sql"
          ~times:Engine.Faults.always Execute exec_error;
      ]
  in
  let ctx = mk () in
  let report = ok (run ~faults ctx) in
  let b =
    List.find
      (fun (s : Engine.Dispatcher.subgraph_report) ->
        s.Engine.Dispatcher.cubes = [ "B" ])
      report.Engine.Dispatcher.subgraphs
  in
  (* the artifact must be the fallback engine's, not the original's *)
  Alcotest.(check string) "artifact re-rendered for vector" "r"
    (Engine.Target.artifact_kind b.Engine.Dispatcher.artifact);
  Alcotest.(check bool) "translated on both engines" true
    (b.Engine.Dispatcher.translate_attempts >= 2)

let test_worker_crash_surfaces_and_falls_back () =
  let boom =
    {
      Engine.Target.name = "boom";
      supports = (fun _ -> true);
      translate = Engine.Target.sql.Engine.Target.translate;
      execute = (fun _ _ -> failwith "kaboom");
    }
  in
  let policy =
    { Engine.Dispatcher.priority = [ "boom"; "sql" ]; overrides = [] }
  in
  let ctx = mk () in
  let report =
    ok (run ~targets:(boom :: Engine.Target.builtins) ~policy ctx)
  in
  Alcotest.(check bool) "not degraded" false (Engine.Dispatcher.degraded report);
  (* no overrides: one subgraph holds all three cubes; it crashed on
     boom, then fell back to sql *)
  Alcotest.(check int) "one failed subgraph" 1
    (List.length report.Engine.Dispatcher.failures);
  List.iter
    (fun (f : Engine.Faults.failure_report) ->
      Alcotest.(check string) "crashing target" "boom" f.Engine.Faults.f_target;
      (match f.Engine.Faults.f_kind with
      | Engine.Faults.Worker_crash msg ->
          Alcotest.(check bool) "carries the exception" true
            (Astring_contains.contains msg "kaboom");
          Alcotest.(check bool) "carries the task label" true
            (Astring_contains.contains msg "boom")
      | k ->
          Alcotest.failf "expected Worker_crash, got %s"
            (Engine.Faults.kind_to_string k));
      Alcotest.(check bool) "fell back to sql" true
        (f.Engine.Faults.f_resolution = Engine.Faults.Fell_back "sql"))
    report.Engine.Dispatcher.failures;
  check_values ~expected:(baseline ()) ~got:ctx [ "B"; "C"; "Y" ]

(* --- quarantine and downstream skip --- *)

let test_quarantine_with_downstream_skip () =
  let faults =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~cube:"B" ~times:Engine.Faults.always Execute
          exec_error;
      ]
  in
  let ctx = mk () in
  let report = ok (run ~faults ctx) in
  Alcotest.(check bool) "degraded, not an error" true
    (Engine.Dispatcher.degraded report);
  Alcotest.(check (list string)) "B quarantined" [ "B" ]
    report.Engine.Dispatcher.quarantined;
  Alcotest.(check (list string)) "C skipped downstream" [ "C" ]
    report.Engine.Dispatcher.skipped;
  Alcotest.(check (list string)) "Y still recomputed" [ "Y" ]
    report.Engine.Dispatcher.recomputed;
  (* B tried every capable target: sql, vector, etl *)
  Alcotest.(check (list string)) "fallback chain"
    [ "sql"; "vector"; "etl" ]
    (List.map
       (fun (f : Engine.Faults.failure_report) -> f.Engine.Faults.f_target)
       report.Engine.Dispatcher.failures);
  (match List.rev report.Engine.Dispatcher.failures with
  | last :: earlier ->
      Alcotest.(check bool) "last is quarantined" true
        (last.Engine.Faults.f_resolution = Engine.Faults.Quarantined);
      List.iter
        (fun (f : Engine.Faults.failure_report) ->
          Alcotest.(check bool) "earlier ones fell back" true
            (match f.Engine.Faults.f_resolution with
            | Engine.Faults.Fell_back _ -> true
            | Engine.Faults.Quarantined -> false))
        earlier
  | [] -> Alcotest.fail "expected failure reports");
  let _, store = ctx in
  Alcotest.(check bool) "no stale B in store" true
    (Registry.find store "B" = None);
  Alcotest.(check bool) "no stale C in store" true
    (Registry.find store "C" = None);
  check_values ~expected:(baseline ()) ~got:ctx [ "Y" ]

(* The second acceptance criterion: a permanent fault on a cube's only
   capable target completes degraded — quarantined and reported, not an
   exception. *)
let test_only_capable_target_quarantines () =
  let program = "cube A(q: quarter);\nS := stl_t(A);\n" in
  let data = [ List.hd (chain_data ()) ] in
  let ctx = mk ~program ~data () in
  (* only vector can run stl; etl lacks seasonal decomposition *)
  let targets = [ Engine.Target.vector; Engine.Target.etl_no_stl ] in
  let policy =
    { Engine.Dispatcher.priority = [ "vector"; "etl" ]; overrides = [] }
  in
  let faults =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~target:"vector" ~times:Engine.Faults.always
          Execute exec_error;
      ]
  in
  let report = ok (run ~faults ~targets ~policy ctx) in
  Alcotest.(check (list string)) "S quarantined" [ "S" ]
    report.Engine.Dispatcher.quarantined;
  Alcotest.(check (list string)) "nothing recomputed" []
    report.Engine.Dispatcher.recomputed;
  match report.Engine.Dispatcher.failures with
  | [ f ] ->
      Alcotest.(check string) "only capable target" "vector"
        f.Engine.Faults.f_target;
      Alcotest.(check bool) "no fallback possible" true
        (f.Engine.Faults.f_resolution = Engine.Faults.Quarantined)
  | fs -> Alcotest.failf "expected one failure report, got %d" (List.length fs)

let test_subgraph_timeout () =
  (* a zero budget makes every (post-hoc timed) execute attempt a
     Timeout: everything attempted is quarantined, dependents skipped *)
  let retry =
    {
      fast_retry with
      Engine.Dispatcher.max_attempts = 2;
      subgraph_timeout = Some 0.;
    }
  in
  let ctx = mk () in
  let report = ok (run ~retry ctx) in
  Alcotest.(check (list string)) "attempted subgraphs quarantined"
    [ "B"; "Y" ] report.Engine.Dispatcher.quarantined;
  Alcotest.(check (list string)) "dependent skipped" [ "C" ]
    report.Engine.Dispatcher.skipped;
  Alcotest.(check bool) "every failure is a timeout" true
    (report.Engine.Dispatcher.failures <> []
    && List.for_all
         (fun (f : Engine.Faults.failure_report) ->
           match f.Engine.Faults.f_kind with
           | Engine.Faults.Timeout _ -> true
           | _ -> false)
         report.Engine.Dispatcher.failures)

let test_parallel_dispatch_with_faults () =
  (* same transient plan, parallel waves: same values, same recovery *)
  let mk_faults () =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~cube:"B" ~times:1 Execute exec_error;
        Engine.Faults.trigger ~cube:"Y" ~times:1 Execute exec_error;
      ]
  in
  Engine.Pool.with_pool ~size:2 (fun pool ->
      let ctx = mk () in
      let report =
        ok
          (Engine.Dispatcher.run ~parallel:true ~pool
             ~faults:(mk_faults ()) ~retry:fast_retry
             ~targets:Engine.Target.builtins ~policy:split_policy
             ~translation:(Engine.Translation.create ())
             ~determination:(fst ctx) ~store:(snd ctx)
             ~affected:(Engine.Determination.derived_order (fst ctx))
             ())
      in
      Alcotest.(check int) "no failure reports" 0
        (List.length report.Engine.Dispatcher.failures);
      check_values ~expected:(baseline ()) ~got:ctx [ "B"; "C"; "Y" ])

(* --- the pool's per-task outcomes --- *)

let test_pool_try_all_labels_crashes () =
  Engine.Pool.with_pool ~size:2 (fun pool ->
      let outcomes =
        Engine.Pool.try_all pool
          [
            ("one", fun () -> 1);
            ("bad", fun () -> failwith "x");
            ("three", fun () -> 3);
          ]
      in
      match outcomes with
      | [ Ok 1; Error ("bad", Failure msg); Ok 3 ] when msg = "x" -> ()
      | _ -> Alcotest.fail "per-task outcomes lost or out of order")

let test_pool_try_all_never_raises () =
  Engine.Pool.with_pool ~size:2 (fun pool ->
      let outcomes =
        Engine.Pool.try_all pool
          [
            ("a", fun () -> failwith "a");
            ("b", fun () -> failwith "b");
            ("c", fun () -> 7);
          ]
      in
      Alcotest.(check int) "all outcomes present" 3 (List.length outcomes);
      Alcotest.(check int) "both crashes captured" 2
        (List.length
           (List.filter (function Error _ -> true | Ok _ -> false) outcomes));
      (* and the pool survives for the next burst *)
      Alcotest.(check (list int)) "alive" [ 9 ]
        (Engine.Pool.run_all pool [ (fun () -> 9) ]))

(* --- fault plans --- *)

let test_plan_times_exhaustion () =
  let p =
    Engine.Faults.plan [ Engine.Faults.trigger ~times:2 Execute exec_error ]
  in
  let check () =
    Engine.Faults.check p ~stage:Engine.Faults.Execute ~target:"sql"
      ~cubes:[ "B" ]
  in
  Alcotest.(check bool) "fires 1st" true (check () <> None);
  Alcotest.(check bool) "fires 2nd" true (check () <> None);
  Alcotest.(check bool) "exhausted" true (check () = None);
  Alcotest.(check int) "fired count" 2 (Engine.Faults.fired p);
  Engine.Faults.reset p;
  Alcotest.(check bool) "reset restores budget" true (check () <> None)

let test_plan_matching () =
  let p =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~target:"sql" ~cube:"B" ~times:Engine.Faults.always
          Execute exec_error;
      ]
  in
  let check ~target ~cubes stage =
    Engine.Faults.check p ~stage ~target ~cubes
  in
  Alcotest.(check bool) "matches subgraph containing B on sql" true
    (check ~target:"sql" ~cubes:[ "A"; "B" ] Engine.Faults.Execute <> None);
  Alcotest.(check bool) "other target" true
    (check ~target:"vector" ~cubes:[ "B" ] Engine.Faults.Execute = None);
  Alcotest.(check bool) "other cube" true
    (check ~target:"sql" ~cubes:[ "C" ] Engine.Faults.Execute = None);
  Alcotest.(check bool) "other stage" true
    (check ~target:"sql" ~cubes:[ "B" ] Engine.Faults.Translate = None)

let test_plan_probability_deterministic () =
  let mk seed =
    Engine.Faults.plan ~seed
      [
        Engine.Faults.trigger ~times:Engine.Faults.always ~probability:0.5
          Execute exec_error;
      ]
  in
  let firing_pattern p =
    List.init 32 (fun _ ->
        Engine.Faults.check p ~stage:Engine.Faults.Execute ~target:"sql"
          ~cubes:[ "B" ]
        <> None)
  in
  let a = firing_pattern (mk 7) and b = firing_pattern (mk 7) in
  Alcotest.(check (list bool)) "same seed, same faults" a b;
  Alcotest.(check bool) "p=0.5 actually mixes" true
    (List.mem true a && List.mem false a);
  let never =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~times:Engine.Faults.always ~probability:0.
          Execute exec_error;
      ]
  in
  Alcotest.(check bool) "p=0 never fires" true (firing_pattern never = List.init 32 (fun _ -> false))

let test_plan_text_roundtrip () =
  let text =
    "# drill: flaky sql link, dead etl\n\
     seed 42\n\
     fault execute sql GDP execute-error times=2 p=0.5 msg=flaky link\n\
     fault translate * * translate-error times=1\n\
     fault execute etl * worker-crash always\n\
     fault execute * TOTAL timeout times=3\n"
  in
  let p = ok (Engine.Faults.of_string text) in
  Alcotest.(check int) "seed" 42 (Engine.Faults.seed p);
  Alcotest.(check int) "triggers" 4 (List.length (Engine.Faults.triggers p));
  (match Engine.Faults.triggers p with
  | first :: _ ->
      Alcotest.(check bool) "msg keeps spaces" true
        (first.Engine.Faults.t_kind
        = Engine.Faults.Execute_error "flaky link");
      Alcotest.(check bool) "probability parsed" true
        (first.Engine.Faults.t_probability = 0.5)
  | [] -> Alcotest.fail "no triggers");
  (* canonical text survives a round trip *)
  let canon = Engine.Faults.to_string p in
  let p2 = ok (Engine.Faults.of_string canon) in
  Alcotest.(check bool) "round trip" true
    (Engine.Faults.seed p2 = Engine.Faults.seed p
    && Engine.Faults.triggers p2 = Engine.Faults.triggers p)

let test_plan_parse_errors () =
  (match Engine.Faults.of_string "fault bogus * * execute-error\n" with
  | Error msg ->
      Alcotest.(check bool) "names the stage" true
        (Astring_contains.contains msg "bogus")
  | Ok _ -> Alcotest.fail "expected parse error");
  (match Engine.Faults.of_string "fault execute * * exploding-rainbow\n" with
  | Error msg ->
      Alcotest.(check bool) "names the kind" true
        (Astring_contains.contains msg "exploding-rainbow")
  | Ok _ -> Alcotest.fail "expected parse error");
  match Engine.Faults.of_string "seed many\n" with
  | Error msg ->
      Alcotest.(check bool) "names the seed" true
        (Astring_contains.contains msg "seed")
  | Ok _ -> Alcotest.fail "expected parse error"

(* --- backoff --- *)

let test_backoff_deterministic_and_capped () =
  let retry =
    {
      Engine.Dispatcher.default_retry with
      base_backoff = 0.1;
      backoff_multiplier = 2.;
      max_backoff = 0.3;
      jitter = 0.;
    }
  in
  let d n =
    Engine.Dispatcher.backoff_duration ~retry ~seed:1 ~key:"sql/B" ~attempt:n
  in
  Alcotest.check floats "attempt 1" 0.1 (d 1);
  Alcotest.check floats "attempt 2 doubles" 0.2 (d 2);
  Alcotest.check floats "attempt 3 capped" 0.3 (d 3);
  Alcotest.check floats "attempt 4 capped" 0.3 (d 4);
  let jittered =
    { retry with Engine.Dispatcher.jitter = 0.5; base_backoff = 0.1 }
  in
  let j n key =
    Engine.Dispatcher.backoff_duration ~retry:jittered ~seed:1 ~key ~attempt:n
  in
  Alcotest.check floats "jitter is deterministic" (j 2 "sql/B") (j 2 "sql/B");
  Alcotest.(check bool) "jitter within [half, full]" true
    (j 2 "sql/B" >= 0.1 && j 2 "sql/B" <= 0.2);
  Alcotest.(check bool) "different subgraphs desynchronize" true
    (j 2 "sql/B" <> j 2 "sql/Y")

let test_uniform_range_and_determinism () =
  let us =
    List.concat_map
      (fun seed ->
        List.concat_map
          (fun key -> List.init 5 (fun n -> Engine.Faults.uniform ~seed ~key n))
          [ "a"; "sql/B"; "vector/C,Y" ])
      [ 0; 1; 42 ]
  in
  Alcotest.(check bool) "all in [0,1)" true
    (List.for_all (fun u -> u >= 0. && u < 1.) us);
  Alcotest.check floats "deterministic"
    (Engine.Faults.uniform ~seed:9 ~key:"k" 3)
    (Engine.Faults.uniform ~seed:9 ~key:"k" 3);
  Alcotest.(check bool) "keys decorrelate" true
    (Engine.Faults.uniform ~seed:9 ~key:"k" 3
    <> Engine.Faults.uniform ~seed:9 ~key:"l" 3)

(* --- assignment edge cases --- *)

let test_assign_override_unknown_target () =
  let d, _ = mk () in
  let policy =
    {
      Engine.Dispatcher.priority = [ "sql" ];
      overrides = [ ("B", "mainframe") ];
    }
  in
  match
    Engine.Dispatcher.assign ~targets:Engine.Target.builtins ~policy d "B"
  with
  | Error msg ->
      Alcotest.(check bool) "names the unknown target" true
        (Astring_contains.contains msg "mainframe")
  | Ok t -> Alcotest.failf "expected rejection, got %s" t

let test_assign_no_capable_target () =
  let program = "cube A(q: quarter);\nS := stl_t(A);\n" in
  let d, _ = mk ~program ~data:[ List.hd (chain_data ()) ] () in
  let policy = { Engine.Dispatcher.priority = [ "etl" ]; overrides = [] } in
  match
    Engine.Dispatcher.assign ~targets:Engine.Target.builtins ~policy d "S"
  with
  | Error msg ->
      Alcotest.(check bool) "explains" true
        (Astring_contains.contains msg "no target")
  | Ok t -> Alcotest.failf "expected rejection, got %s" t

let test_run_fails_on_assignment_error () =
  (* a static capability gap is a configuration error, not a fault:
     the run refuses to start rather than degrading *)
  let program = "cube A(q: quarter);\nS := stl_t(A);\n" in
  let ctx = mk ~program ~data:[ List.hd (chain_data ()) ] () in
  let policy = { Engine.Dispatcher.priority = [ "etl" ]; overrides = [] } in
  match run ~policy ctx with
  | Error msg ->
      Alcotest.(check bool) "explains" true
        (Astring_contains.contains msg "no target")
  | Ok _ -> Alcotest.fail "expected a configuration error"

(* --- reporting --- *)

let test_failure_summary_text () =
  let faults =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~cube:"B" ~times:Engine.Faults.always Execute
          exec_error;
      ]
  in
  let ctx = mk () in
  let report = ok (run ~faults ctx) in
  let summary = Engine.Dispatcher.failure_summary report in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("summary mentions " ^ needle) true
        (Astring_contains.contains summary needle))
    [ "quarantined: B"; "skipped"; "C"; "execute error: injected"; "sql" ];
  let clean = ok (run (mk ())) in
  Alcotest.(check string) "clean summary is empty" ""
    (Engine.Dispatcher.failure_summary clean)

let test_translation_cache_not_poisoned () =
  let translation = Engine.Translation.create () in
  let d, store = mk () in
  let affected = Engine.Determination.derived_order d in
  let run_with ?faults () =
    Engine.Dispatcher.run ?faults ~retry:fast_retry
      ~targets:Engine.Target.builtins ~policy:split_policy ~translation
      ~determination:d ~store ~affected ()
  in
  let faults =
    Engine.Faults.plan
      [ Engine.Faults.trigger ~cube:"B" ~times:1 Translate trans_error ]
  in
  ignore (ok (run_with ~faults ()));
  let misses = Engine.Translation.cache_misses translation in
  ignore (ok (run_with ()));
  Alcotest.(check int) "second run translates nothing" misses
    (Engine.Translation.cache_misses translation)

(* --- the facade under faults --- *)

let facade_config ?faults ?(policy = split_policy) () =
  {
    Engine.Exlengine.default_config with
    Engine.Exlengine.policy;
    retry = fast_retry;
    faults;
  }

let mk_facade ?faults () =
  let engine = Engine.Exlengine.create ~config:(facade_config ?faults ()) () in
  ok (Engine.Exlengine.register_program engine ~name:"p" chain_program);
  List.iter
    (fun c -> ok (Engine.Exlengine.load_elementary engine c))
    (chain_data ());
  engine

let test_facade_transparent_recovery () =
  let faults =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~cube:"B" ~times:1 Execute exec_error;
        Engine.Faults.trigger ~cube:"Y" ~times:2 Translate trans_error;
      ]
  in
  let engine = mk_facade ~faults () in
  let report = ok (Engine.Exlengine.recompute engine) in
  Alcotest.(check int) "no failure reports" 0
    (List.length report.Engine.Dispatcher.failures);
  let clean = mk_facade () in
  ignore (ok (Engine.Exlengine.recompute clean));
  List.iter
    (fun name ->
      Alcotest.check cube_eq ("cube " ^ name)
        (Option.get (Engine.Exlengine.cube clean name))
        (Option.get (Engine.Exlengine.cube engine name)))
    [ "B"; "C"; "Y" ]

let test_facade_degraded_history () =
  let faults =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~cube:"B" ~times:Engine.Faults.always Execute
          exec_error;
      ]
  in
  let engine = mk_facade ~faults () in
  let report = ok (Engine.Exlengine.recompute engine) in
  Alcotest.(check bool) "degraded" true (Engine.Dispatcher.degraded report);
  let history = Engine.Exlengine.history engine in
  Alcotest.(check int) "no version for quarantined B" 0
    (Engine.Historicity.version_count history "B");
  Alcotest.(check int) "no version for skipped C" 0
    (Engine.Historicity.version_count history "C");
  Alcotest.(check int) "computed Y versioned" 1
    (Engine.Historicity.version_count history "Y");
  Alcotest.(check (list string)) "dirty set still cleared" []
    (Engine.Exlengine.changed engine)

(* The as-of view across a degraded run: a quarantined or skipped cube
   gets no new dated version, so [cube_as_of] at the later date still
   answers with the last successfully computed one. *)
let test_cube_as_of_survives_quarantine () =
  let quarter = Domain.Period (Some Calendar.Quarter) in
  let faults =
    Engine.Faults.plan
      [
        Engine.Faults.trigger ~cube:"Z" ~times:Engine.Faults.always Execute
          exec_error;
      ]
  in
  let config =
    facade_config ~faults ~policy:Engine.Dispatcher.default_policy ()
  in
  let engine = Engine.Exlengine.create ~config () in
  ok
    (Engine.Exlengine.register_program engine ~name:"p"
       "cube A(q: quarter);\nB := A + 1;\nC := B * 2;\n");
  ok
    (Engine.Exlengine.load_elementary engine
       (cube_of "A" [ ("q", quarter) ] [ [ vq 2024 1; vf 1. ] ]));
  let d1 = Calendar.Date.make ~year:2026 ~month:3 ~day:1 in
  let d2 = Calendar.Date.make ~year:2026 ~month:4 ~day:1 in
  ignore (ok (Engine.Exlengine.recompute_all ~as_of:d1 engine));
  let b_v1 = Option.get (Engine.Exlengine.cube engine "B") in
  (* Z arrives in a second program, so the first run never matched the
     trigger.  Once A is revised, B, C and Z share the dirty set and —
     under the default single-target policy — one subgraph, so the
     whole group quarantines on the second run. *)
  ok
    (Engine.Exlengine.register_program engine ~name:"q"
       "cube X(q: quarter);\nZ := X * 2;\n");
  ok
    (Engine.Exlengine.load_elementary engine
       (cube_of "X" [ ("q", quarter) ] [ [ vq 2024 1; vf 1. ] ]));
  ok
    (Engine.Exlengine.load_elementary engine
       (cube_of "A" [ ("q", quarter) ] [ [ vq 2024 1; vf 9. ] ]));
  let report = ok (Engine.Exlengine.recompute ~as_of:d2 engine) in
  Alcotest.(check bool) "second run degraded" true
    (Engine.Dispatcher.degraded report);
  let history = Engine.Exlengine.history engine in
  Alcotest.(check int) "B keeps its single d1 version" 1
    (Engine.Historicity.version_count history "B");
  Alcotest.(check int) "Z never versioned" 0
    (Engine.Historicity.version_count history "Z");
  Alcotest.check cube_eq "as-of d2 still answers the d1 cube" b_v1
    (Option.get (Engine.Exlengine.cube_as_of engine d2 "B"));
  Alcotest.(check bool) "as-of d2 has no Z" true
    (Option.is_none (Engine.Exlengine.cube_as_of engine d2 "Z"))

(* --- failure transparency, property-tested ---

   For any seeded fault plan whose triggers never touch the sql target
   (so every cube keeps at least one fault-free capable target), the
   dispatcher recomputes exactly the same values as a fault-free run:
   faults are invisible in the data, only in the report. *)

let qcheck_count =
  Helpers.qcheck_count ~var:"EXL_FAULT_QCHECK_COUNT" ~default:40

let arb_sql_free_plan =
  let open QCheck in
  let gen =
    Gen.(
      let trigger_gen =
        let* stage = oneofl [ Engine.Faults.Translate; Engine.Faults.Execute ] in
        let* target = oneofl [ "vector"; "etl" ] in
        let* cube = oneofl [ None; Some "B"; Some "C"; Some "Y" ] in
        let* kind =
          oneofl
            [
              Engine.Faults.Execute_error "injected";
              Engine.Faults.Translate_error "injected";
              Engine.Faults.Timeout 0.;
              Engine.Faults.Worker_crash "injected";
            ]
        in
        let* times = oneofl [ 1; 2; 3; Engine.Faults.always ] in
        let* probability = oneofl [ 1.0; 0.5 ] in
        return
          (Engine.Faults.trigger ~target ?cube ~times ~probability stage kind)
      in
      let* seed = 0 -- 1_000_000 in
      let* triggers = list_size (1 -- 6) trigger_gen in
      return (seed, triggers))
  in
  QCheck.make
    ~print:(fun (seed, triggers) ->
      Engine.Faults.to_string (Engine.Faults.plan ~seed triggers))
    gen

(* --- textual plans, property-tested ---

   [to_string] claims to be a canonical form that [of_string] inverts.
   Generate plans over the representable surface — dyadic probabilities
   (printed exactly by %g), single-space-separated messages (the parser
   rejoins [msg=] words with single spaces), and [Timeout 0.] (timeouts
   print no message and re-parse with a zero budget). *)

let arb_textual_plan =
  let open QCheck in
  let gen =
    Gen.(
      let msg_gen =
        let* words =
          list_size (1 -- 3) (oneofl [ "flaky"; "link"; "down"; "oom" ])
        in
        return (String.concat " " words)
      in
      let trigger_gen =
        let* stage = oneofl [ Engine.Faults.Translate; Engine.Faults.Execute ] in
        let* target = oneofl [ None; Some "sql"; Some "vector"; Some "etl" ] in
        let* cube = oneofl [ None; Some "GDP"; Some "B" ] in
        let* kind =
          oneof
            [
              map (fun m -> Engine.Faults.Translate_error m) msg_gen;
              map (fun m -> Engine.Faults.Execute_error m) msg_gen;
              return (Engine.Faults.Timeout 0.);
              map (fun m -> Engine.Faults.Worker_crash m) msg_gen;
            ]
        in
        let* times = oneofl [ 1; 2; 5; Engine.Faults.always ] in
        let* probability = oneofl [ 1.0; 0.5; 0.25; 0.75; 0.125 ] in
        return
          (Engine.Faults.trigger ?target ?cube ~times ~probability stage kind)
      in
      let* seed = 0 -- 1_000_000 in
      let* triggers = list_size (0 -- 8) trigger_gen in
      return (Engine.Faults.plan ~seed triggers))
  in
  QCheck.make ~print:Engine.Faults.to_string gen

let prop_plan_text_roundtrip =
  QCheck.Test.make ~count:qcheck_count
    ~name:"of_string (to_string p) reproduces the plan" arb_textual_plan
    (fun p ->
      let text = Engine.Faults.to_string p in
      match Engine.Faults.of_string text with
      | Error msg -> QCheck.Test.fail_reportf "re-parse failed: %s\n%s" msg text
      | Ok p' ->
          Engine.Faults.seed p' = Engine.Faults.seed p
          && Engine.Faults.triggers p' = Engine.Faults.triggers p
          && Engine.Faults.to_string p' = text)

let prop_failure_transparency =
  QCheck.Test.make ~count:qcheck_count
    ~name:"faults with a fault-free capable target never change values"
    arb_sql_free_plan
    (fun (seed, triggers) ->
      (* vector-first priority so injected faults actually bite *)
      let policy =
        {
          Engine.Dispatcher.priority = [ "vector"; "etl"; "sql" ];
          overrides = [];
        }
      in
      let faulted_ctx = mk () in
      let faults = Engine.Faults.plan ~seed triggers in
      let report =
        match run ~faults ~policy faulted_ctx with
        | Ok r -> r
        | Error msg -> QCheck.Test.fail_reportf "run failed: %s" msg
      in
      if Engine.Dispatcher.degraded report then
        QCheck.Test.fail_reportf "degraded despite fault-free sql:\n%s"
          (Engine.Dispatcher.failure_summary report);
      let clean_ctx = mk () in
      (match run ~policy clean_ctx with
      | Ok _ -> ()
      | Error msg -> QCheck.Test.fail_reportf "clean run failed: %s" msg);
      List.for_all
        (fun name ->
          Cube.equal_data ~eps:1e-7
            (Registry.find_exn (snd clean_ctx) name)
            (Registry.find_exn (snd faulted_ctx) name)
          || QCheck.Test.fail_reportf "cube %s differs under plan\n%s" name
               (Engine.Faults.to_string faults))
        [ "B"; "C"; "Y" ])

let suite =
  [
    ("clean run: empty failure report", `Quick, test_clean_run);
    ("retry: transient execute fault recovered", `Quick, test_transient_execute_retried);
    ("retry: one transient fault per subgraph (acceptance)", `Quick, test_transient_fault_per_subgraph);
    ("retry: transient translate fault recovered", `Quick, test_transient_translate_retried);
    ("retry: injected timeout recovered", `Quick, test_injected_timeout_retried);
    ("fallback: persistent fault moves subgraph to next target", `Quick, test_persistent_fault_falls_back);
    ("fallback: artifact re-translated for the new engine", `Quick, test_fallback_retranslates);
    ("fallback: worker crash surfaces with label", `Quick, test_worker_crash_surfaces_and_falls_back);
    ("quarantine: downstream skipped, siblings survive", `Quick, test_quarantine_with_downstream_skip);
    ("quarantine: only capable target (acceptance)", `Quick, test_only_capable_target_quarantines);
    ("timeout: zero budget quarantines attempted subgraphs", `Quick, test_subgraph_timeout);
    ("parallel: faults recovered on the pool too", `Quick, test_parallel_dispatch_with_faults);
    ("pool: try_all labels crashes per task", `Quick, test_pool_try_all_labels_crashes);
    ("pool: try_all never raises", `Quick, test_pool_try_all_never_raises);
    ("plan: times budget and reset", `Quick, test_plan_times_exhaustion);
    ("plan: trigger matching", `Quick, test_plan_matching);
    ("plan: probability is seeded and deterministic", `Quick, test_plan_probability_deterministic);
    ("plan: text round trip", `Quick, test_plan_text_roundtrip);
    ("plan: parse errors", `Quick, test_plan_parse_errors);
    ("backoff: deterministic jitter, exponential, capped", `Quick, test_backoff_deterministic_and_capped);
    ("backoff: uniform hash range and determinism", `Quick, test_uniform_range_and_determinism);
    ("assign: override naming unknown target", `Quick, test_assign_override_unknown_target);
    ("assign: no capable target", `Quick, test_assign_no_capable_target);
    ("run: assignment gap is a config error", `Quick, test_run_fails_on_assignment_error);
    ("report: failure summary text", `Quick, test_failure_summary_text);
    ("translation: cache not poisoned by injected faults", `Quick, test_translation_cache_not_poisoned);
    ("facade: transparent recovery", `Quick, test_facade_transparent_recovery);
    ("facade: degraded run records no history for dead cubes", `Quick, test_facade_degraded_history);
    ("facade: cube_as_of survives quarantine", `Quick, test_cube_as_of_survives_quarantine);
    QCheck_alcotest.to_alcotest prop_plan_text_roundtrip;
    QCheck_alcotest.to_alcotest prop_failure_transparency;
  ]
