(* Columnar batches and the vectorized chase: dictionary round-trips,
   kernel semantics, copy-on-write snapshot isolation, and the A/B
   property that the columnar path reproduces the row engine exactly —
   same solution, same counters. *)
open Matrix
open Helpers
module M = Mappings
module X = Exchange
module C = Columnar

(* --- dictionaries --- *)

let test_dict_roundtrip () =
  let d = C.Dict.create () in
  let values =
    [ vi 5; vf 5.; vs "a"; Value.Null; Value.Bool true; vf 2.5; vq 2020 1 ]
  in
  let codes = List.map (C.Dict.encode d) values in
  (* Int 5 and Float 5. are Value.equal: one code, like the row stores'
     set semantics. *)
  Alcotest.(check int) "int/float conflate" (List.nth codes 0) (List.nth codes 1);
  Alcotest.(check int) "distinct values, distinct codes" 6 (C.Dict.size d);
  List.iteri
    (fun i c ->
      Alcotest.check value "decode round-trips" (List.nth values i)
        (C.Dict.decode d c))
    codes;
  let c5 = List.nth codes 0 in
  Alcotest.(check bool) "numeric float view" true (C.Dict.float_defined d c5);
  Alcotest.(check (float 0.)) "float view value" 5. (C.Dict.float_of_code d c5);
  Alcotest.(check bool)
    "string has no float view" false
    (C.Dict.float_defined d (List.nth codes 2));
  Alcotest.(check bool) "null code" true (C.Dict.is_null d (List.nth codes 3));
  Alcotest.(check bool) "find hit" true (C.Dict.find d (vs "a") <> None);
  Alcotest.(check bool) "find never adds" true (C.Dict.find d (vs "zz") = None);
  Alcotest.(check int) "size unchanged by find" 6 (C.Dict.size d);
  (* encode is idempotent *)
  Alcotest.(check int) "re-encode" (List.nth codes 2) (C.Dict.encode d (vs "a"))

let test_dict_xlate () =
  let a = C.Dict.create () and b = C.Dict.create () in
  List.iter (fun v -> ignore (C.Dict.encode a v)) [ vs "x"; vs "y"; vs "z" ];
  List.iter (fun v -> ignore (C.Dict.encode b v)) [ vs "z"; vs "x" ];
  (match C.Dict.xlate a b with
  | None -> Alcotest.fail "distinct dicts must translate"
  | Some x ->
      (* x -> b's 1, y -> missing, z -> b's 0 *)
      Alcotest.(check (array int)) "translation" [| 1; -1; 0 |] x);
  Alcotest.(check bool) "same dict needs no translation" true
    (C.Dict.xlate a a = None)

(* --- batches --- *)

let test_batch_roundtrip () =
  let schema =
    Schema.make ~name:"B" ~dims:[ ("r", Domain.String); ("x", Domain.Int) ] ()
  in
  let pool = C.Dict.create_pool () in
  let facts =
    [
      [| vs "n"; vi 1; vf 2.5 |];
      [| vs "s"; vi 2; Value.Null |];
      [| vs "n"; vi 2; vs "oops" |];
      [| vs "s"; vi 1; vf Float.nan |];
    ]
  in
  let b = C.Batch.of_facts ~pool schema facts in
  Alcotest.(check int) "rows" 4 (C.Batch.nrows b);
  List.iter2
    (fun f g ->
      Alcotest.(check int) "width" (Array.length f) (Array.length g);
      Array.iteri
        (fun i v -> Alcotest.check value "round-trips" v g.(i))
        f)
    facts (C.Batch.to_facts b);
  Alcotest.(check bool) "numeric measure valid" true (C.Batch.measure_valid b 0);
  Alcotest.(check bool) "null measure invalid" false (C.Batch.measure_valid b 1);
  Alcotest.(check bool) "string measure invalid" false (C.Batch.measure_valid b 2);
  (* NaN is a float: a defined measure, like Value.to_float says *)
  Alcotest.(check bool) "nan measure valid" true (C.Batch.measure_valid b 3);
  Alcotest.(check bool) "nan gathered" true
    (Float.is_nan (C.Batch.measure_floats b).(3));
  (* batches of one pool share per-domain dictionaries *)
  let b2 = C.Batch.of_facts ~pool schema [ [| vs "n"; vi 9; vf 0. |] ] in
  Alcotest.(check bool) "shared dicts" true
    (C.Batch.dim_dict b 0 == C.Batch.dim_dict b2 0)

(* --- kernels --- *)

let test_kernels () =
  (* mixed-radix packing is exact *)
  (match C.Kernels.pack ~nrows:3 [| [| 0; 1; 2 |]; [| 1; 0; 1 |] |] [| 3; 2 |] with
  | None -> Alcotest.fail "pack in range"
  | Some keys -> Alcotest.(check (array int)) "packed" [| 3; 1; 5 |] keys);
  (* a negative code poisons its row's key *)
  (match C.Kernels.pack ~nrows:2 [| [| 0; -1 |] |] [| 4 |] with
  | None -> Alcotest.fail "pack"
  | Some keys -> Alcotest.(check (array int)) "poisoned" [| 0; -1 |] keys);
  (* overflow falls to the wide renumbering path, same partition *)
  let col = [| 0; 1; 0; 2 |] in
  Alcotest.(check (array int))
    "wide keys" [| 0; 1; 0; 2 |]
    (C.Kernels.dense_keys ~nrows:4 [| col; col |] [| max_int; max_int |]);
  (* group: first-seen ids and representative rows *)
  let g = C.Kernels.group [| 7; 3; 7; 9; 3 |] in
  Alcotest.(check (array int)) "gids" [| 0; 1; 0; 2; 1 |] g.C.Kernels.gids;
  Alcotest.(check int) "n_groups" 3 g.C.Kernels.n_groups;
  Alcotest.(check (array int)) "rep rows" [| 0; 1; 3 |] g.C.Kernels.rep_rows;
  (* segment: stable within each group *)
  let offsets, data = C.Kernels.segment g [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (array int)) "offsets" [| 0; 2; 4; 5 |] offsets;
  Alcotest.check float_array "segmented" [| 1.; 3.; 2.; 5.; 4. |] data;
  (* hash join: probe order, per-probe bucket sizes, poisoned keys *)
  let pairs = ref [] and probes = ref [] in
  C.Kernels.hash_join ~build_keys:[| 1; 2; 1; -1 |] ~probe_keys:[| 1; -1; 5; 2 |]
    ~on_probe:(fun pr size -> probes := (pr, size) :: !probes)
    (fun pr br -> pairs := (pr, br) :: !pairs);
  Alcotest.(check (list (pair int int)))
    "bucket sizes" [ (0, 2); (1, 0); (2, 0); (3, 1) ]
    (List.rev !probes);
  Alcotest.(check (list (pair int int)))
    "pairs" [ (0, 2); (0, 0); (3, 1) ]
    (List.rev !pairs)

(* --- snapshot isolation (copy-on-write indexes) --- *)

let test_snapshot_isolation () =
  let inst = X.Instance.create () in
  X.Instance.add_relation inst
    (Schema.make ~name:"A" ~dims:[ ("x", Domain.Int) ] ());
  for i = 1 to 5 do
    ignore (X.Instance.insert inst "A" [| vi i; vf (float_of_int i) |])
  done;
  X.Instance.ensure_index inst "A" [ 0 ];
  let snap = X.Instance.copy inst in
  (* mutate the original: the snapshot shares the index table
     copy-on-write and must keep the pre-mutation view *)
  ignore (X.Instance.insert inst "A" [| vi 9; vf 9. |]);
  ignore (X.Instance.remove inst "A" [| vi 1; vf 1. |]);
  Alcotest.(check int) "orig cardinality" 5 (X.Instance.cardinality inst "A");
  Alcotest.(check int) "snap cardinality" 5 (X.Instance.cardinality snap "A");
  Alcotest.(check int) "snap keeps removed fact" 1
    (List.length (X.Instance.lookup_index snap "A" [ 0 ] [ vi 1 ]));
  Alcotest.(check int) "snap misses new fact" 0
    (List.length (X.Instance.lookup_index snap "A" [ 0 ] [ vi 9 ]));
  Alcotest.(check int) "orig sees new fact" 1
    (List.length (X.Instance.lookup_index inst "A" [ 0 ] [ vi 9 ]));
  Alcotest.(check int) "orig dropped removed fact" 0
    (List.length (X.Instance.lookup_index inst "A" [ 0 ] [ vi 1 ]));
  (* mutate the snapshot: independent in the other direction too *)
  ignore (X.Instance.insert snap "A" [| vi 7; vf 7. |]);
  Alcotest.(check int) "orig misses snap's fact" 0
    (List.length (X.Instance.lookup_index inst "A" [ 0 ] [ vi 7 ]));
  Alcotest.(check int) "snap sees its fact" 1
    (List.length (X.Instance.lookup_index snap "A" [ 0 ] [ vi 7 ]))

let test_set_batch_lazy () =
  let schema = Schema.make ~name:"S" ~dims:[ ("x", Domain.Int) ] () in
  let src = X.Instance.create () in
  X.Instance.add_relation src schema;
  for i = 1 to 4 do
    ignore (X.Instance.insert src "S" [| vi i; vf (float_of_int i) |])
  done;
  let b = X.Instance.batch src "S" in
  let tgt = X.Instance.create () in
  X.Instance.add_relation tgt schema;
  X.Instance.set_batch tgt "S" b;
  (* whole-relation reads serve straight from the pending batch *)
  Alcotest.(check int) "cardinality from batch" 4 (X.Instance.cardinality tgt "S");
  Alcotest.(check int) "facts from batch" 4
    (List.length (X.Instance.facts tgt "S"));
  (* snapshot while pending, then materialize and mutate one side *)
  let snap = X.Instance.copy tgt in
  Alcotest.(check bool) "mem materializes" true
    (X.Instance.mem tgt "S" [| vi 2; vf 2. |]);
  ignore (X.Instance.remove tgt "S" [| vi 2; vf 2. |]);
  Alcotest.(check int) "mutated side" 3 (X.Instance.cardinality tgt "S");
  Alcotest.(check int) "snapshot untouched" 4 (X.Instance.cardinality snap "S");
  Alcotest.(check bool) "snapshot keeps the fact" true
    (X.Instance.mem snap "S" [| vi 2; vf 2. |]);
  (* schema mismatch is rejected *)
  let t2 = X.Instance.create () in
  X.Instance.add_relation t2
    (Schema.make ~name:"S" ~dims:[ ("x", Domain.String) ] ());
  match X.Instance.set_batch t2 "S" b with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "schema mismatch accepted"

(* --- deterministic A/B on the worked example --- *)

let facts_equal f1 f2 =
  List.length f1 = List.length f2
  && List.for_all2
       (fun a b ->
         Array.length a = Array.length b && Array.for_all2 Value.equal a b)
       f1 f2

let check_same_run mapping reg =
  match
    ( X.Chase.run ~columnar:false mapping (X.Instance.of_registry reg),
      X.Chase.run ~columnar:true mapping (X.Instance.of_registry reg) )
  with
  | Ok (j1, s1), Ok (j2, s2) ->
      List.iter
        (fun (s : Schema.t) ->
          let name = s.Schema.name in
          Alcotest.(check bool)
            (name ^ " facts identical") true
            (facts_equal (X.Instance.facts j1 name) (X.Instance.facts j2 name)))
        mapping.M.Mapping.target;
      Alcotest.(check int)
        "matches_examined" s1.X.Chase.matches_examined s2.X.Chase.matches_examined;
      Alcotest.(check int)
        "tuples_generated" s1.X.Chase.tuples_generated s2.X.Chase.tuples_generated;
      Alcotest.(check int) "tgds_applied" s1.X.Chase.tgds_applied s2.X.Chase.tgds_applied;
      Alcotest.(check int) "egd_checks" s1.X.Chase.egd_checks s2.X.Chase.egd_checks;
      Alcotest.(check int) "nulls_created" s1.X.Chase.nulls_created s2.X.Chase.nulls_created;
      Alcotest.(check int) "rounds" s1.X.Chase.rounds s2.X.Chase.rounds
  | Error e, _ | _, Error e -> Alcotest.failf "chase failed: %s" e

let test_overview_ab () =
  let reg = overview_registry () in
  let checked = load_overview () in
  let { M.Generate.mapping; _ } = check_ok (M.Generate.of_checked checked) in
  check_same_run mapping reg

(* --- the property: chase ~columnar:true == chase ~columnar:false --- *)

let qcheck_count =
  Helpers.qcheck_count ~var:"EXL_COL_QCHECK_COUNT" ~default:30

let prop_columnar_matches_row =
  QCheck.Test.make ~count:qcheck_count
    ~name:"chase ~columnar:true == chase ~columnar:false on random programs"
    Gen.arb_seed (fun seed ->
      let src, reg = Gen.program_of_seed seed in
      match Exl.Program.load src with
      | Error e ->
          QCheck.Test.fail_reportf "generated program does not check: %s\n%s"
            (Exl.Errors.to_string e) src
      | Ok checked -> (
          let { M.Generate.mapping; _ } =
            check_ok (M.Generate.of_checked checked)
          in
          match
            ( X.Chase.run ~columnar:false mapping (X.Instance.of_registry reg),
              X.Chase.run ~columnar:true mapping (X.Instance.of_registry reg) )
          with
          | Ok (j1, s1), Ok (j2, s2) ->
              List.iter
                (fun (s : Schema.t) ->
                  let name = s.Schema.name in
                  if
                    not
                      (facts_equal
                         (X.Instance.facts j1 name)
                         (X.Instance.facts j2 name))
                  then
                    QCheck.Test.fail_reportf "relation %s differs on\n%s" name
                      src)
                mapping.M.Mapping.target;
              if
                s1.X.Chase.matches_examined <> s2.X.Chase.matches_examined
                || s1.X.Chase.tuples_generated <> s2.X.Chase.tuples_generated
                || s1.X.Chase.tgds_applied <> s2.X.Chase.tgds_applied
                || s1.X.Chase.egd_checks <> s2.X.Chase.egd_checks
                || s1.X.Chase.nulls_created <> s2.X.Chase.nulls_created
                || s1.X.Chase.rounds <> s2.X.Chase.rounds
              then
                QCheck.Test.fail_reportf
                  "stats diverge (row %d/%d/%d/%d/%d/%d vs col \
                   %d/%d/%d/%d/%d/%d) on\n\
                   %s"
                  s1.X.Chase.matches_examined s1.X.Chase.tuples_generated
                  s1.X.Chase.tgds_applied s1.X.Chase.egd_checks
                  s1.X.Chase.nulls_created s1.X.Chase.rounds
                  s2.X.Chase.matches_examined s2.X.Chase.tuples_generated
                  s2.X.Chase.tgds_applied s2.X.Chase.egd_checks
                  s2.X.Chase.nulls_created s2.X.Chase.rounds src;
              true
          | Error e1, Error e2 ->
              if e1 <> e2 then
                QCheck.Test.fail_reportf
                  "error messages diverge (%s vs %s) on\n%s" e1 e2 src;
              true
          | Ok _, Error e ->
              QCheck.Test.fail_reportf "columnar failed, row passed: %s\n%s" e
                src
          | Error e, Ok _ ->
              QCheck.Test.fail_reportf "row failed, columnar passed: %s\n%s" e
                src))

let suite =
  [
    ("dict: encode/decode round-trip", `Quick, test_dict_roundtrip);
    ("dict: cross-dictionary translation", `Quick, test_dict_xlate);
    ("batch: round-trip with null measures", `Quick, test_batch_roundtrip);
    ("kernels: pack/group/segment/join", `Quick, test_kernels);
    ("instance: snapshot isolation (COW indexes)", `Quick, test_snapshot_isolation);
    ("instance: set_batch lazy row views", `Quick, test_set_batch_lazy);
    ("chase: columnar A/B on the overview", `Quick, test_overview_ab);
    QCheck_alcotest.to_alcotest prop_columnar_matches_row;
  ]
