(* The static-analysis subsystem: accumulating diagnostics, EXL lints,
   and the mapping-level checks (safety, weak acyclicity with its
   certificate, egd consistency, stratification). *)
open Matrix
module A = Analysis
module M = Mappings

let lint source = (A.Lint.source_diagnostics source).A.Lint.diagnostics
let codes source = List.map (fun d -> d.A.Diagnostic.code) (lint source)

let check_codes name expected source =
  Alcotest.(check (list string)) name expected (codes source)

let check_has_code name code source =
  Alcotest.(check bool)
    (Printf.sprintf "%s (wants %s in [%s])" name code
       (String.concat "; " (codes source)))
    true
    (List.mem code (codes source))

(* --- the diagnostics core --- *)

let test_catalogue () =
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (code ^ " described") true
        (A.Diagnostic.description code <> None))
    A.Diagnostic.known_codes;
  (* codes are unique *)
  Alcotest.(check int) "no duplicate codes"
    (List.length A.Diagnostic.known_codes)
    (List.length (List.sort_uniq compare A.Diagnostic.known_codes));
  (* severity follows the prefix *)
  Alcotest.(check bool) "W is warning" true
    (A.Diagnostic.is_warning (A.Diagnostic.make ~code:"W101" "x"));
  Alcotest.(check bool) "E is error" true
    (A.Diagnostic.is_error (A.Diagnostic.make ~code:"E007" "x"))

let test_render () =
  let d =
    A.Diagnostic.make ~code:"E007"
      ~pos:{ Exl.Ast.line = 2; col = 6 }
      "reference to undefined cube X"
  in
  Alcotest.(check string) "text"
    "error[E007]: line 2, column 6: reference to undefined cube X"
    (A.Diagnostic.to_string d);
  let caret = A.Diagnostic.to_string_with_source ~source:"cube A(x: int);\nB := X;\n" d in
  Alcotest.(check bool) "caret under column" true
    (String.length caret > 0
    && String.sub caret (String.length caret - 1) 1 = "^");
  let json = A.Diagnostic.list_to_json [ d ] in
  Alcotest.(check bool) "json has code" true
    (Astring_contains.contains json {|"code":"E007"|});
  Alcotest.(check bool) "json has summary" true
    (Astring_contains.contains json {|"summary":{"errors":1,"warnings":0,"infos":0}|})

(* --- per-code source fixtures: one negative (fires) and the positive
   variant (clean) --- *)

let clean = "cube A(q: quarter);\nB := A + 1;\n"

let test_code_fixtures () =
  check_codes "clean program" [] clean;
  check_codes "E001 syntax" [ "E001" ] "cube A(;\n";
  check_codes "E002 generic type error" [ "E002" ]
    "cube A(q: quarter);\nB := shift(A);\n";
  check_codes "E003 duplicate dim" [ "E003" ] "cube A(x: int, x: int);\n";
  check_codes "E004 bad group-by key" [ "E004" ]
    "cube A(q: quarter);\nB := sum(A, group by nodim);\n";
  check_codes "E005 unknown operator" [ "E005" ]
    "cube A(q: quarter);\nB := frobnicate(A);\n";
  check_codes "E006 arity mismatch" [ "E006" ]
    "cube A(q: quarter);\nB := abs(1, 2);\n";
  check_codes "E007 undefined cube" [ "E007" ] "B := MISSING + 1;\n";
  check_codes "E008 dim mismatch" [ "E008" ]
    "cube A(x: int);\ncube B(y: int);\nC := A + B;\n";
  check_codes "E009 duplicate cube" [ "E009" ]
    "cube A(x: int);\ncube A(x: int);\n";
  check_codes "W101 unused elementary" [ "W101" ]
    "cube A(q: quarter);\ncube UNUSED(x: int);\nB := A + 1;\n";
  check_codes "W102 unreached derived" [ "W102" ]
    "cube A(q: quarter);\nB__1 := A + 1;\n";
  check_codes "W103 no-op aggregation" [ "W103" ]
    "cube A(q: quarter, r: string);\nB := sum(A, group by q, r);\n";
  check_codes "W104 period not inferable" [ "W104" ]
    "cube A(y: year);\nB := deseason(A);\n";
  (* shift by zero normalizes to a pure copy, so W106 fires alongside *)
  check_codes "W105 shift by zero" [ "W105"; "W106" ]
    "cube A(q: quarter);\nB := shift(A, 0);\n";
  check_codes "W106 plain copy" [ "W106" ] "cube A(q: quarter);\nB := A;\n";
  check_codes "W106 clean when computing" []
    "cube A(q: quarter);\nB := A * 2;\n";
  check_codes "W105 shift out of range" [ "W105" ]
    "cube A(q: quarter);\nB := shift(A, 1000000);\n";
  (* positive variants of the warning lints *)
  check_codes "W103 clean when collapsing" []
    "cube A(q: quarter, r: string);\nB := sum(A, group by q);\n";
  check_codes "W104 clean with explicit period" []
    "cube A(y: year);\nB := deseason(A, 3);\n";
  check_codes "W105 clean shift" [] "cube A(q: quarter);\nB := shift(A, 4);\n"

let test_every_fixture_code_registered () =
  (* every diagnostic any fixture produces must be catalogued *)
  let sources =
    [
      "cube A(;\n";
      "cube A(q: quarter);\nB := shift(A);\n";
      "cube A(x: int, x: int);\nB := sum(A, group by nodim);\n";
      "cube UNUSED(x: int);\nB__1 := shift(UNUSED, 0);\n";
    ]
  in
  List.iter
    (List.iter (fun c ->
         Alcotest.(check bool) (c ^ " registered") true
           (A.Diagnostic.description c <> None)))
    (List.map codes sources)

let test_accumulation_and_order () =
  let ds =
    lint
      "cube A(x: int, x: int);\ncube B(y: int);\nC := B + NOPE;\nD := frobnicate(B);\n"
  in
  Alcotest.(check (list string)) "all errors, in position order"
    [ "E003"; "E007"; "E005" ]
    (List.map (fun d -> d.A.Diagnostic.code) ds)

let test_cascade_suppression () =
  (* the failed declaration poisons its dependents: one error, not three *)
  check_codes "poisoned downstream statements stay silent" [ "E003" ]
    "cube A(x: int, x: int);\nB := A + 1;\nC := B * 2;\n"

let test_filter_and_exit_code () =
  let report =
    A.Lint.source_diagnostics
      "cube A(q: quarter);\ncube UNUSED(x: int);\nB := shift(A, 0);\n"
  in
  (* W101 + W105, plus W106: the zero shift is also a provable copy *)
  Alcotest.(check int) "three warnings" 3 (List.length report.A.Lint.diagnostics);
  Alcotest.(check int) "warnings exit 0" 0
    (A.Lint.exit_code ~deny_warnings:false report);
  Alcotest.(check int) "deny-warnings exit 1" 1
    (A.Lint.exit_code ~deny_warnings:true report);
  let suppressed = A.Lint.filter ~suppress:[ "W101"; "W105"; "W106" ] report in
  Alcotest.(check int) "all suppressed" 0
    (List.length suppressed.A.Lint.diagnostics);
  Alcotest.(check int) "suppressed + deny exits 0" 0
    (A.Lint.exit_code ~deny_warnings:true suppressed);
  (* errors survive suppression *)
  let bad = A.Lint.source_diagnostics "B := NOPE;\n" in
  let still = A.Lint.filter ~suppress:[ "E007" ] bad in
  Alcotest.(check int) "errors not suppressible" 1
    (List.length still.A.Lint.diagnostics)

(* --- mapping-level checks on hand-built mappings --- *)

let quarter = Domain.Period (Some Calendar.Quarter)
let tv v = M.Term.Var v

let schema name dims = Schema.make ~name ~dims ()

let mapping ?(st_tgds = []) ?(egds = []) ~source ~target t_tgds =
  { M.Mapping.source; target; st_tgds; t_tgds; egds }

let test_safety () =
  let safe =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom "A" [ tv "t"; tv "m" ] ];
        rhs = M.Tgd.atom "B" [ tv "t"; tv "m" ];
      }
  in
  let unsafe =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom "A" [ tv "t"; tv "m" ] ];
        rhs = M.Tgd.atom "B" [ tv "t"; tv "z" ];
      }
  in
  let a = schema "A" [ ("t", quarter) ] and b = schema "B" [ ("t", quarter) ] in
  let ok = mapping ~source:[ a ] ~target:[ a; b ] [ safe ] in
  let bad = mapping ~source:[ a ] ~target:[ a; b ] [ unsafe ] in
  Alcotest.(check int) "safe tgd passes" 0 (List.length (A.Map_lints.safety ok));
  let ds = A.Map_lints.safety bad in
  Alcotest.(check (list string)) "E201 fired" [ "E201" ]
    (List.map (fun d -> d.A.Diagnostic.code) ds);
  Alcotest.(check bool) "names the variable" true
    (Astring_contains.contains (List.hd ds).A.Diagnostic.message "z");
  (* agreement with the engine's own predicate *)
  Alcotest.(check bool) "is_safe agrees" false (M.Tgd.is_safe unsafe)

let self_feeding_mapping () =
  (* C(t, m) → C(t+1, m): the shifted head can mint new periods
     forever — the canonical weak-acyclicity violation. *)
  let c = schema "C" [ ("t", quarter) ] in
  let tgd =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom "C" [ tv "t"; tv "m" ] ];
        rhs = M.Tgd.atom "C" [ M.Term.Shifted (tv "t", 1); tv "m" ];
      }
  in
  mapping ~source:[] ~target:[ c ] [ tgd ]

let test_weak_acyclicity_rejects_cycle () =
  let m = self_feeding_mapping () in
  (match A.Acyclicity.check m with
  | Ok _ -> Alcotest.fail "expected a weak-acyclicity violation"
  | Error { A.Acyclicity.cycle } ->
      Alcotest.(check bool) "cycle is non-empty" true (cycle <> []);
      Alcotest.(check bool) "cycle crosses a special edge" true
        (List.exists (fun e -> e.A.Acyclicity.kind = A.Acyclicity.Special) cycle));
  match A.Acyclicity.diagnose m with
  | [ d ] ->
      Alcotest.(check string) "E202" "E202" d.A.Diagnostic.code;
      Alcotest.(check bool) "renders the cycle" true
        (Astring_contains.contains d.A.Diagnostic.message "C.t")
  | ds -> Alcotest.failf "expected one E202, got %d diagnostics" (List.length ds)

let test_ordinary_cycle_is_fine () =
  (* mutual plain copies: a cycle, but through ordinary edges only *)
  let b = schema "B" [ ("t", quarter) ] and c = schema "C" [ ("t", quarter) ] in
  let copy src dst =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom src [ tv "t"; tv "m" ] ];
        rhs = M.Tgd.atom dst [ tv "t"; tv "m" ];
      }
  in
  let m = mapping ~source:[] ~target:[ b; c ] [ copy "B" "C"; copy "C" "B" ] in
  match A.Acyclicity.check m with
  | Ok cert ->
      Alcotest.(check (result unit string)) "certificate verifies" (Ok ())
        (A.Acyclicity.verify cert)
  | Error _ -> Alcotest.fail "ordinary cycles must be accepted"

let test_certificate_verification_catches_tampering () =
  let a = schema "A" [ ("t", quarter) ] and b = schema "B" [ ("t", quarter) ] in
  let tgd =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom "A" [ tv "t"; tv "m" ] ];
        rhs = M.Tgd.atom "B" [ M.Term.Shifted (tv "t", 4); tv "m" ];
      }
  in
  let m = mapping ~source:[ a ] ~target:[ a; b ] [ tgd ] in
  match A.Acyclicity.check m with
  | Error _ -> Alcotest.fail "shift into a fresh relation is acyclic"
  | Ok cert ->
      Alcotest.(check (result unit string)) "genuine certificate" (Ok ())
        (A.Acyclicity.verify cert);
      Alcotest.(check bool) "shift raises the rank" true (cert.A.Acyclicity.max_rank >= 1);
      let tampered =
        {
          cert with
          A.Acyclicity.ranks =
            List.map (fun (p, _) -> (p, 0)) cert.A.Acyclicity.ranks;
        }
      in
      Alcotest.(check bool) "zeroed ranks rejected" true
        (A.Acyclicity.verify tampered <> Ok ())

let test_egd_consistency () =
  let a = schema "A" [ ("x", Domain.Int); ("y", Domain.Int) ] in
  let b = schema "B" [ ("x", Domain.Int) ] in
  let project =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom "A" [ tv "x"; tv "y"; tv "m" ] ];
        rhs = M.Tgd.atom "B" [ tv "x"; tv "m" ];
      }
  in
  let m =
    mapping ~source:[ a ] ~target:[ a; b ]
      ~egds:[ M.Egd.of_schema b ]
      [ project ]
  in
  (match A.Map_lints.egd_consistency m with
  | [ d ] -> Alcotest.(check string) "E203" "E203" d.A.Diagnostic.code
  | ds -> Alcotest.failf "expected one E203, got %d" (List.length ds));
  (* a shifted head dimension is injective, so the measure stays
     determined and the egd holds *)
  let c = schema "C" [ ("t", quarter) ] and d = schema "D" [ ("t", quarter) ] in
  let shift_copy =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom "C" [ tv "t"; tv "m" ] ];
        rhs = M.Tgd.atom "D" [ M.Term.Shifted (tv "t", 1); tv "m" ];
      }
  in
  let ok =
    mapping ~source:[ c ] ~target:[ c; d ]
      ~egds:[ M.Egd.of_schema d ]
      [ shift_copy ]
  in
  Alcotest.(check int) "shifted copy is consistent" 0
    (List.length (A.Map_lints.egd_consistency ok))

let test_stratification_failure () =
  let b = schema "B" [ ("q", Domain.Int) ] and c = schema "C" [ ("q", Domain.Int) ] in
  let copy src dst =
    M.Tgd.Tuple_level
      {
        lhs = [ M.Tgd.atom src [ tv "q"; tv "m" ] ];
        rhs = M.Tgd.atom dst [ tv "q"; tv "m" ];
      }
  in
  let m =
    mapping
      ~source:[ schema "A" [ ("q", Domain.Int) ] ]
      ~target:[ b; c ]
      [ copy "C" "B"; copy "B" "C" ]
  in
  match A.Map_lints.stratification m with
  | d :: _ -> Alcotest.(check string) "E204" "E204" d.A.Diagnostic.code
  | [] -> Alcotest.fail "expected a stratification failure"

let test_unproduced_target () =
  let a = schema "A" [ ("x", Domain.Int) ] in
  let orphan = schema "ORPHAN" [ ("x", Domain.Int) ] in
  let m = mapping ~source:[ a ] ~target:[ a; orphan ] [] in
  match A.Map_lints.unproduced_targets m with
  | [ d ] ->
      Alcotest.(check string) "W205" "W205" d.A.Diagnostic.code;
      Alcotest.(check bool) "names the relation" true
        (Astring_contains.contains d.A.Diagnostic.message "ORPHAN")
  | ds -> Alcotest.failf "expected one W205, got %d" (List.length ds)

(* --- every example program's mapping is certified --- *)

let example_files =
  [
    "../examples/quickstart.exl";
    "../examples/monetary_aggregates.exl";
    "../examples/seasonal_tourism.exl";
    "../examples/sdmx_dissemination.exl";
    "../examples/multi_target_dispatch.exl";
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let certify source =
  match (A.Lint.source_diagnostics source).A.Lint.mapping with
  | None -> Error "no mapping generated"
  | Some m -> (
      match A.Map_lints.safety m with
      | _ :: _ -> Error "unsafe tgd"
      | [] -> (
          match A.Acyclicity.check m with
          | Error _ -> Error "not weakly acyclic"
          | Ok cert -> A.Acyclicity.verify cert))

let test_examples_certified () =
  List.iter
    (fun path ->
      Alcotest.(check (result unit string))
        (path ^ " certified") (Ok ())
        (certify (read_file path)))
    example_files

let test_random_programs_certified =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"random programs are weakly acyclic + safe"
       Gen.arb_seed (fun seed ->
         let src, _ = Gen.program_of_seed seed in
         certify src = Ok ()))

let suite =
  [
      ("diagnostic catalogue", `Quick, test_catalogue);
      ("diagnostic rendering", `Quick, test_render);
      ("per-code fixtures", `Quick, test_code_fixtures);
      ("fixture codes registered", `Quick, test_every_fixture_code_registered);
      ("accumulation in position order", `Quick, test_accumulation_and_order);
      ("cascade suppression", `Quick, test_cascade_suppression);
      ("filter and exit codes", `Quick, test_filter_and_exit_code);
      ("tgd safety", `Quick, test_safety);
      ("weak acyclicity: cyclic shift rejected", `Quick, test_weak_acyclicity_rejects_cycle);
      ("weak acyclicity: ordinary cycle accepted", `Quick, test_ordinary_cycle_is_fine);
      ("certificate verification", `Quick, test_certificate_verification_catches_tampering);
      ("egd consistency", `Quick, test_egd_consistency);
      ("stratification failure", `Quick, test_stratification_failure);
      ("unproduced target", `Quick, test_unproduced_target);
      ("example mappings certified", `Quick, test_examples_certified);
      test_random_programs_certified;
    ]
