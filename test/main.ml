(* Every mapping any test chases must also be statically certified:
   safe tgds and a verified weak-acyclicity certificate. *)
let () =
  Exchange.Chase.static_check :=
    fun m ->
      match Analysis.Map_lints.safety m with
      | d :: _ -> Error (Analysis.Diagnostic.to_string d)
      | [] -> (
          match Analysis.Acyclicity.check m with
          | Error { Analysis.Acyclicity.cycle } ->
              Error
                ("not weakly acyclic: " ^ Analysis.Acyclicity.cycle_to_string m cycle)
          | Ok cert -> Analysis.Acyclicity.verify cert)

let () =
  Alcotest.run "exlengine"
    [
      ("analysis", Test_analysis.suite);
      ("optimize", Test_optimize.suite);
      ("matrix", Test_matrix.suite);
      ("stats", Test_stats.suite);
      ("ops", Test_ops.suite);
      ("exl", Test_exl.suite);
      ("mappings", Test_mappings.suite);
      ("filter", Test_filter.suite);
      ("outer", Test_outer.suite);
      ("exchange", Test_exchange.suite);
      ("columnar", Test_columnar.suite);
      ("shard", Test_shard.suite);
      ("delta", Test_delta.suite);
      ("relational", Test_relational.suite);
      ("vector", Test_vector.suite);
      ("etl", Test_etl.suite);
      ("engine", Test_engine.suite);
      ("incr", Test_incr.suite);
      ("pool", Test_pool.suite);
      ("obs", Test_obs.suite);
      ("faults", Test_faults.suite);
      ("core", Test_core.suite);
      ("fuzz", Test_fuzz.suite);
      ("serve", Test_serve.suite);
      ("edges", Test_edges.suite);
    ]
