(** A minimal JSON value type with a printer and a parser.

    The toolchain has no JSON library; the exporters need escaping and
    the tests (and the bench regression guard) need to read what they
    wrote back.  This is deliberately small: no streaming, strings are
    decoded for the standard escapes only. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Body of a JSON string literal (without the quotes). *)

val to_string : t -> string
(** Compact rendering.  Integral floats print without a fraction;
    non-finite numbers print as [null]. *)

val parse : string -> (t, string) result

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val number : t -> float option
val string_value : t -> string option
val elements : t -> t list
(** List elements; [[]] for non-lists. *)
