module Clock = Clock
module Json = Json
module Metrics = Metrics
module Trace = Trace
module Provenance = Provenance
module Export = Export

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  provenance : Provenance.t;
  t0 : float;
}

let create () =
  {
    trace = Trace.create ();
    metrics = Metrics.create ();
    provenance = Provenance.create ();
    t0 = Clock.now ();
  }

let current : t option Atomic.t = Atomic.make None
let install t = Atomic.set current (Some t)
let uninstall () = Atomic.set current None
let get () = Atomic.get current
let enabled () = Atomic.get current <> None

let with_collector t f =
  let previous = Atomic.get current in
  Atomic.set current (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set current previous) f

let count ?(n = 1) name =
  match Atomic.get current with
  | None -> ()
  | Some c -> Metrics.count c.metrics name n

let gauge name v =
  match Atomic.get current with
  | None -> ()
  | Some c -> Metrics.gauge c.metrics name v

let observe ?buckets name v =
  match Atomic.get current with
  | None -> ()
  | Some c -> Metrics.observe ?buckets c.metrics name v

let record_provenance r =
  match Atomic.get current with
  | None -> ()
  | Some c -> Provenance.add c.provenance r

(* Per-domain stack of open span ids: parents nest naturally even when
   spans open on pool-worker domains. *)
let span_stack : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_span ?(attrs = []) ?attrs_after name f =
  match Atomic.get current with
  | None -> f ()
  | Some c ->
      let stack = Domain.DLS.get span_stack in
      let parent = match !stack with [] -> None | p :: _ -> Some p in
      let id = Trace.fresh_id c.trace in
      let lane = (Domain.self () :> int) in
      let start = Clock.now () in
      stack := id :: !stack;
      let finish () =
        (stack := match !stack with _ :: rest -> rest | [] -> []);
        let late =
          match attrs_after with
          | None -> []
          | Some g -> ( try g () with _ -> [])
        in
        Trace.record c.trace
          {
            Trace.id;
            parent;
            name;
            lane;
            start_s = start -. c.t0;
            duration_s = Clock.elapsed start;
            attrs = attrs @ late;
          }
      in
      Fun.protect ~finally:finish f
