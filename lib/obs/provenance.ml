type status = Computed | Quarantined | Skipped

type record = {
  cube : string;
  tgds : string list;
  wave : int;
  target : string;
  status : status;
  attempts : int;
  translate_attempts : int;
  translate_seconds : float;
  execute_seconds : float;
}

type t = { mutex : Mutex.t; mutable records : record list }

let create () = { mutex = Mutex.create (); records = [] }

let add t r =
  Mutex.lock t.mutex;
  t.records <- r :: t.records;
  Mutex.unlock t.mutex

let records t =
  Mutex.lock t.mutex;
  let all = t.records in
  Mutex.unlock t.mutex;
  List.sort (fun a b -> String.compare a.cube b.cube) all

let status_to_string = function
  | Computed -> "computed"
  | Quarantined -> "quarantined"
  | Skipped -> "skipped"

let report ?(timings = true) t =
  let buf = Buffer.create 512 in
  let rs = records t in
  Buffer.add_string buf
    (Printf.sprintf "run provenance (%d cube%s):\n" (List.length rs)
       (if List.length rs = 1 then "" else "s"));
  List.iter
    (fun r ->
      let attempts =
        match r.status with
        | Computed ->
            Printf.sprintf ", %d attempt%s" r.attempts
              (if r.attempts = 1 then "" else "s")
        | Quarantined | Skipped -> ""
      in
      let clocks =
        if timings && r.status = Computed then
          Printf.sprintf ", translate %.1f ms, execute %.1f ms"
            (r.translate_seconds *. 1000.)
            (r.execute_seconds *. 1000.)
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s <- %s (%s, wave %d%s%s)\n" r.cube
           (if r.target = "" then "-" else r.target)
           (status_to_string r.status) r.wave attempts clocks);
      List.iter
        (fun tgd -> Buffer.add_string buf (Printf.sprintf "    tgd: %s\n" tgd))
        r.tgds)
    rs;
  Buffer.contents buf
