type histogram = {
  buckets : float array;
  counts : int array;
  mutable sum : float;
  mutable total : int;
}

type t = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
  }

let duration_buckets =
  [| 1e-5; 1e-4; 1e-3; 1e-2; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 10. |]

let size_buckets = [| 1.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. |]

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let count t name n =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some cell -> cell := !cell + n
      | None -> Hashtbl.replace t.counters name (ref n))

let gauge t name v =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some cell -> cell := v
      | None -> Hashtbl.replace t.gauges name (ref v))

let observe ?(buckets = duration_buckets) t name v =
  with_lock t (fun () ->
      let h =
        match Hashtbl.find_opt t.histograms name with
        | Some h -> h
        | None ->
            let h =
              {
                buckets;
                counts = Array.make (Array.length buckets + 1) 0;
                sum = 0.;
                total = 0;
              }
            in
            Hashtbl.replace t.histograms name h;
            h
      in
      let rec slot i =
        if i >= Array.length h.buckets then i
        else if v <= h.buckets.(i) then i
        else slot (i + 1)
      in
      let i = slot 0 in
      h.counts.(i) <- h.counts.(i) + 1;
      h.sum <- h.sum +. v;
      h.total <- h.total + 1)

let counter_value t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with Some c -> !c | None -> 0)

let sorted_alist tbl deref =
  Hashtbl.fold (fun k v acc -> (k, deref v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = with_lock t (fun () -> sorted_alist t.counters ( ! ))
let gauges t = with_lock t (fun () -> sorted_alist t.gauges ( ! ))

let histograms t =
  with_lock t (fun () ->
      sorted_alist t.histograms (fun h ->
          { h with counts = Array.copy h.counts }))
