type span = {
  id : int;
  parent : int option;
  name : string;
  lane : int;
  start_s : float;
  duration_s : float;
  attrs : (string * string) list;
}

type t = {
  mutex : Mutex.t;
  mutable finished : span list;
  next_id : int Atomic.t;
}

let create () =
  { mutex = Mutex.create (); finished = []; next_id = Atomic.make 0 }

let fresh_id t = Atomic.fetch_and_add t.next_id 1

let record t span =
  Mutex.lock t.mutex;
  t.finished <- span :: t.finished;
  Mutex.unlock t.mutex

let spans t =
  Mutex.lock t.mutex;
  let all = t.finished in
  Mutex.unlock t.mutex;
  List.sort (fun a b -> compare a.id b.id) all
