(* Dense lane renumbering under [normalize]: domain ids depend on spawn
   history, which is not stable run to run; first-appearance order of
   the id-ordered span list is. *)
let lane_mapper ~normalize spans =
  if not normalize then fun lane -> lane
  else begin
    let table = Hashtbl.create 8 in
    List.iter
      (fun (s : Trace.span) ->
        if not (Hashtbl.mem table s.Trace.lane) then
          Hashtbl.replace table s.Trace.lane (Hashtbl.length table))
      spans;
    fun lane -> match Hashtbl.find_opt table lane with Some i -> i | None -> lane
  end

let span_args (s : Trace.span) =
  Json.Obj
    (("span_id", Json.Num (float_of_int s.Trace.id))
    :: (match s.Trace.parent with
       | Some p -> [ ("parent_id", Json.Num (float_of_int p)) ]
       | None -> [])
    @ List.map (fun (k, v) -> (k, Json.Str v)) s.Trace.attrs)

let chrome_trace ?(normalize = false) trace =
  let spans = Trace.spans trace in
  let lane = lane_mapper ~normalize spans in
  let time s = if normalize then 0. else Float.round (s *. 1e6) in
  let lanes =
    List.sort_uniq compare (List.map (fun (s : Trace.span) -> lane s.Trace.lane) spans)
  in
  let thread_names =
    List.map
      (fun l ->
        Json.Obj
          [
            ("ph", Json.Str "M");
            ("name", Json.Str "thread_name");
            ("pid", Json.Num 1.);
            ("tid", Json.Num (float_of_int l));
            ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain %d" l)) ]);
          ])
      lanes
  in
  let events =
    List.map
      (fun (s : Trace.span) ->
        Json.Obj
          [
            ("name", Json.Str s.Trace.name);
            ("cat", Json.Str "exl");
            ("ph", Json.Str "X");
            ("ts", Json.Num (time s.Trace.start_s));
            ("dur", Json.Num (time s.Trace.duration_s));
            ("pid", Json.Num 1.);
            ("tid", Json.Num (float_of_int (lane s.Trace.lane)));
            ("args", span_args s);
          ])
      spans
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (thread_names @ events));
         ("displayTimeUnit", Json.Str "ms");
       ])
  ^ "\n"

let jsonl ?(normalize = false) trace metrics provenance =
  let buf = Buffer.create 1024 in
  let line v =
    Buffer.add_string buf (Json.to_string v);
    Buffer.add_char buf '\n'
  in
  let spans = Trace.spans trace in
  let lane = lane_mapper ~normalize spans in
  let time s = if normalize then 0. else s in
  List.iter
    (fun (s : Trace.span) ->
      line
        (Json.Obj
           ([
              ("type", Json.Str "span");
              ("id", Json.Num (float_of_int s.Trace.id));
            ]
           @ (match s.Trace.parent with
             | Some p -> [ ("parent", Json.Num (float_of_int p)) ]
             | None -> [])
           @ [
               ("name", Json.Str s.Trace.name);
               ("lane", Json.Num (float_of_int (lane s.Trace.lane)));
               ("start_s", Json.Num (time s.Trace.start_s));
               ("duration_s", Json.Num (time s.Trace.duration_s));
               ( "attrs",
                 Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.Trace.attrs)
               );
             ])))
    spans;
  List.iter
    (fun (name, v) ->
      line
        (Json.Obj
           [
             ("type", Json.Str "counter");
             ("name", Json.Str name);
             ("value", Json.Num (float_of_int v));
           ]))
    (Metrics.counters metrics);
  List.iter
    (fun (name, v) ->
      line
        (Json.Obj
           [
             ("type", Json.Str "gauge");
             ("name", Json.Str name);
             ("value", Json.Num (if normalize then 0. else v));
           ]))
    (Metrics.gauges metrics);
  List.iter
    (fun (name, (h : Metrics.histogram)) ->
      line
        (Json.Obj
           [
             ("type", Json.Str "histogram");
             ("name", Json.Str name);
             ("count", Json.Num (float_of_int h.Metrics.total));
             ("sum", Json.Num (if normalize then 0. else h.Metrics.sum));
           ]))
    (Metrics.histograms metrics);
  List.iter
    (fun (r : Provenance.record) ->
      line
        (Json.Obj
           [
             ("type", Json.Str "provenance");
             ("cube", Json.Str r.Provenance.cube);
             ("target", Json.Str r.Provenance.target);
             ("status", Json.Str (Provenance.status_to_string r.Provenance.status));
             ("wave", Json.Num (float_of_int r.Provenance.wave));
             ("attempts", Json.Num (float_of_int r.Provenance.attempts));
             ( "translate_attempts",
               Json.Num (float_of_int r.Provenance.translate_attempts) );
             ( "translate_s",
               Json.Num (if normalize then 0. else r.Provenance.translate_seconds)
             );
             ( "execute_s",
               Json.Num (if normalize then 0. else r.Provenance.execute_seconds)
             );
             ("tgds", Json.List (List.map (fun t -> Json.Str t) r.Provenance.tgds));
           ]))
    (Provenance.records provenance);
  Buffer.contents buf

let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "exl_" ^ Bytes.to_string b

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prometheus metrics =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    (Metrics.counters metrics);
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (float_repr v)))
    (Metrics.gauges metrics);
  List.iter
    (fun (name, (h : Metrics.histogram)) ->
      let n = sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      let cumulative = ref 0 in
      Array.iteri
        (fun i bound ->
          cumulative := !cumulative + h.Metrics.counts.(i);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (float_repr bound)
               !cumulative))
        h.Metrics.buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.Metrics.total);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n" n (float_repr h.Metrics.sum));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.Metrics.total))
    (Metrics.histograms metrics);
  Buffer.contents buf
