(** The metrics registry: counters, gauges, and fixed-bucket histograms.

    A registry is a plain mutable value owned by one collector; all
    operations are thread-safe (the chase strata and dispatcher
    subgraphs record from pool domains).  Metric names are dotted
    (["chase.rounds"]); the Prometheus exporter sanitizes them. *)

type histogram = {
  buckets : float array;  (** ascending upper bounds; +inf is implicit *)
  counts : int array;  (** per-bucket counts, length [buckets + 1] *)
  mutable sum : float;
  mutable total : int;
}

type t

val create : unit -> t

val count : t -> string -> int -> unit
(** Add to a (created-on-first-use) counter. *)

val gauge : t -> string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : ?buckets:float array -> t -> string -> float -> unit
(** Record one observation into a histogram.  [buckets] is consulted
    only when the histogram does not exist yet (default
    {!duration_buckets}). *)

val duration_buckets : float array
(** Upper bounds in seconds, from 10us to 10s. *)

val size_buckets : float array
(** Upper bounds for cardinalities (facts, rows): 1 to 1e6. *)

(** {2 Snapshots} (sorted by name, for deterministic export) *)

val counter_value : t -> string -> int
(** 0 when the counter was never touched. *)

val counters : t -> (string * int) list
val gauges : t -> (string * float) list
val histograms : t -> (string * histogram) list
