(** exl-obs: tracing, metrics and run provenance for the pipeline.

    The library is an ambient, nullable sink.  Instrumentation sites
    call {!with_span} / {!count} / {!observe} unconditionally; when no
    collector is installed ({!install} not called) every entry point is
    an atomic load and a branch, so the disabled overhead is a few
    instructions per call site.  Hot inner loops (per-match work in the
    chase) must still aggregate locally and flush at span end. *)

module Clock = Clock
module Json = Json
module Metrics = Metrics
module Trace = Trace
module Provenance = Provenance
module Export = Export

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  provenance : Provenance.t;
  t0 : float;  (** collector creation time, the trace's epoch *)
}

val create : unit -> t

val install : t -> unit
(** Make [t] the ambient collector for the whole process. *)

val uninstall : unit -> unit
val get : unit -> t option
val enabled : unit -> bool

val with_collector : t -> (unit -> 'a) -> 'a
(** [install t], run the thunk, then restore the previous collector —
    exception-safe.  Used by tests and the benchmark harness. *)

(** {1 Ambient instrumentation API} — all no-ops when disabled. *)

val count : ?n:int -> string -> unit
val gauge : string -> float -> unit
val observe : ?buckets:float array -> string -> float -> unit
val record_provenance : Provenance.record -> unit

val with_span :
  ?attrs:(string * string) list ->
  ?attrs_after:(unit -> (string * string) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** Run the thunk inside a named span.  Parent links come from a
    per-domain stack (spans nest naturally across [Pool] workers); the
    span's lane is the executing domain's id.  [attrs_after] is
    evaluated when the span closes, for attributes only known at the
    end (round counts, delta sizes).  Exception-safe: the span is
    recorded even if the thunk raises. *)
