type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ----- parsing ----- *)

exception Parse_error of string

let parse text =
  let pos = ref 0 in
  let len = String.length text in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail "expected %c" c
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub text !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail "expected %s" word
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then fail "unterminated escape"
             else
               match text.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= len then fail "short \\u escape";
                   let hex = String.sub text (!pos + 1) 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | None -> fail "bad \\u escape %s" hex
                   | Some code ->
                       (* Only BMP code points below 0x80 round-trip as a
                          byte; others are kept as '?' — the exporters
                          never emit them. *)
                       if code < 0x80 then Buffer.add_char buf (Char.chr code)
                       else Buffer.add_char buf '?');
                   pos := !pos + 4
               | c -> fail "unknown escape \\%c" c);
            advance ();
            loop ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match float_of_string_opt s with
    | Some f -> Num f
    | None -> fail "bad number %S" s
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let number = function Num f -> Some f | _ -> None
let string_value = function Str s -> Some s | _ -> None
let elements = function List items -> items | _ -> []
