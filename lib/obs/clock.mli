(** A monotonic process clock.

    [Unix.gettimeofday] is wall time: NTP slews and manual clock jumps
    can move it backwards, so durations computed from it can come out
    negative.  [now] clamps the wall clock to be non-decreasing across
    the whole process (all domains), which is the property every timing
    site in the pipeline actually needs. *)

val now : unit -> float
(** Seconds, strictly non-decreasing across calls process-wide. *)

val elapsed : float -> float
(** [elapsed t0] is [max 0. (now () -. t0)] — a duration that can never
    be negative even against a stale [t0]. *)
