(* The high-water mark is shared by all domains: a CAS loop keeps it
   non-decreasing without a lock on the hot path. *)
let high_water = Atomic.make 0.

let rec now () =
  let t = Unix.gettimeofday () in
  let prev = Atomic.get high_water in
  if t >= prev then
    if Atomic.compare_and_set high_water prev t then t else now ()
  else prev

let elapsed t0 = Float.max 0. (now () -. t0)
