(** Exporters for the collected telemetry.

    [normalize:true] zeroes every timestamp and duration and renumbers
    lanes densely in first-appearance order, so exports of a
    deterministic (sequential) run are byte-stable — the CLI golden
    tests depend on it. *)

val chrome_trace : ?normalize:bool -> Trace.t -> string
(** Chrome-trace ("Trace Event Format") JSON, loadable in
    [chrome://tracing] and Perfetto.  One lane (tid) per OCaml domain,
    one complete ("ph":"X") event per span, attributes under ["args"]. *)

val jsonl :
  ?normalize:bool -> Trace.t -> Metrics.t -> Provenance.t -> string
(** Event log: one JSON object per line — spans (in id order), then
    counters, gauges and histograms (sorted by name), then provenance
    records (sorted by cube). *)

val prometheus : Metrics.t -> string
(** Prometheus text exposition format.  Dotted metric names are
    sanitized ([chase.rounds] -> [exl_chase_rounds]); histograms emit
    cumulative [_bucket{le=...}] series plus [_sum] and [_count]. *)
