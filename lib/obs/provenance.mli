(** Run provenance: which tgd, target engine, dispatch wave and attempt
    count produced (or failed to produce) each output cube.

    The paper's production setting (Section 6) demands this kind of
    accountability: operators of a statistical pipeline must be able to
    answer "where did this figure come from, and what ran to make it"
    after every revision. *)

type status = Computed | Quarantined | Skipped

type record = {
  cube : string;
  tgds : string list;  (** textual tgds whose target relation is the cube *)
  wave : int;  (** dispatch wave (stratum) the subgraph ran in *)
  target : string;  (** target engine that produced the cube *)
  status : status;
  attempts : int;  (** execute attempts across all targets tried *)
  translate_attempts : int;
  translate_seconds : float;
  execute_seconds : float;
}

type t

val create : unit -> t
val add : t -> record -> unit

val records : t -> record list
(** Sorted by cube name (deterministic reporting). *)

val status_to_string : status -> string

val report : ?timings:bool -> t -> string
(** Human-readable report, one block per cube.  [timings:false]
    (default [true]) suppresses the wall-clock columns so the output is
    deterministic — used by the CLI golden tests. *)
