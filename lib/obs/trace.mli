(** The span collector: finished spans of one run.

    A span is a named interval on a lane (the OCaml domain that ran
    it), with a link to the span it was opened under on the same lane
    and free-form key/value attributes.  Spans are recorded when they
    {e finish}; ids are allocated at open time, so a parent's id is
    always smaller than its children's. *)

type span = {
  id : int;
  parent : int option;  (** innermost enclosing span on the same lane *)
  name : string;
  lane : int;  (** [Domain.self] of the domain that ran the span *)
  start_s : float;  (** seconds since the collector was created *)
  duration_s : float;
  attrs : (string * string) list;
}

type t

val create : unit -> t

val fresh_id : t -> int
(** Allocate the next span id (thread-safe, lock-free). *)

val record : t -> span -> unit
(** Store a finished span. *)

val spans : t -> span list
(** All finished spans in id (i.e. open) order. *)
