(* Vectorized tgd application over column batches — the chase's hot
   path.  Each [try_*] below replays the row engine's semantics
   exactly: rows are processed in [Instance.facts] (sorted) order, the
   same candidates are counted into [matches_examined], undefined
   terms skip or raise under the same rules, and group bags accumulate
   in the same order — so a successful vectorized run produces the
   same solution, the same counters, and bit-identical floats as the
   row-at-a-time matcher, only without per-row [Tuple]/[Binding]
   allocation in the loops.

   [handles] is the static gate: when it says yes, [apply] commits (no
   runtime fallback — wide keys go through a composite-key table, not
   back to rows), which is what lets the chase skip row-index
   pre-builds for vectorizable tgds and keep Σst-installed relations
   purely columnar. *)

open Matrix
module Tgd = Mappings.Tgd
module Term = Mappings.Term
module Dict = Columnar.Dict
module Batch = Columnar.Batch
module Kernels = Columnar.Kernels

exception Error of string
(* Converted to [Chase_error]'s [Error msg] result by the chase's
   [wrap_chase]; messages match the row path's. *)

type ctx = {
  read : Instance.t;  (* batches come from here *)
  count : int -> unit;  (* matches_examined accumulator *)
  emit : string -> Value.t list -> unit;  (* set-semantics fact sink *)
}

(* [(var, position)] for an atom whose args are pairwise-distinct
   variables — the shape every kernel requires; anything else
   (constants, repeated vars = filters, complex terms) stays on the
   row matcher. *)
let var_positions (atom : Tgd.atom) =
  let rec go i seen acc = function
    | [] -> Some (List.rev acc)
    | Term.Var v :: rest ->
        if List.mem v seen then None
        else go (i + 1) (v :: seen) ((v, i) :: acc) rest
    | _ :: _ -> None
  in
  go 0 [] [] atom.Tgd.args

(* The atom's var layout when it matches its relation's arity; an
   arity mismatch means the row matcher's per-fact width check (which
   silently matches nothing) must run instead. *)
let atom_shape instance (atom : Tgd.atom) =
  match var_positions atom with
  | None -> None
  | Some vpos -> (
      match Instance.schema instance atom.Tgd.rel with
      | Some s when Schema.arity s + 1 = List.length atom.Tgd.args -> Some vpos
      | _ -> None)

(* ----- aggregation ----- *)

(* A group-by term is kernel-able when it depends on at most one
   variable and that variable sits on a dictionary-encoded dimension:
   the term then evaluates once per distinct code instead of once per
   row.  The measure may sit on any position (measure column or an
   encoded dimension). *)
let agg_shape instance (source : Tgd.atom) group_by measure =
  match atom_shape instance source with
  | None -> None
  | Some vpos ->
      let ndims = List.length source.Tgd.args - 1 in
      let terms_ok =
        List.for_all
          (fun t ->
            match Term.vars t with
            | [] -> true
            | [ v ] -> (
                match List.assoc_opt v vpos with
                | Some p -> p < ndims
                | None -> false)
            | _ :: _ :: _ -> false)
          group_by
      in
      if not terms_ok then None
      else
        Option.map (fun mpos -> (vpos, mpos)) (List.assoc_opt measure vpos)

(* One prepared group-by column: either the same value on every row,
   or a per-input-code translation into a local key dictionary. *)
type gcol =
  | Gconst of Value.t option * Term.t
  | Gcol of {
      term : Term.t;
      src_codes : int array;  (* the dimension's code column *)
      enc : int array;  (* input code -> local key code, -1 undefined *)
      vals : Value.t option array;  (* input code -> term value *)
      radix : int;
    }

let try_aggregation ctx (source : Tgd.atom) group_by aggr measure target =
  match agg_shape ctx.read source group_by measure with
  | None -> false
  | Some (vpos, mpos) ->
      let b = Instance.batch ctx.read source.Tgd.rel in
      let nrows = Batch.nrows b in
      let ndims = List.length source.Tgd.args - 1 in
      let prep term =
        match Term.vars term with
        | [] -> Gconst (Binding.term_value Binding.empty term, term)
        | [ v ] ->
            let p = List.assoc v vpos in
            let d = Batch.dim_dict b p in
            let vals =
              Array.init (Dict.size d) (fun c ->
                  match term with
                  | Term.Var _ -> Some (Dict.decode d c)
                  | _ ->
                      Binding.term_value
                        (Binding.bind Binding.empty v (Dict.decode d c))
                        term)
            in
            let local = Dict.create () in
            let enc =
              Array.map
                (function Some v -> Dict.encode local v | None -> -1)
                vals
            in
            Gcol
              {
                term;
                src_codes = Batch.dim_codes b p;
                enc;
                vals;
                radix = max 1 (Dict.size local);
              }
        | _ -> assert false
      in
      let preps = List.map prep group_by in
      (* Every source fact is an examined candidate, matching or not. *)
      ctx.count nrows;
      (* Row scan in sorted order: raise exactly where the row matcher
         would — per row, group terms in declaration order first, then
         the measure — and gather the measure column. *)
      let undefined t =
        raise
          (Error
             (Printf.sprintf "group-by term %s undefined on a source tuple"
                (Term.to_string t)))
      in
      let mvalid, mval =
        if mpos = ndims then
          ((fun r -> Batch.measure_valid b r), fun r -> (Batch.measure_floats b).(r))
        else
          let d = Batch.dim_dict b mpos in
          let codes = Batch.dim_codes b mpos in
          ( (fun r -> Dict.float_defined d codes.(r)),
            fun r -> Dict.float_of_code d codes.(r) )
      in
      let mf = Array.make (max 1 nrows) 0. in
      for r = 0 to nrows - 1 do
        List.iter
          (function
            | Gconst (None, t) -> undefined t
            | Gconst (Some _, _) -> ()
            | Gcol p -> if p.enc.(p.src_codes.(r)) < 0 then undefined p.term)
          preps;
        if not (mvalid r) then
          raise (Error "aggregation measure is not numeric");
        mf.(r) <- mval r
      done;
      let cols, radices =
        List.filter_map
          (function
            | Gconst _ -> None
            | Gcol p ->
                Some (Array.map (fun c -> p.enc.(c)) p.src_codes, p.radix))
          preps
        |> List.split
      in
      let keys =
        Kernels.dense_keys ~nrows (Array.of_list cols) (Array.of_list radices)
      in
      let g = Kernels.group keys in
      let mf = if nrows = 0 then [||] else mf in
      let offsets, data = Kernels.segment g mf in
      for gid = 0 to g.Kernels.n_groups - 1 do
        let off = offsets.(gid) in
        let len = offsets.(gid + 1) - off in
        let result = Stats.Aggregate.apply_slice aggr data ~off ~len in
        if not (Float.is_nan result) then begin
          let rep = g.Kernels.rep_rows.(gid) in
          let key_values =
            List.map
              (function
                | Gconst (Some v, _) -> v
                | Gconst (None, _) -> assert false (* raised above *)
                | Gcol p -> Option.get p.vals.(p.src_codes.(rep)))
              preps
          in
          ctx.emit target (key_values @ [ Value.of_float result ])
        end
      done;
      true

(* ----- value access shared by the tuple-level kernels ----- *)

(* Per-position row readers over a batch: dimensions read through the
   dictionary (the decoded representative — equal to the original
   value under [Value.equal], which every evaluation path treats
   identically), the measure column reads its exact values. *)
let position_reader b ndims p =
  if p = ndims then
    let meas = Batch.measures b in
    fun r -> meas.(r)
  else
    let d = Batch.dim_dict b p in
    let codes = Batch.dim_codes b p in
    fun r -> Dict.decode d codes.(r)

(* A compiled rhs term: how to produce its value for one matched row.
   [Rgeneral] rebuilds a binding — only complex multi-var terms pay
   that cost. *)
type rterm =
  | Rconst of Value.t option
  | Rread of (int -> Value.t)  (* plain var: direct column read *)
  | Rcode of { codes : int array; vals : Value.t option array }
      (* single dimension var under a complex term: per-code value *)
  | Rgeneral of Term.t

let compile_rhs_term ~reader_of ~dim_of term =
  match Term.vars term with
  | [] -> Rconst (Binding.term_value Binding.empty term)
  | [ v ] -> (
      match term with
      | Term.Var _ -> (
          match reader_of v with
          | Some read -> Rread read
          | None -> Rconst None (* unbound var: undefined on every row *))
      | _ -> (
          match dim_of v with
          | Some (d, codes) ->
              let vals =
                Array.init (Dict.size d) (fun c ->
                    Binding.term_value
                      (Binding.bind Binding.empty v (Dict.decode d c))
                      term)
              in
              Rcode { codes; vals }
          | None -> if Option.is_none (reader_of v) then Rconst None else Rgeneral term))
  | _ :: _ :: _ -> Rgeneral term

(* ----- single-atom selection / projection ----- *)

let try_single ctx (atom : Tgd.atom) (rhs : Tgd.atom) =
  match atom_shape ctx.read atom with
  | None -> false
  | Some vpos ->
      let b = Instance.batch ctx.read atom.Tgd.rel in
      let nrows = Batch.nrows b in
      let ndims = List.length atom.Tgd.args - 1 in
      let reader p = position_reader b ndims p in
      let reader_of v = Option.map reader (List.assoc_opt v vpos) in
      let dim_of v =
        match List.assoc_opt v vpos with
        | Some p when p < ndims ->
            Some (Batch.dim_dict b p, Batch.dim_codes b p)
        | _ -> None
      in
      let rterms =
        List.map (compile_rhs_term ~reader_of ~dim_of) rhs.Tgd.args
      in
      let needs_binding =
        List.exists (function Rgeneral _ -> true | _ -> false) rterms
      in
      let readers = List.map (fun (v, p) -> (v, reader p)) vpos in
      ctx.count nrows;
      for r = 0 to nrows - 1 do
        let binding =
          if needs_binding then
            List.fold_left
              (fun acc (v, read) -> Binding.bind acc v (read r))
              Binding.empty readers
          else Binding.empty
        in
        let rec eval_all acc = function
          | [] -> Some (List.rev acc)
          | rt :: rest -> (
              let value =
                match rt with
                | Rconst v -> v
                | Rread read -> Some (read r)
                | Rcode { codes; vals } -> vals.(codes.(r))
                | Rgeneral term -> Binding.term_value binding term
              in
              match value with
              | Some v -> eval_all (v :: acc) rest
              | None -> None (* undefined term: skip the row, no error *))
        in
        match eval_all [] rterms with
        | Some values -> ctx.emit rhs.Tgd.rel values
        | None -> ()
      done;
      true

(* ----- two-atom equi-join ----- *)

(* Shape check for the batch hash join: both atoms all-distinct-vars,
   at least one shared variable, every shared variable on encoded
   dimensions (not the measure), and the target distinct from both
   sources — the row matcher probes a live index, so a self-feeding
   tgd could observe its own emissions, which a frozen batch cannot. *)
let join_shape instance (a1 : Tgd.atom) (a2 : Tgd.atom) (rhs : Tgd.atom) =
  match (atom_shape instance a1, atom_shape instance a2) with
  | Some vp1, Some vp2 ->
      let nd1 = List.length a1.Tgd.args - 1 in
      let nd2 = List.length a2.Tgd.args - 1 in
      let joins =
        List.filter_map
          (fun (v, p2) ->
            Option.map (fun p1 -> (p1, p2)) (List.assoc_opt v vp1))
          vp2
      in
      if
        joins <> []
        && List.for_all (fun (p1, p2) -> p1 < nd1 && p2 < nd2) joins
        && rhs.Tgd.rel <> a1.Tgd.rel
        && rhs.Tgd.rel <> a2.Tgd.rel
      then Some (vp1, vp2, joins)
      else None
  | _ -> None

let try_join ctx (a1 : Tgd.atom) (a2 : Tgd.atom) (rhs : Tgd.atom) =
  match join_shape ctx.read a1 a2 rhs with
  | None -> false
  | Some (vp1, vp2, joins) ->
      let b1 = Instance.batch ctx.read a1.Tgd.rel in
      let b2 = Instance.batch ctx.read a2.Tgd.rel in
      let nd1 = List.length a1.Tgd.args - 1 in
      let nd2 = List.length a2.Tgd.args - 1 in
      (* Key columns in a1's code space: a2 columns whose dictionary
         differs are translated once (misses -> -1, matching nothing),
         mirroring an index lookup that finds no bucket. *)
      let probe_cols, build_cols, radices =
        List.fold_right
          (fun (p1, p2) (ps, bs, rs) ->
            let d1 = Batch.dim_dict b1 p1 and d2 = Batch.dim_dict b2 p2 in
            let c2 =
              match Dict.xlate d2 d1 with
              | None -> Batch.dim_codes b2 p2
              | Some x -> Array.map (fun c -> x.(c)) (Batch.dim_codes b2 p2)
            in
            (Batch.dim_codes b1 p1 :: ps, c2 :: bs, Dict.size d1 :: rs))
          joins ([], [], [])
      in
      let build_keys, probe_keys =
        Kernels.joined_keys
          ~build_cols:(Array.of_list build_cols)
          ~probe_cols:(Array.of_list probe_cols)
          ~nbuild:(Batch.nrows b2) ~nprobe:(Batch.nrows b1)
          (Array.of_list radices)
      in
      (* Like the row plan: every a1 fact is an examined candidate,
         then every index-bucket entry per probe. *)
      ctx.count (Batch.nrows b1);
      let read1 p = position_reader b1 nd1 p in
      let read2 p = position_reader b2 nd2 p in
      (* Shared vars resolve to the probe (a1) side, exactly where the
         row matcher binds them. *)
      let vp2_fresh =
        List.filter (fun (v, _) -> not (List.mem_assoc v vp1)) vp2
      in
      let reader_of v =
        match List.assoc_opt v vp1 with
        | Some p ->
            let read = read1 p in
            Some (fun pr _ -> read pr)
        | None ->
            Option.map
              (fun p ->
                let read = read2 p in
                fun _ br -> read br)
              (List.assoc_opt v vp2)
      in
      let jterms =
        List.map
          (fun term ->
            match term with
            | Term.Var v -> (
                match reader_of v with
                | Some read -> `Read read
                | None -> `Const None)
            | _ -> (
                match Term.vars term with
                | [] -> `Const (Binding.term_value Binding.empty term)
                | _ :: _ -> `General term))
          rhs.Tgd.args
      in
      let needs_binding =
        List.exists (function `General _ -> true | _ -> false) jterms
      in
      (* Binding layout for complex terms: every a1 var, then a2's
         fresh vars — shared vars keep their a1 (probe-side) values,
         where the row matcher bound them. *)
      let binding_readers =
        List.map
          (fun (v, p) ->
            let read = read1 p in
            (v, fun pr _ -> read pr))
          vp1
        @ List.map
            (fun (v, p) ->
              let read = read2 p in
              (v, fun _ br -> read br))
            vp2_fresh
      in
      let matched = ref 0 in
      Kernels.hash_join ~build_keys ~probe_keys
        ~on_probe:(fun _ size -> matched := !matched + size)
        (fun pr br ->
          let binding =
            if needs_binding then
              List.fold_left
                (fun acc (v, read) -> Binding.bind acc v (read pr br))
                Binding.empty binding_readers
            else Binding.empty
          in
          let rec eval_all acc = function
            | [] -> Some (List.rev acc)
            | jt :: rest -> (
                let value =
                  match jt with
                  | `Const v -> v
                  | `Read read -> Some (read pr br)
                  | `General term -> Binding.term_value binding term
                in
                match value with
                | Some v -> eval_all (v :: acc) rest
                | None -> None (* undefined term: skip the pair *))
          in
          match eval_all [] jterms with
          | Some values -> ctx.emit rhs.Tgd.rel values
          | None -> ());
      ctx.count !matched;
      true

let handles instance tgd =
  match tgd with
  | Tgd.Aggregation { source; group_by; measure; _ } ->
      Option.is_some (agg_shape instance source group_by measure)
  | Tgd.Tuple_level { lhs = [ a ]; rhs = _ } ->
      Option.is_some (atom_shape instance a)
  | Tgd.Tuple_level { lhs = [ a1; a2 ]; rhs } ->
      Option.is_some (join_shape instance a1 a2 rhs)
  | Tgd.Tuple_level _ | Tgd.Table_fn _ | Tgd.Outer_combine _ -> false

(* Encode (and cache) the batches a vectorizable tgd will read —
   called sequentially before a stratum's parallel phase so worker
   domains only ever read warmed caches and append-only dictionaries. *)
let prewarm instance tgd =
  if handles instance tgd then
    List.iter
      (fun rel ->
        match Instance.schema instance rel with
        | Some _ -> ignore (Instance.batch instance rel)
        | None -> ())
      (Tgd.source_relations tgd)

let apply ctx tgd =
  match tgd with
  | Tgd.Aggregation { source; group_by; aggr; measure; target } ->
      try_aggregation ctx source group_by aggr measure target
  | Tgd.Tuple_level { lhs = [ a ]; rhs } -> try_single ctx a rhs
  | Tgd.Tuple_level { lhs = [ a1; a2 ]; rhs } -> try_join ctx a1 a2 rhs
  | Tgd.Tuple_level _ | Tgd.Table_fn _ | Tgd.Outer_combine _ -> false
