open Matrix
module Tgd = Mappings.Tgd
module Term = Mappings.Term

type delta = { added : Instance.fact list; removed : Instance.fact list }

let empty_delta = { added = []; removed = [] }
let is_empty d = d.added = [] && d.removed = []

let diff ~old_facts ~new_facts =
  let old_set : unit Tuple.Table.t = Tuple.Table.create 64 in
  List.iter (fun f -> Tuple.Table.replace old_set (Tuple.of_array f) ()) old_facts;
  let new_set : unit Tuple.Table.t = Tuple.Table.create 64 in
  List.iter (fun f -> Tuple.Table.replace new_set (Tuple.of_array f) ()) new_facts;
  {
    added =
      List.filter (fun f -> not (Tuple.Table.mem old_set (Tuple.of_array f))) new_facts;
    removed =
      List.filter (fun f -> not (Tuple.Table.mem new_set (Tuple.of_array f))) old_facts;
  }

exception Delta_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Delta_error m)) fmt

(* ----- matching helpers (generated tgds only) ----- *)

(* The binding machinery is shared with the full chase. *)
type binding = Binding.t

let lookup = Binding.lookup
let term_value = Binding.term_value

(* Bind an atom's argument terms against one fact; Const args compare,
   Var args bind (generated lhs atoms only contain Vars and Consts). *)
let bind_atom (atom : Tgd.atom) fact : binding option =
  let n = Array.length fact in
  if List.length atom.Tgd.args <> n then None
  else
    let rec loop i (binding : binding) = function
      | [] -> Some binding
      | Term.Var v :: rest -> (
          match lookup binding v with
          | Some bound ->
              if Value.equal bound fact.(i) then loop (i + 1) binding rest
              else None
          | None -> loop (i + 1) (Binding.bind binding v fact.(i)) rest)
      | Term.Const c :: rest ->
          if Value.equal c fact.(i) then loop (i + 1) binding rest else None
      | _ ->
          fail "incremental chase requires generated (unfused) tgds"
    in
    loop 0 [] atom.Tgd.args

(* Facts of [atom] compatible with [binding], through an abstract
   per-dimension lookup (current state or the old-state overlay): since
   generated join atoms share all dimension variables, the dimension
   prefix is fully bound and a single indexed lookup suffices. *)
let matching_facts ~arity_of ~lookup_fact (atom : Tgd.atom) binding =
  let arity = arity_of atom.Tgd.rel in
  let dim_terms = List.filteri (fun i _ -> i < arity) atom.Tgd.args in
  let dim_values = List.map (term_value binding) dim_terms in
  if List.for_all Option.is_some dim_values then
    match
      lookup_fact atom.Tgd.rel (Array.of_list (List.map Option.get dim_values))
    with
    | Some fact -> (
        match bind_atom atom fact with
        | Some _ -> [ fact ]
        | None -> [])
    | None -> []
  else fail "incremental chase requires generated (unfused) tgds"

(* All rhs facts derivable from bindings where atom [pivot] is matched
   against [pivot_facts] and the other atoms are resolved through
   [lookup_fact]. *)
let derive_with_pivot ~arity_of ~lookup_fact stats lhs (rhs : Tgd.atom) ~pivot
    ~pivot_facts =
  let out = ref [] in
  let rec extend (binding : binding) = function
    | [] ->
        let values = List.map (term_value binding) rhs.Tgd.args in
        if List.for_all Option.is_some values then
          out := Array.of_list (List.map Option.get values) :: !out
    | (i, atom) :: rest ->
        let candidates =
          if i = pivot then
            List.filter_map
              (fun f -> Option.map (fun _ -> f) (bind_atom atom f))
              pivot_facts
          else matching_facts ~arity_of ~lookup_fact atom binding
        in
        List.iter
          (fun fact ->
            stats.Chase.matches_examined <- stats.Chase.matches_examined + 1;
            match bind_atom atom fact with
            | None -> ()
            | Some b -> (
                match Binding.merge binding b with
                | Some bnd -> extend bnd rest
                | None -> ()))
          candidates
  in
  (* Order atoms pivot-first so shared dimension variables are bound
     before the indexed lookups of the remaining atoms. *)
  let indexed = List.mapi (fun i a -> (i, a)) lhs in
  let pivot_entry = List.filter (fun (i, _) -> i = pivot) indexed in
  let others = List.filter (fun (i, _) -> i <> pivot) indexed in
  extend [] (pivot_entry @ others);
  !out

(* ----- per-tgd incremental application ----- *)

let delta_of deltas rel =
  Option.value ~default:empty_delta (Hashtbl.find_opt deltas rel)

let apply_facts instance stats target ~removed ~added =
  let actually_removed =
    List.filter (fun f -> Instance.remove instance target f) removed
  in
  let actually_added =
    List.filter
      (fun f ->
        let fresh = Instance.insert instance target f in
        if fresh then
          stats.Chase.tuples_generated <- stats.Chase.tuples_generated + 1;
        fresh)
      added
  in
  { added = actually_added; removed = actually_removed }

(* Old-state lookup for a relation: its recorded delta overlays the
   current instance — removed facts are restored, added keys hidden.
   Correct because strata are processed in order, so a relation's delta
   is final before any consumer tgd runs. *)
let old_lookup nu deltas =
  let overlays : (string, Instance.fact option Tuple.Table.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let overlay rel =
    match Hashtbl.find_opt overlays rel with
    | Some ov -> ov
    | None ->
        let ov : Instance.fact option Tuple.Table.t = Tuple.Table.create 16 in
        let d = delta_of deltas rel in
        let arity = Schema.arity (Instance.schema_exn nu rel) in
        let dims_of fact = Tuple.of_array (Array.sub fact 0 arity) in
        (* added keys did not exist in the old state... *)
        List.iter (fun f -> Tuple.Table.replace ov (dims_of f) None) d.added;
        (* ...unless the same key also had a removed (i.e. replaced)
           fact, whose old version wins *)
        List.iter (fun f -> Tuple.Table.replace ov (dims_of f) (Some f)) d.removed;
        Hashtbl.replace overlays rel ov;
        ov
  in
  fun rel dims ->
    let ov = overlay rel in
    match Tuple.Table.find_opt ov (Tuple.of_array dims) with
    | Some entry -> entry
    | None -> Instance.find_by_dims nu rel dims

let incr_tuple_level nu deltas stats lhs (rhs : Tgd.atom) =
  let target = rhs.Tgd.rel in
  let touched =
    List.exists (fun (a : Tgd.atom) -> not (is_empty (delta_of deltas a.Tgd.rel))) lhs
  in
  if not touched then empty_delta
  else begin
    let arity_of rel = Schema.arity (Instance.schema_exn nu rel) in
    let new_lookup rel dims = Instance.find_by_dims nu rel dims in
    let old_lookup = old_lookup nu deltas in
    let removed = ref [] and added = ref [] in
    List.iteri
      (fun i (atom : Tgd.atom) ->
        let d = delta_of deltas atom.Tgd.rel in
        if d.removed <> [] then
          removed :=
            derive_with_pivot ~arity_of ~lookup_fact:old_lookup stats lhs rhs
              ~pivot:i ~pivot_facts:d.removed
            @ !removed;
        if d.added <> [] then
          added :=
            derive_with_pivot ~arity_of ~lookup_fact:new_lookup stats lhs rhs
              ~pivot:i ~pivot_facts:d.added
            @ !added)
      lhs;
    apply_facts nu stats target ~removed:!removed ~added:!added
  end

let incr_aggregation nu deltas stats (source : Tgd.atom) group_by aggr
    measure target =
  let d = delta_of deltas source.Tgd.rel in
  if is_empty d then empty_delta
  else begin
    (* group keys affected by any changed source tuple *)
    let affected : unit Tuple.Table.t = Tuple.Table.create 16 in
    List.iter
      (fun fact ->
        match bind_atom source fact with
        | None -> ()
        | Some binding ->
            let key_values = List.map (term_value binding) group_by in
            if List.for_all Option.is_some key_values then
              Tuple.Table.replace affected
                (Tuple.of_list (List.map Option.get key_values))
                ())
      (d.added @ d.removed);
    (* current target rows for the affected keys must be replaced *)
    let n_keys = List.length group_by in
    let removed =
      List.filter
        (fun fact ->
          Tuple.Table.mem affected (Tuple.of_array (Array.sub fact 0 n_keys)))
        (Instance.facts_unsorted nu target)
    in
    (* recompute affected groups from the new source *)
    let groups : float list ref Tuple.Table.t = Tuple.Table.create 16 in
    List.iter
      (fun fact ->
        stats.Chase.matches_examined <- stats.Chase.matches_examined + 1;
        match bind_atom source fact with
        | None -> ()
        | Some binding -> (
            let key_values = List.map (term_value binding) group_by in
            if List.for_all Option.is_some key_values then
              let key = Tuple.of_list (List.map Option.get key_values) in
              if Tuple.Table.mem affected key then
                match Option.bind (lookup binding measure) Value.to_float with
                | Some m -> (
                    match Tuple.Table.find_opt groups key with
                    | Some bag -> bag := m :: !bag
                    | None -> Tuple.Table.replace groups key (ref [ m ]))
                | None -> ()))
      (Instance.facts nu source.Tgd.rel);
    let added =
      Tuple.Table.fold
        (fun key bag acc ->
          let result = Stats.Aggregate.apply aggr (List.rev !bag) in
          if Float.is_nan result then acc
          else
            Array.of_list (Tuple.to_list key @ [ Value.of_float result ]) :: acc)
        groups []
    in
    apply_facts nu stats target ~removed ~added
  end

let incr_table_fn nu deltas stats mapping fn params source target =
  let d = delta_of deltas source in
  if is_empty d then empty_delta
  else begin
    let schema = Mappings.Mapping.target_schema_exn mapping source in
    let arity = Schema.arity schema in
    let temporal_idx =
      let rec find i =
        if i >= arity then None
        else if Domain.is_temporal schema.Schema.dims.(i).Schema.dim_domain then
          Some i
        else find (i + 1)
      in
      find 0
    in
    let slice_idxs =
      Array.of_list
        (List.filter (fun i -> Some i <> temporal_idx) (List.init arity Fun.id))
    in
    let slice_of fact =
      Tuple.project (Tuple.of_array (Array.sub fact 0 arity)) slice_idxs
    in
    let affected : unit Tuple.Table.t = Tuple.Table.create 8 in
    List.iter
      (fun fact -> Tuple.Table.replace affected (slice_of fact) ())
      (d.added @ d.removed);
    (* old target facts of the affected slices *)
    let removed =
      List.filter (fun f -> Tuple.Table.mem affected (slice_of f))
        (Instance.facts_unsorted nu target)
    in
    (* recompute those slices from the new source *)
    let cube = Cube.create schema in
    List.iter
      (fun fact ->
        stats.Chase.matches_examined <- stats.Chase.matches_examined + 1;
        if Tuple.Table.mem affected (slice_of fact) then
          Cube.set cube
            (Tuple.of_array (Array.sub fact 0 arity))
            fact.(arity))
      (Instance.facts_unsorted nu source);
    let op =
      match Ops.Blackbox.find fn with
      | Some op -> op
      | None -> fail "unknown black-box operator %s" fn
    in
    match Ops.Blackbox.apply_cube op ~params cube with
    | Error msg -> fail "%s" msg
    | Ok result ->
        let added =
          Cube.fold (fun k v acc -> Tuple.append k v :: acc) result []
        in
        apply_facts nu stats target ~removed ~added
  end

let incr_outer nu deltas stats mapping (left : Tgd.atom)
    (right : Tgd.atom) op default target =
  let dl = delta_of deltas left.Tgd.rel and dr = delta_of deltas right.Tgd.rel in
  if is_empty dl && is_empty dr then empty_delta
  else begin
    let target_schema = Mappings.Mapping.target_schema_exn mapping target in
    let n = Schema.arity target_schema in
    let key_of fact = Array.sub fact 0 n in
    let affected : unit Tuple.Table.t = Tuple.Table.create 16 in
    List.iter
      (fun fact -> Tuple.Table.replace affected (Tuple.of_array (key_of fact)) ())
      (dl.added @ dl.removed @ dr.added @ dr.removed);
    let removed =
      List.filter
        (fun f -> Tuple.Table.mem affected (Tuple.of_array (key_of f)))
        (Instance.facts_unsorted nu target)
    in
    let added =
      Tuple.Table.fold
        (fun key () acc ->
          stats.Chase.matches_examined <- stats.Chase.matches_examined + 1;
          let dims = Tuple.to_array key in
          let side rel = Instance.find_by_dims nu rel dims in
          match (side left.Tgd.rel, side right.Tgd.rel) with
          | None, None -> acc
          | fl, fr -> (
              let measure = function
                | Some fact -> (
                    match Value.to_float fact.(n) with
                    | Some f -> f
                    | None -> default)
                | None -> default
              in
              match Ops.Binop.eval op (measure fl) (measure fr) with
              | Some result ->
                  Array.append dims [| Value.of_float result |] :: acc
              | None -> acc))
        affected []
    in
    apply_facts nu stats target ~removed ~added
  end

(* ----- the driver ----- *)

let run_incremental ?(in_place = false) (m : Mappings.Mapping.t) ~base ~source =
  let stats = Chase.empty_stats () in
  let nu = if in_place then base else Instance.copy base in
  let deltas : (string, delta) Hashtbl.t = Hashtbl.create 16 in
  try
    (* refresh the source relations and record their deltas *)
    List.iter
      (fun schema ->
        let name = schema.Schema.name in
        let old_facts = Instance.facts_unsorted nu name in
        let new_facts =
          match Instance.schema source name with
          | Some _ -> Instance.facts_unsorted source name
          | None -> []
        in
        let d = diff ~old_facts ~new_facts in
        if not (is_empty d) then begin
          List.iter (fun f -> ignore (Instance.remove nu name f)) d.removed;
          List.iter (fun f -> ignore (Instance.insert nu name f)) d.added;
          Hashtbl.replace deltas name d
        end)
      m.Mappings.Mapping.source;
    (* propagate, stratum by stratum *)
    List.iter
      (fun tgd ->
        let d =
          match tgd with
          | Tgd.Tuple_level { lhs; rhs } -> incr_tuple_level nu deltas stats lhs rhs
          | Tgd.Aggregation { source = src; group_by; aggr; measure; target } ->
              incr_aggregation nu deltas stats src group_by aggr measure target
          | Tgd.Table_fn { fn; params; source = src; target } ->
              incr_table_fn nu deltas stats m fn params src target
          | Tgd.Outer_combine { left; right; op; default; target } ->
              incr_outer nu deltas stats m left right op default target
        in
        stats.Chase.tgds_applied <- stats.Chase.tgds_applied + 1;
        if not (is_empty d) then
          Hashtbl.replace deltas (Tgd.target_relation tgd) d)
      m.Mappings.Mapping.t_tgds;
    Ok (nu, stats)
  with
  | Delta_error msg -> Error msg
  | Invalid_argument msg -> Error msg

let affected_of_stats (stats : Chase.stats) = stats.Chase.tuples_generated
