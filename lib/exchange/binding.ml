open Matrix
module Term = Mappings.Term

(* A variable binding; small, so an association list with functional
   extension keeps backtracking trivial. *)
type t = (string * Value.t) list

let empty : t = []
let lookup (b : t) v = List.assoc_opt v b
let bind (b : t) v value : t = (v, value) :: b
let term_value b term = Term.eval (lookup b) term

let term_fully_bound b term =
  List.for_all (fun v -> lookup b v <> None) (Term.vars term)

let merge (a : t) (b : t) : t option =
  List.fold_left
    (fun acc (v, value) ->
      match acc with
      | None -> None
      | Some bnd -> (
          match lookup bnd v with
          | Some bound -> if Value.equal bound value then Some bnd else None
          | None -> Some (bind bnd v value)))
    (Some a) b
