open Matrix
module Tgd = Mappings.Tgd
module Term = Mappings.Term

type stats = {
  mutable matches_examined : int;
  mutable tuples_generated : int;
  mutable tgds_applied : int;
  mutable egd_checks : int;
  mutable nulls_created : int;
  mutable rounds : int;
}

let empty_stats () =
  {
    matches_examined = 0;
    tuples_generated = 0;
    tgds_applied = 0;
    egd_checks = 0;
    nulls_created = 0;
    rounds = 0;
  }

(* Fold one (per-domain) stats record into another; [rounds] is global
   bookkeeping of the driver loop, never task-local. *)
let merge_stats ~into (s : stats) =
  into.matches_examined <- into.matches_examined + s.matches_examined;
  into.tuples_generated <- into.tuples_generated + s.tuples_generated;
  into.tgds_applied <- into.tgds_applied + s.tgds_applied;
  into.egd_checks <- into.egd_checks + s.egd_checks;
  into.nulls_created <- into.nulls_created + s.nulls_created

type mode = Naive | Semi_naive

exception Chase_error of string

(* Try to extend [binding] so that [args] (terms) match [fact] (values),
   positionally.  Complex terms whose variables are not all bound yet
   are deferred to [deferred]. *)
let match_fact binding deferred args fact =
  let n = Array.length fact in
  if List.length args <> n then None
  else
    let rec loop i binding deferred = function
      | [] -> Some (binding, deferred)
      | term :: rest -> (
          let value = fact.(i) in
          match term with
          | Term.Var v -> (
              match Binding.lookup binding v with
              | Some bound ->
                  if Value.equal bound value then
                    loop (i + 1) binding deferred rest
                  else None
              | None -> loop (i + 1) (Binding.bind binding v value) deferred rest)
          | _ ->
              if Binding.term_fully_bound binding term then
                match Binding.term_value binding term with
                | Some computed when Value.equal computed value ->
                    loop (i + 1) binding deferred rest
                | _ -> None
              else loop (i + 1) binding ((term, value) :: deferred) rest)
    in
    loop 0 binding deferred args

(* Re-check deferred constraints that became evaluable. *)
let settle_deferred binding deferred =
  let rec loop acc = function
    | [] -> Some acc
    | (term, value) :: rest ->
        if Binding.term_fully_bound binding term then
          match Binding.term_value binding term with
          | Some computed when Value.equal computed value -> loop acc rest
          | _ -> None
        else loop ((term, value) :: acc) rest
  in
  loop [] deferred

let determined_positions bound_vars (atom : Tgd.atom) =
  List.mapi (fun i term -> (i, term)) atom.Tgd.args
  |> List.filter (fun (_, term) ->
         List.for_all (fun v -> List.mem v bound_vars) (Term.vars term))
  |> List.map fst

let extend_bound_vars bound_vars (atom : Tgd.atom) =
  List.fold_left
    (fun acc term -> match term with Term.Var v -> v :: acc | _ -> acc)
    bound_vars atom.Tgd.args

(* Enumerate all assignments satisfying the conjunction of atoms, with
   per-application throwaway caches — the naive baseline.

   This is a hash join: for each atom after the first, the argument
   positions whose terms are fully determined by the variables bound so
   far (statically known) are used as a lookup key into an index built
   once per (relation, positions) pair, so a two-atom tgd runs in time
   linear in the instance rather than quadratic. *)
let match_atoms instance stats atoms (k : Binding.t -> unit) =
  let fact_cache : (string, Value.t array array) Hashtbl.t = Hashtbl.create 4 in
  let facts_of rel =
    match Hashtbl.find_opt fact_cache rel with
    | Some f -> f
    | None ->
        let f = Array.of_list (Instance.facts instance rel) in
        Hashtbl.replace fact_cache rel f;
        f
  in
  let index_cache :
      (string * int list, Value.t array list Tuple.Table.t) Hashtbl.t =
    Hashtbl.create 4
  in
  let index_of rel positions =
    let cache_key = (rel, positions) in
    match Hashtbl.find_opt index_cache cache_key with
    | Some idx -> idx
    | None ->
        let idx = Tuple.Table.create 64 in
        (* Iterate in reverse so each bucket ends up in sorted order. *)
        let all = facts_of rel in
        for i = Array.length all - 1 downto 0 do
          let fact = all.(i) in
          let key = Tuple.of_list (List.map (fun p -> fact.(p)) positions) in
          Tuple.Table.add_multi idx key fact
        done;
        Hashtbl.replace index_cache cache_key idx;
        idx
  in
  let rec go bound_vars binding deferred = function
    | [] ->
        if deferred <> [] then
          raise
            (Chase_error
               "tgd not executable: a complex term's variables never get bound");
        k binding
    | (atom : Tgd.atom) :: rest ->
        let determined = determined_positions bound_vars atom in
        let candidates =
          if determined = [] then Some (facts_of atom.Tgd.rel)
          else
            let expected =
              List.map
                (fun p -> Binding.term_value binding (List.nth atom.Tgd.args p))
                determined
            in
            if List.exists Option.is_none expected then None
            else
              let key = Tuple.of_list (List.map Option.get expected) in
              let idx = index_of atom.Tgd.rel determined in
              Some (Array.of_list (Tuple.Table.find_multi idx key))
        in
        let bound_vars' = extend_bound_vars bound_vars atom in
        (match candidates with
        | None -> ()
        | Some facts ->
            Array.iter
              (fun fact ->
                stats.matches_examined <- stats.matches_examined + 1;
                match match_fact binding deferred atom.Tgd.args fact with
                | None -> ()
                | Some (binding', deferred') -> (
                    match settle_deferred binding' deferred' with
                    | None -> ()
                    | Some deferred'' -> go bound_vars' binding' deferred'' rest))
              facts)
  in
  go [] Binding.empty [] atoms

(* ----- semi-naive enumeration over the persistent indexes ----- *)

(* What an atom may range over in a semi-naive round: the current
   instance, the pre-round state (current minus this round's delta), or
   exactly the delta.  With the pivot drawing from the delta, atoms
   before it (in the original order) ranging over the full state and
   atoms after it over the old state, every mixed combination of old
   and delta facts is derived exactly once — the textbook semi-naive
   decomposition. *)
type atom_source =
  | Full
  | Old of unit Tuple.Table.t  (* membership of the facts to exclude *)
  | Delta of Instance.fact list

let match_plan instance stats (plan : (Tgd.atom * atom_source) list)
    (k : Binding.t -> unit) =
  let full_cache : (string, Instance.fact list) Hashtbl.t = Hashtbl.create 4 in
  let all_facts rel =
    match Hashtbl.find_opt full_cache rel with
    | Some l -> l
    | None ->
        let acc = ref [] in
        Instance.iter_facts instance rel (fun f -> acc := f :: !acc);
        Hashtbl.replace full_cache rel !acc;
        !acc
  in
  let rec go bound_vars binding deferred = function
    | [] ->
        if deferred <> [] then
          raise
            (Chase_error
               "tgd not executable: a complex term's variables never get bound");
        k binding
    | ((atom : Tgd.atom), source) :: rest ->
        let candidates =
          match source with
          | Delta facts -> Some facts
          | Full | Old _ -> (
              let determined = determined_positions bound_vars atom in
              if determined = [] then Some (all_facts atom.Tgd.rel)
              else
                let expected =
                  List.map
                    (fun p ->
                      Binding.term_value binding (List.nth atom.Tgd.args p))
                    determined
                in
                if List.exists Option.is_none expected then None
                else
                  Some
                    (Instance.lookup_index instance atom.Tgd.rel determined
                       (List.map Option.get expected)))
        in
        let candidates =
          match (candidates, source) with
          | Some facts, Old excluded ->
              Some
                (List.filter
                   (fun f -> not (Tuple.Table.mem excluded (Tuple.of_array f)))
                   facts)
          | _ -> candidates
        in
        let bound_vars' = extend_bound_vars bound_vars atom in
        (match candidates with
        | None -> ()
        | Some facts ->
            List.iter
              (fun fact ->
                stats.matches_examined <- stats.matches_examined + 1;
                match match_fact binding deferred atom.Tgd.args fact with
                | None -> ()
                | Some (binding', deferred') -> (
                    match settle_deferred binding' deferred' with
                    | None -> ()
                    | Some deferred'' -> go bound_vars' binding' deferred'' rest))
              facts)
  in
  go [] Binding.empty [] plan

let indexed_matcher instance stats atoms k =
  match_plan instance stats (List.map (fun a -> (a, Full)) atoms) k

(* The (relation, positions) pairs a tuple-level lhs probes, computed
   statically by replaying the binding order — so a stratum can build
   all its persistent indexes before its tgds run in parallel. *)
let index_needs lhs =
  let rec loop bound_vars acc = function
    | [] -> List.rev acc
    | (atom : Tgd.atom) :: rest ->
        let determined = determined_positions bound_vars atom in
        let acc =
          if determined = [] then acc else (atom.Tgd.rel, determined) :: acc
        in
        loop (extend_bound_vars bound_vars atom) acc rest
  in
  loop [] [] lhs

(* ----- tgd application ----- *)

(* [nulls_created] is the non-core overhead counter: facts landing in
   temporary relations are the labelled-null padding of a non-core
   solution (a core solution holds no temporaries), and outer combines
   additionally count every default substituted for a missing side. *)
let emit_fact instance stats on_new rel values =
  let fact = Array.of_list values in
  if Instance.insert instance rel fact then begin
    stats.tuples_generated <- stats.tuples_generated + 1;
    if Exl.Normalize.is_temp rel then
      stats.nulls_created <- stats.nulls_created + 1;
    on_new rel fact
  end

let apply_tuple_level ~matcher ~out instance stats on_new lhs (rhs : Tgd.atom) =
  matcher instance stats lhs (fun binding ->
      (* Any undefined term leaves a hole in the result cube, matching
         the partial-function semantics of EXL operators. *)
      let values = List.map (Binding.term_value binding) rhs.Tgd.args in
      if List.for_all Option.is_some values then
        emit_fact out stats on_new rhs.Tgd.rel (List.map Option.get values))

(* Bind one source fact of an aggregation tgd to its (group key,
   measure) contribution; [None] when the fact does not match the
   source atom's constants.  Shared by the full evaluation and the
   group-scoped incremental path, which must classify delta facts
   exactly the way the full run binned them. *)
let agg_classify (source : Tgd.atom) group_by measure fact =
  match match_fact Binding.empty [] source.Tgd.args fact with
  | None -> None
  | Some (binding, deferred) ->
      if deferred <> [] then
        raise (Chase_error "aggregation source atom must use variables");
      let key_values =
        List.map
          (fun t ->
            match Binding.term_value binding t with
            | Some v -> v
            | None ->
                raise
                  (Chase_error
                     (Printf.sprintf
                        "group-by term %s undefined on a source tuple"
                        (Term.to_string t))))
          group_by
      in
      let m =
        match Option.bind (Binding.lookup binding measure) Value.to_float with
        | Some f -> f
        | None -> raise (Chase_error "aggregation measure is not numeric")
      in
      Some (Tuple.of_list key_values, m)

let apply_aggregation ~out instance stats on_new (source : Tgd.atom) group_by
    aggr measure target =
  let groups : float list ref Tuple.Table.t = Tuple.Table.create 64 in
  let order = ref [] in
  List.iter
    (fun fact ->
      stats.matches_examined <- stats.matches_examined + 1;
      match agg_classify source group_by measure fact with
      | None -> ()
      | Some (key, m) -> (
          match Tuple.Table.find_opt groups key with
          | Some bag -> bag := m :: !bag
          | None ->
              Tuple.Table.replace groups key (ref [ m ]);
              order := key :: !order))
    (Instance.facts instance source.Tgd.rel);
  List.iter
    (fun key ->
      let bag = List.rev !(Tuple.Table.find groups key) in
      let result = Stats.Aggregate.apply aggr bag in
      if not (Float.is_nan result) then
        emit_fact out stats on_new target
          (Tuple.to_list key @ [ Value.of_float result ]))
    (List.rev !order)

let apply_table_fn ~out instance stats on_new fn params source target =
  let cube = Instance.cube_of_relation instance source in
  let op =
    match Ops.Blackbox.find fn with
    | Some op -> op
    | None -> raise (Chase_error ("unknown black-box operator " ^ fn))
  in
  match Ops.Blackbox.apply_cube op ~params cube with
  | Error msg -> raise (Chase_error msg)
  | Ok result ->
      Cube.iter
        (fun k v ->
          stats.matches_examined <- stats.matches_examined + 1;
          emit_fact out stats on_new target (Array.to_list (Tuple.append k v)))
        result

(* The default-value vectorial variant: the union of both key sets,
   missing sides contributing the default measure. *)
let apply_outer_combine ~out instance stats on_new (left : Tgd.atom)
    (right : Tgd.atom) op default target =
  let dims_of fact =
    let n = Array.length fact - 1 in
    (Tuple.of_array (Array.sub fact 0 n), fact.(n))
  in
  let load (atom : Tgd.atom) =
    let table : Value.t Tuple.Table.t = Tuple.Table.create 64 in
    List.iter
      (fun fact ->
        stats.matches_examined <- stats.matches_examined + 1;
        let key, measure = dims_of fact in
        Tuple.Table.replace table key measure)
      (Instance.facts instance atom.Tgd.rel);
    table
  in
  let l = load left and r = load right in
  let emit key vl vr =
    let fl = Option.value ~default (Option.bind vl Value.to_float) in
    let fr = Option.value ~default (Option.bind vr Value.to_float) in
    match Ops.Binop.eval op fl fr with
    | Some result ->
        if vl = None || vr = None then
          stats.nulls_created <- stats.nulls_created + 1;
        emit_fact out stats on_new target
          (Tuple.to_list key @ [ Value.of_float result ])
    | None -> ()
  in
  Tuple.Table.iter (fun key vl -> emit key (Some vl) (Tuple.Table.find_opt r key)) l;
  Tuple.Table.iter
    (fun key vr -> if not (Tuple.Table.mem l key) then emit key None (Some vr))
    r

(* [out] is where derived facts land; reads go to [instance].  They
   coincide everywhere except the naive driver, whose Jacobi rounds
   read a frozen snapshot while writing the live instance.
   [vectorized] routes kernel-able tgds through the columnar engine
   (reads and writes must coincide — the batch is the frozen view);
   shapes the kernels do not handle fall through to the row matcher. *)
let apply_body_full ~matcher ?(vectorized = false) ?out instance stats on_new
    tgd =
  let out = Option.value ~default:instance out in
  let vectorize () =
    vectorized && out == instance
    && Vchase.apply
         {
           Vchase.read = instance;
           count =
             (fun n -> stats.matches_examined <- stats.matches_examined + n);
           emit = (fun rel values -> emit_fact out stats on_new rel values);
         }
         tgd
  in
  match tgd with
  | Tgd.Tuple_level { lhs; rhs } ->
      if not (vectorize ()) then
        apply_tuple_level ~matcher ~out instance stats on_new lhs rhs
  | Tgd.Aggregation { source; group_by; aggr; measure; target } ->
      if not (vectorize ()) then
        apply_aggregation ~out instance stats on_new source group_by aggr
          measure target
  | Tgd.Table_fn { fn; params; source; target } ->
      apply_table_fn ~out instance stats on_new fn params source target
  | Tgd.Outer_combine { left; right; op; default; target } ->
      apply_outer_combine ~out instance stats on_new left right op default
        target

let wrap_chase f =
  try
    f ();
    Ok ()
  with
  | Chase_error msg | Vchase.Error msg -> Error msg
  | Cube.Functionality_violation { cube; key } ->
      Error
        (Printf.sprintf "functionality violation in %s at %s" cube
           (Tuple.to_string key))

let apply_tgd instance tgd stats =
  wrap_chase (fun () ->
      apply_body_full ~matcher:match_atoms instance stats (fun _ _ -> ()) tgd;
      stats.tgds_applied <- stats.tgds_applied + 1)

let check_egd instance (egd : Mappings.Egd.t) stats =
  match Instance.schema instance egd.Mappings.Egd.relation with
  | None -> Ok ()
  | Some _ ->
      let seen : Value.t Tuple.Table.t = Tuple.Table.create 64 in
      let rec loop = function
        | [] -> Ok ()
        | fact :: rest ->
            let n = Array.length fact - 1 in
            let key = Tuple.of_array (Array.sub fact 0 n) in
            let measure = fact.(n) in
            stats.egd_checks <- stats.egd_checks + 1;
            (match Tuple.Table.find_opt seen key with
            | Some other when not (Value.equal other measure) ->
                Error
                  (Printf.sprintf
                     "egd violation: %s has two measures (%s, %s) for %s"
                     egd.Mappings.Egd.relation (Value.to_string other)
                     (Value.to_string measure) (Tuple.to_string key))
            | _ ->
                Tuple.Table.replace seen key measure;
                loop rest)
      in
      loop (Instance.facts instance egd.Mappings.Egd.relation)

let check_target_egds ~check_egds (m : Mappings.Mapping.t) instance stats rels =
  if not check_egds then Ok ()
  else
    let rec loop = function
      | [] -> Ok ()
      | rel :: rest -> (
          match
            List.find_opt
              (fun (e : Mappings.Egd.t) -> e.Mappings.Egd.relation = rel)
              m.Mappings.Mapping.egds
          with
          | None -> loop rest
          | Some egd -> (
              match check_egd instance egd stats with
              | Ok () -> loop rest
              | Error msg -> Error ("chase failed: " ^ msg)))
    in
    loop (List.sort_uniq String.compare rels)

(* ----- the naive chase (benchmark baseline) ----- *)

(* Textbook naive evaluation over the tgd *set*: every round clears and
   fully re-derives each target from whatever its sources currently
   hold, iterating until a round changes nothing.  Processing order is
   canonical (target name), deliberately blind to the generator's
   topological statement order — the baseline gets no ordering oracle,
   so it converges only after ~depth rounds, re-joining all facts and
   rebuilding its per-application hash indexes every time.  Correct for
   non-monotone operators (aggregation, blackbox) precisely because
   each application starts from a cleared target. *)
let run_naive ~check_egds (m : Mappings.Mapping.t) target stats =
  let tgds =
    List.stable_sort
      (fun a b -> String.compare (Tgd.target_relation a) (Tgd.target_relation b))
      m.Mappings.Mapping.t_tgds
  in
  let rels =
    List.sort_uniq String.compare (List.map Tgd.target_relation tgds)
  in
  (* Textbook (Jacobi) naive iteration: J_{k+1} = T(J_k).  Every round
     clears the target relations and re-derives them against a frozen
     snapshot of the previous round — no ordering oracle, no
     within-round propagation — so a dependency chain of depth d takes
     d + 2 rounds to converge and be detected.  Depth is bounded by the
     tgd count, hence the round cap. *)
  let max_rounds = List.length tgds + 2 in
  let round () =
    let snapshot = Instance.copy target in
    List.iter (fun rel -> Instance.clear target rel) rels;
    let rec pass = function
      | [] -> Ok ()
      | tgd :: rest -> (
          match
            wrap_chase (fun () ->
                apply_body_full ~matcher:match_atoms ~out:target snapshot stats
                  (fun _ _ -> ()) tgd;
                stats.tgds_applied <- stats.tgds_applied + 1)
          with
          | Error msg ->
              Error
                (Printf.sprintf "chase failed on tgd [%s]: %s"
                   (Tgd.to_string tgd) msg)
          | Ok () -> pass rest)
    in
    match pass tgds with
    | Error _ as e -> e
    | Ok () ->
        (* fixpoint test: same fact set as the snapshot, per relation *)
        let changed = ref false in
        List.iter
          (fun rel ->
            if not !changed then begin
              let old : unit Tuple.Table.t = Tuple.Table.create 64 in
              Instance.iter_facts snapshot rel (fun f ->
                  Tuple.Table.replace old (Tuple.of_array f) ());
              if Instance.cardinality target rel <> Tuple.Table.length old then
                changed := true
              else
                Instance.iter_facts target rel (fun f ->
                    if not (Tuple.Table.mem old (Tuple.of_array f)) then
                      changed := true)
            end)
          rels;
        Ok !changed
  in
  let rec rounds n =
    if n > max_rounds then Error "naive chase did not reach a fixpoint"
    else begin
      stats.rounds <- stats.rounds + 1;
      match
        Obs.with_span "chase.round"
          ~attrs:[ ("round", string_of_int n); ("mode", "naive") ]
          round
      with
      | Error _ as e -> e
      | Ok true -> rounds (n + 1)
      | Ok false -> Ok ()
    end
  in
  match rounds 1 with
  | Error _ as e -> e
  | Ok () -> check_target_egds ~check_egds m target stats rels

(* ----- the semi-naive stratified chase ----- *)

let apply_full_collect ~vectorized instance tgd =
  let local = empty_stats () in
  let added = ref [] in
  let on_new rel fact = added := (rel, fact) :: !added in
  let res =
    wrap_chase (fun () ->
        apply_body_full ~matcher:indexed_matcher ~vectorized instance local
          on_new tgd;
        local.tgds_applied <- local.tgds_applied + 1)
  in
  (res, local, List.rev !added)

(* One pivot pass per lhs atom with a non-empty delta: the pivot ranges
   over the delta, earlier atoms over the full state, later atoms over
   the old state; the pivot is enumerated first so its variables drive
   the indexed lookups of the remaining atoms. *)
let apply_tuple_level_delta instance stats on_new lhs (rhs : Tgd.atom)
    ~delta_of ~delta_set =
  List.iteri
    (fun i (pivot_atom : Tgd.atom) ->
      let d = delta_of pivot_atom.Tgd.rel in
      if d <> [] then begin
        let plan =
          (pivot_atom, Delta d)
          :: (List.mapi (fun j a -> (j, a)) lhs
             |> List.filter (fun (j, _) -> j <> i)
             |> List.map (fun (j, (a : Tgd.atom)) ->
                    if j < i then (a, Full) else (a, Old (delta_set a.Tgd.rel))))
        in
        match_plan instance stats plan (fun binding ->
            let values = List.map (Binding.term_value binding) rhs.Tgd.args in
            if List.for_all Option.is_some values then
              emit_fact instance stats on_new rhs.Tgd.rel
                (List.map Option.get values))
      end)
    lhs

let apply_tgd_delta instance tgd stats on_new ~delta_of ~delta_set =
  let touched rels = List.exists (fun r -> delta_of r <> []) rels in
  wrap_chase (fun () ->
      match tgd with
      | Tgd.Tuple_level { lhs; rhs } ->
          if touched (List.map (fun (a : Tgd.atom) -> a.Tgd.rel) lhs) then begin
            apply_tuple_level_delta instance stats on_new lhs rhs ~delta_of
              ~delta_set;
            stats.tgds_applied <- stats.tgds_applied + 1
          end
      | _ ->
          (* aggregation / blackbox / outer tgds are not delta-
             decomposable; re-evaluate from the full source when it
             changed, relying on set semantics to dedupe re-derivations *)
          if touched (Tgd.source_relations tgd) then begin
            apply_body_full ~matcher:indexed_matcher instance stats on_new tgd;
            stats.tgds_applied <- stats.tgds_applied + 1
          end)

(* Delta-round fixpoint loop shared by [run_stratum] (rounds >= 2 of a
   full evaluation) and the incremental entry point (where the seed
   delta is the caller's change set, not round one's output).  [on_new]
   additionally observes every fact emitted across all rounds. *)
let delta_rounds ?(on_new = fun _ _ -> ()) instance stats stratum seed
    start_round =
  let record tbl rel fact =
    Hashtbl.replace tbl rel
      (fact :: Option.value ~default:[] (Hashtbl.find_opt tbl rel))
  in
  let max_rounds = start_round + List.length stratum + 8 in
  let rec loop deltas round =
    if Hashtbl.length deltas = 0 then Ok ()
    else if round > max_rounds then
      Error "chase stratum did not reach a fixpoint"
    else begin
      stats.rounds <- stats.rounds + 1;
      let delta_total =
        Hashtbl.fold (fun _ l acc -> acc + List.length l) deltas 0
      in
      Obs.observe ~buckets:Obs.Metrics.size_buckets "chase.delta_facts"
        (float_of_int delta_total);
      let outcome =
        Obs.with_span "chase.round"
          ~attrs:
            [
              ("round", string_of_int round);
              ("delta_facts", string_of_int delta_total);
            ]
          (fun () ->
            let next : (string, Instance.fact list) Hashtbl.t =
              Hashtbl.create 8
            in
            let delta_of rel =
              Option.value ~default:[] (Hashtbl.find_opt deltas rel)
            in
            let sets : (string, unit Tuple.Table.t) Hashtbl.t =
              Hashtbl.create 8
            in
            let delta_set rel =
              match Hashtbl.find_opt sets rel with
              | Some s -> s
              | None ->
                  let s = Tuple.Table.create 16 in
                  List.iter
                    (fun f -> Tuple.Table.replace s (Tuple.of_array f) ())
                    (delta_of rel);
                  Hashtbl.replace sets rel s;
                  s
            in
            let emit rel fact =
              record next rel fact;
              on_new rel fact
            in
            let rec apply_all = function
              | [] -> Ok ()
              | tgd :: rest -> (
                  match
                    apply_tgd_delta instance tgd stats emit ~delta_of ~delta_set
                  with
                  | Error msg ->
                      Error
                        (Printf.sprintf "chase failed on tgd [%s]: %s"
                           (Tgd.to_string tgd) msg)
                  | Ok () -> apply_all rest)
            in
            match apply_all stratum with
            | Error _ as e -> e
            | Ok () -> Ok next)
      in
      match outcome with Error _ as e -> e | Ok next -> loop next (round + 1)
    end
  in
  loop seed start_round

let run_stratum ~executor ~columnar instance stats stratum =
  (* Pre-build what round one will probe, so the parallel phase only
     ever reads the shared relations: source batches (and their
     append-only dictionaries) for kernel-handled tgds, persistent
     indexes for the rest.  [Vchase.handles] depends only on schemas
     and tgd shape, both fixed for the stratum, so a handled tgd is
     guaranteed to take the batch path in round one. *)
  List.iter
    (fun tgd ->
      if columnar && Vchase.handles instance tgd then
        Vchase.prewarm instance tgd
      else
        match tgd with
        | Tgd.Tuple_level { lhs; _ } ->
            List.iter
              (fun (rel, positions) ->
                Instance.ensure_index instance rel positions)
              (index_needs lhs)
        | _ -> ())
    stratum;
  (* Round one: full evaluation, seeded by the whole instance.  Tgds of
     a stratum have pairwise distinct targets and read only lower
     strata, so they are independent; when that is certain they may run
     on separate domains, each writing only its own target relation. *)
  stats.rounds <- stats.rounds + 1;
  let parallel_safe =
    let targets = List.map Tgd.target_relation stratum in
    List.length (List.sort_uniq String.compare targets) = List.length targets
    && List.for_all
         (fun tgd ->
           List.for_all
             (fun s -> not (List.mem s targets))
             (Tgd.source_relations tgd))
         stratum
  in
  let collect tgd =
    Obs.with_span "chase.tgd"
      ~attrs:[ ("target", Tgd.target_relation tgd) ]
      (fun () -> apply_full_collect ~vectorized:columnar instance tgd)
  in
  let outcomes =
    Obs.with_span "chase.round"
      ~attrs:
        [ ("round", "1"); ("parallel", string_of_bool parallel_safe) ]
      (fun () ->
        match stratum with
        | [ tgd ] -> [ collect tgd ]
        | _ when not parallel_safe -> List.map collect stratum
        | _ ->
            let n = List.length stratum in
            let results = Array.make n None in
            let tasks =
              List.mapi (fun i tgd () -> results.(i) <- Some (collect tgd)) stratum
            in
            executor tasks;
            Array.to_list results
            |> List.map (function
                 | Some r -> r
                 | None ->
                     (Error "parallel chase task did not run", empty_stats (), [])))
  in
  let deltas : (string, Instance.fact list) Hashtbl.t = Hashtbl.create 8 in
  let record tbl rel fact =
    Hashtbl.replace tbl rel
      (fact :: Option.value ~default:[] (Hashtbl.find_opt tbl rel))
  in
  let first_error = ref None in
  List.iter2
    (fun tgd (res, local, added) ->
      merge_stats ~into:stats local;
      List.iter (fun (rel, fact) -> record deltas rel fact) added;
      match res with
      | Error msg when !first_error = None ->
          first_error :=
            Some
              (Printf.sprintf "chase failed on tgd [%s]: %s" (Tgd.to_string tgd)
                 msg)
      | _ -> ())
    stratum outcomes;
  match !first_error with
  | Some msg -> Error msg
  | None ->
      (* Subsequent rounds: join only against the previous round's
         delta.  For a stratified program the first delta round derives
         nothing (a stratum's sources live strictly below it), so this
         terminates immediately; for unstratifiable tgd sets it is a
         genuine fixpoint loop. *)
      delta_rounds instance stats stratum deltas 2

let strata_of (m : Mappings.Mapping.t) =
  match Mappings.Stratify.check m with
  | Ok () -> Mappings.Stratify.strata m
  | Error _ -> (
      (* Unstratifiable (or mis-ordered) tgd sets run as one big
         stratum: round one follows statement order, the delta rounds
         then compute the actual fixpoint. *)
      match m.Mappings.Mapping.t_tgds with [] -> [] | tgds -> [ tgds ])

let run_semi_naive ~check_egds ~executor ~columnar (m : Mappings.Mapping.t)
    target stats =
  let strata = strata_of m in
  let rec loop i = function
    | [] -> Ok ()
    | stratum :: rest -> (
        match
          Obs.with_span "chase.stratum"
            ~attrs:
              [
                ("stratum", string_of_int i);
                ("tgds", string_of_int (List.length stratum));
              ]
            (fun () -> run_stratum ~executor ~columnar target stats stratum)
        with
        | Error _ as e -> e
        | Ok () -> (
            match
              check_target_egds ~check_egds m target stats
                (List.map Tgd.target_relation stratum)
            with
            | Error _ as e -> e
            | Ok () -> loop (i + 1) rest))
  in
  loop 0 strata

(* Static pre-check hook.  The chase itself must not depend on the
   analysis library (dependency direction), so the check is injected:
   the test harness points this at the weak-acyclicity certificate so
   every chased mapping in the suite is also statically certified. *)
let static_check : (Mappings.Mapping.t -> (unit, string) result) ref =
  ref (fun _ -> Ok ())

let sequential_executor tasks = List.iter (fun task -> task ()) tasks

(* Sharded-chase hook.  The shard driver lives above this library (it
   partitions instances and re-enters [run] per shard), so — like
   [static_check] — it is injected rather than depended upon:
   [Shard.Driver.install] fills the slot at module init.  [run ~shards]
   with no installed runner is a hard error, not a silent fallback;
   a missing linkage must not masquerade as a scaling measurement. *)
type shard_request = {
  shard_count : int;
  shard_key : string option;
  shard_range : bool;  (** range partitioning instead of hash *)
}

type shard_runner =
  check_egds:bool ->
  executor:((unit -> unit) list -> unit) ->
  columnar:bool ->
  request:shard_request ->
  Mappings.Mapping.t ->
  Instance.t ->
  (Instance.t * stats, string) result

let shard_runner : shard_runner option ref = ref None

let run ?(check_egds = true) ?(mode = Semi_naive)
    ?(executor = sequential_executor) ?(columnar = true) ?(shards = 1)
    ?shard_key ?(shard_range = false) (m : Mappings.Mapping.t) source =
  if shards > 1 && mode = Semi_naive then
    match !shard_runner with
    | None ->
        Error
          "sharded chase requested but no shard runner is installed (link \
           lib/shard and call Shard.Driver.install ())"
    | Some runner -> (
        match !static_check m with
        | Error msg -> Error ("static check failed before chase: " ^ msg)
        | Ok () ->
            runner ~check_egds ~executor ~columnar
              ~request:{ shard_count = shards; shard_key; shard_range }
              m source)
  else
  match !static_check m with
  | Error msg -> Error ("static check failed before chase: " ^ msg)
  | Ok () ->
      let stats = empty_stats () in
      let target = Instance.create () in
      List.iter (Instance.add_relation target) m.Mappings.Mapping.target;
      (* Σst: copy the source relations into the target (the paper keeps
         the same symbols for a relation and its copy; so do we).  On
         the columnar path a source relation whose target schema
         matches is installed as a shared column batch — O(columns),
         with the encode memoized on the source across runs — and its
         target rows rebuild lazily only if something needs tuple-level
         access. *)
      List.iter
        (fun schema ->
          let name = schema.Schema.name in
          match Instance.schema source name with
          | None -> ()
          | Some src_schema ->
              let batched =
                columnar && mode = Semi_naive
                &&
                match Instance.schema target name with
                | Some tgt_schema -> Schema.equal tgt_schema src_schema
                | None -> false
              in
              if batched then
                Instance.set_batch target name (Instance.batch source name)
              else
                Instance.iter_facts source name (fun fact ->
                    ignore (Instance.insert target name (Array.copy fact))))
        m.Mappings.Mapping.source;
      let builds0, lookups0 = Instance.index_stats () in
      let result =
        Obs.with_span "chase.run"
          ~attrs:
            [
              ("mode", (match mode with Naive -> "naive" | Semi_naive -> "semi_naive"));
              ("tgds", string_of_int (List.length m.Mappings.Mapping.t_tgds));
            ]
          ~attrs_after:(fun () ->
            [
              ("rounds", string_of_int stats.rounds);
              ("tuples_generated", string_of_int stats.tuples_generated);
            ])
          (fun () ->
            match mode with
            | Naive -> run_naive ~check_egds m target stats
            | Semi_naive ->
                run_semi_naive ~check_egds ~executor ~columnar m target stats)
      in
      (* Aggregated flush: the hot match loops touch only the local
         [stats] record; the metrics registry sees one update per run. *)
      if Obs.enabled () then begin
        let builds1, lookups1 = Instance.index_stats () in
        Obs.count "chase.runs";
        Obs.count ~n:stats.rounds "chase.rounds";
        Obs.count ~n:stats.matches_examined "chase.matches_examined";
        Obs.count ~n:stats.tuples_generated "chase.tuples_generated";
        Obs.count ~n:stats.tgds_applied "chase.tgds_applied";
        Obs.count ~n:stats.egd_checks "chase.egd_checks";
        Obs.count ~n:stats.nulls_created "chase.nulls_created";
        Obs.count ~n:(builds1 - builds0) "chase.index_builds";
        Obs.count ~n:(lookups1 - lookups0) "chase.index_lookups"
      end;
      Result.map (fun () -> (target, stats)) result

(* ----- incremental re-evaluation from fact deltas ----- *)

type fact_delta = { added : Instance.fact list; removed : Instance.fact list }

let empty_delta = { added = []; removed = [] }

type incr_stats = {
  mutable input_facts : int;
  mutable strata_total : int;
  mutable strata_skipped : int;
  mutable strata_delta : int;
  mutable strata_rederived : int;
  mutable facts_rederived : int;
}

let empty_incr_stats () =
  {
    input_facts = 0;
    strata_total = 0;
    strata_skipped = 0;
    strata_delta = 0;
    strata_rederived = 0;
    facts_rederived = 0;
  }

(* The tgds of [stratum] that must re-run: a tgd is selected when a
   source relation carries a delta, when a source is the target of an
   already selected tgd (intra-stratum feeding happens only in the
   unstratifiable single-stratum fallback), or when its target will be
   cleared by the rederivation of another selected tgd (shared targets
   must be rebuilt together or facts would be lost). *)
let select_touched stratum ~touched =
  let tgds = Array.of_list stratum in
  let selected = Array.make (Array.length tgds) false in
  let target_selected rel =
    Array.exists2
      (fun s tgd -> s && Tgd.target_relation tgd = rel)
      selected tgds
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i tgd ->
        if not selected.(i) then
          let sources = Tgd.source_relations tgd in
          if
            List.exists touched sources
            || List.exists target_selected sources
            || target_selected (Tgd.target_relation tgd)
          then begin
            selected.(i) <- true;
            changed := true
          end)
      tgds
  done;
  Array.to_list tgds
  |> List.filteri (fun i _ -> selected.(i))

(* Insert-only tuple-level strata: seed the semi-naive delta loop with
   the input delta facts (already present in the instance) and let the
   pivot/Full/Old decomposition derive exactly the new consequences. *)
let incr_delta_stratum instance stats istats selected seed =
  List.iter
    (fun tgd ->
      match tgd with
      | Tgd.Tuple_level { lhs; _ } ->
          List.iter
            (fun (rel, positions) -> Instance.ensure_index instance rel positions)
            (index_needs lhs)
      | _ -> ())
    selected;
  let out : (string, Instance.fact list) Hashtbl.t = Hashtbl.create 8 in
  let on_new rel fact =
    istats.facts_rederived <- istats.facts_rederived + 1;
    Hashtbl.replace out rel
      (fact :: Option.value ~default:[] (Hashtbl.find_opt out rel))
  in
  match delta_rounds ~on_new instance stats selected seed 1 with
  | Error _ as e -> e
  | Ok () ->
      Ok
        (Hashtbl.fold
           (fun rel added acc -> (rel, { added; removed = [] }) :: acc)
           out [])

(* DRed-style stratum rederivation, for deletions and for strata whose
   tgds are not delta-decomposable (aggregation, blackbox, outer
   combine): over-delete the touched targets entirely, re-run the
   touched tgds from their (already updated) sources, then diff old vs
   new facts to get a compact delta for the strata above. *)
let incr_rederive_stratum ~executor instance stats istats selected =
  let targets =
    List.sort_uniq String.compare (List.map Tgd.target_relation selected)
  in
  let old =
    List.map
      (fun rel ->
        let tbl : unit Tuple.Table.t = Tuple.Table.create 64 in
        let facts = ref [] in
        Instance.iter_facts instance rel (fun f ->
            Tuple.Table.replace tbl (Tuple.of_array f) ();
            facts := f :: !facts);
        (rel, tbl, !facts))
      targets
  in
  List.iter (fun rel -> Instance.clear instance rel) targets;
  (* Vectorized like a full run: the cached solution this repairs was
     produced by the (columnar-default) [run], and the incremental
     speedup floor is measured against that same baseline. *)
  match run_stratum ~executor ~columnar:true instance stats selected with
  | Error _ as e -> e
  | Ok () ->
      Ok
        (List.filter_map
           (fun (rel, old_tbl, old_facts) ->
             let added = ref [] in
             Instance.iter_facts instance rel (fun f ->
                 istats.facts_rederived <- istats.facts_rederived + 1;
                 if not (Tuple.Table.mem old_tbl (Tuple.of_array f)) then
                   added := f :: !added);
             let removed =
               List.filter (fun f -> not (Instance.mem instance rel f)) old_facts
             in
             if !added = [] && removed = [] then None
             else Some (rel, { added = !added; removed }))
           old)

(* ----- group-scoped aggregation rederivation ----- *)

(* Per-aggregation-tgd incremental state: each group key maps to the
   multiset of measures currently contributing to it.  Built with one
   full source scan the first time a batch touches the tgd and
   maintained by deltas afterwards, so steady-state batches
   re-aggregate only the groups their delta facts fall in instead of
   rescanning the whole source relation DRed-style.  Bags accumulate
   newest-first and are reversed before [Stats.Aggregate.apply], so
   sums may re-associate relative to a from-scratch run — callers
   comparing solutions must use an epsilon. *)
type agg_bags = float list ref Tuple.Table.t

type incr_state = (string, agg_bags) Hashtbl.t
(* Keyed by [Tgd.to_string], stable for the lifetime of a mapping. *)

let create_incr_state () : incr_state = Hashtbl.create 8

let fact_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i v -> if not (Value.equal v b.(i)) then ok := false) a;
  !ok

(* Float.compare so a NaN measure still finds its bag entry. *)
let remove_once bag m =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest ->
        if Float.compare x m = 0 then List.rev_append acc rest
        else go (x :: acc) rest
  in
  go [] bag

let build_agg_bags instance stats (source : Tgd.atom) group_by measure =
  let bags : agg_bags = Tuple.Table.create 64 in
  Instance.iter_facts instance source.Tgd.rel (fun fact ->
      stats.matches_examined <- stats.matches_examined + 1;
      match agg_classify source group_by measure fact with
      | None -> ()
      | Some (key, m) -> (
          match Tuple.Table.find_opt bags key with
          | Some bag -> bag := m :: !bag
          | None -> Tuple.Table.replace bags key (ref [ m ])));
  bags

(* One aggregation tgd, group-scoped: update the measure bags with the
   source delta, re-aggregate only the affected groups and replace
   their target facts in place.  When the bags were just built
   ([fresh]) the source already includes the delta, so the delta facts
   only name the affected groups.  Returns the compact target delta. *)
let incr_agg_tgd instance stats istats bags ~fresh (source : Tgd.atom) group_by
    aggr measure target ~(delta : fact_delta) =
  let affected : unit Tuple.Table.t = Tuple.Table.create 8 in
  let classify fact =
    stats.matches_examined <- stats.matches_examined + 1;
    agg_classify source group_by measure fact
  in
  List.iter
    (fun fact ->
      match classify fact with
      | None -> ()
      | Some (key, m) ->
          Tuple.Table.replace affected key ();
          if not fresh then (
            match Tuple.Table.find_opt bags key with
            | Some bag ->
                bag := remove_once !bag m;
                if !bag = [] then Tuple.Table.remove bags key
            | None -> ()))
    delta.removed;
  List.iter
    (fun fact ->
      match classify fact with
      | None -> ()
      | Some (key, m) ->
          Tuple.Table.replace affected key ();
          if not fresh then (
            match Tuple.Table.find_opt bags key with
            | Some bag -> bag := m :: !bag
            | None -> Tuple.Table.replace bags key (ref [ m ])))
    delta.added;
  let key_positions = List.init (List.length group_by) Fun.id in
  Instance.ensure_index instance target key_positions;
  let added = ref [] and removed = ref [] in
  Tuple.Table.iter
    (fun key () ->
      let old_facts =
        Instance.lookup_index instance target key_positions (Tuple.to_list key)
      in
      let next =
        match Tuple.Table.find_opt bags key with
        | None -> None
        | Some bag ->
            let result = Stats.Aggregate.apply aggr (List.rev !bag) in
            if Float.is_nan result then None
            else
              Some
                (Array.of_list (Tuple.to_list key @ [ Value.of_float result ]))
      in
      List.iter
        (fun old ->
          let keep =
            match next with Some f -> fact_equal old f | None -> false
          in
          if (not keep) && Instance.remove instance target old then
            removed := old :: !removed)
        old_facts;
      match next with
      | Some f ->
          if Instance.insert instance target f then begin
            stats.tuples_generated <- stats.tuples_generated + 1;
            istats.facts_rederived <- istats.facts_rederived + 1;
            added := f :: !added
          end
      | None -> ())
    affected;
  { added = !added; removed = !removed }

let incremental ?(check_egds = true) ?(executor = sequential_executor) ?state
    (m : Mappings.Mapping.t) ~solution ~deltas =
  match !static_check m with
  | Error msg -> Error ("static check failed before chase: " ^ msg)
  | Ok () -> (
      let unknown =
        List.filter (fun (rel, _) -> Instance.schema solution rel = None) deltas
      in
      match unknown with
      | (rel, _) :: _ ->
          Error
            (Printf.sprintf
               "incremental chase: relation %s is not part of the solution" rel)
      | [] ->
          let stats = empty_stats () in
          let istats = empty_incr_stats () in
          (* Net change map, grown stratum by stratum as deltas
             propagate upward. *)
          let current : (string, fact_delta) Hashtbl.t = Hashtbl.create 16 in
          let merge rel d =
            if d.added <> [] || d.removed <> [] then
              let prev =
                Option.value ~default:empty_delta (Hashtbl.find_opt current rel)
              in
              Hashtbl.replace current rel
                {
                  added = d.added @ prev.added;
                  removed = d.removed @ prev.removed;
                }
          in
          (* Apply the input deltas to the previous solution; only
             facts genuinely removed/added (set semantics) propagate. *)
          List.iter
            (fun (rel, d) ->
              let removed =
                List.filter (fun f -> Instance.remove solution rel f) d.removed
              in
              let added =
                List.filter (fun f -> Instance.insert solution rel f) d.added
              in
              merge rel { added; removed })
            deltas;
          istats.input_facts <-
            Hashtbl.fold
              (fun _ d acc ->
                acc + List.length d.added + List.length d.removed)
              current 0;
          let touched rel = Hashtbl.mem current rel in
          let delta_removed rel =
            match Hashtbl.find_opt current rel with
            | Some d -> d.removed <> []
            | None -> false
          in
          let builds0, lookups0 = Instance.index_stats () in
          let run_stratum_incr i stratum =
            istats.strata_total <- istats.strata_total + 1;
            let selected = select_touched stratum ~touched in
            if selected = [] then begin
              istats.strata_skipped <- istats.strata_skipped + 1;
              Obs.count "chase.incr.strata_skipped";
              Ok []
            end
            else begin
              (* Per-tgd plan.  Insert-only tuple-level tgds replay
                 seeded delta rounds; aggregations with persistent
                 state re-aggregate affected groups; everything else
                 (tuple-level deletions, blackbox, outer combine, and
                 any tgd in a self-feeding fallback stratum) rederives
                 DRed-style.  A tgd sharing a target with a rederived
                 tgd must rederive too, or the target clear would lose
                 its facts. *)
              let stratum_targets =
                List.sort_uniq String.compare
                  (List.map Tgd.target_relation stratum)
              in
              let feeding =
                List.exists
                  (fun tgd ->
                    List.exists
                      (fun s -> List.mem s stratum_targets)
                      (Tgd.source_relations tgd))
                  selected
              in
              let plan_of tgd =
                if feeding then `Rederive
                else
                  match tgd with
                  | Tgd.Tuple_level _
                    when not
                           (List.exists delta_removed
                              (Tgd.source_relations tgd)) ->
                      `Delta
                  | Tgd.Aggregation _ when state <> None -> `Agg
                  | _ -> `Rederive
              in
              let plans = List.map (fun tgd -> (tgd, plan_of tgd)) selected in
              let rederive_targets = Hashtbl.create 4 in
              List.iter
                (fun (tgd, plan) ->
                  if plan = `Rederive then
                    Hashtbl.replace rederive_targets (Tgd.target_relation tgd)
                      ())
                plans;
              (* One pass suffices: demoting a tgd adds no new target. *)
              let plans =
                List.map
                  (fun (tgd, plan) ->
                    if
                      plan <> `Rederive
                      && Hashtbl.mem rederive_targets (Tgd.target_relation tgd)
                    then (tgd, `Rederive)
                    else (tgd, plan))
                  plans
              in
              let of_plan p =
                List.filter_map
                  (fun (tgd, plan) -> if plan = p then Some tgd else None)
                  plans
              in
              let rederive = of_plan `Rederive in
              let aggs = of_plan `Agg in
              let delta_tl = of_plan `Delta in
              (* A rederived aggregation's bags go stale (its target is
                 rebuilt outside the bag bookkeeping): drop them so the
                 next touching batch rebuilds from the source. *)
              (match state with
              | Some st ->
                  List.iter
                    (fun tgd ->
                      match tgd with
                      | Tgd.Aggregation _ ->
                          Hashtbl.remove st (Tgd.to_string tgd)
                      | _ -> ())
                    rederive
              | None -> ());
              let mode = if rederive <> [] then "rederive" else "delta" in
              if rederive <> [] then
                istats.strata_rederived <- istats.strata_rederived + 1
              else istats.strata_delta <- istats.strata_delta + 1;
              Obs.with_span "chase.stratum"
                ~attrs:
                  [
                    ("stratum", string_of_int i);
                    ("tgds", string_of_int (List.length selected));
                    ("mode", mode);
                  ]
                (fun () ->
                  let ( let* ) = Result.bind in
                  (* Rederive first — it clears its targets wholesale;
                     the other plans touch disjoint targets and read
                     only lower strata. *)
                  let* out1 =
                    if rederive = [] then Ok []
                    else
                      incr_rederive_stratum ~executor solution stats istats
                        rederive
                  in
                  let* out2 =
                    if aggs = [] then Ok []
                    else
                      let st = Option.get state in
                      let outs = ref [] in
                      Result.map
                        (fun () -> !outs)
                        (wrap_chase (fun () ->
                             List.iter
                               (fun tgd ->
                                 match tgd with
                                 | Tgd.Aggregation
                                     { source; group_by; aggr; measure; target }
                                   ->
                                     let key = Tgd.to_string tgd in
                                     let bags, fresh =
                                       match Hashtbl.find_opt st key with
                                       | Some bags -> (bags, false)
                                       | None ->
                                           let bags =
                                             build_agg_bags solution stats
                                               source group_by measure
                                           in
                                           Hashtbl.replace st key bags;
                                           (bags, true)
                                     in
                                     let delta =
                                       Option.value ~default:empty_delta
                                         (Hashtbl.find_opt current
                                            source.Tgd.rel)
                                     in
                                     let d =
                                       incr_agg_tgd solution stats istats bags
                                         ~fresh source group_by aggr measure
                                         target ~delta
                                     in
                                     stats.tgds_applied <-
                                       stats.tgds_applied + 1;
                                     if d.added <> [] || d.removed <> [] then
                                       outs := (target, d) :: !outs
                                 | _ -> assert false)
                               aggs))
                  in
                  let* out3 =
                    if delta_tl = [] then Ok []
                    else begin
                      let seed : (string, Instance.fact list) Hashtbl.t =
                        Hashtbl.create 8
                      in
                      Hashtbl.iter
                        (fun rel d ->
                          if d.added <> [] then Hashtbl.replace seed rel d.added)
                        current;
                      incr_delta_stratum solution stats istats delta_tl seed
                    end
                  in
                  let* () =
                    check_target_egds ~check_egds m solution stats
                      (List.map Tgd.target_relation selected)
                  in
                  Ok (out1 @ out2 @ out3))
            end
          in
          let rec loop i = function
            | [] -> Ok ()
            | stratum :: rest -> (
                match run_stratum_incr i stratum with
                | Error _ as e -> e
                | Ok out ->
                    List.iter (fun (rel, d) -> merge rel d) out;
                    loop (i + 1) rest)
          in
          let result =
            Obs.with_span "chase.incremental"
              ~attrs:
                [ ("delta_facts", string_of_int istats.input_facts) ]
              ~attrs_after:(fun () ->
                [
                  ("strata_skipped", string_of_int istats.strata_skipped);
                  ("facts_rederived", string_of_int istats.facts_rederived);
                ])
              (fun () -> loop 0 (strata_of m))
          in
          if Obs.enabled () then begin
            let builds1, lookups1 = Instance.index_stats () in
            Obs.count "chase.incr.runs";
            Obs.count ~n:istats.input_facts "chase.incr.input_facts";
            Obs.count ~n:istats.facts_rederived "chase.incr.facts_rederived";
            Obs.count ~n:stats.matches_examined "chase.matches_examined";
            Obs.count ~n:stats.tuples_generated "chase.tuples_generated";
            Obs.count ~n:stats.tgds_applied "chase.tgds_applied";
            Obs.count ~n:stats.egd_checks "chase.egd_checks";
            Obs.count ~n:stats.nulls_created "chase.nulls_created";
            Obs.count ~n:(builds1 - builds0) "chase.index_builds";
            Obs.count ~n:(lookups1 - lookups0) "chase.index_lookups"
          end;
          Result.map (fun () -> (stats, istats)) result)
