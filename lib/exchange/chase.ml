open Matrix
module Tgd = Mappings.Tgd
module Term = Mappings.Term

type stats = {
  mutable matches_examined : int;
  mutable tuples_generated : int;
  mutable tgds_applied : int;
  mutable egd_checks : int;
}

let empty_stats () =
  { matches_examined = 0; tuples_generated = 0; tgds_applied = 0; egd_checks = 0 }

exception Chase_error of string

(* A variable binding; small, so an association list with functional
   extension keeps backtracking trivial. *)
type binding = (string * Value.t) list

let lookup (b : binding) v = List.assoc_opt v b

let term_value b t = Term.eval (lookup b) t

let term_fully_bound b t =
  List.for_all (fun v -> lookup b v <> None) (Term.vars t)

(* Try to extend [binding] so that [args] (terms) match [fact] (values),
   positionally.  Complex terms whose variables are not all bound yet
   are deferred to [deferred]. *)
let match_fact binding deferred args fact =
  let n = Array.length fact in
  if List.length args <> n then None
  else
    let rec loop i binding deferred = function
      | [] -> Some (binding, deferred)
      | term :: rest -> (
          let value = fact.(i) in
          match term with
          | Term.Var v -> (
              match lookup binding v with
              | Some bound ->
                  if Value.equal bound value then
                    loop (i + 1) binding deferred rest
                  else None
              | None -> loop (i + 1) ((v, value) :: binding) deferred rest)
          | _ ->
              if term_fully_bound binding term then
                match term_value binding term with
                | Some computed when Value.equal computed value ->
                    loop (i + 1) binding deferred rest
                | _ -> None
              else loop (i + 1) binding ((term, value) :: deferred) rest)
    in
    loop 0 binding deferred args

(* Re-check deferred constraints that became evaluable. *)
let settle_deferred binding deferred =
  let rec loop acc = function
    | [] -> Some acc
    | (term, value) :: rest ->
        if term_fully_bound binding term then
          match term_value binding term with
          | Some computed when Value.equal computed value -> loop acc rest
          | _ -> None
        else loop ((term, value) :: acc) rest
  in
  loop [] deferred

(* Enumerate all assignments satisfying the conjunction of atoms.

   This is a hash join: for each atom after the first, the argument
   positions whose terms are fully determined by the variables bound so
   far (statically known) are used as a lookup key into an index built
   once per (relation, positions) pair, so a two-atom tgd runs in time
   linear in the instance rather than quadratic. *)
let match_atoms instance stats atoms (k : binding -> unit) =
  let fact_cache : (string, Value.t array array) Hashtbl.t = Hashtbl.create 4 in
  let facts_of rel =
    match Hashtbl.find_opt fact_cache rel with
    | Some f -> f
    | None ->
        let f = Array.of_list (Instance.facts instance rel) in
        Hashtbl.replace fact_cache rel f;
        f
  in
  let index_cache :
      (string * int list, Value.t array list Tuple.Table.t) Hashtbl.t =
    Hashtbl.create 4
  in
  let index_of rel positions =
    let cache_key = (rel, positions) in
    match Hashtbl.find_opt index_cache cache_key with
    | Some idx -> idx
    | None ->
        let idx = Tuple.Table.create 64 in
        (* Iterate in reverse so each bucket ends up in sorted order. *)
        let all = facts_of rel in
        for i = Array.length all - 1 downto 0 do
          let fact = all.(i) in
          let key =
            Tuple.of_list (List.map (fun p -> fact.(p)) positions)
          in
          let prev = Option.value ~default:[] (Tuple.Table.find_opt idx key) in
          Tuple.Table.replace idx key (fact :: prev)
        done;
        Hashtbl.replace index_cache cache_key idx;
        idx
  in
  let rec go bound_vars binding deferred = function
    | [] ->
        if deferred <> [] then
          raise
            (Chase_error
               "tgd not executable: a complex term's variables never get bound");
        k binding
    | (atom : Tgd.atom) :: rest ->
        let determined_positions =
          List.mapi (fun i term -> (i, term)) atom.Tgd.args
          |> List.filter (fun (_, term) ->
                 List.for_all (fun v -> List.mem v bound_vars) (Term.vars term))
          |> List.map fst
        in
        let candidates =
          if determined_positions = [] then Some (facts_of atom.Tgd.rel)
          else
            let expected =
              List.map
                (fun p -> term_value binding (List.nth atom.Tgd.args p))
                determined_positions
            in
            if List.exists Option.is_none expected then None
            else
              let key = Tuple.of_list (List.map Option.get expected) in
              let idx = index_of atom.Tgd.rel determined_positions in
              Some
                (Array.of_list
                   (Option.value ~default:[] (Tuple.Table.find_opt idx key)))
        in
        let bound_vars' =
          List.fold_left
            (fun acc term ->
              match term with Term.Var v -> v :: acc | _ -> acc)
            bound_vars atom.Tgd.args
        in
        (match candidates with
        | None -> ()
        | Some facts ->
            Array.iter
              (fun fact ->
                stats.matches_examined <- stats.matches_examined + 1;
                match match_fact binding deferred atom.Tgd.args fact with
                | None -> ()
                | Some (binding', deferred') -> (
                    match settle_deferred binding' deferred' with
                    | None -> ()
                    | Some deferred'' -> go bound_vars' binding' deferred'' rest))
              facts)
  in
  go [] [] [] atoms

let emit_fact instance stats rel values =
  if Instance.insert instance rel (Array.of_list values) then
    stats.tuples_generated <- stats.tuples_generated + 1

let apply_tuple_level instance stats lhs (rhs : Tgd.atom) =
  match_atoms instance stats lhs (fun binding ->
      (* Any undefined term leaves a hole in the result cube, matching
         the partial-function semantics of EXL operators. *)
      let values = List.map (term_value binding) rhs.Tgd.args in
      if List.for_all Option.is_some values then
        emit_fact instance stats rhs.Tgd.rel (List.map Option.get values))

let apply_aggregation instance stats (source : Tgd.atom) group_by aggr measure
    target =
  let groups : float list ref Tuple.Table.t = Tuple.Table.create 64 in
  let order = ref [] in
  List.iter
    (fun fact ->
      stats.matches_examined <- stats.matches_examined + 1;
      match match_fact [] [] source.Tgd.args fact with
      | None -> ()
      | Some (binding, deferred) ->
          if deferred <> [] then
            raise (Chase_error "aggregation source atom must use variables");
          let key_values =
            List.map
              (fun t ->
                match term_value binding t with
                | Some v -> v
                | None ->
                    raise
                      (Chase_error
                         (Printf.sprintf
                            "group-by term %s undefined on a source tuple"
                            (Term.to_string t))))
              group_by
          in
          let key = Tuple.of_list key_values in
          let m =
            match Option.bind (lookup binding measure) Value.to_float with
            | Some f -> f
            | None ->
                raise (Chase_error "aggregation measure is not numeric")
          in
          (match Tuple.Table.find_opt groups key with
          | Some bag -> bag := m :: !bag
          | None ->
              Tuple.Table.replace groups key (ref [ m ]);
              order := key :: !order))
    (Instance.facts instance source.Tgd.rel);
  List.iter
    (fun key ->
      let bag = List.rev !(Tuple.Table.find groups key) in
      let result = Stats.Aggregate.apply aggr bag in
      if not (Float.is_nan result) then
        emit_fact instance stats target
          (Tuple.to_list key @ [ Value.of_float result ]))
    (List.rev !order)

let apply_table_fn instance stats fn params source target =
  let cube = Instance.cube_of_relation instance source in
  let op =
    match Ops.Blackbox.find fn with
    | Some op -> op
    | None -> raise (Chase_error ("unknown black-box operator " ^ fn))
  in
  match Ops.Blackbox.apply_cube op ~params cube with
  | Error msg -> raise (Chase_error msg)
  | Ok result ->
      Cube.iter
        (fun k v ->
          stats.matches_examined <- stats.matches_examined + 1;
          emit_fact instance stats target (Array.to_list (Tuple.append k v)))
        result

(* The default-value vectorial variant: the union of both key sets,
   missing sides contributing the default measure. *)
let apply_outer_combine instance stats (left : Tgd.atom) (right : Tgd.atom) op
    default target =
  let dims_of fact =
    let n = Array.length fact - 1 in
    (Tuple.of_array (Array.sub fact 0 n), fact.(n))
  in
  let load (atom : Tgd.atom) =
    let table : Value.t Tuple.Table.t = Tuple.Table.create 64 in
    List.iter
      (fun fact ->
        stats.matches_examined <- stats.matches_examined + 1;
        let key, measure = dims_of fact in
        Tuple.Table.replace table key measure)
      (Instance.facts instance atom.Tgd.rel);
    table
  in
  let l = load left and r = load right in
  let emit key vl vr =
    let fl = Option.value ~default (Option.bind vl Value.to_float) in
    let fr = Option.value ~default (Option.bind vr Value.to_float) in
    match Ops.Binop.eval op fl fr with
    | Some result ->
        emit_fact instance stats target
          (Tuple.to_list key @ [ Value.of_float result ])
    | None -> ()
  in
  Tuple.Table.iter (fun key vl -> emit key (Some vl) (Tuple.Table.find_opt r key)) l;
  Tuple.Table.iter
    (fun key vr -> if not (Tuple.Table.mem l key) then emit key None (Some vr))
    r

let apply_tgd instance tgd stats =
  try
    (match tgd with
    | Tgd.Tuple_level { lhs; rhs } -> apply_tuple_level instance stats lhs rhs
    | Tgd.Aggregation { source; group_by; aggr; measure; target } ->
        apply_aggregation instance stats source group_by aggr measure target
    | Tgd.Table_fn { fn; params; source; target } ->
        apply_table_fn instance stats fn params source target
    | Tgd.Outer_combine { left; right; op; default; target } ->
        apply_outer_combine instance stats left right op default target);
    stats.tgds_applied <- stats.tgds_applied + 1;
    Ok ()
  with
  | Chase_error msg -> Error msg
  | Cube.Functionality_violation { cube; key } ->
      Error
        (Printf.sprintf "functionality violation in %s at %s" cube
           (Tuple.to_string key))

let check_egd instance (egd : Mappings.Egd.t) stats =
  match Instance.schema instance egd.Mappings.Egd.relation with
  | None -> Ok ()
  | Some _ ->
      let seen : Value.t Tuple.Table.t = Tuple.Table.create 64 in
      let rec loop = function
        | [] -> Ok ()
        | fact :: rest ->
            let n = Array.length fact - 1 in
            let key = Tuple.of_array (Array.sub fact 0 n) in
            let measure = fact.(n) in
            stats.egd_checks <- stats.egd_checks + 1;
            (match Tuple.Table.find_opt seen key with
            | Some other when not (Value.equal other measure) ->
                Error
                  (Printf.sprintf
                     "egd violation: %s has two measures (%s, %s) for %s"
                     egd.Mappings.Egd.relation (Value.to_string other)
                     (Value.to_string measure) (Tuple.to_string key))
            | _ ->
                Tuple.Table.replace seen key measure;
                loop rest)
      in
      loop (Instance.facts instance egd.Mappings.Egd.relation)

(* Static pre-check hook.  The chase itself must not depend on the
   analysis library (dependency direction), so the check is injected:
   the test harness points this at the weak-acyclicity certificate so
   every chased mapping in the suite is also statically certified. *)
let static_check : (Mappings.Mapping.t -> (unit, string) result) ref =
  ref (fun _ -> Ok ())

let run ?(check_egds = true) (m : Mappings.Mapping.t) source =
  match !static_check m with
  | Error msg -> Error ("static check failed before chase: " ^ msg)
  | Ok () ->
  let stats = empty_stats () in
  let target = Instance.create () in
  List.iter (Instance.add_relation target) m.Mappings.Mapping.target;
  (* Σst: copy the source relations into the target (the paper keeps the
     same symbols for a relation and its copy; so do we). *)
  List.iter
    (fun schema ->
      let name = schema.Schema.name in
      match Instance.schema source name with
      | None -> ()
      | Some _ ->
          List.iter
            (fun fact -> ignore (Instance.insert target name fact))
            (Instance.facts source name))
    m.Mappings.Mapping.source;
  let rec loop = function
    | [] -> Ok (target, stats)
    | tgd :: rest -> (
        match apply_tgd target tgd stats with
        | Error msg ->
            Error
              (Printf.sprintf "chase failed on tgd [%s]: %s" (Tgd.to_string tgd)
                 msg)
        | Ok () ->
            let egd_result =
              if check_egds then
                let rel = Tgd.target_relation tgd in
                match
                  List.find_opt
                    (fun (e : Mappings.Egd.t) -> e.Mappings.Egd.relation = rel)
                    m.Mappings.Mapping.egds
                with
                | Some egd -> check_egd target egd stats
                | None -> Ok ()
              else Ok ()
            in
            (match egd_result with
            | Error msg -> Error ("chase failed: " ^ msg)
            | Ok () -> loop rest))
  in
  loop m.Mappings.Mapping.t_tgds
