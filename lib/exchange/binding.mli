open Matrix

(** Variable bindings shared by the full chase ({!Chase}) and the
    incremental chase ({!Delta}): a partial map from tgd variables to
    values with functional extension, so backtracking search keeps
    earlier states intact for free. *)

type t = (string * Value.t) list

val empty : t
val lookup : t -> string -> Value.t option
val bind : t -> string -> Value.t -> t

val term_value : t -> Mappings.Term.t -> Value.t option
(** Evaluate a term under the binding; [None] when a variable is
    unbound or the operation is undefined (partial-function
    semantics). *)

val term_fully_bound : t -> Mappings.Term.t -> bool

val merge : t -> t -> t option
(** Union of two bindings; [None] on conflicting values. *)
