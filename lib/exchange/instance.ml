open Matrix

type fact = Value.t array

(* A relation's contents live in exactly one of two states:

   - [pending = Some batch], row stores empty: the relation was
     installed wholesale as a column batch ([set_batch], the chase's
     Σst source copy) and no tuple-level access has happened yet.
     Whole-relation reads ([facts], [iter_facts], [cardinality]) are
     served straight from the batch; the first row-level operation
     ([mem], [insert], [remove], index access) materializes the rows.

   - [pending = None]: the classic hashed row stores are live.

   [cache] memoizes the columnar view of the current contents (it
   equals [pending] while that is set); any mutation drops it.

   Snapshots ([copy]) share the secondary-index table copy-on-write:
   both sides keep the pointer and a [shared_indexes] flag, and the
   first side to mutate detaches onto a fresh empty table, rebuilding
   lazily via [ensure_index].  Batches and dictionaries are immutable
   /append-only and are always shared. *)
type relation = {
  schema : Schema.t;
  store : unit Tuple.Table.t;
  by_dims : Value.t array Tuple.Table.t;
      (* dimension prefix -> full fact; last writer wins, which under
         functionality (checked separately) is the only fact *)
  mutable indexes : (int list, fact list Tuple.Table.t) Hashtbl.t;
      (* persistent secondary indexes: sorted position list -> (values
         at those positions -> facts); created lazily by [ensure_index]
         and maintained by every later insert/remove *)
  mutable shared_indexes : bool;
  mutable pending : Columnar.Batch.t option;
  mutable cache : Columnar.Batch.t option;
}

type t = {
  rels : (string, relation) Hashtbl.t;
  pool : Columnar.Dict.pool;
      (* per-instance dictionaries, one per domain: every batch encoded
         for this instance shares codes per domain, so same-domain
         columns join by int comparison *)
}

let create () = { rels = Hashtbl.create 32; pool = Columnar.Dict.create_pool () }

let add_relation t schema =
  let name = schema.Schema.name in
  if not (Hashtbl.mem t.rels name) then
    Hashtbl.replace t.rels name
      {
        schema;
        store = Tuple.Table.create 64;
        by_dims = Tuple.Table.create 64;
        indexes = Hashtbl.create 4;
        shared_indexes = false;
        pending = None;
        cache = None;
      }

let schema t name = Option.map (fun r -> r.schema) (Hashtbl.find_opt t.rels name)

let schema_exn t name =
  match schema t name with
  | Some s -> s
  | None -> invalid_arg ("Instance.schema_exn: unknown relation " ^ name)

let relations t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.rels [] |> List.sort String.compare

let relation_exn t name =
  match Hashtbl.find_opt t.rels name with
  | Some r -> r
  | None -> invalid_arg ("Instance: unknown relation " ^ name)

(* Process-global index telemetry; readers snapshot before/after a
   chase run and report the delta (see Chase).  Atomics: indexes are
   built from pool worker domains. *)
let index_builds = Atomic.make 0
let index_lookups = Atomic.make 0
let index_stats () = (Atomic.get index_builds, Atomic.get index_lookups)

let index_key positions (fact : fact) =
  Tuple.of_list (List.map (fun p -> fact.(p)) positions)

(* First mutation after a snapshot: detach from the shared index table
   so the sibling keeps its view; our indexes rebuild on demand. *)
let own_indexes r =
  if r.shared_indexes then begin
    r.indexes <- Hashtbl.create 4;
    r.shared_indexes <- false
  end

let store_fact r fact =
  Tuple.Table.replace r.store (Tuple.of_array fact) ();
  let dims = Tuple.of_array (Array.sub fact 0 (Schema.arity r.schema)) in
  Tuple.Table.replace r.by_dims dims fact

(* Turn a pending batch into live row stores.  Indexes cannot exist
   yet for this relation (every index op materializes first), so only
   the primary stores are filled. *)
let materialize r =
  match r.pending with
  | None -> ()
  | Some batch ->
      r.pending <- None;
      Columnar.Batch.iter_rows batch (fun fact -> store_fact r fact)

let insert t name fact =
  let r = relation_exn t name in
  if Array.length fact <> Schema.arity r.schema + 1 then
    invalid_arg
      (Printf.sprintf "Instance.insert: fact of width %d into %s"
         (Array.length fact)
         (Schema.to_string r.schema));
  materialize r;
  let key = Tuple.of_array fact in
  if Tuple.Table.mem r.store key then false
  else begin
    own_indexes r;
    r.cache <- None;
    Tuple.Table.replace r.store key ();
    let dims = Tuple.of_array (Array.sub fact 0 (Schema.arity r.schema)) in
    Tuple.Table.replace r.by_dims dims fact;
    Hashtbl.iter
      (fun positions idx ->
        Tuple.Table.add_multi idx (index_key positions fact) fact)
      r.indexes;
    true
  end

let remove t name fact =
  let r = relation_exn t name in
  materialize r;
  let key = Tuple.of_array fact in
  if not (Tuple.Table.mem r.store key) then false
  else begin
    own_indexes r;
    r.cache <- None;
    Tuple.Table.remove r.store key;
    let dims = Tuple.of_array (Array.sub fact 0 (Schema.arity r.schema)) in
    (match Tuple.Table.find_opt r.by_dims dims with
    | Some current when current == fact || current = fact ->
        Tuple.Table.remove r.by_dims dims
    | _ -> ());
    Hashtbl.iter
      (fun positions idx ->
        Tuple.Table.filter_multi idx (index_key positions fact) (fun f ->
            not (Tuple.equal (Tuple.of_array f) key)))
      r.indexes;
    true
  end

let mem t name fact =
  let r = relation_exn t name in
  materialize r;
  Tuple.Table.mem r.store (Tuple.of_array fact)

let find_by_dims t name dims =
  let r = relation_exn t name in
  materialize r;
  Tuple.Table.find_opt r.by_dims (Tuple.of_array dims)

(* Snapshot.  Row stores are copied (they are cheap relative to the
   secondary indexes and are mutated in place by [by_dims]'s
   last-writer rule); secondary indexes are shared copy-on-write;
   batches, dictionaries and the pool are immutable/append-only and
   shared outright. *)
let copy t =
  let out =
    { rels = Hashtbl.create (Hashtbl.length t.rels); pool = t.pool }
  in
  Hashtbl.iter
    (fun name r ->
      r.shared_indexes <- true;
      Hashtbl.replace out.rels name
        {
          schema = r.schema;
          store = Tuple.Table.copy r.store;
          by_dims = Tuple.Table.copy r.by_dims;
          indexes = r.indexes;
          shared_indexes = true;
          pending = r.pending;
          cache = r.cache;
        })
    t.rels;
  out

(* The table key IS the stored fact array ([Tuple.of_array] is an
   ownership transfer, not a copy), so iteration can expose it without
   copying — callers must not mutate the arrays.  A pending batch is
   iterated directly (fresh arrays per row) without materializing. *)
let iter_facts t name f =
  let r = relation_exn t name in
  match r.pending with
  | Some batch -> Columnar.Batch.iter_rows batch f
  | None -> Tuple.Table.iter (fun k () -> f (k : Tuple.t :> Value.t array)) r.store

let ensure_index t name positions =
  let r = relation_exn t name in
  materialize r;
  if not (Hashtbl.mem r.indexes positions) then begin
    Atomic.incr index_builds;
    let idx = Tuple.Table.create (max 64 (Tuple.Table.length r.store)) in
    Tuple.Table.iter
      (fun k () ->
        let fact = (k : Tuple.t :> Value.t array) in
        Tuple.Table.add_multi idx (index_key positions fact) fact)
      r.store;
    (* Adding to a shared table is sound: sharing implies neither side
       has mutated since the snapshot, so the index is valid for both. *)
    Hashtbl.replace r.indexes positions idx
  end

let lookup_index t name positions values =
  Atomic.incr index_lookups;
  ensure_index t name positions;
  let r = relation_exn t name in
  Tuple.Table.find_multi
    (Hashtbl.find r.indexes positions)
    (Tuple.of_list values)

let indexed_positions t name =
  let r = relation_exn t name in
  Hashtbl.fold (fun positions _ acc -> positions :: acc) r.indexes []
  |> List.sort compare

let clear t name =
  let r = relation_exn t name in
  own_indexes r;
  r.pending <- None;
  r.cache <- None;
  Tuple.Table.reset r.store;
  Tuple.Table.reset r.by_dims;
  Hashtbl.iter (fun _ idx -> Tuple.Table.reset idx) r.indexes

let facts_unsorted t name =
  let r = relation_exn t name in
  match r.pending with
  | Some batch -> Columnar.Batch.to_facts batch
  | None -> Tuple.Table.fold (fun k () acc -> Tuple.to_array k :: acc) r.store []

let facts t name =
  facts_unsorted t name
  |> List.sort (fun a b -> Tuple.compare (Tuple.of_array a) (Tuple.of_array b))

let cardinality t name =
  let r = relation_exn t name in
  match r.pending with
  | Some batch -> Columnar.Batch.nrows batch
  | None -> Tuple.Table.length r.store

let total_facts t =
  Hashtbl.fold (fun name _ acc -> acc + cardinality t name) t.rels 0

(* ----- columnar views ----- *)

(* The columnar view of a relation's current contents, encoded under
   this instance's dictionary pool and memoized until the next
   mutation.  Rows are in [facts] (sorted) order — the order the
   vectorized kernels rely on to replay the row engine exactly. *)
let batch t name =
  let r = relation_exn t name in
  match r.pending with
  | Some b -> b
  | None -> (
      match r.cache with
      | Some b -> b
      | None ->
          let b = Columnar.Batch.of_facts ~pool:t.pool r.schema (facts t name) in
          r.cache <- Some b;
          b)

(* Replace a relation's contents with a batch, O(columns): row stores
   are emptied and rebuilt only if tuple-level access happens later.
   The batch's dictionaries are adopted into this instance's pool
   (per dimension domain), so subsequent encodes share their codes.
   The caller promises the batch's rows are duplicate-free and in
   sorted order — true of any batch obtained from {!batch}. *)
let set_batch t name b =
  let r = relation_exn t name in
  if not (Schema.equal r.schema (Columnar.Batch.schema b)) then
    invalid_arg ("Instance.set_batch: schema mismatch on " ^ name);
  own_indexes r;
  Tuple.Table.reset r.store;
  Tuple.Table.reset r.by_dims;
  Hashtbl.iter (fun _ idx -> Tuple.Table.reset idx) r.indexes;
  Array.iteri
    (fun i (d : Schema.dimension) ->
      Columnar.Dict.adopt t.pool d.Schema.dim_domain (Columnar.Batch.dim_dict b i))
    r.schema.Schema.dims;
  r.pending <- Some b;
  r.cache <- Some b

let dict_pool t = t.pool

let of_registry reg =
  let t = create () in
  List.iter
    (fun name ->
      let cube = Registry.find_exn reg name in
      add_relation t (Cube.schema cube);
      Cube.iter (fun k v -> ignore (insert t name (Tuple.append k v))) cube)
    (Registry.elementary_names reg);
  t

let cube_of_relation t name =
  let r = relation_exn t name in
  let cube = Cube.create r.schema in
  let n = Schema.arity r.schema in
  List.iter
    (fun fact ->
      let key = Tuple.of_array (Array.sub fact 0 n) in
      Cube.add_strict cube key fact.(n))
    (facts t name);
  cube

let to_registry t ~elementary =
  let reg = Registry.create () in
  List.iter
    (fun name ->
      let kind =
        if List.mem name elementary then Registry.Elementary
        else Registry.Derived
      in
      Registry.add reg kind (cube_of_relation t name))
    (relations t);
  reg

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun name ->
      Format.fprintf ppf "%s: %d facts@," name (cardinality t name))
    (relations t);
  Format.fprintf ppf "@]"
