open Matrix

type fact = Value.t array

type relation = {
  schema : Schema.t;
  store : unit Tuple.Table.t;
  by_dims : Value.t array Tuple.Table.t;
      (* dimension prefix -> full fact; last writer wins, which under
         functionality (checked separately) is the only fact *)
  indexes : (int list, fact list Tuple.Table.t) Hashtbl.t;
      (* persistent secondary indexes: sorted position list -> (values
         at those positions -> facts); created lazily by [ensure_index]
         and maintained by every later insert/remove *)
}

type t = (string, relation) Hashtbl.t

let create () = Hashtbl.create 32

let add_relation t schema =
  let name = schema.Schema.name in
  if not (Hashtbl.mem t name) then
    Hashtbl.replace t name
      {
        schema;
        store = Tuple.Table.create 64;
        by_dims = Tuple.Table.create 64;
        indexes = Hashtbl.create 4;
      }

let schema t name = Option.map (fun r -> r.schema) (Hashtbl.find_opt t name)

let schema_exn t name =
  match schema t name with
  | Some s -> s
  | None -> invalid_arg ("Instance.schema_exn: unknown relation " ^ name)

let relations t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let relation_exn t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None -> invalid_arg ("Instance: unknown relation " ^ name)

(* Process-global index telemetry.  [t] is a bare hashtable, so the
   counters live here; readers snapshot before/after a chase run and
   report the delta (see Chase).  Atomics: indexes are built from pool
   worker domains. *)
let index_builds = Atomic.make 0
let index_lookups = Atomic.make 0
let index_stats () = (Atomic.get index_builds, Atomic.get index_lookups)

let index_key positions (fact : fact) =
  Tuple.of_list (List.map (fun p -> fact.(p)) positions)

let insert t name fact =
  let r = relation_exn t name in
  if Array.length fact <> Schema.arity r.schema + 1 then
    invalid_arg
      (Printf.sprintf "Instance.insert: fact of width %d into %s"
         (Array.length fact)
         (Schema.to_string r.schema));
  let key = Tuple.of_array fact in
  if Tuple.Table.mem r.store key then false
  else begin
    Tuple.Table.replace r.store key ();
    let dims =
      Tuple.of_array (Array.sub fact 0 (Schema.arity r.schema))
    in
    Tuple.Table.replace r.by_dims dims fact;
    Hashtbl.iter
      (fun positions idx -> Tuple.Table.add_multi idx (index_key positions fact) fact)
      r.indexes;
    true
  end

let remove t name fact =
  let r = relation_exn t name in
  let key = Tuple.of_array fact in
  if not (Tuple.Table.mem r.store key) then false
  else begin
    Tuple.Table.remove r.store key;
    let dims = Tuple.of_array (Array.sub fact 0 (Schema.arity r.schema)) in
    (match Tuple.Table.find_opt r.by_dims dims with
    | Some current when current == fact || current = fact ->
        Tuple.Table.remove r.by_dims dims
    | _ -> ());
    Hashtbl.iter
      (fun positions idx ->
        Tuple.Table.filter_multi idx (index_key positions fact) (fun f ->
            not (Tuple.equal (Tuple.of_array f) key)))
      r.indexes;
    true
  end

let mem t name fact =
  Tuple.Table.mem (relation_exn t name).store (Tuple.of_array fact)

let find_by_dims t name dims =
  Tuple.Table.find_opt (relation_exn t name).by_dims (Tuple.of_array dims)

let copy t =
  let out = create () in
  Hashtbl.iter
    (fun name r ->
      let indexes = Hashtbl.create (Hashtbl.length r.indexes) in
      Hashtbl.iter
        (fun positions idx -> Hashtbl.replace indexes positions (Tuple.Table.copy idx))
        r.indexes;
      Hashtbl.replace out name
        {
          schema = r.schema;
          store = Tuple.Table.copy r.store;
          by_dims = Tuple.Table.copy r.by_dims;
          indexes;
        })
    t;
  out

(* The table key IS the stored fact array ([Tuple.of_array] is an
   ownership transfer, not a copy), so iteration can expose it without
   copying — callers must not mutate the arrays. *)
let iter_facts t name f =
  let r = relation_exn t name in
  Tuple.Table.iter (fun k () -> f (k : Tuple.t :> Value.t array)) r.store

let ensure_index t name positions =
  let r = relation_exn t name in
  if not (Hashtbl.mem r.indexes positions) then begin
    Atomic.incr index_builds;
    let idx = Tuple.Table.create (max 64 (Tuple.Table.length r.store)) in
    Tuple.Table.iter
      (fun k () ->
        let fact = (k : Tuple.t :> Value.t array) in
        Tuple.Table.add_multi idx (index_key positions fact) fact)
      r.store;
    Hashtbl.replace r.indexes positions idx
  end

let lookup_index t name positions values =
  Atomic.incr index_lookups;
  ensure_index t name positions;
  let r = relation_exn t name in
  Tuple.Table.find_multi
    (Hashtbl.find r.indexes positions)
    (Tuple.of_list values)

let indexed_positions t name =
  let r = relation_exn t name in
  Hashtbl.fold (fun positions _ acc -> positions :: acc) r.indexes []
  |> List.sort compare

let clear t name =
  let r = relation_exn t name in
  Tuple.Table.reset r.store;
  Tuple.Table.reset r.by_dims;
  Hashtbl.iter (fun _ idx -> Tuple.Table.reset idx) r.indexes

let facts_unsorted t name =
  let r = relation_exn t name in
  Tuple.Table.fold (fun k () acc -> Tuple.to_array k :: acc) r.store []

let facts t name =
  facts_unsorted t name
  |> List.sort (fun a b -> Tuple.compare (Tuple.of_array a) (Tuple.of_array b))

let cardinality t name = Tuple.Table.length (relation_exn t name).store
let total_facts t = Hashtbl.fold (fun _ r acc -> acc + Tuple.Table.length r.store) t 0

let of_registry reg =
  let t = create () in
  List.iter
    (fun name ->
      let cube = Registry.find_exn reg name in
      add_relation t (Cube.schema cube);
      Cube.iter (fun k v -> ignore (insert t name (Tuple.append k v))) cube)
    (Registry.elementary_names reg);
  t

let cube_of_relation t name =
  let r = relation_exn t name in
  let cube = Cube.create r.schema in
  let n = Schema.arity r.schema in
  List.iter
    (fun fact ->
      let key = Tuple.of_array (Array.sub fact 0 n) in
      Cube.add_strict cube key fact.(n))
    (facts t name);
  cube

let to_registry t ~elementary =
  let reg = Registry.create () in
  List.iter
    (fun name ->
      let kind =
        if List.mem name elementary then Registry.Elementary
        else Registry.Derived
      in
      Registry.add reg kind (cube_of_relation t name))
    (relations t);
  reg

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun name ->
      Format.fprintf ppf "%s: %d facts@," name (cardinality t name))
    (relations t);
  Format.fprintf ppf "@]"
