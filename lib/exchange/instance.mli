open Matrix

(** Relational instances: sets of facts.

    The chase works on raw fact sets — not on the functionally keyed
    {!Matrix.Cube} store — precisely so that egd violations {e can}
    materialize and be detected, mirroring the paper's setting where
    functionality is a constraint to check, not a data-structure
    invariant. *)

type fact = Value.t array
(** Dimension values followed by the measure. *)

type t

val create : unit -> t
val add_relation : t -> Schema.t -> unit
(** Declares an empty relation; replaces nothing if it already exists. *)

val schema : t -> string -> Schema.t option
val schema_exn : t -> string -> Schema.t
val relations : t -> string list  (** Sorted. *)

val insert : t -> string -> fact -> bool
(** [true] when the fact was new; set semantics.
    @raise Invalid_argument on arity mismatch or unknown relation. *)

val remove : t -> string -> fact -> bool
(** [true] when the fact was present. *)

val mem : t -> string -> fact -> bool
val find_by_dims : t -> string -> Value.t array -> fact option
(** The (unique, by functionality) fact whose dimension prefix equals
    the given values; built on a per-relation index maintained
    incrementally. *)

val copy : t -> t
(** Snapshot.  Row stores are copied; secondary indexes are shared
    copy-on-write (the first side to mutate detaches and rebuilds its
    indexes lazily), and columnar batches/dictionaries are shared
    outright — they are immutable/append-only.  Snapshots are fully
    isolated: mutating either side never shows through the other. *)

val ensure_index : t -> string -> int list -> unit
(** Build the persistent secondary index of a relation on the given
    (ascending) position list from the facts currently present.  A
    no-op when the index already exists; after creation every
    {!insert}/{!remove} maintains it incrementally. *)

val lookup_index : t -> string -> int list -> Value.t list -> fact list
(** Facts whose values at [positions] equal the given values, via the
    persistent index (created on first use).  No ordering guarantee. *)

val indexed_positions : t -> string -> int list list
(** Position lists currently indexed on a relation (sorted; for tests
    and diagnostics). *)

val index_stats : unit -> int * int
(** Process-global [(builds, lookups)] totals across all instances;
    telemetry readers snapshot before/after a run and report the
    delta. *)

val iter_facts : t -> string -> (fact -> unit) -> unit
(** Zero-copy iteration over a relation's facts, in no particular
    order; callers must not mutate the arrays. *)

val clear : t -> string -> unit
(** Remove every fact of a relation, keeping its schema and (emptied)
    indexes. *)

val facts : t -> string -> fact list
(** Sorted lexicographically — deterministic iteration. *)

val facts_unsorted : t -> string -> fact list
(** No ordering guarantee; avoids the sort where determinism is not
    needed (set diffs, membership sweeps). *)

val cardinality : t -> string -> int
val total_facts : t -> int

val batch : t -> string -> Columnar.Batch.t
(** The columnar view of a relation's current contents, encoded under
    this instance's per-domain dictionary pool with rows in {!facts}
    (sorted) order; memoized until the next mutation.  Kernels rely on
    the row order to replay the row engine's iteration exactly. *)

val set_batch : t -> string -> Columnar.Batch.t -> unit
(** Replace a relation's contents with a batch in O(columns): the row
    stores empty out and rebuild lazily on the first tuple-level
    access ([mem]/[insert]/[remove]/index ops), while whole-relation
    reads ([facts], [iter_facts], [cardinality]) serve straight from
    the batch.  Adopts the batch's dictionaries into this instance's
    pool.  The rows must be duplicate-free and sorted — true of any
    batch from {!batch}.
    @raise Invalid_argument on schema mismatch. *)

val dict_pool : t -> Columnar.Dict.pool
(** The instance's per-domain dictionary pool (shared with snapshots). *)

val of_registry : Registry.t -> t
(** Source instance [I] from the elementary cubes of a registry. *)

val cube_of_relation : t -> string -> Cube.t
(** Converts a relation's facts to a cube.
    @raise Cube.Functionality_violation if facts conflict (egd
    violation). *)

val to_registry : t -> elementary:string list -> Registry.t
val pp : Format.formatter -> t -> unit
