(** The stratified chase for extended tgds (paper, Section 4.2).

    The data-exchange problem: given [M = (S, T, Σst, Σt)] and a finite
    source instance [I], find [J] over [T] with [⟨I, J⟩ ⊨ Σst] and
    [J ⊨ Σt].  The paper's variation of the classical chase applies the
    statement tgds in their stratification order, completely applying
    each before moving to the next; termination follows because all
    tgds are full and acyclic, and failure is impossible because every
    tgd computes the measure as a function of the dimensions — which we
    do not assume but {e check}, by running the functionality egds on
    the produced fact sets. *)

type stats = {
  mutable matches_examined : int;
      (** candidate lhs assignments enumerated *)
  mutable tuples_generated : int;  (** new facts added *)

  mutable tgds_applied : int;
  mutable egd_checks : int;  (** fact pairs compared for functionality *)
  mutable rounds : int;  (** evaluation rounds executed by the driver *)
}

val empty_stats : unit -> stats

val merge_stats : into:stats -> stats -> unit
(** Fold per-task counters into an accumulator ([rounds] excluded — it
    is driver bookkeeping, never task-local). *)

type mode =
  | Naive
      (** Textbook naive evaluation, kept as the benchmark baseline:
          every round clears and fully re-derives each target in
          canonical (target-name) order — no ordering oracle, no
          persistent indexes — until a round changes nothing. *)
  | Semi_naive
      (** Stratified semi-naive evaluation (the default): strata run in
          level order; round one of a stratum evaluates against the
          full instance through the persistent {!Instance} indexes,
          later rounds join only the previous round's delta. *)

val static_check : (Mappings.Mapping.t -> (unit, string) result) ref
(** Pre-chase hook, run on the mapping at the top of {!run}; defaults
    to a no-op.  The test harness injects the analysis library's
    weak-acyclicity + safety certificate here, so every mapping the
    suite chases is also statically certified (the chase itself cannot
    depend on the analysis library). *)

val run :
  ?check_egds:bool ->
  ?mode:mode ->
  ?executor:((unit -> unit) list -> unit) ->
  Mappings.Mapping.t ->
  Instance.t ->
  (Instance.t * stats, string) result
(** Solve the data exchange problem; [Error] on egd violation (chase
    failure) or on a tgd that cannot be evaluated (a variable occurring
    only under uninvertible terms).

    [executor] runs the independent round-one applications of a
    multi-tgd stratum (pairwise distinct targets reading only lower
    strata); it defaults to sequential execution, and e.g. a domain
    pool's [run_all] can be supplied to evaluate them in parallel.  All
    persistent indexes a stratum needs are built before the executor is
    invoked, so tasks only read shared relations and write their own
    target. *)

val apply_tgd : Instance.t -> Mappings.Tgd.t -> stats -> (unit, string) result
(** Apply one tgd exhaustively against the instance, with the naive
    per-application caches (exposed for unit tests). *)

val check_egd : Instance.t -> Mappings.Egd.t -> stats -> (unit, string) result
