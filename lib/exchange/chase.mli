(** The stratified chase for extended tgds (paper, Section 4.2).

    The data-exchange problem: given [M = (S, T, Σst, Σt)] and a finite
    source instance [I], find [J] over [T] with [⟨I, J⟩ ⊨ Σst] and
    [J ⊨ Σt].  The paper's variation of the classical chase applies the
    statement tgds in their stratification order, completely applying
    each before moving to the next; termination follows because all
    tgds are full and acyclic, and failure is impossible because every
    tgd computes the measure as a function of the dimensions — which we
    do not assume but {e check}, by running the functionality egds on
    the produced fact sets. *)

type stats = {
  mutable matches_examined : int;
      (** candidate lhs assignments enumerated *)
  mutable tuples_generated : int;  (** new facts added *)

  mutable tgds_applied : int;
  mutable egd_checks : int;  (** fact pairs compared for functionality *)
  mutable nulls_created : int;
      (** non-core overhead: facts emitted into temporary relations
          (the labelled-null padding of a non-core solution) plus
          defaults substituted for missing outer-combine sides *)
  mutable rounds : int;  (** evaluation rounds executed by the driver *)
}

val empty_stats : unit -> stats

val merge_stats : into:stats -> stats -> unit
(** Fold per-task counters into an accumulator ([rounds] excluded — it
    is driver bookkeeping, never task-local). *)

type mode =
  | Naive
      (** Textbook naive evaluation, kept as the benchmark baseline:
          every round clears and fully re-derives each target in
          canonical (target-name) order — no ordering oracle, no
          persistent indexes — until a round changes nothing. *)
  | Semi_naive
      (** Stratified semi-naive evaluation (the default): strata run in
          level order; round one of a stratum evaluates against the
          full instance through the persistent {!Instance} indexes,
          later rounds join only the previous round's delta. *)

val static_check : (Mappings.Mapping.t -> (unit, string) result) ref
(** Pre-chase hook, run on the mapping at the top of {!run}; defaults
    to a no-op.  The test harness injects the analysis library's
    weak-acyclicity + safety certificate here, so every mapping the
    suite chases is also statically certified (the chase itself cannot
    depend on the analysis library). *)

val run :
  ?check_egds:bool ->
  ?mode:mode ->
  ?executor:((unit -> unit) list -> unit) ->
  ?columnar:bool ->
  ?shards:int ->
  ?shard_key:string ->
  ?shard_range:bool ->
  Mappings.Mapping.t ->
  Instance.t ->
  (Instance.t * stats, string) result
(** Solve the data exchange problem; [Error] on egd violation (chase
    failure) or on a tgd that cannot be evaluated (a variable occurring
    only under uninvertible terms).

    [executor] runs the independent round-one applications of a
    multi-tgd stratum (pairwise distinct targets reading only lower
    strata); it defaults to sequential execution, and e.g. a domain
    pool's [run_all] can be supplied to evaluate them in parallel.  All
    persistent indexes a stratum needs are built before the executor is
    invoked, so tasks only read shared relations and write their own
    target.

    [columnar] (default [true], semi-naive mode only) routes
    kernel-able tgds — all-variable selections/projections, two-atom
    equi-joins, dimension-keyed aggregations — through vectorized
    kernels over dictionary-encoded column batches, and installs Σst
    source copies as shared batches instead of row-by-row.  The
    solution, the result, and every [stats] counter are identical to
    the row path's (the kernels replay its iteration order, counting,
    and error rules); only wall-clock time and index telemetry
    differ.

    [shards > 1] (semi-naive mode only) routes the whole run through
    the installed {!shard_runner}: the source instance is partitioned
    on [shard_key] (auto-chosen when omitted; [shard_range] switches
    hash partitioning to range), the co-partitionable tgds chase each
    shard independently — [executor] then runs {e shard} tasks, one
    per shard — and a deterministic merge plus a residual pass over
    the cross-shard tgds completes the solution.  The solution equals
    the unsharded one (property-tested); [stats] counters are
    aggregates across shards and may differ.  [Error] if no runner is
    installed (see {!shard_runner}). *)

(** {2 Sharded execution hooks}

    The shard driver ([lib/shard]) sits {e above} this library — it
    partitions instances and re-enters {!run} once per shard — so,
    exactly like {!static_check}, it is injected rather than depended
    upon. *)

type shard_request = {
  shard_count : int;
  shard_key : string option;
      (** dimension to partition on; [None] = choose automatically *)
  shard_range : bool;  (** range partitioning instead of hash *)
}

type shard_runner =
  check_egds:bool ->
  executor:((unit -> unit) list -> unit) ->
  columnar:bool ->
  request:shard_request ->
  Mappings.Mapping.t ->
  Instance.t ->
  (Instance.t * stats, string) result

val shard_runner : shard_runner option ref
(** Filled by [Shard.Driver.install]; [None] makes [run ~shards]
    return [Error] rather than silently running unsharded. *)

val run_stratum :
  executor:((unit -> unit) list -> unit) ->
  columnar:bool ->
  Instance.t ->
  stats ->
  Mappings.Tgd.t list ->
  (unit, string) result
(** Evaluate one stratum to fixpoint against [instance] (round one
    full, then delta rounds), exactly as {!run} does internally.
    Exposed for the shard driver's residual pass; egds are {e not}
    checked here. *)

val strata_of : Mappings.Mapping.t -> Mappings.Tgd.t list list
(** The stratification {!run} evaluates: [Stratify.strata] when the
    mapping stratifies, otherwise one big stratum in statement order. *)

val check_target_egds :
  check_egds:bool ->
  Mappings.Mapping.t ->
  Instance.t ->
  stats ->
  string list ->
  (unit, string) result
(** Run the mapping's functionality egds for the named relations (the
    post-stratum check {!run} performs); [Ok] when [check_egds] is
    false.  Exposed for the shard driver's post-merge checks. *)

val sequential_executor : (unit -> unit) list -> unit
(** The default [executor]: run tasks in order on the calling domain. *)

type fact_delta = { added : Instance.fact list; removed : Instance.fact list }
(** A change to one relation's fact set.  A revision of a key is its
    old fact in [removed] and its new fact in [added]. *)

type incr_stats = {
  mutable input_facts : int;  (** net input delta facts applied *)
  mutable strata_total : int;
  mutable strata_skipped : int;
      (** strata no delta reached — not evaluated at all *)
  mutable strata_delta : int;
      (** insert-only tuple-level strata run via seeded semi-naive
          delta rounds *)
  mutable strata_rederived : int;
      (** strata rebuilt DRed-style (deletions, or aggregation /
          blackbox / outer tgds) *)
  mutable facts_rederived : int;
      (** facts (re)derived during propagation — compare with the
          solution's total fact count for the work saved *)
}

val empty_incr_stats : unit -> incr_stats

type incr_state
(** Per-mapping state of the group-scoped aggregation path: for every
    aggregation tgd, the multiset of measures currently contributing
    to each group.  Opaque and mutable; create one per cached solution
    and pass it to every {!incremental} call repairing that solution —
    it must be discarded together with the solution instance. *)

val create_incr_state : unit -> incr_state

val incremental :
  ?check_egds:bool ->
  ?executor:((unit -> unit) list -> unit) ->
  ?state:incr_state ->
  Mappings.Mapping.t ->
  solution:Instance.t ->
  deltas:(string * fact_delta) list ->
  (stats * incr_stats, string) result
(** Incrementally repair a previous full solution after source-fact
    changes, in place.  [solution] is the instance a prior {!run} of
    the same mapping produced (it contains both the Σst source copies
    and every derived relation, plus their persistent indexes);
    [deltas] are the not-yet-applied changes to source relations.

    The deltas are first applied to [solution] (set semantics: only
    genuinely new/removed facts propagate), then the strata are
    re-evaluated in stratification order: a stratum no delta reaches is
    skipped outright; an insert-only tuple-level tgd runs seeded
    semi-naive delta rounds against the persistent indexes; an
    aggregation tgd, when [state] is supplied, re-aggregates only the
    groups its source delta falls in (see {!incr_state}); any other
    touched tgd (tuple-level deletions, blackbox, outer combine, or
    aggregation without [state]) is rederived DRed-style — its touched
    targets are over-deleted and re-run from their updated sources,
    and the old-vs-new diff becomes the (compact) delta for the strata
    above.  Functionality egds are re-checked on every touched target.

    On [Error] the solution may be partially repaired; callers keeping
    the instance (and [state]) across batches must discard both.

    On success the repaired [solution] equals what a from-scratch
    {!run} on the updated sources would produce. *)

val apply_tgd : Instance.t -> Mappings.Tgd.t -> stats -> (unit, string) result
(** Apply one tgd exhaustively against the instance, with the naive
    per-application caches (exposed for unit tests). *)

val check_egd : Instance.t -> Mappings.Egd.t -> stats -> (unit, string) result
