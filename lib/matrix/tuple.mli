(** Dimension tuples — the keys of a cube's partial function.

    A cube tuple [(x1, ..., xn, y)] is split into its key [(x1, ..., xn)]
    (this module) and its measure [y].  Keys are immutable value arrays
    with structural comparison and hashing, usable in maps and hash
    tables. *)

type t = private Value.t array

val of_array : Value.t array -> t
(** Takes ownership of the array; callers must not mutate it afterwards. *)

val of_list : Value.t list -> t
val to_array : t -> Value.t array  (** Returns a copy. *)

val to_list : t -> Value.t list
val arity : t -> int
val get : t -> int -> Value.t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val project : t -> int array -> t
(** [project t idxs] keeps the components at [idxs], in that order. *)

val append : t -> Value.t -> Value.t array
(** The full cube tuple [(x1, ..., xn, y)] as a fresh array. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Table : sig
  include Hashtbl.S with type key = t

  val find_multi : 'a list t -> key -> 'a list
  (** The bucket bound to [key], or [[]]. *)

  val add_multi : 'a list t -> key -> 'a -> unit
  (** Cons onto the bucket bound to [key], creating it if absent. *)

  val filter_multi : 'a list t -> key -> ('a -> bool) -> unit
  (** Drop bucket entries failing the predicate; removes the binding
      when the bucket empties. *)
end
module Map : Map.S with type key = t
module Set : Set.S with type elt = t
