type t = Value.t array

let of_array a = a
let of_list = Array.of_list
let to_array = Array.copy
let to_list = Array.to_list
let arity = Array.length
let get t i = t.(i)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la then Int.compare la lb
    else if i >= lb then 1
    else
      match Value.compare a.(i) b.(i) with 0 -> loop (i + 1) | c -> c
  in
  loop 0

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) (Array.length t) t

let project t idxs = Array.map (fun i -> t.(i)) idxs

let append t y =
  let n = Array.length t in
  let out = Array.make (n + 1) y in
  Array.blit t 0 out 0 n;
  out

let to_string t =
  "(" ^ String.concat ", " (List.map Value.to_string (Array.to_list t)) ^ ")"

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Table = struct
  include Hashtbl.Make (Key)

  let find_multi tbl key = Option.value ~default:[] (find_opt tbl key)
  let add_multi tbl key v = replace tbl key (v :: find_multi tbl key)

  let filter_multi tbl key keep =
    match find_opt tbl key with
    | None -> ()
    | Some vs -> (
        match List.filter keep vs with
        | [] -> remove tbl key
        | vs' -> replace tbl key vs')
end
module Map = Map.Make (Key)
module Set = Set.Make (Key)
