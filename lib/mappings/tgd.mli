(** Extended tuple-generating dependencies.

    Three shapes, mirroring Section 4.1 of the paper:

    - {b tuple-level}: conjunctions of atoms on the left, one atom on
      the right whose arguments are terms over the left's variables
      (tgds (1), (2), (5) of the overview).  All tgds are {e full}: no
      existential variables, so the chase generates only constants.
    - {b aggregation}: one source atom, a group-by list of dimension
      terms, and an aggregation operator applied to the bag of measures
      per group (tgd (3)).
    - {b table function}: a black-box operator consuming a whole
      relation and producing a whole relation; "we use no variables"
      (tgd (4)). *)

type atom = { rel : string; args : Term.t list }
(** By convention the last argument is the measure term, the preceding
    ones are dimension terms. *)

type t =
  | Tuple_level of { lhs : atom list; rhs : atom }
      (** [lhs = []] encodes a constant-cube definition: fires once. *)
  | Aggregation of {
      source : atom;
      group_by : Term.t list;
          (** Terms over the source's dimension variables, e.g.
              [quarter(t)] or [r]. *)
      aggr : Stats.Aggregate.t;
      measure : string;  (** the source measure variable *)
      target : string;
    }
  | Table_fn of {
      fn : string;
      params : float list;
      source : string;
      target : string;
    }
  | Outer_combine of {
      left : atom;
      right : atom;
      op : Ops.Binop.t;
      default : float;
      target : string;
    }
      (** The default-value variant of vectorial operators (paper,
          Section 3): the result is defined on the {e union} of the
          operands' dimension tuples, a missing side contributing
          [default].  Not expressible as a (positive) tgd — like
          aggregation, a dedicated dependency shape with a stratified
          semantics. *)

val atom : string -> Term.t list -> atom
val target_relation : t -> string
val source_relations : t -> string list
(** Without duplicates. *)

val is_safe : t -> bool
(** Range restriction: every variable of the right-hand side occurs on
    the left.  [Generate] always produces safe tgds; checked in tests
    and by the chase. *)

val atom_vars : atom -> string list
val equal_atom : atom -> atom -> bool
val atom_to_string : atom -> string
val equal : t -> t -> bool
(** Structural equality (used by the logic-notation round-trip tests). *)

val to_string : t -> string
(** Paper-style logic notation, e.g.
    ["PQR(q, r, p) ∧ RGDPPC(q, r, g) → RGDP(q, r, p * g)"]. *)

val pp : Format.formatter -> t -> unit
