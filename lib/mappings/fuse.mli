(** Tgd fusion: recombining single-operator tgds into complex ones.

    The paper notes that "in practice, our tool is able to simplify
    them" — statement (5)'s four operators yield one tgd,
    [GDPT(q, r1) ∧ GDPT(q-1, r2) → PCHNG(q, (r1 - r2) * 100 / r1)],
    instead of the four tgds of statements (5a)-(5d).  This pass
    performs that simplification at the mapping level: a tuple-level tgd
    defining a normalizer temporary used by exactly one other
    tuple-level tgd is inlined into its consumer.

    Fusion changes neither the final relations (machine-checked in
    tests) nor the source instance; it removes the temporary relations
    from the target schema.  The chase runs on the unfused mapping (the
    stratified correctness argument of Section 4.2 speaks about simple
    tgds); fusion feeds code generation, where fewer intermediate
    tables mean fewer materialized INSERTs. *)

val mapping :
  ?verify:(before:Mapping.t -> after:Mapping.t -> bool) ->
  Mapping.t ->
  Mapping.t
(** Inline all fusable temporaries (to fixpoint).  Without [verify]
    the pass is purely syntactic (the historical behaviour, kept as
    the [--fuse=unsafe] bench baseline); with [verify] every inlining
    step is cross-checked and rolled back when the checker rejects it.
    The analysis library injects its critical-instance equivalence
    check here — [Fuse] itself cannot depend on it. *)

val fuse_step :
  producer:Tgd.t -> consumer:Tgd.t -> Tgd.t option
(** One inlining step: [None] when the pair is not fusable (non
    tuple-level, or the argument terms on both sides of some position
    are complex). Exposed for tests. *)

val fuse_step_agg :
  producer:Tgd.t -> consumer:Tgd.t -> Tgd.t option
(** Inline a single-atom tuple-level producer into an aggregation
    consumer, rewriting the group-by keys through the unifier (an
    aggregation over a shifted operand must shift its keys too).
    [None] when the producer has a multi-atom body, computes a
    non-variable measure, or the atoms do not unify. *)
