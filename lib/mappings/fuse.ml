let counter = ref 0

let freshen_tgd_vars lhs rhs =
  incr counter;
  let prefix = Printf.sprintf "f%d_" !counter in
  let rn (a : Tgd.atom) =
    { a with Tgd.args = List.map (Term.rename ~prefix) a.Tgd.args }
  in
  (List.map rn lhs, rn rhs)

(* Substitute one variable by a term inside an atom list. *)
let subst_atoms v term atoms =
  let f x = if x = v then Some term else None in
  List.map
    (fun (a : Tgd.atom) -> { a with Tgd.args = List.map (Term.substitute f) a.Tgd.args })
    atoms

exception Not_fusable

let fuse_step ~producer ~consumer =
  match (producer, consumer) with
  | ( Tgd.Tuple_level { lhs = p_lhs; rhs = p_rhs },
      Tgd.Tuple_level { lhs = c_lhs; rhs = c_rhs } ) -> (
      let temp = p_rhs.Tgd.rel in
      match List.partition (fun (a : Tgd.atom) -> a.Tgd.rel = temp) c_lhs with
      | [ temp_atom ], other_atoms -> (
          let p_lhs, p_rhs = freshen_tgd_vars p_lhs p_rhs in
          (* Mutable working copies; each solved constraint is applied
             immediately everywhere, so later pairs see current terms. *)
          let prod_atoms = ref p_lhs in
          let cons_atoms = ref other_atoms in
          let cons_rhs = ref [ c_rhs ] in
          let pairs =
            ref (List.combine temp_atom.Tgd.args p_rhs.Tgd.args)
          in
          let apply v term =
            prod_atoms := subst_atoms v term !prod_atoms;
            cons_atoms := subst_atoms v term !cons_atoms;
            cons_rhs := subst_atoms v term !cons_rhs;
            pairs :=
              List.map
                (fun (u, s) ->
                  let f x = if x = v then Some term else None in
                  (Term.substitute f u, Term.substitute f s))
                !pairs
          in
          try
            let rec solve () =
              match !pairs with
              | [] -> ()
              | (u, s) :: rest ->
                  pairs := rest;
                  (match (u, s) with
                  | _ when Term.equal u s -> ()
                  | _, Term.Var v -> apply v u
                  | Term.Var v, _ -> apply v s
                  | _ -> raise Not_fusable);
                  solve ()
            in
            solve ();
            match !cons_rhs with
            | [ rhs ] ->
                Some (Tgd.Tuple_level { lhs = !cons_atoms @ !prod_atoms; rhs })
            | _ -> None
          with Not_fusable -> None)
      | _ -> None)
  | _ -> None

(* Inline a single-atom tuple-level producer into an aggregation
   consumer.  The consumer's source-atom variables bind to the
   producer's head terms; group-by keys are rewritten through that
   binding (an aggregation over a shifted operand must shift its keys
   too — substituting the source atom alone would change semantics at
   window boundaries).  The aggregated measure must stay a plain
   variable, so producers computing a complex measure are not
   fusable into aggregations. *)
let fuse_step_agg ~producer ~consumer =
  match (producer, consumer) with
  | ( Tgd.Tuple_level { lhs = [ p_atom ]; rhs = p_rhs },
      Tgd.Aggregation { source; group_by; aggr; measure; target } )
    when source.Tgd.rel = p_rhs.Tgd.rel
         && List.length source.Tgd.args = List.length p_rhs.Tgd.args -> (
      let p_lhs, p_rhs = freshen_tgd_vars [ p_atom ] p_rhs in
      let p_atom = List.hd p_lhs in
      let rec bind acc = function
        | [] -> Some acc
        | (Term.Var v, t) :: rest -> (
            match List.assoc_opt v acc with
            | Some t' when Term.equal t t' -> bind acc rest
            | Some _ -> None
            | None -> bind ((v, t) :: acc) rest)
        | _ -> None
      in
      match bind [] (List.combine source.Tgd.args p_rhs.Tgd.args) with
      | None -> None
      | Some sub -> (
          let subst t = Term.substitute (fun v -> List.assoc_opt v sub) t in
          match List.assoc_opt measure sub with
          | Some (Term.Var m') ->
              Some
                (Tgd.Aggregation
                   {
                     source = p_atom;
                     group_by = List.map subst group_by;
                     aggr;
                     measure = m';
                     target;
                   })
          | _ -> None))
  | _ -> None

let usages (m : Mapping.t) name =
  List.filter
    (fun tgd -> List.mem name (Tgd.source_relations tgd))
    m.Mapping.t_tgds

let mapping ?verify (m : Mapping.t) =
  let rec step (m : Mapping.t) rejected =
    let candidate =
      List.find_map
        (fun producer ->
          let target = Tgd.target_relation producer in
          if (not (Exl.Normalize.is_temp target)) || List.mem target rejected
          then None
          else
            match (producer, usages m target) with
            | Tgd.Tuple_level _, [ (Tgd.Tuple_level _ as consumer) ] ->
                Option.map
                  (fun fused -> (producer, consumer, fused))
                  (fuse_step ~producer ~consumer)
            | _ -> None)
        m.Mapping.t_tgds
    in
    match candidate with
    | None -> m
    | Some (producer, consumer, fused) ->
        let temp = Tgd.target_relation producer in
        let t_tgds =
          List.filter_map
            (fun tgd ->
              if tgd == producer then None
              else if tgd == consumer then Some fused
              else Some tgd)
            m.Mapping.t_tgds
        in
        let target =
          List.filter (fun s -> s.Matrix.Schema.name <> temp) m.Mapping.target
        in
        let egds =
          List.filter (fun (e : Egd.t) -> e.Egd.relation <> temp) m.Mapping.egds
        in
        let next = { m with Mapping.t_tgds; target; egds } in
        let accepted =
          match verify with None -> true | Some f -> f ~before:m ~after:next
        in
        (* A step the cross-check rejects is rolled back; the temp is
           excluded from further candidates so the loop terminates. *)
        if accepted then step next rejected else step m (temp :: rejected)
  in
  step m []
