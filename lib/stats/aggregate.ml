type t =
  | Sum
  | Avg
  | Min
  | Max
  | Count
  | Median
  | Stddev
  | Variance
  | Product
  | First
  | Last

let all =
  [ Sum; Avg; Min; Max; Count; Median; Stddev; Variance; Product; First; Last ]

let to_string = function
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"
  | Count -> "count"
  | Median -> "median"
  | Stddev -> "stddev"
  | Variance -> "variance"
  | Product -> "product"
  | First -> "first"
  | Last -> "last"

let of_string s =
  match String.lowercase_ascii s with
  | "sum" -> Some Sum
  | "avg" | "mean" | "average" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | "count" -> Some Count
  | "median" -> Some Median
  | "stddev" | "sd" -> Some Stddev
  | "variance" | "var" -> Some Variance
  | "product" | "prod" -> Some Product
  | "first" -> Some First
  | "last" -> Some Last
  | _ -> None

let apply_array t a =
  match Array.length a with
  | 0 -> invalid_arg "Aggregate.apply: empty bag"
  | n -> (
      match t with
      | Sum -> Descriptive.sum a
      | Avg -> Descriptive.mean a
      | Min -> Descriptive.min a
      | Max -> Descriptive.max a
      | Count -> float_of_int n
      | Median -> Descriptive.median a
      | Stddev -> Descriptive.stddev a
      | Variance -> Descriptive.variance a
      | Product -> Descriptive.product a
      | First -> a.(0)
      | Last -> a.(n - 1))

let apply_slice t a ~off ~len =
  if off = 0 && len = Array.length a then apply_array t a
  else apply_array t (Array.sub a off len)

let apply t bag = apply_array t (Array.of_list bag)

let is_order_sensitive = function
  | First | Last -> true
  | Sum | Avg | Min | Max | Count | Median | Stddev | Variance | Product ->
      false

let pp ppf t = Format.pp_print_string ppf (to_string t)
