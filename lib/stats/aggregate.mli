(** EXL aggregation operators over bags of measures.

    The paper's aggregation semantics (Section 3): the result of applying
    [aggr] to the {e bag} (repeated elements are meaningful) of measure
    values sharing a group-by key. The result tuple exists only when the
    bag is non-empty, which is why [apply] is never called on []. *)

type t =
  | Sum
  | Avg
  | Min
  | Max
  | Count
  | Median
  | Stddev
  | Variance
  | Product
  | First
  | Last

val all : t list
val to_string : t -> string
val of_string : string -> t option

val apply : t -> float list -> float
(** @raise Invalid_argument on the empty bag. [First]/[Last] follow the
    list order the caller accumulated (deterministic in our engines:
    sorted key order). *)

val apply_array : t -> float array -> float
(** [apply] over an array bag in array order — [apply t bag] is
    definitionally [apply_array t (Array.of_list bag)], so feeding the
    same values in the same order yields bit-identical results on
    either entry point. The vectorized engines accumulate group bags
    directly as arrays and call this. @raise Invalid_argument on [||]. *)

val apply_slice : t -> float array -> off:int -> len:int -> float
(** [apply_array] over a segment of a larger buffer (a group's slice of
    a segmented gather); copies only when the slice is proper. *)

val is_order_sensitive : t -> bool
(** True for [First]/[Last]: engines must feed the bag in key order. *)

val pp : Format.formatter -> t -> unit
