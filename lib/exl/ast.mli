(** Abstract syntax of EXL programs.

    An EXL program is a sequence of cube declarations (elementary cubes,
    the base data) and statements [C := expr] defining derived cubes
    (paper, Section 3).  The grammar implemented here:

    {v
    program  ::= item*
    item     ::= decl | stmt
    decl     ::= "cube" ID "(" ID ":" TYPE ("," ID ":" TYPE)* ")" [":" TYPE] ";"
    stmt     ::= ID ":=" expr ";"
    expr     ::= expr ("+"|"-") expr | expr ("*"|"/") expr | expr "^" expr
               | "-" expr | NUMBER | ID | call | "(" expr ")"
    call     ::= ID "(" expr ("," expr)* ["," groupby] ")"
               | ID "(" groupby ")"
    groupby  ::= "group" "by" dim ("," dim)*
    dim      ::= ID ["as" ID] | ID "(" ID ")" ["as" ID]
    v}

    Operator names are resolved against the shared catalogues
    ([Ops.Scalar_fn], [Ops.Blackbox], [Stats.Aggregate], [shift]) by
    [classify]; this keeps the AST uniform while the type checker
    assigns meaning. *)

type pos = { line : int; col : int }

val pp_pos : Format.formatter -> pos -> unit
val no_pos : pos

type dim_item = {
  src : string;  (** operand dimension the item refers to *)
  fn : string option;  (** dimension function, e.g. [quarter] *)
  alias : string option;  (** [as] name for the result dimension *)
}

val dim_item_result_name : dim_item -> string
(** The name of the produced dimension: the alias when given, else the
    source name. *)

type expr =
  | Number of float
  | Cube_ref of string
  | Binop of Ops.Binop.t * expr * expr
  | Neg of expr
  | Call of call

and call = {
  fn : string;
  args : expr list;
  group_by : dim_item list option;
  conditions : (string * Matrix.Value.t) list;
      (** [filter] selection conditions [dim = literal]; empty for all
          other operators.  Literals are [String] or [Float] as parsed;
          consumers coerce them to the dimension's domain with
          {!coerce_literal}. *)
  pos : pos;
}

type decl = {
  d_name : string;
  d_dims : (string * string) list;  (** dimension name, domain keyword *)
  d_measure : string option;  (** measure domain keyword; default float *)
  d_pos : pos;
}

type stmt = { lhs : string; rhs : expr; s_pos : pos }
type item = Decl of decl | Stmt of stmt
type program = item list

val decls : program -> decl list
val stmts : program -> stmt list

(** How a [Call]'s function name resolves against the operator
    catalogues. *)
type op_class =
  | Agg_op of Stats.Aggregate.t
  | Scalar_op of Ops.Scalar_fn.t
  | Blackbox_op of Ops.Blackbox.t
  | Shift_op
  | Filter_op  (** selection: [filter(e, dim = literal, ...)] *)
  | Outer_op of Ops.Binop.t
      (** default-value vectorial variant: [vadd(A, B)], [vsub], [vmul],
          [vdiv], optionally with an explicit default as a third
          argument ([vadd(A, B, 0)]). *)
  | Unknown_op

val classify : string -> op_class
(** Resolution order: [shift], [filter], aggregation names, scalar
    catalogue, black-box catalogue. *)

val coerce_literal : Matrix.Domain.t -> Matrix.Value.t -> Matrix.Value.t option
(** Adapt a parsed filter literal to a dimension domain: strings parse
    into periods/dates for temporal domains, numbers narrow to [Int]
    where required; [None] when incompatible. *)

val cube_refs : expr -> string list
(** Cube identifiers referenced, without duplicates, in first-occurrence
    order (shift's dimension argument and group-by sources excluded). *)

val as_number : expr -> float option
(** Numeric literal, possibly under a unary minus ([-3] parses as
    [Neg (Number 3.)]). *)

val split_call_args :
  call -> (float list * expr option, string) result
(** Separates a call's arguments into leading/trailing numeric
    parameters and the (at most one) cube operand expression.
    [Error] when two non-numeric arguments are present. *)

val equal_expr : expr -> expr -> bool
(** Structural equality ignoring positions; the two spellings of a
    negative literal ([Neg (Number x)] and [Number (-x)]) are equal,
    since concrete syntax cannot tell them apart. *)

val equal_program : program -> program -> bool
