(** EXL program printer.

    Produces concrete syntax that re-parses to the same AST
    ([Parser.parse (Pretty.program_to_string p)] = [p] up to positions);
    this round-trip is property-tested. *)

val number_to_string : float -> string
(** Shortest decimal form that re-parses to exactly the same float. *)

val literal_to_string : Matrix.Value.t -> string
(** A filter-condition literal in concrete syntax; strings use the EXL
    lexer's escape repertoire (backslash-escaped quote, backslash,
    [n], [t]). *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val decl_to_string : Ast.decl -> string
val program_to_string : Ast.program -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_program : Format.formatter -> Ast.program -> unit
