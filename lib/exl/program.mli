open Matrix

(** One-stop front end: parse, check, normalize, interpret. *)

val load : string -> (Typecheck.checked, Errors.t) result
(** Parse and type-check EXL source; on failure, the first (by source
    position) of the accumulated errors. *)

val load_all : string -> (Typecheck.checked, Errors.t list) result
(** Like [load] but reports {e every} parse or type error found in one
    run, ordered by source position (the lint driver's entry point). *)

val load_normalized : string -> (Typecheck.checked, Errors.t) result
(** [load] followed by one-operator-per-statement normalization. *)

val run_source : string -> Registry.t -> (Registry.t, Errors.t) result
(** Parse, check and interpret against the given elementary data. *)

val load_exn : string -> Typecheck.checked
(** @raise Invalid_argument with the rendered error. Convenience for
    examples and benches. *)

val run_exn : Typecheck.checked -> Registry.t -> Registry.t
