let load_all source =
  match Parser.parse source with
  | Error e -> Error [ e ]
  | Ok ast -> Typecheck.check ast

let load source = Result.map_error Errors.first (load_all source)
let load_normalized source = Result.bind (load source) Normalize.checked

let run_source source registry =
  Result.bind (load source) (fun checked -> Interp.run checked registry)

let load_exn source =
  match load source with
  | Ok c -> c
  | Error e -> invalid_arg ("EXL: " ^ Errors.to_string e)

let run_exn checked registry =
  match Interp.run checked registry with
  | Ok reg -> reg
  | Error e -> invalid_arg ("EXL: " ^ Errors.to_string e)
