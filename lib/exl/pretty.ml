(* Shortest decimal form that parses back to exactly [f].  Constant
   folding can produce floats (0.1 + 0.2) whose nearest 12-digit
   rendering is a different float; printing those with %.12g would make
   the round-trip land on the wrong value. *)
let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let exact p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match exact 12 with
    | Some s -> s
    | None -> ( match exact 15 with Some s -> s | None -> Printf.sprintf "%.17g" f)

let dim_item_to_string (d : Ast.dim_item) =
  let base =
    match d.fn with
    | Some fn -> Printf.sprintf "%s(%s)" fn d.src
    | None -> d.src
  in
  match d.alias with Some a -> base ^ " as " ^ a | None -> base

(* String literals must use the EXL lexer's own escape repertoire
   (escaped quote, backslash, n, t; every other byte raw) — OCaml's %S
   also emits r, b and decimal escapes the lexer rejects. *)
let escape_string text =
  let buf = Buffer.create (String.length text + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    text;
  Buffer.add_char buf '"';
  Buffer.contents buf

let literal_to_string = function
  | Matrix.Value.String text -> escape_string text
  | Matrix.Value.Float f -> number_to_string f
  | other -> Matrix.Value.to_string other

(* Precedence-aware printing: parenthesize a child only when its
   precedence is too low for its context. *)
let rec expr_prec = function
  | Ast.Number f -> if f < 0. then 4 else 10
  | Ast.Cube_ref _ | Ast.Call _ -> 10
  | Ast.Neg _ -> 4
  | Ast.Binop (op, _, _) -> Ops.Binop.precedence op

and expr_to_string e = to_str 0 e

and to_str ctx e =
  let s =
    match e with
    | Ast.Number f -> number_to_string f
    | Ast.Cube_ref n -> n
    | Ast.Neg inner -> "-" ^ to_str 4 inner
    | Ast.Binop (op, a, b) ->
        let p = Ops.Binop.precedence op in
        let left_ctx, right_ctx =
          if Ops.Binop.is_right_assoc op then (p + 1, p) else (p, p + 1)
        in
        Printf.sprintf "%s %s %s" (to_str left_ctx a)
          (Ops.Binop.to_string op) (to_str right_ctx b)
    | Ast.Call c ->
        let args = List.map (to_str 0) c.args in
        let conds =
          List.map
            (fun (dim, literal) ->
              Printf.sprintf "%s = %s" dim (literal_to_string literal))
            c.conditions
        in
        let clauses =
          match c.group_by with
          | None -> args @ conds
          | Some items ->
              args @ conds
              @ [
                  "group by "
                  ^ String.concat ", " (List.map dim_item_to_string items);
                ]
        in
        Printf.sprintf "%s(%s)" c.fn (String.concat ", " clauses)
  in
  if expr_prec e < ctx then "(" ^ s ^ ")" else s

let stmt_to_string (s : Ast.stmt) =
  Printf.sprintf "%s := %s;" s.lhs (expr_to_string s.rhs)

let decl_to_string (d : Ast.decl) =
  let dims =
    String.concat ", "
      (List.map (fun (n, dom) -> Printf.sprintf "%s: %s" n dom) d.d_dims)
  in
  let measure =
    match d.d_measure with Some m -> ": " ^ m | None -> ""
  in
  Printf.sprintf "cube %s(%s)%s;" d.d_name dims measure

let item_to_string = function
  | Ast.Decl d -> decl_to_string d
  | Ast.Stmt s -> stmt_to_string s

let program_to_string p =
  String.concat "\n" (List.map item_to_string p) ^ "\n"

let pp_expr ppf e = Format.pp_print_string ppf (expr_to_string e)
let pp_program ppf p = Format.pp_print_string ppf (program_to_string p)
