let is_atom = function
  | Ast.Number _ | Ast.Cube_ref _ -> true
  | Ast.Binop _ | Ast.Neg _ | Ast.Call _ -> false

let call_operands (c : Ast.call) =
  (* The shift dimension argument is positional, not an operand. *)
  match (Ast.classify c.fn, c.args) with
  | Ast.Shift_op, [ operand; _ ] | Ast.Shift_op, [ operand; _; _ ] ->
      [ operand ]
  | _ -> c.args

let is_simple = function
  | (Ast.Number _ | Ast.Cube_ref _) as a -> is_atom a
  | Ast.Binop (_, a, b) -> is_atom a && is_atom b
  | Ast.Neg a -> is_atom a
  | Ast.Call c -> List.for_all is_atom (call_operands c)

let is_normal p =
  List.for_all (fun (s : Ast.stmt) -> is_simple s.rhs) (Ast.stmts p)

(* Constant folding: collapse numeric subexpressions before
   flattening, so `C := K * 60 * 60` yields one tgd, not two. Undefined
   constant operations (1/0) are left in place so the runtime error
   surfaces where the user wrote it. *)
let rec fold_constants expr =
  match expr with
  | Ast.Number _ | Ast.Cube_ref _ -> expr
  | Ast.Neg e -> (
      match fold_constants e with
      | Ast.Number f -> Ast.Number (-.f)
      | e' -> Ast.Neg e')
  | Ast.Binop (op, a, b) -> (
      let a = fold_constants a and b = fold_constants b in
      match (a, b) with
      | Ast.Number x, Ast.Number y -> (
          match Ops.Binop.eval op x y with
          | Some r -> Ast.Number r
          | None -> Ast.Binop (op, a, b))
      | _ -> Ast.Binop (op, a, b))
  | Ast.Call c -> (
      let args = List.map fold_constants c.Ast.args in
      let folded = Ast.Call { c with Ast.args } in
      match Ast.classify c.Ast.fn with
      | Ast.Scalar_op fn -> (
          (* all-constant scalar application folds to its value *)
          let numbers = List.map Ast.as_number args in
          if List.for_all Option.is_some numbers then
            match List.rev (List.map Option.get numbers) with
            | x :: rev_params -> (
                match Ops.Scalar_fn.apply fn ~params:(List.rev rev_params) x with
                | Some r -> Ast.Number r
                | None -> folded)
            | [] -> folded
          else folded)
      | _ -> folded)

let fold_program p =
  List.map
    (function
      | Ast.Decl _ as d -> d
      | Ast.Stmt s -> Ast.Stmt { s with Ast.rhs = fold_constants s.Ast.rhs })
    p

let used_names p =
  let names = Hashtbl.create 32 in
  List.iter
    (function
      | Ast.Decl d -> Hashtbl.replace names d.d_name ()
      | Ast.Stmt s -> Hashtbl.replace names s.lhs ())
    p;
  names

(* Temporaries are <lhs>__<n>; the numbering is global across the
   program so names stay unique even when one lhs prefixes another. *)
let temp_re_matches name =
  match String.rindex_opt name '_' with
  | Some i when i >= 1 && name.[i - 1] = '_' ->
      let suffix = String.sub name (i + 1) (String.length name - i - 1) in
      suffix <> "" && String.for_all (fun c -> c >= '0' && c <= '9') suffix
      && i >= 2
  | _ -> false

let is_temp = temp_re_matches

let temp_base name =
  if not (temp_re_matches name) then name
  else
    match String.rindex_opt name '_' with
    | Some i -> String.sub name 0 (i - 1)
    | None -> name

let program p =
  let p = fold_program p in
  let names = used_names p in
  let counter = ref 0 in
  let fresh lhs =
    incr counter;
    let rec try_name () =
      let candidate = Printf.sprintf "%s__%d" lhs !counter in
      if Hashtbl.mem names candidate then begin
        incr counter;
        try_name ()
      end
      else begin
        Hashtbl.replace names candidate ();
        candidate
      end
    in
    try_name ()
  in
  let rewrite_stmt (s : Ast.stmt) =
    let emitted = ref [] in
    let emit lhs rhs =
      emitted := { Ast.lhs; rhs; s_pos = s.s_pos } :: !emitted
    in
    (* Flatten an expression to an atom, emitting temp statements. *)
    let rec atomize e =
      if is_atom e then e
      else
        let simple = simplify e in
        let name = fresh s.lhs in
        emit name simple;
        Ast.Cube_ref name
    (* Make one operator application whose operands are atoms. *)
    and simplify e =
      match e with
      | Ast.Number _ | Ast.Cube_ref _ -> e
      | Ast.Binop (op, a, b) -> Ast.Binop (op, atomize a, atomize b)
      | Ast.Neg a -> Ast.Neg (atomize a)
      | Ast.Call c ->
          let args =
            match (Ast.classify c.fn, c.args) with
            | Ast.Shift_op, [ operand; k ] -> [ atomize operand; k ]
            | Ast.Shift_op, [ operand; d; k ] -> [ atomize operand; d; k ]
            | _ -> List.map atomize c.args
          in
          Ast.Call { c with args }
    in
    let final_rhs = if is_simple s.rhs then s.rhs else simplify s.rhs in
    List.rev ({ s with Ast.rhs = final_rhs } :: !emitted)
  in
  List.concat_map
    (function
      | Ast.Decl _ as d -> [ d ]
      | Ast.Stmt s -> List.map (fun s -> Ast.Stmt s) (rewrite_stmt s))
    p

(* Common-subexpression elimination over the normalized program: when
   two auxiliary statements compute the same simple expression (e.g. a
   statement using shift(C, 1) twice yields two identical shift temps),
   keep the first and rewrite references to the rest.  Only normalizer
   temporaries are folded — user-visible cubes always materialize. *)
let cse normalized =
  let alias : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let resolve name =
    match Hashtbl.find_opt alias name with Some a -> a | None -> name
  in
  let rec rewrite expr =
    match expr with
    | Ast.Number _ -> expr
    | Ast.Cube_ref n -> Ast.Cube_ref (resolve n)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, rewrite a, rewrite b)
    | Ast.Neg a -> Ast.Neg (rewrite a)
    | Ast.Call c -> Ast.Call { c with Ast.args = List.map rewrite c.Ast.args }
  in
  (* key: the printed form of the rewritten rhs (positions ignored) *)
  let seen : (string, string) Hashtbl.t = Hashtbl.create 16 in
  List.filter_map
    (function
      | Ast.Decl _ as item -> Some item
      | Ast.Stmt s ->
          let rhs = rewrite s.Ast.rhs in
          let keep = Some (Ast.Stmt { s with Ast.rhs }) in
          if not (is_temp s.Ast.lhs) then keep
          else begin
            let key = Pretty.expr_to_string rhs in
            match Hashtbl.find_opt seen key with
            | Some existing ->
                Hashtbl.replace alias s.Ast.lhs existing;
                None
            | None ->
                Hashtbl.replace seen key s.Ast.lhs;
                keep
          end)
    normalized

let checked (c : Typecheck.checked) =
  Result.map_error Errors.first (Typecheck.check (cse (program c.program)))
