type pos = { line : int; col : int }

let pp_pos ppf p = Format.fprintf ppf "line %d, column %d" p.line p.col
let no_pos = { line = 0; col = 0 }

type dim_item = { src : string; fn : string option; alias : string option }

let dim_item_result_name d =
  match d.alias with Some a -> a | None -> d.src

type expr =
  | Number of float
  | Cube_ref of string
  | Binop of Ops.Binop.t * expr * expr
  | Neg of expr
  | Call of call

and call = {
  fn : string;
  args : expr list;
  group_by : dim_item list option;
  conditions : (string * Matrix.Value.t) list;
  pos : pos;
}

type decl = {
  d_name : string;
  d_dims : (string * string) list;
  d_measure : string option;
  d_pos : pos;
}

type stmt = { lhs : string; rhs : expr; s_pos : pos }
type item = Decl of decl | Stmt of stmt
type program = item list

let decls p = List.filter_map (function Decl d -> Some d | Stmt _ -> None) p
let stmts p = List.filter_map (function Stmt s -> Some s | Decl _ -> None) p

type op_class =
  | Agg_op of Stats.Aggregate.t
  | Scalar_op of Ops.Scalar_fn.t
  | Blackbox_op of Ops.Blackbox.t
  | Shift_op
  | Filter_op
  | Outer_op of Ops.Binop.t
  | Unknown_op

let outer_op_of_name = function
  | "vadd" -> Some Ops.Binop.Add
  | "vsub" -> Some Ops.Binop.Sub
  | "vmul" -> Some Ops.Binop.Mul
  | "vdiv" -> Some Ops.Binop.Div
  | _ -> None

let classify fn =
  if String.lowercase_ascii fn = "shift" then Shift_op
  else if String.lowercase_ascii fn = "filter" then Filter_op
  else
    match outer_op_of_name (String.lowercase_ascii fn) with
    | Some op -> Outer_op op
    | None -> (
        match Stats.Aggregate.of_string fn with
        | Some a -> Agg_op a
        | None -> (
            match Ops.Scalar_fn.find fn with
            | Some s -> Scalar_op s
            | None -> (
                match Ops.Blackbox.find fn with
                | Some b -> Blackbox_op b
                | None -> Unknown_op)))

let cube_refs e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      out := n :: !out
    end
  in
  let rec go e =
    match e with
    | Number _ -> ()
    | Cube_ref n -> add n
    | Binop (_, a, b) ->
        go a;
        go b
    | Neg a -> go a
    | Call c -> (
        match (classify c.fn, c.args) with
        | Shift_op, operand :: _rest ->
            (* shift(e, [dim,] k): the dimension name parses as a
               Cube_ref but is not a cube reference. *)
            go operand
        | _ -> List.iter go c.args)
  in
  go e;
  List.rev !out

let as_number = function
  | Number f -> Some f
  | Neg (Number f) -> Some (-.f)
  | Cube_ref _ | Binop _ | Neg _ | Call _ -> None

let split_call_args c =
  let rec loop params operand = function
    | [] -> Ok (List.rev params, operand)
    | e :: rest -> (
        match as_number e with
        | Some f -> loop (f :: params) operand rest
        | None -> (
            match operand with
            | None -> loop params (Some e) rest
            | Some _ ->
                Error
                  (Printf.sprintf
                     "%s: more than one cube operand among the arguments" c.fn)))
  in
  loop [] None c.args

let equal_dim_item (a : dim_item) (b : dim_item) =
  a.src = b.src && a.fn = b.fn && a.alias = b.alias

let rec equal_expr a b =
  match (a, b) with
  | Number x, Number y -> Float.equal x y
  (* The lexer has no negative-number token, so a folded [Number (-1.)]
     pretty-prints as [-1] and re-parses as [Neg (Number 1.)]: the two
     spellings denote the same literal. *)
  | Neg (Number x), Number y | Number y, Neg (Number x) ->
      Float.equal (-.x) y
  | Cube_ref x, Cube_ref y -> x = y
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
      o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Neg x, Neg y -> equal_expr x y
  | Call c1, Call c2 ->
      c1.fn = c2.fn
      && List.length c1.args = List.length c2.args
      && List.for_all2 equal_expr c1.args c2.args
      && Option.equal (List.equal equal_dim_item) c1.group_by c2.group_by
      && List.equal
           (fun (d1, v1) (d2, v2) -> d1 = d2 && Matrix.Value.equal v1 v2)
           c1.conditions c2.conditions
  | (Number _ | Cube_ref _ | Binop _ | Neg _ | Call _), _ -> false

let equal_item a b =
  match (a, b) with
  | Decl d1, Decl d2 ->
      d1.d_name = d2.d_name && d1.d_dims = d2.d_dims
      && d1.d_measure = d2.d_measure
  | Stmt s1, Stmt s2 -> s1.lhs = s2.lhs && equal_expr s1.rhs s2.rhs
  | (Decl _ | Stmt _), _ -> false

let equal_program a b =
  List.length a = List.length b && List.for_all2 equal_item a b

let coerce_literal domain literal =
  let open Matrix in
  match (literal, domain) with
  | v, Domain.Any -> Some v
  | Value.String _, Domain.String -> Some literal
  | Value.Float f, Domain.Float -> Some (Value.Float f)
  | Value.Float f, Domain.Int when Float.is_integer f ->
      Some (Value.Int (int_of_float f))
  | Value.Int _, Domain.Int -> Some literal
  | Value.Int i, Domain.Float -> Some (Value.Float (float_of_int i))
  | Value.String s, Domain.Date -> Option.map (fun d -> Value.Date d) (Calendar.Date.of_string s)
  | Value.String s, Domain.Period freq -> (
      match Calendar.Period.of_string s with
      | Some p -> (
          match freq with
          | None -> Some (Value.Period p)
          | Some f when Calendar.Period.freq p = f -> Some (Value.Period p)
          | Some _ -> None)
      | None -> None)
  | _ -> None
