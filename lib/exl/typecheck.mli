open Matrix

(** Static checking and schema inference for EXL programs.

    Enforces the well-formedness conditions of the paper (Section 3):
    derived cubes reference only elementary cubes or previously defined
    ones (acyclicity by construction), each derived cube has exactly one
    definition (the functional restriction), vectorial operands share
    their dimensions, aggregations group by existing dimensions,
    dimension functions apply to temporal dimensions, and black-box
    operators receive (slice-wise) time series. *)

type ty = Scalar_ty | Cube_ty of (string * Domain.t) list
(** The type of an expression: a scalar constant or a cube with the
    given ordered dimensions (the measure is always numeric). *)

val ty_to_string : ty -> string

module Env : sig
  (** Cube schema environment built while checking. *)

  type t

  val empty : unit -> t
  val schema : t -> string -> Schema.t option
  val schema_exn : t -> string -> Schema.t
  val kind : t -> string -> Registry.kind option
  val mem : t -> string -> bool
  val names : t -> string list  (** In declaration/definition order. *)

  val add : t -> Registry.kind -> Schema.t -> unit
  (** Exposed so later pipeline stages (normalization) can extend the
      environment with temporary cubes. *)
end

type checked = {
  program : Ast.program;
  env : Env.t;
  statements : Ast.stmt list;  (** in program order *)
}

val check : Ast.program -> (checked, Errors.t list) result
(** Accumulating: reports {e every} type error in one run, ordered by
    source position.  A failed statement poisons its cube name so that
    downstream references do not produce "undefined cube" cascades. *)

val infer_expr : Env.t -> Ast.expr -> (ty, Errors.t) result
(** Type of one expression under an environment (exposed for tests and
    for the normalizer). *)

val schema_of_ty : name:string -> ty -> Schema.t
(** The schema a statement assigning this type would create ([Scalar_ty]
    gives a zero-dimensional cube). *)

val warnings : checked -> string list
(** Non-fatal findings: declared elementary cubes that no statement
    ever references. *)

val elementary_schemas : checked -> Schema.t list
val derived_schemas : checked -> Schema.t list
