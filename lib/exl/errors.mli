(** Structured errors for the EXL front end and its consumers. *)

type t = {
  pos : Ast.pos option;
  msg : string;
  code : string option;
      (** Stable diagnostic code ([E0xx]), when the raising site knows
          one; the analysis layer falls back to a generic code
          otherwise.  See [docs/DIAGNOSTICS.md] for the catalogue. *)
}

val make : ?pos:Ast.pos -> ?code:string -> string -> t
val makef : ?pos:Ast.pos -> ?code:string -> ('a, Format.formatter, unit, t) format4 -> 'a
val to_string : t -> string

val to_string_with_source : source:string -> t -> string
(** Renders the error with the offending source line and a caret:
    {v
    line 3, column 8: unknown operator frobnicate
      B := frobnicate(A);
           ^
    v} *)

val pp : Format.formatter -> t -> unit

exception Exl_error of t
(** Internal escape hatch; public APIs catch it and return [result]. *)

val fail : ?pos:Ast.pos -> ?code:string -> string -> 'a
val failf : ?pos:Ast.pos -> ?code:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val protect : (unit -> 'a) -> ('a, t) result
(** Runs the thunk, catching [Exl_error] (and [Invalid_argument], which
    substrate code raises on misuse) into [Error]. *)

val compare_pos : t -> t -> int
(** Orders by source position; errors without a position sort last. *)

val sort : t list -> t list
(** Stable sort by {!compare_pos}. *)

val first : t list -> t
(** Head of an accumulated error list (a generic placeholder on []). *)

val list_to_string : t list -> string
(** One rendered error per line. *)
