open Matrix

type ty = Scalar_ty | Cube_ty of (string * Domain.t) list

let ty_to_string = function
  | Scalar_ty -> "scalar"
  | Cube_ty dims ->
      "cube("
      ^ String.concat ", "
          (List.map
             (fun (n, d) -> Printf.sprintf "%s: %s" n (Domain.to_string d))
             dims)
      ^ ")"

module Env = struct
  type t = {
    table : (string, Schema.t * Registry.kind) Hashtbl.t;
    mutable order : string list;  (* reverse insertion order *)
  }

  let empty () = { table = Hashtbl.create 32; order = [] }
  let schema t name = Option.map fst (Hashtbl.find_opt t.table name)

  let schema_exn t name =
    match schema t name with
    | Some s -> s
    | None -> invalid_arg ("Typecheck.Env.schema_exn: unknown cube " ^ name)

  let kind t name = Option.map snd (Hashtbl.find_opt t.table name)
  let mem t name = Hashtbl.mem t.table name
  let names t = List.rev t.order

  let add t kind schema =
    let name = schema.Schema.name in
    if not (Hashtbl.mem t.table name) then t.order <- name :: t.order;
    Hashtbl.replace t.table name (schema, kind)
end

type checked = {
  program : Ast.program;
  env : Env.t;
  statements : Ast.stmt list;
}

let dims_of_schema s =
  Array.to_list s.Schema.dims
  |> List.map (fun d -> (d.Schema.dim_name, d.Schema.dim_domain))

let schema_of_ty ~name ty =
  match ty with
  | Scalar_ty -> Schema.make ~name ~dims:[] ()
  | Cube_ty dims -> Schema.make ~name ~dims ()

let unify_dims pos a b =
  (* Vectorial operands: same dimension names (as sets) with unifiable
     domains; the result keeps the left operand's order. *)
  if List.length a <> List.length b then
    Errors.failf ~pos ~code:"E008" "operands have different dimensions: %s vs %s"
      (ty_to_string (Cube_ty a)) (ty_to_string (Cube_ty b));
  List.map
    (fun (n, da) ->
      match List.assoc_opt n b with
      | None ->
          Errors.failf ~pos ~code:"E008"
            "operands have different dimensions: %s missing from %s" n
            (ty_to_string (Cube_ty b))
      | Some db -> (
          match Domain.union da db with
          | Some d -> (n, d)
          | None ->
              Errors.failf ~pos ~code:"E008"
                "dimension %s has incompatible domains %s and %s" n
                (Domain.to_string da) (Domain.to_string db)))
    a

let temporal_dims dims =
  List.filter (fun (_, d) -> Domain.is_temporal d) dims

let the_temporal_dim pos what dims =
  match temporal_dims dims with
  | [ (n, d) ] -> (n, d)
  | [] -> Errors.failf ~pos "%s requires a temporal dimension" what
  | many ->
      Errors.failf ~pos
        "%s is ambiguous: operand has %d temporal dimensions (%s)" what
        (List.length many)
        (String.concat ", " (List.map fst many))

let rec infer env expr =
  match expr with
  | Ast.Number _ -> Scalar_ty
  | Ast.Cube_ref name -> (
      match Env.schema env name with
      | Some s -> Cube_ty (dims_of_schema s)
      | None -> Errors.failf ~code:"E007" "reference to undefined cube %s" name)
  | Ast.Neg e -> infer env e
  | Ast.Binop (op, a, b) -> (
      let ta = infer env a and tb = infer env b in
      ignore op;
      match (ta, tb) with
      | Scalar_ty, Scalar_ty -> Scalar_ty
      | Cube_ty d, Scalar_ty | Scalar_ty, Cube_ty d -> Cube_ty d
      | Cube_ty da, Cube_ty db -> Cube_ty (unify_dims Ast.no_pos da db))
  | Ast.Call c -> infer_call env c

and infer_call env (c : Ast.call) =
  let pos = c.pos in
  if c.conditions <> [] && Ast.classify c.fn <> Ast.Filter_op then
    Errors.failf ~pos "%s does not take dim = literal conditions" c.fn;
  match Ast.classify c.fn with
  | Ast.Shift_op -> infer_shift env c
  | Ast.Filter_op -> infer_filter env c
  | Ast.Outer_op _ -> infer_outer env c
  | Ast.Agg_op _ -> infer_agg env c
  | Ast.Scalar_op s -> infer_scalar env c s
  | Ast.Blackbox_op b -> infer_blackbox env c b
  | Ast.Unknown_op ->
      Errors.failf ~pos ~code:"E005"
        "unknown operator %s (known: shift, aggregations %s, scalar %s, black-box %s)"
        c.fn
        (String.concat "/" (List.map Stats.Aggregate.to_string Stats.Aggregate.all))
        (String.concat "/" (Ops.Scalar_fn.names ()))
        (String.concat "/" (Ops.Blackbox.names ()))

and infer_shift env c =
  let pos = c.pos in
  if c.group_by <> None then
    Errors.fail ~pos "shift does not take a group by clause";
  let operand, dim, amount =
    match c.args with
    | [ e; k ] when Ast.as_number k <> None -> (e, None, Option.get (Ast.as_number k))
    | [ e; Ast.Cube_ref d; k ] when Ast.as_number k <> None ->
        (e, Some d, Option.get (Ast.as_number k))
    | _ ->
        Errors.fail ~pos
          "shift expects shift(expr, amount) or shift(expr, dimension, amount)"
  in
  if not (Float.is_integer amount) then
    Errors.failf ~pos "shift amount must be an integer, got %g" amount;
  match infer env operand with
  | Scalar_ty -> Errors.fail ~pos "shift operand must be a cube"
  | Cube_ty dims ->
      (match dim with
      | Some d -> (
          match List.assoc_opt d dims with
          | None -> Errors.failf ~pos "shift: no dimension %s in operand" d
          | Some dom when not (Domain.is_temporal dom) ->
              Errors.failf ~pos "shift: dimension %s is not temporal" d
          | Some _ -> ())
      | None -> ignore (the_temporal_dim pos "shift" dims));
      Cube_ty dims

and infer_outer env c =
  let pos = c.pos in
  if c.group_by <> None then
    Errors.failf ~pos "%s does not take a group by clause" c.fn;
  let a, b =
    match c.args with
    | [ a; b ] -> (a, b)
    | [ a; b; d ] when Ast.as_number d <> None -> (a, b)
    | _ ->
        Errors.failf ~pos
          "%s expects two cube operands and an optional numeric default" c.fn
  in
  match (infer env a, infer env b) with
  | Cube_ty da, Cube_ty db -> Cube_ty (unify_dims pos da db)
  | _ -> Errors.failf ~pos "%s operands must both be cubes" c.fn

and infer_filter env c =
  let pos = c.pos in
  if c.group_by <> None then
    Errors.fail ~pos "filter does not take a group by clause";
  let operand =
    match c.args with
    | [ e ] -> e
    | _ -> Errors.fail ~pos "filter expects exactly one cube operand"
  in
  if c.conditions = [] then
    Errors.fail ~pos "filter needs at least one dim = literal condition";
  match infer env operand with
  | Scalar_ty -> Errors.fail ~pos "filter operand must be a cube"
  | Cube_ty dims ->
      List.iter
        (fun (dim, literal) ->
          match List.assoc_opt dim dims with
          | None -> Errors.failf ~pos "filter: no dimension %s in operand" dim
          | Some domain -> (
              match Ast.coerce_literal domain literal with
              | Some _ -> ()
              | None ->
                  Errors.failf ~pos
                    "filter: literal %s does not fit dimension %s of domain %s"
                    (Value.to_string literal) dim (Domain.to_string domain)))
        c.conditions;
      Cube_ty dims

and infer_agg env c =
  let pos = c.pos in
  let operand =
    match c.args with
    | [ e ] -> e
    | _ ->
        Errors.failf ~pos "%s expects exactly one cube operand" c.fn
  in
  match infer env operand with
  | Scalar_ty -> Errors.failf ~pos "%s operand must be a cube" c.fn
  | Cube_ty dims -> (
      match c.group_by with
      | None -> Cube_ty []
      | Some items ->
          let result_dims =
            List.map
              (fun (item : Ast.dim_item) ->
                let src_domain =
                  match List.assoc_opt item.src dims with
                  | Some d -> d
                  | None ->
                      Errors.failf ~pos ~code:"E004"
                        "group by: no dimension %s in the operand of %s"
                        item.src c.fn
                in
                let result_domain =
                  match item.fn with
                  | None -> src_domain
                  | Some fn_name -> (
                      match Ops.Dim_fn.find fn_name with
                      | None ->
                          Errors.failf ~pos
                            "group by: unknown dimension function %s (known: %s)"
                            fn_name
                            (String.concat "/" (Ops.Dim_fn.names ()))
                      | Some f ->
                          if not (Ops.Dim_fn.applicable f src_domain) then
                            Errors.failf ~pos
                              "group by: %s not applicable to dimension %s of domain %s"
                              fn_name item.src (Domain.to_string src_domain);
                          Ops.Dim_fn.result_domain f)
                in
                (Ast.dim_item_result_name item, result_domain))
              items
          in
          let seen = Hashtbl.create 8 in
          List.iter
            (fun (n, _) ->
              if Hashtbl.mem seen n then
                Errors.failf ~pos ~code:"E003"
                  "group by produces duplicate dimension %s" n;
              Hashtbl.add seen n ())
            result_dims;
          Cube_ty result_dims)

and infer_scalar env c (s : Ops.Scalar_fn.t) =
  let pos = c.pos in
  if c.group_by <> None then
    Errors.failf ~pos "%s does not take a group by clause" c.fn;
  match Ast.split_call_args c with
  | Error msg -> Errors.fail ~pos msg
  | Ok (params, operand) -> (
      let operand, params =
        match operand with
        | Some e -> (e, params)
        | None -> (
            (* All arguments numeric: the last one is the operand. *)
            match List.rev params with
            | last :: rest -> (Ast.Number last, List.rev rest)
            | [] -> Errors.failf ~pos "%s is missing its operand" c.fn)
      in
      let n = List.length params in
      if n < s.Ops.Scalar_fn.min_params || n > s.Ops.Scalar_fn.max_params then
        Errors.failf ~pos ~code:"E006"
          "%s expects %d..%d scalar parameters, got %d" c.fn
          s.Ops.Scalar_fn.min_params s.Ops.Scalar_fn.max_params n;
      match infer env operand with
      | Scalar_ty -> Scalar_ty
      | Cube_ty dims -> Cube_ty dims)

and infer_blackbox env c (b : Ops.Blackbox.t) =
  let pos = c.pos in
  if c.group_by <> None then
    Errors.failf ~pos "%s does not take a group by clause" c.fn;
  match Ast.split_call_args c with
  | Error msg -> Errors.fail ~pos msg
  | Ok (params, operand) -> (
      let n = List.length params in
      if n < b.Ops.Blackbox.min_params || n > b.Ops.Blackbox.max_params then
        Errors.failf ~pos ~code:"E006"
          "%s expects %d..%d scalar parameters, got %d" c.fn
          b.Ops.Blackbox.min_params b.Ops.Blackbox.max_params n;
      match operand with
      | None ->
          Errors.failf ~pos ~code:"E006" "%s is missing its cube operand" c.fn
      | Some e -> (
          match infer env e with
          | Scalar_ty -> Errors.failf ~pos "%s operand must be a cube" c.fn
          | Cube_ty dims ->
              ignore (the_temporal_dim pos c.fn dims);
              Cube_ty dims))

let infer_expr env e = Errors.protect (fun () -> infer env e)

let resolve_domain pos keyword =
  match Domain.of_string keyword with
  | Some d -> d
  | None -> Errors.failf ~pos "unknown domain %s" keyword

let check_decl env (d : Ast.decl) =
  if Env.mem env d.d_name then
    Errors.failf ~pos:d.d_pos ~code:"E009"
      "cube %s is declared or defined twice" d.d_name;
  let seen_dims = Hashtbl.create 8 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem seen_dims n then
        Errors.failf ~pos:d.d_pos ~code:"E003"
          "cube %s declares dimension %s twice" d.d_name n;
      Hashtbl.add seen_dims n ())
    d.d_dims;
  let dims =
    List.map (fun (n, dom) -> (n, resolve_domain d.d_pos dom)) d.d_dims
  in
  let measure_domain =
    match d.d_measure with
    | None -> Domain.Float
    | Some keyword ->
        let dom = resolve_domain d.d_pos keyword in
        if not (Domain.is_numeric dom) then
          Errors.failf ~pos:d.d_pos "measure of %s must be numeric, got %s"
            d.d_name (Domain.to_string dom);
        dom
  in
  let schema = Schema.make ~measure_domain ~name:d.d_name ~dims () in
  Env.add env Registry.Elementary schema

let check_stmt env (s : Ast.stmt) =
  if Env.mem env s.lhs then
    Errors.failf ~pos:s.s_pos ~code:"E009"
      "cube %s already has a definition (derived cubes must have exactly one)"
      s.lhs;
  let ty =
    try infer env s.rhs
    with Errors.Exl_error e when e.Errors.pos = None ->
      raise (Errors.Exl_error { e with Errors.pos = Some s.s_pos })
  in
  Env.add env Registry.Derived (schema_of_ty ~name:s.lhs ty)

(* Accumulating check: every item is visited and every error recorded,
   so one run reports the whole program's problems, ordered by source
   position.  A failed declaration or statement poisons its cube name;
   later statements that reference a poisoned cube are skipped silently
   instead of producing an "undefined cube" cascade. *)
let check program =
  let env = Env.empty () in
  let errs = ref [] in
  let poisoned = Hashtbl.create 8 in
  let record e = errs := e :: !errs in
  List.iter
    (function
      | Ast.Decl d -> (
          match Errors.protect (fun () -> check_decl env d) with
          | Ok () -> ()
          | Error e ->
              Hashtbl.replace poisoned d.Ast.d_name ();
              record e)
      | Ast.Stmt s ->
          if List.exists (Hashtbl.mem poisoned) (Ast.cube_refs s.Ast.rhs) then
            Hashtbl.replace poisoned s.Ast.lhs ()
          else (
            match Errors.protect (fun () -> check_stmt env s) with
            | Ok () -> ()
            | Error e ->
                Hashtbl.replace poisoned s.Ast.lhs ();
                record e))
    program;
  match !errs with
  | [] -> Ok { program; env; statements = Ast.stmts program }
  | errs -> Error (Errors.sort (List.rev errs))

let schemas_of_kind checked kind =
  List.filter_map
    (fun name ->
      match Env.kind checked.env name with
      | Some k when k = kind -> Some (Env.schema_exn checked.env name)
      | _ -> None)
    (Env.names checked.env)

let elementary_schemas checked = schemas_of_kind checked Registry.Elementary
let derived_schemas checked = schemas_of_kind checked Registry.Derived

let warnings checked =
  let referenced = Hashtbl.create 16 in
  List.iter
    (fun (s : Ast.stmt) ->
      List.iter
        (fun name -> Hashtbl.replace referenced name ())
        (Ast.cube_refs s.Ast.rhs))
    checked.statements;
  let out = ref [] in
  List.iter
    (fun name ->
      match Env.kind checked.env name with
      | Some Registry.Elementary when not (Hashtbl.mem referenced name) ->
          out :=
            Printf.sprintf "elementary cube %s is declared but never used" name
            :: !out
      | _ -> ())
    (Env.names checked.env);
  List.rev !out
