type t = { pos : Ast.pos option; msg : string; code : string option }

let make ?pos ?code msg = { pos; msg; code }
let makef ?pos ?code fmt = Format.kasprintf (fun msg -> make ?pos ?code msg) fmt

let to_string e =
  match e.pos with
  | Some p -> Format.asprintf "%a: %s" Ast.pp_pos p e.msg
  | None -> e.msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

let to_string_with_source ~source e =
  match e.pos with
  | None -> to_string e
  | Some p ->
      let lines = String.split_on_char '\n' source in
      if p.Ast.line < 1 || p.Ast.line > List.length lines then to_string e
      else
        let line = List.nth lines (p.Ast.line - 1) in
        let caret = String.make (max 0 (p.Ast.col - 1)) ' ' ^ "^" in
        Printf.sprintf "%s\n  %s\n  %s" (to_string e) line caret

exception Exl_error of t

let fail ?pos ?code msg = raise (Exl_error (make ?pos ?code msg))
let failf ?pos ?code fmt = Format.kasprintf (fun msg -> fail ?pos ?code msg) fmt

let protect f =
  try Ok (f ()) with
  | Exl_error e -> Error e
  | Invalid_argument msg -> Error (make msg)

let compare_pos a b =
  match (a.pos, b.pos) with
  | None, None -> 0
  | None, Some _ -> 1
  | Some _, None -> -1
  | Some p, Some q ->
      let c = compare p.Ast.line q.Ast.line in
      if c <> 0 then c else compare p.Ast.col q.Ast.col

let sort errs = List.stable_sort compare_pos errs

let first = function
  | [] -> make "unknown error"
  | e :: _ -> e

let list_to_string errs = String.concat "\n" (List.map to_string errs)
