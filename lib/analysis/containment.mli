(** Conjunctive-query containment over tgd bodies.

    Decision procedures the optimizer and the lints build on: body
    homomorphisms (with witness substitutions), tgd subsumption and
    equivalence, redundant-body-atom detection (one-atom core folding),
    egd-justified duplicate-atom merging, and provable identities.
    All matching happens after {!Mappings.Term.normalize_shift} plus
    neutral-element simplification, so surface sugar never blocks a
    match. *)

type homomorphism = (string * Mappings.Term.t) list
(** A variable-to-term substitution; the witness object every
    containment-based certificate carries. *)

val hom_to_string : homomorphism -> string
(** [{x ↦ q + 1, m ↦ r1}] — the rendering used in I3xx messages. *)

val apply_hom : homomorphism -> Mappings.Term.t -> Mappings.Term.t

val simplify : Mappings.Term.t -> Mappings.Term.t
(** Remove neutral elements ([m + 0], [m * 1], [m / 1], double
    negation, [shift _ 0], trivial coalesce), bottom-up. *)

val normalize_term : Mappings.Term.t -> Mappings.Term.t
(** {!Mappings.Term.normalize_shift} followed by {!simplify}. *)

val normalize_atom : Mappings.Tgd.atom -> Mappings.Tgd.atom

val match_term :
  homomorphism ->
  Mappings.Term.t ->
  Mappings.Term.t ->
  homomorphism option
(** Extend a substitution so the first (pattern) term maps onto the
    second; pattern variables bind to arbitrary target subterms. *)

val match_atom :
  homomorphism ->
  Mappings.Tgd.atom ->
  Mappings.Tgd.atom ->
  homomorphism option
(** Extend a substitution so the first atom maps onto the second;
    pattern variables bind to arbitrary target subterms, everything
    else is structural. *)

val body_hom :
  ?fixed:string list ->
  from_body:Mappings.Tgd.atom list ->
  into_body:Mappings.Tgd.atom list ->
  unit ->
  homomorphism option
(** A homomorphism mapping every atom of [from_body] onto some atom of
    [into_body]; [fixed] variables must map to themselves. *)

val subsumes :
  general:Mappings.Tgd.t -> specific:Mappings.Tgd.t -> homomorphism option
(** [subsumes ~general ~specific] returns a witness homomorphism from
    [general]'s body and head onto [specific]'s when every fact
    [specific] derives is already derived by [general] — [specific] is
    then redundant.  Tuple-level tgds with equal target only. *)

val equivalent :
  Mappings.Tgd.t -> Mappings.Tgd.t -> (homomorphism * homomorphism) option
(** Mutual subsumption, with both witnesses. *)

val redundant_atom :
  head:Mappings.Tgd.atom ->
  body:Mappings.Tgd.atom list ->
  Mappings.Tgd.atom ->
  (Mappings.Tgd.atom * homomorphism) option
(** [redundant_atom ~head ~body a] finds an atom of [body] that [a]
    folds onto while fixing every variable used outside [a]; dropping
    [a] then keeps the tgd equivalent (one-atom core step).  Returns
    the fold target and the witness. *)

val split_atom :
  Mappings.Tgd.atom -> Mappings.Term.t list * Mappings.Term.t option
(** Dimension terms and measure term (the last argument). *)

val mergeable_atoms :
  body:Mappings.Tgd.atom list ->
  (Mappings.Tgd.atom * Mappings.Tgd.atom * string * string) option
(** Two body atoms over the same relation with syntactically equal
    dimension terms and distinct measure variables: the relation's
    functionality egd forces the measures equal, so the second atom can
    be dropped after renaming.  Returns
    [(kept, dropped, dropped_var, kept_var)]. *)

val fd_determines :
  body:Mappings.Tgd.atom list ->
  head:Mappings.Tgd.atom ->
  string list option
(** Chase the body relations' functional dependencies from the head
    dimensions; [Some chain] (variables in determination order) when
    the head measure is functionally determined — the target's egd is
    then implied by the tgd and can be discharged. *)

val is_identity : Mappings.Tgd.t -> bool
(** A tuple-level tgd that merely copies another relation: a single
    body atom whose arguments are pairwise-distinct plain variables
    (a constant or repeated variable would be a selection), with head
    arguments identical after normalization — the W106 condition. *)
