(** Mapping-level static checks (E2xx / W2xx codes).

    - [E201] unsafe tgd (head variable unbound in the body), reported
      per variable and cross-checked against [Tgd.is_safe];
    - [E202] weak-acyclicity violation (via {!Acyclicity});
    - [E203] functionality egd not implied by the defining tgd,
      decided by chasing functional dependencies over the body atoms;
    - [E204] stratification failure, from [Stratify.check] plus an
      independent cross-validation of [Stratify.levels];
    - [W205] target relation never produced by any tgd. *)

val safety : Mappings.Mapping.t -> Diagnostic.t list
val egd_consistency : Mappings.Mapping.t -> Diagnostic.t list
val stratification : Mappings.Mapping.t -> Diagnostic.t list
val unproduced_targets : Mappings.Mapping.t -> Diagnostic.t list

val run : Mappings.Mapping.t -> Diagnostic.t list
(** All of the above plus {!Acyclicity.diagnose}, sorted. *)
