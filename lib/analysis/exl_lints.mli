(** EXL-level lint passes (W1xx codes).

    These run on a successfully type-checked program and flag legal but
    suspicious constructs:

    - [W101] elementary cube declared but never used;
    - [W102] derived cube that never reaches any emitted target;
    - [W103] aggregation grouping by every dimension of its operand;
    - [W104] black-box operator needing a seasonal period that is
      neither given nor inferable from the operand's frequency;
    - [W105] shift by zero or by a distance exceeding the representable
      calendar range. *)

val unused_elementary : Exl.Typecheck.checked -> Diagnostic.t list
val unreached_derived : Exl.Typecheck.checked -> Diagnostic.t list
val noop_aggregation : Exl.Typecheck.checked -> Diagnostic.t list
val blackbox_period : Exl.Typecheck.checked -> Diagnostic.t list
val shift_range : Exl.Typecheck.checked -> Diagnostic.t list

val run : Exl.Typecheck.checked -> Diagnostic.t list
(** All passes, sorted by source position. *)
