(* Mapping-level static checks (E2xx / W2xx).

   These run on a [Mappings.Mapping.t] — usually the output of
   [Mappings.Generate] — and certify the properties the chase relies
   on: tgd safety (E201), weak acyclicity (E202, via {!Acyclicity}),
   egd consistency (E203), stratification (E204), and production of
   every target relation (W205). *)

module Mapping = Mappings.Mapping
module Tgd = Mappings.Tgd
module Term = Mappings.Term
module Stratify = Mappings.Stratify

(* --- E201: safety (range restriction) ------------------------------ *)

let atom_to_string (a : Tgd.atom) =
  Printf.sprintf "%s(%s)" a.Tgd.rel
    (String.concat ", " (List.map Term.to_string a.Tgd.args))

(* A tgd is safe when every variable the head uses is bound by some
   body atom; otherwise the chase would have to invent bindings.  We
   report each unbound variable, and cross-check the per-variable
   analysis against [Tgd.is_safe] so the two can never drift apart
   silently. *)
let safety_of_tgd (tgd : Tgd.t) =
  let unbound bound vars = List.filter (fun v -> not (List.mem v bound)) vars in
  let findings =
    match tgd with
    | Tgd.Tuple_level { lhs; rhs } ->
        let bound = List.concat_map Tgd.atom_vars lhs in
        List.map
          (fun v ->
            Diagnostic.makef ~code:"E201"
              "unsafe tgd for %s: head variable %s is not bound by any body \
               atom (in %s)"
              rhs.Tgd.rel v (Tgd.to_string tgd))
          (unbound bound (Tgd.atom_vars rhs))
    | Tgd.Aggregation { source; group_by; measure; target; _ } ->
        let bound = Tgd.atom_vars source in
        let key_vars = List.concat_map Term.vars group_by in
        let missing = unbound bound (key_vars @ [ measure ]) in
        List.map
          (fun v ->
            Diagnostic.makef ~code:"E201"
              "unsafe aggregation tgd for %s: variable %s is not bound by \
               the source atom"
              target v)
          missing
    | Tgd.Table_fn _ -> []
    | Tgd.Outer_combine { left; right; target; _ } ->
        let bad_atom (a : Tgd.atom) =
          if List.for_all Term.is_var a.Tgd.args then []
          else
            [
              Diagnostic.makef ~code:"E201"
                "unsafe outer-combine tgd for %s: atom %s uses non-variable \
                 arguments"
                target (atom_to_string a);
            ]
        in
        bad_atom left @ bad_atom right
  in
  (* cross-check: our detailed analysis and the engine's own safety
     predicate must agree *)
  if findings = [] && not (Tgd.is_safe tgd) then
    [
      Diagnostic.makef ~code:"E201" "unsafe tgd for %s: %s"
        (Tgd.target_relation tgd) (Tgd.to_string tgd);
    ]
  else findings

let safety (m : Mapping.t) =
  List.concat_map safety_of_tgd (m.Mapping.st_tgds @ m.Mapping.t_tgds)

(* --- E203: egd consistency ------------------------------------------ *)

(* Every cube relation satisfies the functionality egd
   [dims -> measure] by construction of its instances.  A tgd is
   consistent with its target's egd when the head measure is
   functionally determined by the head dimensions, given that every
   body relation is itself functional.  We chase the functional
   dependencies: starting from the variables recoverable from the head
   dimensions, a body atom whose dimension positions are all
   determined also determines its measure variable (by that
   relation's own egd).  If the head measure's variables end up
   determined, two tuples agreeing on the head dims must agree on the
   measure. *)

(* Variables recoverable from a dimension term: injective wrappers
   ([Shifted], [Neg]) preserve information; [Dim_fn]/[Scalar_fn]/
   [Binapp]/[Coalesce] lose it, so their variables are not
   recoverable. *)
let rec recoverable_vars (t : Term.t) =
  match t with
  | Term.Var v -> [ v ]
  | Term.Const _ -> []
  | Term.Shifted (t, _) | Term.Neg t -> recoverable_vars t
  | Term.Dim_fn _ | Term.Scalar_fn _ | Term.Binapp _ | Term.Coalesce _ -> []

let egd_consistency (m : Mapping.t) =
  let has_egd rel =
    List.exists (fun (e : Mappings.Egd.t) -> e.Mappings.Egd.relation = rel) m.Mapping.egds
  in
  let check_tuple_level (lhs : Tgd.atom list) (rhs : Tgd.atom) tgd =
    let split (a : Tgd.atom) =
      match List.rev a.Tgd.args with
      | meas :: rev_dims -> (List.rev rev_dims, Some meas)
      | [] -> ([], None)
    in
    let head_dims, head_meas = split rhs in
    let determined = Hashtbl.create 8 in
    List.iter
      (fun t ->
        List.iter (fun v -> Hashtbl.replace determined v ()) (recoverable_vars t))
      head_dims;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (a : Tgd.atom) ->
          let dims, meas = split a in
          let dims_known =
            List.for_all
              (fun t ->
                List.for_all (Hashtbl.mem determined) (Term.vars t))
              dims
          in
          if dims_known then
            match meas with
            | Some mt ->
                List.iter
                  (fun v ->
                    if not (Hashtbl.mem determined v) then begin
                      Hashtbl.replace determined v ();
                      changed := true
                    end)
                  (Term.vars mt)
            | None -> ())
        lhs
    done;
    let meas_vars =
      match head_meas with Some t -> Term.vars t | None -> []
    in
    let undetermined =
      List.filter (fun v -> not (Hashtbl.mem determined v)) meas_vars
    in
    if undetermined = [] then []
    else
      [
        Diagnostic.makef ~code:"E203"
          "egd %s(dims) -> measure is not implied by its defining tgd: \
           measure variable%s %s not determined by the head dimensions (in \
           %s)"
          rhs.Tgd.rel
          (if List.length undetermined > 1 then "s" else "")
          (String.concat ", " undetermined)
          (Tgd.to_string tgd);
      ]
  in
  List.concat_map
    (fun tgd ->
      match tgd with
      | Tgd.Tuple_level { lhs; rhs } when has_egd rhs.Tgd.rel ->
          check_tuple_level lhs rhs tgd
      | Tgd.Tuple_level _ -> []
      (* Aggregations key their output by the group-by terms, table
         functions and outer combines preserve the dimension grid —
         all functional by construction. *)
      | Tgd.Aggregation _ | Tgd.Table_fn _ | Tgd.Outer_combine _ -> [])
    (m.Mapping.st_tgds @ m.Mapping.t_tgds)

(* --- E204: stratification ------------------------------------------- *)

let stratification (m : Mapping.t) =
  match Stratify.check m with
  | Error msg -> [ Diagnostic.makef ~code:"E204" "stratification failure: %s" msg ]
  | Ok () ->
      (* cross-validate the level structure: every tgd's sources must
         sit strictly below its target *)
      let levels = Stratify.levels m in
      let level_of name = Option.value ~default:0 (List.assoc_opt name levels) in
      List.concat_map
        (fun tgd ->
          let target = Tgd.target_relation tgd in
          List.filter_map
            (fun src ->
              if src <> target && level_of src >= level_of target then
                Some
                  (Diagnostic.makef ~code:"E204"
                     "stratification failure: source %s (level %d) does not \
                      precede target %s (level %d)"
                     src (level_of src) target (level_of target))
              else None)
            (Tgd.source_relations tgd))
        m.Mapping.t_tgds

(* --- W205: unproduced target relation ------------------------------- *)

let unproduced_targets (m : Mapping.t) =
  let produced = Hashtbl.create 16 in
  (* the chase copies every source relation into the target instance
     before applying tgds, so source relations count as produced *)
  List.iter
    (fun s -> Hashtbl.replace produced s.Matrix.Schema.name ())
    m.Mapping.source;
  List.iter
    (fun tgd -> Hashtbl.replace produced (Tgd.target_relation tgd) ())
    (m.Mapping.st_tgds @ m.Mapping.t_tgds);
  List.filter_map
    (fun s ->
      let name = s.Matrix.Schema.name in
      if Hashtbl.mem produced name then None
      else
        Some
          (Diagnostic.makef ~code:"W205"
             "target relation %s is never produced by any tgd" name))
    m.Mapping.target

(* --- W106: provable identity ----------------------------------------- *)

(* A user-written statement whose tgd merely copies another user cube
   after normalization ([B := A;], or [B := A + 0;] once neutral
   elements are simplified).  Temporaries are skipped on both sides:
   a temp target is not a statement, and an identity reading a temp is
   an artifact of normalization, not of the program. *)
let identities (m : Mapping.t) =
  List.filter_map
    (fun tgd ->
      let target = Tgd.target_relation tgd in
      if Exl.Normalize.is_temp target then None
      else if
        Containment.is_identity tgd
        && not
             (List.exists Exl.Normalize.is_temp (Tgd.source_relations tgd))
      then
        Some
          (Diagnostic.makef ~code:"W106"
             "%s is a provable identity after normalization: it merely \
              copies %s"
             target
             (match Tgd.source_relations tgd with
             | r :: _ -> r
             | [] -> "its operand"))
      else None)
    m.Mapping.t_tgds

let run (m : Mapping.t) =
  Diagnostic.sort
    (safety m @ Acyclicity.diagnose m @ egd_consistency m @ stratification m
   @ unproduced_targets m @ identities m)
