(** Accumulating diagnostics with stable codes.

    The diagnostics core of the [exl-analysis] subsystem: every finding
    — front-end type error, EXL lint, mapping-level static check —
    becomes a {!t} carrying a stable code ([E0xx] errors, [W1xx] EXL
    warnings, [E2xx]/[W2xx] mapping-layer findings), a severity, an
    optional source span, and a message.  Two render formats: human
    text (with source line and caret) and machine-readable JSON for CI.
    The catalogue of codes lives here and is mirrored in
    [docs/DIAGNOSTICS.md]. *)

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  pos : Exl.Ast.pos option;
  message : string;
}

val make : code:string -> ?pos:Exl.Ast.pos -> string -> t
(** Severity is derived from the code prefix: [W...] is a warning,
    [I...] an informational note, anything else an error. *)

val makef :
  code:string -> ?pos:Exl.Ast.pos -> ('a, Format.formatter, unit, t) format4 -> 'a

val of_error : ?default_code:string -> Exl.Errors.t -> t
(** Lifts a front-end error; its own code wins, else [default_code]
    (default ["E002"]). *)

val is_error : t -> bool
val is_warning : t -> bool
val is_info : t -> bool
val severity_to_string : severity -> string

val compare : t -> t -> int
(** By source position (missing positions last), then code. *)

val sort : t list -> t list

val catalogue : (string * string) list
(** Every known code with its one-line description. *)

val description : string -> string option
val known_codes : string list

val to_string : t -> string
(** [error[E007]: line 3, column 8: reference to undefined cube X] *)

val to_string_with_source : source:string -> t -> string
(** {!to_string} plus the offending source line and a caret. *)

val to_json : t -> string
val list_to_json : t list -> string
(** [{"diagnostics":[...],"summary":{"errors":n,"warnings":m,"infos":k}}] *)

val pp : Format.formatter -> t -> unit
