(* Conjunctive-query containment over tgd bodies.

   The optimizer's decision procedure: a homomorphism from the body
   (and head) of one tuple-level tgd into another witnesses that the
   first subsumes the second (Calì & Torlone, Containment of Schema
   Mappings for Data Exchange).  The same machinery decides when a
   body atom is redundant (the classical core/minimization step of
   Chandra & Merlin, restricted to a one-atom folding) and when two
   body atoms over the same functional relation can be merged.

   Terms are first pushed through {!Mappings.Term.normalize_shift} and
   the identity-element simplifier below, so shift sugar and neutral
   arithmetic ([m + 0], [m * 1], ...) never block a syntactic match. *)

module Tgd = Mappings.Tgd
module Term = Mappings.Term
module Egd = Mappings.Egd
module Mapping = Mappings.Mapping

type homomorphism = (string * Term.t) list
(* Variable-to-term substitution, found by the search below; the empty
   list is the identity. *)

let hom_to_string (h : homomorphism) =
  "{"
  ^ String.concat ", "
      (List.map (fun (v, t) -> v ^ " ↦ " ^ Term.to_string t) h)
  ^ "}"

let apply_hom (h : homomorphism) t = Term.substitute (fun v -> List.assoc_opt v h) t

(* --- term normalization --------------------------------------------- *)

let is_const_float f = function
  | Term.Const c -> (
      match Matrix.Value.to_float c with Some x -> x = f | None -> false)
  | _ -> false

(* Remove neutral elements and double negations; bottom-up, so nested
   identities collapse ([ (m + 0) * 1 ] → [m]). *)
let rec simplify (t : Term.t) : Term.t =
  match t with
  | Term.Var _ | Term.Const _ -> t
  | Term.Shifted (t, 0) -> simplify t
  | Term.Shifted (t, k) -> Term.Shifted (simplify t, k)
  | Term.Dim_fn (f, t) -> Term.Dim_fn (f, simplify t)
  | Term.Scalar_fn (f, ps, t) -> Term.Scalar_fn (f, ps, simplify t)
  | Term.Neg t -> (
      match simplify t with Term.Neg u -> u | u -> Term.Neg u)
  | Term.Coalesce (a, b) ->
      let a = simplify a and b = simplify b in
      if Term.equal a b then a else Term.Coalesce (a, b)
  | Term.Binapp (op, a, b) -> (
      let a = simplify a and b = simplify b in
      match op with
      | Ops.Binop.Add when is_const_float 0. a -> b
      | (Ops.Binop.Add | Ops.Binop.Sub) when is_const_float 0. b -> a
      | Ops.Binop.Mul when is_const_float 1. a -> b
      | (Ops.Binop.Mul | Ops.Binop.Div | Ops.Binop.Pow)
        when is_const_float 1. b ->
          a
      | _ -> Term.Binapp (op, a, b))

let normalize_term t = simplify (Term.normalize_shift t)

let normalize_atom (a : Tgd.atom) =
  { a with Tgd.args = List.map normalize_term a.Tgd.args }

(* --- homomorphism search -------------------------------------------- *)

(* Extend [sub] so that [pattern] under the substitution becomes
   exactly [target].  Pattern variables bind to arbitrary target
   subterms; all other constructors must match structurally. *)
let rec match_term (sub : homomorphism) (pattern : Term.t) (target : Term.t) :
    homomorphism option =
  match pattern with
  | Term.Var v -> (
      match List.assoc_opt v sub with
      | Some bound -> if Term.equal bound target then Some sub else None
      | None -> Some ((v, target) :: sub))
  | Term.Const a -> (
      match target with
      | Term.Const b when Matrix.Value.equal a b -> Some sub
      | _ -> None)
  | Term.Shifted (a, k) -> (
      match target with
      | Term.Shifted (b, l) when k = l -> match_term sub a b
      | _ -> None)
  | Term.Dim_fn (f, a) -> (
      match target with
      | Term.Dim_fn (g, b) when f = g -> match_term sub a b
      | _ -> None)
  | Term.Scalar_fn (f, ps, a) -> (
      match target with
      | Term.Scalar_fn (g, qs, b) when f = g && ps = qs -> match_term sub a b
      | _ -> None)
  | Term.Binapp (op, a1, a2) -> (
      match target with
      | Term.Binapp (op', b1, b2) when op = op' ->
          Option.bind (match_term sub a1 b1) (fun sub -> match_term sub a2 b2)
      | _ -> None)
  | Term.Neg a -> (
      match target with Term.Neg b -> match_term sub a b | _ -> None)
  | Term.Coalesce (a1, a2) -> (
      match target with
      | Term.Coalesce (b1, b2) ->
          Option.bind (match_term sub a1 b1) (fun sub -> match_term sub a2 b2)
      | _ -> None)

let match_atom sub (pattern : Tgd.atom) (target : Tgd.atom) =
  if
    pattern.Tgd.rel <> target.Tgd.rel
    || List.length pattern.Tgd.args <> List.length target.Tgd.args
  then None
  else
    List.fold_left2
      (fun acc p t -> Option.bind acc (fun sub -> match_term sub p t))
      (Some sub) pattern.Tgd.args target.Tgd.args

(* Backtracking search: map every atom of [from_body] onto some atom of
   [into_body] under one consistent substitution.  [fixed] variables
   are pre-bound to themselves (endomorphism constraints).  Bodies are
   tiny (statement tgds have a handful of atoms), so the exponential
   worst case is irrelevant. *)
let body_hom ?(fixed = []) ~from_body ~into_body () : homomorphism option =
  let from_body = List.map normalize_atom from_body in
  let into_body = List.map normalize_atom into_body in
  let seed = List.map (fun v -> (v, Term.Var v)) fixed in
  let rec search sub = function
    | [] -> Some sub
    | atom :: rest ->
        List.find_map
          (fun candidate ->
            Option.bind (match_atom sub atom candidate) (fun sub ->
                search sub rest))
          into_body
  in
  search seed from_body

(* --- tgd subsumption ------------------------------------------------- *)

(* [subsumes ~general ~specific] holds when a homomorphism maps
   [general]'s body and head onto [specific]'s: then every fact
   [specific] derives, [general] also derives, so [specific] is
   redundant next to [general].  Only meaningful for tuple-level tgds
   with the same target relation. *)
let subsumes ~(general : Tgd.t) ~(specific : Tgd.t) : homomorphism option =
  match (general, specific) with
  | ( Tgd.Tuple_level { lhs = g_lhs; rhs = g_rhs },
      Tgd.Tuple_level { lhs = s_lhs; rhs = s_rhs } )
    when g_rhs.Tgd.rel = s_rhs.Tgd.rel ->
      let from_body = List.map normalize_atom g_lhs in
      let into_body = List.map normalize_atom s_lhs in
      let rec search sub = function
        | [] -> Some sub
        | atom :: rest ->
            List.find_map
              (fun candidate ->
                Option.bind (match_atom sub atom candidate) (fun sub ->
                    search sub rest))
              into_body
      in
      Option.bind
        (match_atom [] (normalize_atom g_rhs) (normalize_atom s_rhs))
        (fun sub -> search sub from_body)
  | _ -> None

let equivalent a b =
  match (subsumes ~general:a ~specific:b, subsumes ~general:b ~specific:a) with
  | Some h1, Some h2 -> Some (h1, h2)
  | _ -> None

(* --- redundant body atoms -------------------------------------------- *)

(* A body atom [a] is redundant when it folds onto another body atom
   [b]: variables occurring only in [a] (not in the head, not in the
   rest of the body) may bind freely, every other variable is fixed.
   This is the one-atom instance of the core computation; the fold is
   an endomorphism of the body fixing the head, so dropping [a] keeps
   the tgd equivalent. *)
let redundant_atom ~(head : Tgd.atom) ~(body : Tgd.atom list) (a : Tgd.atom) :
    (Tgd.atom * homomorphism) option =
  let rest = List.filter (fun b -> not (b == a)) body in
  if List.length rest = List.length body then None
  else
    let outside_vars =
      List.sort_uniq String.compare
        (Tgd.atom_vars head @ List.concat_map Tgd.atom_vars rest)
    in
    let seed = List.map (fun v -> (v, Term.Var v)) outside_vars in
    List.find_map
      (fun b ->
        Option.map
          (fun sub -> (b, sub))
          (match_atom seed (normalize_atom a) (normalize_atom b)))
      rest

(* --- functional atom merge ------------------------------------------- *)

let split_atom (a : Tgd.atom) =
  match List.rev a.Tgd.args with
  | meas :: rev_dims -> (List.rev rev_dims, Some meas)
  | [] -> ([], None)

(* Two body atoms over the same relation whose dimension terms coincide
   syntactically must agree on the measure by that relation's
   functionality egd; when both measures are distinct variables the
   second atom can be dropped after renaming its measure variable to
   the first's.  Returns (kept atom, dropped atom, dropped var, kept
   var). *)
let mergeable_atoms ~(body : Tgd.atom list) =
  let rec pick = function
    | [] -> None
    | a :: rest ->
        let da, ma = split_atom (normalize_atom a) in
        let candidate =
          List.find_map
            (fun b ->
              if a.Tgd.rel <> b.Tgd.rel then None
              else
                let db, mb = split_atom (normalize_atom b) in
                match (ma, mb) with
                | Some (Term.Var va), Some (Term.Var vb)
                  when va <> vb
                       && List.length da = List.length db
                       && List.for_all2 Term.equal da db ->
                    Some (a, b, vb, va)
                | _ -> None)
            rest
        in
        (match candidate with Some _ -> candidate | None -> pick rest)
  in
  pick body

(* --- functional determination ---------------------------------------- *)

(* Variables recoverable from a dimension term: injective wrappers
   preserve information, everything else loses it.  Mirrors the E203
   analysis in {!Map_lints}. *)
let rec recoverable_vars (t : Term.t) =
  match t with
  | Term.Var v -> [ v ]
  | Term.Const _ -> []
  | Term.Shifted (t, _) | Term.Neg t -> recoverable_vars t
  | Term.Dim_fn _ | Term.Scalar_fn _ | Term.Binapp _ | Term.Coalesce _ -> []

(* Chase the functional dependencies [dims → measure] of the body
   relations: starting from the variables recoverable from the head
   dimensions, an atom whose dimension variables are all determined
   also determines its measure.  When the head measure ends up
   determined, the target's functionality egd is implied by the tgd —
   the laconic/discharge condition.  Returns the determination chain
   (variables in the order they became known) as the certificate
   payload. *)
let fd_determines ~(body : Tgd.atom list) ~(head : Tgd.atom) :
    string list option =
  let head_dims, head_meas = split_atom head in
  let determined = Hashtbl.create 8 in
  let chain = ref [] in
  let know v =
    if not (Hashtbl.mem determined v) then begin
      Hashtbl.replace determined v ();
      chain := v :: !chain
    end
  in
  List.iter (fun t -> List.iter know (recoverable_vars t)) head_dims;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (a : Tgd.atom) ->
        let dims, meas = split_atom a in
        let dims_known =
          List.for_all
            (fun t -> List.for_all (Hashtbl.mem determined) (Term.vars t))
            dims
        in
        if dims_known then
          match meas with
          | Some mt ->
              List.iter
                (fun v ->
                  if not (Hashtbl.mem determined v) then begin
                    know v;
                    changed := true
                  end)
                (Term.vars mt)
          | None -> ())
      body
  done;
  let meas_vars = match head_meas with Some t -> Term.vars t | None -> [] in
  if List.for_all (Hashtbl.mem determined) meas_vars then
    Some (List.rev !chain)
  else None

(* --- identities ------------------------------------------------------ *)

(* A tuple-level tgd that merely copies a relation: single body atom,
   head arguments syntactically identical after normalization.  The
   basis of lint W106 and of the optimizer's copy collapse. *)
let is_identity (tgd : Tgd.t) =
  match tgd with
  | Tgd.Tuple_level { lhs = [ a ]; rhs } ->
      rhs.Tgd.rel <> a.Tgd.rel
      && List.length a.Tgd.args = List.length rhs.Tgd.args
      (* every argument must be a distinct plain variable: a constant
         or a repeated variable in the body atom is a selection, which
         copies only a slice *)
      && (let vars =
            List.filter_map
              (fun t -> match t with Term.Var v -> Some v | _ -> None)
              a.Tgd.args
          in
          List.length vars = List.length a.Tgd.args
          && List.length (List.sort_uniq String.compare vars)
             = List.length vars)
      && List.for_all2 Term.equal
           (List.map normalize_term a.Tgd.args)
           (List.map normalize_term rhs.Tgd.args)
  | _ -> false
