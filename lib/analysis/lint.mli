(** Lint driver: one call from source text to a full diagnostic
    report, used by [exlc lint] and the test suite. *)

type report = {
  diagnostics : Diagnostic.t list;
  checked : Exl.Typecheck.checked option;
      (** present when the program parsed and type-checked *)
  mapping : Mappings.Mapping.t option;
      (** present when mapping generation also succeeded *)
}

val source_diagnostics : string -> report
(** Parse (E001), typecheck accumulating every error (E00x), then —
    only on success — EXL lints (W10x), mapping generation, and
    mapping-level checks (E20x/W205). *)

val filter : suppress:string list -> report -> report
(** Drops suppressed warning codes. Errors are never suppressed. *)

val exit_code : deny_warnings:bool -> report -> int
(** 1 if any error, or any warning under [deny_warnings]; else 0. *)

val render_text : ?source:string -> report -> string
(** One line per diagnostic (with source caret when [source] is
    given), then a summary line. *)

val render_json : report -> string
