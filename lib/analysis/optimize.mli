(** exl-opt: the containment-based mapping optimizer.

    A static pass between mapping generation and the chase.  Five
    rewrites — subsumption pruning, body minimization (core folding and
    egd-justified atom merging), cost-gated fusion of temporaries,
    outer-combine specialization, and egd discharge — each emitting a
    machine-checkable {!certificate}.  {!verify} re-validates every
    certificate independently and re-chases the original and optimized
    mappings on a synthetic critical instance. *)

(** The evidence attached to each transformation. *)
type certificate =
  | Subsumption_witness of {
      by : Mappings.Tgd.t;
      hom : Containment.homomorphism;
    }  (** I301: the homomorphism mapping the subsumer onto the pruned tgd. *)
  | Fold_witness of {
      dropped : Mappings.Tgd.atom;
      onto : Mappings.Tgd.atom;
      hom : Containment.homomorphism;
    }  (** I302: the core-folding witness for a dropped body atom. *)
  | Egd_merge of { relation : string; dropped_var : string; kept_var : string }
      (** I303: the relation whose functionality egd forces the merged
          measures equal. *)
  | Fusion_equivalence of { producer : Mappings.Tgd.t; facts_compared : int }
      (** I304: the inlined producer; equivalence was established by
          chasing both mappings on the critical instance. *)
  | Grid_equality of { relation : string }
      (** I305: both outer-combine sides read this relation on the same
          dimension terms, so the coalescing default is dead. *)
  | Determination of { chain : string list }
      (** I306: variables, in FD-chase order, showing the head measure
          is determined by the head dimensions ([[]] for tgd shapes
          functional by construction). *)

type action = {
  code : string;  (** The I3xx diagnostic code. *)
  target : string;  (** The relation the transformation concerns. *)
  detail : string;  (** Human-readable one-liner. *)
  before : Mappings.Tgd.t option;
  after : Mappings.Tgd.t option;
  certificate : certificate;
}

type report = {
  original : Mappings.Mapping.t;
  optimized : Mappings.Mapping.t;
  actions : action list;  (** In application order. *)
  est_before : int;  (** {!estimate} of the original mapping. *)
  est_after : int;
  fused : bool;  (** Whether the fusion pass was enabled. *)
}

val run :
  ?fuse:bool -> ?cards:(string * int) list -> Mappings.Mapping.t -> report
(** Optimize a mapping.  [fuse] (default [true]) enables the
    cost-gated fusion pass; [cards] overrides the estimated cardinality
    of named source relations (default 64 each). *)

val verify : report -> (unit, string) result
(** Independently re-check every action's certificate (witnesses are
    re-applied, merges and fusions replayed, determination chains
    re-chased) and re-chase [original] vs [optimized] on the critical
    instance.  [Error] pinpoints the first failing certificate. *)

val estimate : ?cards:(string * int) list -> Mappings.Mapping.t -> int
(** Estimated chase cost (matches examined plus tuples generated) under
    the optimizer's cost model: default cardinality 64 per source
    relation, joins on shared variables probe an index. *)

val critical_instance : Mappings.Mapping.t -> Exchange.Instance.t
(** The synthetic source instance equivalence checks chase over: the
    cartesian product of small per-domain dimension sets (four
    consecutive periods, dates straddling a quarter boundary, two
    values per categorical domain) with pairwise-distinct measures. *)

val equivalent_on_critical :
  Mappings.Mapping.t -> Mappings.Mapping.t -> (int, string) result
(** Chase both mappings over the first one's critical instance and
    compare the second mapping's target relations fact-by-fact (1e-9
    relative float tolerance).  [Ok n] with [n] facts compared, or the
    first difference. *)

val diagnostics : report -> Diagnostic.t list
(** The actions as I3xx informational diagnostics. *)

val report_to_json : report -> string
(** Machine-readable report: tgd/egd counts before and after, cost
    estimates, and every action with its serialized certificate. *)
