(* exl-opt: the containment-based mapping optimizer.

   A static pass between mapping generation and the chase.  Five
   rewrites, every one carrying a machine-checkable certificate in the
   style of the weak-acyclicity rank certificate:

   - I301  prune a tgd subsumed by another (witness homomorphism);
   - I302  drop a redundant body atom (core folding witness);
   - I303  merge duplicate functional body atoms (egd justification);
   - I304  fuse a temporary into its consumer(s), gated by a cost
           model and checked by chasing both mappings on a critical
           instance;
   - I305  specialize an outer combine whose sides share one relation
           (equal grids, so the default is dead) to a tuple-level tgd;
   - I306  discharge a functionality egd implied by its defining tgd
           (determination chain).

   [verify] re-validates every certificate independently of the code
   that produced it, and re-chases original vs. optimized on the
   critical instance. *)

module Tgd = Mappings.Tgd
module Term = Mappings.Term
module Egd = Mappings.Egd
module Mapping = Mappings.Mapping
module Fuse = Mappings.Fuse
open Matrix

(* --- cost model ------------------------------------------------------ *)

(* Estimated matches_examined: the first body atom is scanned, each
   further atom costs its full cardinality for a cross join but only a
   small constant when it shares a variable with the atoms before it
   (the chase probes a persistent index).  Derived cardinalities are
   propagated bottom-up in stratification order. *)

let default_card = 64
let kappa = 2

let card env rel = Option.value ~default:default_card (Hashtbl.find_opt env rel)

let est_tuple_body env (lhs : Tgd.atom list) =
  match lhs with
  | [] -> 1
  | first :: rest ->
      let bound = ref (Tgd.atom_vars first) in
      List.fold_left
        (fun acc (a : Tgd.atom) ->
          let vars = Tgd.atom_vars a in
          let shared = List.exists (fun v -> List.mem v !bound) vars in
          bound := vars @ !bound;
          acc * if shared then kappa else card env a.Tgd.rel)
        (card env first.Tgd.rel)
        rest

let est_tgd env = function
  | Tgd.Tuple_level { lhs; _ } -> est_tuple_body env lhs
  | Tgd.Aggregation { source; _ } -> card env source.Tgd.rel
  | Tgd.Table_fn { source; _ } -> card env source
  | Tgd.Outer_combine { left; right; _ } ->
      card env left.Tgd.rel + card env right.Tgd.rel

let out_card env = function
  | Tgd.Tuple_level { lhs = []; _ } -> 1
  | Tgd.Tuple_level { lhs = first :: _; _ } -> card env first.Tgd.rel
  | Tgd.Aggregation { source; _ } -> max 1 (card env source.Tgd.rel / 4)
  | Tgd.Table_fn { source; _ } -> card env source
  | Tgd.Outer_combine { left; right; _ } ->
      max (card env left.Tgd.rel) (card env right.Tgd.rel)

let cost_env ?(cards = []) (m : Mapping.t) =
  let env = Hashtbl.create 16 in
  List.iter (fun (r, c) -> Hashtbl.replace env r c) cards;
  List.iter
    (fun tgd ->
      let tgt = Tgd.target_relation tgd in
      if not (Hashtbl.mem env tgt) then
        Hashtbl.replace env tgt (out_card env tgd))
    m.Mapping.t_tgds;
  env

let estimate ?cards (m : Mapping.t) =
  let env = cost_env ?cards m in
  List.fold_left
    (fun acc tgd -> acc + est_tgd env tgd + out_card env tgd)
    0 m.Mapping.t_tgds

(* --- the critical instance ------------------------------------------- *)

(* A small synthetic source instance exercising every dimension domain:
   four consecutive periods (so shift joins up to distance three hit
   both matches and boundaries), four days straddling a quarter
   boundary (so calendar roll-ups collapse unevenly), two categorical
   values per string/int dimension, and pairwise-distinct measures (so
   grouping or join mistakes change some output).  Chasing original
   and optimized mappings over it and diffing the solutions is the
   equivalence evidence fusion certificates carry. *)

let dim_values (d : Domain.t) =
  match d with
  | Domain.String -> [ Value.String "a"; Value.String "b" ]
  | Domain.Int -> [ Value.Int 1; Value.Int 2 ]
  | Domain.Float -> [ Value.Float 1.5; Value.Float 2.5 ]
  | Domain.Bool -> [ Value.Bool true; Value.Bool false ]
  | Domain.Date ->
      (* twelve dates a quarter apart, covering the same twelve
         quarters as the Period domain so calendar roll-ups of date
         data produce full-length quarterly series *)
      let base = Calendar.Date.make ~year:2020 ~month:1 ~day:15 in
      List.init 12 (fun i -> Value.Date (Calendar.Date.add_days base (91 * i)))
  | Domain.Period f ->
      (* consecutive periods: enough for shift joins at several
         distances and — when the cycle is short enough — for blackbox
         seasonal decompositions, which need two full cycles.  Capped
         at 30 values: weekly/daily decompositions stay unchaseable on
         the critical instance, which conservatively disables fusion
         there instead of blowing up the instance. *)
      let freq = Option.value ~default:Calendar.Quarter f in
      let count =
        match Calendar.periods_per_year freq with
        | Some ppy -> max 12 (min 30 ((2 * ppy) + 2))
        | None -> 12
      in
      let base =
        Calendar.Period.of_date freq
          (Calendar.Date.make ~year:2020 ~month:1 ~day:1)
      in
      List.init count (fun i -> Value.Period (Calendar.Period.shift base i))
  | Domain.Any -> [ Value.Int 0 ]

(* Constants mentioned by the mapping's dependencies.  The synthetic
   dimension values ("a", "b", 1, 2, ...) never collide with program
   constants, so without these a selection like
   [DEPOSITS(m, s, "overnight", y)] would match nothing on the critical
   instance and any rewrite discarding the selection would pass the
   equivalence check vacuously. *)
let rec term_consts (t : Term.t) =
  match t with
  | Term.Const v -> [ v ]
  | Term.Var _ -> []
  | Term.Shifted (a, _) | Term.Dim_fn (_, a) | Term.Scalar_fn (_, _, a)
  | Term.Neg a ->
      term_consts a
  | Term.Binapp (_, a, b) | Term.Coalesce (a, b) ->
      term_consts a @ term_consts b

let mapping_consts (m : Mapping.t) =
  let atom_consts (a : Tgd.atom) = List.concat_map term_consts a.Tgd.args in
  let tgd_consts = function
    | Tgd.Tuple_level { lhs; rhs } -> List.concat_map atom_consts (rhs :: lhs)
    | Tgd.Aggregation { source; group_by; _ } ->
        atom_consts source @ List.concat_map term_consts group_by
    | Tgd.Table_fn _ -> []
    | Tgd.Outer_combine { left; right; _ } ->
        atom_consts left @ atom_consts right
  in
  List.sort_uniq Value.compare
    (List.concat_map tgd_consts (m.Mapping.st_tgds @ m.Mapping.t_tgds))

let critical_instance (m : Mapping.t) =
  let inst = Exchange.Instance.create () in
  let consts = mapping_consts m in
  let counter = ref 0 in
  List.iter
    (fun (s : Schema.t) ->
      Exchange.Instance.add_relation inst s;
      let dims = Array.to_list s.Schema.dims in
      let rec keys = function
        | [] -> [ [] ]
        | d :: rest ->
            let dom = d.Schema.dim_domain in
            let extra =
              List.filter
                (fun v ->
                  (not (Value.is_null v))
                  && Domain.member v dom
                  && not (List.exists (Value.equal v) (dim_values dom)))
                consts
            in
            let vs = dim_values dom @ extra in
            List.concat_map
              (fun v -> List.map (fun k -> v :: k) (keys rest))
              vs
      in
      List.iter
        (fun key ->
          incr counter;
          let measure = Value.Float (2.0 +. (1.37 *. float_of_int !counter)) in
          ignore
            (Exchange.Instance.insert inst s.Schema.name
               (Array.of_list (key @ [ measure ]))))
        (keys dims))
    m.Mapping.source;
  inst

let value_close a b =
  Value.equal a b
  ||
  match (Value.to_float a, Value.to_float b) with
  | Some x, Some y ->
      Float.abs (x -. y) <= 1e-9 *. (1. +. Float.max (Float.abs x) (Float.abs y))
  | _ -> false

let fact_equal f1 f2 =
  Array.length f1 = Array.length f2
  && Array.for_all2 value_close f1 f2

let fact_to_string f =
  "("
  ^ String.concat ", " (Array.to_list (Array.map Value.to_string f))
  ^ ")"

(* Chase both mappings over the critical instance of [m1] and diff the
   solutions on the optimized mapping's target relations (the original
   may additionally hold temporaries — exactly the non-core facts the
   optimizer removes).  [Ok facts_compared] or the first difference. *)
let equivalent_on_critical (m1 : Mapping.t) (m2 : Mapping.t) :
    (int, string) result =
  let inst = critical_instance m1 in
  match (Exchange.Chase.run m1 inst, Exchange.Chase.run m2 inst) with
  | Error e, _ -> Error ("original mapping failed on critical instance: " ^ e)
  | _, Error e -> Error ("optimized mapping failed on critical instance: " ^ e)
  | Ok (j1, _), Ok (j2, _) -> (
      let relations =
        List.map (fun (s : Schema.t) -> s.Schema.name) m2.Mapping.target
      in
      let compared = ref 0 in
      let mismatch =
        List.find_map
          (fun rel ->
            let f1 = Exchange.Instance.facts j1 rel in
            let f2 = Exchange.Instance.facts j2 rel in
            compared := !compared + List.length f1;
            if List.length f1 <> List.length f2 then
              Some
                (Printf.sprintf "%s: %d facts before vs %d after" rel
                   (List.length f1) (List.length f2))
            else
              List.find_map
                (fun (a, b) ->
                  if fact_equal a b then None
                  else
                    Some
                      (Printf.sprintf "%s: %s vs %s" rel (fact_to_string a)
                         (fact_to_string b)))
                (List.combine f1 f2))
          relations
      in
      match mismatch with
      | Some msg -> Error ("solutions differ on critical instance: " ^ msg)
      | None -> Ok !compared)

(* --- certificates and actions ---------------------------------------- *)

type certificate =
  | Subsumption_witness of { by : Tgd.t; hom : Containment.homomorphism }
  | Fold_witness of {
      dropped : Tgd.atom;
      onto : Tgd.atom;
      hom : Containment.homomorphism;
    }
  | Egd_merge of { relation : string; dropped_var : string; kept_var : string }
  | Fusion_equivalence of { producer : Tgd.t; facts_compared : int }
  | Grid_equality of { relation : string }
  | Determination of { chain : string list }

type action = {
  code : string;
  target : string;
  detail : string;
  before : Tgd.t option;
  after : Tgd.t option;
  certificate : certificate;
}

type report = {
  original : Mapping.t;
  optimized : Mapping.t;
  actions : action list;
  est_before : int;
  est_after : int;
  fused : bool;
}

(* --- pass 1: subsumption pruning (I301) ------------------------------- *)

let index_of tgds tgd =
  let rec go i = function
    | [] -> -1
    | t :: rest -> if t == tgd then i else go (i + 1) rest
  in
  1 + go 0 tgds

let prune_subsumed push (m : Mapping.t) =
  let rec loop (m : Mapping.t) =
    let victim =
      List.find_map
        (fun specific ->
          List.find_map
            (fun general ->
              if general == specific then None
              else
                Option.map
                  (fun hom -> (general, specific, hom))
                  (Containment.subsumes ~general ~specific))
            m.Mapping.t_tgds)
        m.Mapping.t_tgds
    in
    match victim with
    | None -> m
    | Some (general, specific, hom) ->
        push
          {
            code = "I301";
            target = Tgd.target_relation specific;
            detail =
              Printf.sprintf "pruned tgd #%d: subsumed by #%d, witness h = %s"
                (index_of m.Mapping.t_tgds specific)
                (index_of m.Mapping.t_tgds general)
                (Containment.hom_to_string hom);
            before = Some specific;
            after = None;
            certificate = Subsumption_witness { by = general; hom };
          };
        loop
          {
            m with
            Mapping.t_tgds =
              List.filter (fun t -> not (t == specific)) m.Mapping.t_tgds;
          }
  in
  loop m

(* --- pass 2: body minimization (I302, I303) --------------------------- *)

let subst_var v replacement (a : Tgd.atom) =
  let f x = if x = v then Some replacement else None in
  { a with Tgd.args = List.map (Term.substitute f) a.Tgd.args }

(* A body relation is functional when the (original) mapping declares
   its egd or when it is a source cube, whose store is keyed by
   dimensions by construction. *)
let functional_rel (original : Mapping.t) rel =
  List.exists (fun (e : Egd.t) -> e.Egd.relation = rel) original.Mapping.egds
  || List.exists
       (fun (s : Schema.t) -> s.Schema.name = rel)
       original.Mapping.source

let minimize_tgd push ~original (tgd : Tgd.t) =
  let rec loop tgd =
    match tgd with
    | Tgd.Tuple_level { lhs; rhs } -> (
        let merge =
          match Containment.mergeable_atoms ~body:lhs with
          | Some (kept, dropped, dropped_var, kept_var)
            when functional_rel original kept.Tgd.rel ->
              Some (kept, dropped, dropped_var, kept_var)
          | _ -> None
        in
        match merge with
        | Some (kept, dropped, dropped_var, kept_var) ->
            let body =
              List.filter_map
                (fun a ->
                  if a == dropped then None
                  else Some (subst_var dropped_var (Term.Var kept_var) a))
                lhs
            in
            let rhs' = subst_var dropped_var (Term.Var kept_var) rhs in
            let after = Tgd.Tuple_level { lhs = body; rhs = rhs' } in
            push
              {
                code = "I303";
                target = rhs.Tgd.rel;
                detail =
                  Printf.sprintf
                    "merged duplicate %s atoms in the body of %s: egd forces \
                     %s = %s"
                    kept.Tgd.rel rhs.Tgd.rel dropped_var kept_var;
                before = Some tgd;
                after = Some after;
                certificate =
                  Egd_merge { relation = kept.Tgd.rel; dropped_var; kept_var };
              };
            loop after
        | None -> (
            let fold =
              List.find_map
                (fun a ->
                  Option.map
                    (fun (onto, hom) -> (a, onto, hom))
                    (Containment.redundant_atom ~head:rhs ~body:lhs a))
                lhs
            in
            match fold with
            | Some (a, onto, hom) ->
                let after =
                  Tgd.Tuple_level
                    { lhs = List.filter (fun b -> not (b == a)) lhs; rhs }
                in
                push
                  {
                    code = "I302";
                    target = rhs.Tgd.rel;
                    detail =
                      Printf.sprintf
                        "dropped redundant body atom %s of %s: folds onto %s \
                         with h = %s"
                        (Tgd.atom_to_string a) rhs.Tgd.rel
                        (Tgd.atom_to_string onto)
                        (Containment.hom_to_string hom);
                    before = Some tgd;
                    after = Some after;
                    certificate = Fold_witness { dropped = a; onto; hom };
                  };
                loop after
            | None -> tgd))
    | _ -> tgd
  in
  loop tgd

let minimize_all push ~original (m : Mapping.t) =
  {
    m with
    Mapping.t_tgds = List.map (minimize_tgd push ~original) m.Mapping.t_tgds;
  }

(* --- pass 3: cost-gated, certified fusion (I304) ----------------------- *)

let usages (m : Mapping.t) name =
  List.filter
    (fun tgd -> List.mem name (Tgd.source_relations tgd))
    m.Mapping.t_tgds

(* Replace a temporary relation by the relation an identity producer
   copies: sound for any consumer shape because the grids coincide
   exactly.  Only when the producer is a provable identity. *)
let rename_rel ~from_rel ~to_rel (tgd : Tgd.t) =
  let fix (a : Tgd.atom) =
    if a.Tgd.rel = from_rel then { a with Tgd.rel = to_rel } else a
  in
  match tgd with
  | Tgd.Tuple_level { lhs; rhs } ->
      Tgd.Tuple_level { lhs = List.map fix lhs; rhs = fix rhs }
  | Tgd.Aggregation a -> Tgd.Aggregation { a with source = fix a.source }
  | Tgd.Table_fn f ->
      Tgd.Table_fn
        { f with source = (if f.source = from_rel then to_rel else f.source) }
  | Tgd.Outer_combine o ->
      Tgd.Outer_combine { o with left = fix o.left; right = fix o.right }

let fuse_consumer ~producer ~consumer =
  match consumer with
  | Tgd.Tuple_level _ -> Fuse.fuse_step ~producer ~consumer
  | Tgd.Aggregation _ -> Fuse.fuse_step_agg ~producer ~consumer
  | Tgd.Table_fn _ | Tgd.Outer_combine _ ->
      if Containment.is_identity producer then (
        match producer with
        | Tgd.Tuple_level { lhs = [ a ]; rhs } ->
            Some (rename_rel ~from_rel:rhs.Tgd.rel ~to_rel:a.Tgd.rel consumer)
        | _ -> None)
      else None

let remove_temp (m : Mapping.t) temp ~producer ~(replacements : (Tgd.t * Tgd.t) list) =
  let t_tgds =
    List.filter_map
      (fun tgd ->
        if tgd == producer then None
        else
          match List.find_opt (fun (c, _) -> c == tgd) replacements with
          | Some (_, fused) -> Some fused
          | None -> Some tgd)
      m.Mapping.t_tgds
  in
  let target =
    List.filter (fun (s : Schema.t) -> s.Schema.name <> temp) m.Mapping.target
  in
  let egds =
    List.filter (fun (e : Egd.t) -> e.Egd.relation <> temp) m.Mapping.egds
  in
  { m with Mapping.t_tgds; target; egds }

let fuse_all push ~original ?cards (m : Mapping.t) =
  let rec loop (m : Mapping.t) rejected =
    let candidate =
      List.find_map
        (fun producer ->
          match producer with
          | Tgd.Tuple_level _ -> (
              let temp = Tgd.target_relation producer in
              if
                (not (Exl.Normalize.is_temp temp)) || List.mem temp rejected
              then None
              else
                match usages m temp with
                | [] -> None
                | consumers -> (
                    let fused =
                      List.map
                        (fun consumer ->
                          Option.map
                            (fun f -> (consumer, f))
                            (fuse_consumer ~producer ~consumer))
                        consumers
                    in
                    if List.exists Option.is_none fused then None
                    else
                      let replacements = List.filter_map Fun.id fused in
                      (* cost gate: inlining into k consumers repeats
                         the producer's work k times but saves
                         materializing and scanning the temporary *)
                      let env = cost_env ?cards m in
                      let unfused =
                        est_tgd env producer + out_card env producer
                        + List.fold_left
                            (fun acc c -> acc + est_tgd env c)
                            0 consumers
                      in
                      let fused_cost =
                        List.fold_left
                          (fun acc (_, f) -> acc + est_tgd env f)
                          0 replacements
                      in
                      if fused_cost > unfused then None
                      else Some (producer, temp, replacements, unfused, fused_cost)))
          | _ -> None)
        m.Mapping.t_tgds
    in
    match candidate with
    | None -> m
    | Some (producer, temp, replacements, unfused, fused_cost) -> (
        (* minimize the fused bodies before committing (the merge of
           duplicate functional atoms typically fires right here) *)
        let deferred = ref [] in
        let push_deferred a = deferred := a :: !deferred in
        let minimized =
          List.map
            (fun (c, f) -> (c, minimize_tgd push_deferred ~original f))
            replacements
        in
        let next = remove_temp m temp ~producer ~replacements:minimized in
        match equivalent_on_critical m next with
        | Error _ -> loop m (temp :: rejected)
        | Ok facts_compared ->
            List.iter
              (fun (consumer, (_, fused)) ->
                push
                  {
                    code = "I304";
                    target = Tgd.target_relation consumer;
                    detail =
                      Printf.sprintf
                        "fused temporary %s into %s (est. matches %d → %d); \
                         equivalence checked on the critical instance (%d \
                         facts)"
                        temp
                        (Tgd.target_relation consumer)
                        unfused fused_cost facts_compared;
                    before = Some consumer;
                    after = Some fused;
                    certificate =
                      Fusion_equivalence { producer; facts_compared };
                  })
              (List.combine (List.map fst minimized) minimized);
            List.iter push (List.rev !deferred);
            loop next rejected)
  in
  loop m []

(* --- pass 4: outer-combine specialization (I305) ----------------------- *)

let specialize_outer (tgd : Tgd.t) =
  match tgd with
  | Tgd.Outer_combine { left; right; op; default = _; target }
    when left.Tgd.rel = right.Tgd.rel -> (
      match (Containment.split_atom left, Containment.split_atom right) with
      | (ldims, Some (Term.Var ml)), (rdims, Some (Term.Var _))
        when List.length ldims = List.length rdims
             && List.for_all2 Term.equal
                  (List.map Containment.normalize_term ldims)
                  (List.map Containment.normalize_term rdims) ->
          (* identical relation and dimension terms: the key sets are
             equal, no side is ever missing, the default is dead — and
             both measures name the same fact's measure *)
          Some
            (Tgd.Tuple_level
               {
                 lhs = [ left ];
                 rhs =
                   Tgd.atom target
                     (ldims @ [ Term.Binapp (op, Term.Var ml, Term.Var ml) ]);
               })
      | _ -> None)
  | _ -> None

let specialize_outers push (m : Mapping.t) =
  let t_tgds =
    List.map
      (fun tgd ->
        match specialize_outer tgd with
        | None -> tgd
        | Some specialized ->
            let rel =
              match tgd with
              | Tgd.Outer_combine { left; _ } -> left.Tgd.rel
              | _ -> assert false
            in
            push
              {
                code = "I305";
                target = Tgd.target_relation tgd;
                detail =
                  Printf.sprintf
                    "specialized outer combine for %s: both sides read %s on \
                     the same grid, the coalescing default is dead"
                    (Tgd.target_relation tgd) rel;
                before = Some tgd;
                after = Some specialized;
                certificate = Grid_equality { relation = rel };
              };
            specialized)
      m.Mapping.t_tgds
  in
  { m with Mapping.t_tgds }

(* --- pass 5: egd discharge (I306) -------------------------------------- *)

let discharge_egds push (m : Mapping.t) =
  let defining rel =
    match List.filter (fun t -> Tgd.target_relation t = rel) m.Mapping.t_tgds with
    | [ tgd ] -> Some tgd
    | _ -> None
  in
  let egds =
    List.filter
      (fun (e : Egd.t) ->
        let rel = e.Egd.relation in
        match defining rel with
        | None -> true
        | Some tgd -> (
            let discharge chain why =
              push
                {
                  code = "I306";
                  target = rel;
                  detail =
                    Printf.sprintf "discharged functionality egd of %s: %s" rel
                      why;
                  before = Some tgd;
                  after = None;
                  certificate = Determination { chain };
                };
              false
            in
            match tgd with
            | Tgd.Tuple_level { lhs; rhs } -> (
                match Containment.fd_determines ~body:lhs ~head:rhs with
                | Some chain ->
                    discharge chain
                      (Printf.sprintf
                         "measure determined by head dimensions via %s"
                         (String.concat " → " chain))
                | None -> true)
            | Tgd.Aggregation _ ->
                discharge [] "aggregations key their output by the group-by terms"
            | Tgd.Table_fn _ ->
                discharge [] "table functions preserve the dimension grid"
            | Tgd.Outer_combine _ ->
                discharge [] "outer combines key their output by the dimension grid"))
      m.Mapping.egds
  in
  { m with Mapping.egds }

(* --- join ordering ----------------------------------------------------- *)

(* Order a tuple-level body for execution.  The chase joins atoms left
   to right, probing a hash index on every argument position whose term
   is fully determined by the plain variables bound so far; an atom
   reached with no determined position falls back to a full scan (a
   nested loop).  Fusion concatenates bodies in discovery order, which
   can put a shifted atom before the atom that binds its variable —
   e.g. [GDPT(q-1, m2) ∧ GDPT(q, m1)] scans GDPT quadratically where
   the reverse order probes.  Conjunction is commutative, so reordering
   needs no certificate: greedily pick the atom with the most
   determined positions, breaking ties towards the one binding the most
   new plain variables. *)
let order_body (lhs : Tgd.atom list) =
  match lhs with
  | [] | [ _ ] -> lhs
  | _ ->
      let plain_vars (a : Tgd.atom) =
        List.filter_map
          (fun t -> match t with Term.Var v -> Some v | _ -> None)
          a.Tgd.args
      in
      let determined bound (a : Tgd.atom) =
        List.length
          (List.filter
             (fun t ->
               List.for_all (fun v -> List.mem v bound) (Term.vars t))
             a.Tgd.args)
      in
      let rec go bound acc remaining =
        match remaining with
        | [] -> List.rev acc
        | _ ->
            let best =
              List.fold_left
                (fun best a ->
                  let score =
                    (determined bound a, List.length (plain_vars a))
                  in
                  match best with
                  | Some (best_score, _) when best_score >= score -> best
                  | _ -> Some (score, a))
                None remaining
            in
            let _, a = Option.get best in
            go
              (plain_vars a @ bound)
              (a :: acc)
              (List.filter (fun b -> b != a) remaining)
      in
      go [] [] lhs

let order_bodies (m : Mapping.t) =
  {
    m with
    Mapping.t_tgds =
      List.map
        (fun tgd ->
          match tgd with
          | Tgd.Tuple_level { lhs; rhs } ->
              Tgd.Tuple_level { lhs = order_body lhs; rhs }
          | t -> t)
        m.Mapping.t_tgds;
  }

(* --- the driver -------------------------------------------------------- *)

let run ?(fuse = true) ?cards (m : Mapping.t) =
  let actions = ref [] in
  let push a = actions := a :: !actions in
  let m1 = prune_subsumed push m in
  let m2 = minimize_all push ~original:m m1 in
  let m3 = if fuse then fuse_all push ~original:m ?cards m2 else m2 in
  let m4 = specialize_outers push m3 in
  let m5 = discharge_egds push m4 in
  let m6 = order_bodies m5 in
  {
    original = m;
    optimized = m6;
    actions = List.rev !actions;
    est_before = estimate ?cards m;
    est_after = estimate ?cards m6;
    fused = fuse;
  }

(* --- verification ------------------------------------------------------ *)

(* Alpha-equivalence up to variable renaming: mutual subsumption for
   tuple-level tgds, a two-way atom match for aggregations.  Used to
   replay fusion steps, whose fresh variable names differ between the
   recorded and the replayed result. *)
let alpha_equivalent (a : Tgd.t) (b : Tgd.t) =
  match (a, b) with
  | Tgd.Tuple_level _, Tgd.Tuple_level _ ->
      Containment.equivalent a b <> None
  | ( Tgd.Aggregation
        { source = s1; group_by = g1; aggr = a1; measure = m1; target = t1 },
      Tgd.Aggregation
        { source = s2; group_by = g2; aggr = a2; measure = m2; target = t2 } )
    ->
      a1 = a2 && t1 = t2
      && List.length g1 = List.length g2
      && (let match_dir sa ga ma sb gb mb =
            match
              Containment.match_atom []
                (Containment.normalize_atom sa)
                (Containment.normalize_atom sb)
            with
            | None -> None
            | Some sub ->
                let sub =
                  List.fold_left2
                    (fun acc ta tb ->
                      Option.bind acc (fun sub ->
                          Containment.match_term sub
                            (Containment.normalize_term ta)
                            (Containment.normalize_term tb)))
                    (Some sub) ga gb
                in
                Option.bind sub (fun sub ->
                    Containment.match_term sub (Term.Var ma) (Term.Var mb))
          in
          match_dir s1 g1 m1 s2 g2 m2 <> None
          && match_dir s2 g2 m2 s1 g1 m1 <> None)
  | _ -> Tgd.equal a b

let verify_action (r : report) (a : action) : (unit, string) result =
  let fail fmt = Printf.ksprintf (fun s -> Error (a.code ^ ": " ^ s)) fmt in
  match (a.certificate, a.before, a.after) with
  | Subsumption_witness { by; hom }, Some pruned, None -> (
      match (by, pruned) with
      | ( Tgd.Tuple_level { lhs = g_lhs; rhs = g_rhs },
          Tgd.Tuple_level { lhs = s_lhs; rhs = s_rhs } ) ->
          let image (atom : Tgd.atom) =
            Containment.normalize_atom
              {
                atom with
                Tgd.args = List.map (Containment.apply_hom hom) atom.Tgd.args;
              }
          in
          let target_atoms = List.map Containment.normalize_atom s_lhs in
          let head_ok =
            Tgd.equal_atom (image g_rhs) (Containment.normalize_atom s_rhs)
          in
          let body_ok =
            List.for_all
              (fun atom ->
                List.exists (Tgd.equal_atom (image atom)) target_atoms)
              g_lhs
          in
          if head_ok && body_ok then Ok ()
          else fail "witness homomorphism does not map the subsumer onto %s"
                 a.target
      | _ -> fail "subsumption certificate on non tuple-level tgds")
  | Fold_witness { dropped; onto; hom }, Some before, Some after -> (
      match (before, after) with
      | Tgd.Tuple_level { lhs = b_lhs; rhs = b_rhs },
        Tgd.Tuple_level { lhs = a_lhs; rhs = a_rhs } ->
          let kept_vars =
            List.sort_uniq String.compare
              (Tgd.atom_vars a_rhs @ List.concat_map Tgd.atom_vars a_lhs)
          in
          let moves_outside_var =
            List.exists
              (fun (v, t) ->
                (not (Term.equal t (Term.Var v))) && List.mem v kept_vars)
              hom
          in
          let image =
            Containment.normalize_atom
              {
                dropped with
                Tgd.args =
                  List.map
                    (fun t ->
                      Containment.apply_hom hom (Containment.normalize_term t))
                    dropped.Tgd.args;
              }
          in
          let body_shrunk =
            List.length b_lhs = List.length a_lhs + 1
            && Tgd.equal_atom
                 (Containment.normalize_atom b_rhs)
                 (Containment.normalize_atom a_rhs)
          in
          let lands_on_onto =
            Tgd.equal_atom image (Containment.normalize_atom onto)
            && List.exists
                 (fun b ->
                   Tgd.equal_atom (Containment.normalize_atom onto)
                     (Containment.normalize_atom b))
                 a_lhs
          in
          if body_shrunk && (not moves_outside_var) && lands_on_onto then Ok ()
          else fail "fold witness for %s does not land in the reduced body"
                 a.target
      | _ -> fail "fold certificate on non tuple-level tgds")
  | Egd_merge { relation; dropped_var; kept_var }, Some before, Some after -> (
      if not (functional_rel r.original relation) then
        fail "merge of %s atoms is not justified by any egd" relation
      else
        match before with
        | Tgd.Tuple_level { lhs; rhs } -> (
            let pair =
              List.find_map
                (fun (x : Tgd.atom) ->
                  List.find_map
                    (fun (y : Tgd.atom) ->
                      if x == y || x.Tgd.rel <> relation || y.Tgd.rel <> relation
                      then None
                      else
                        let dx, mx = Containment.split_atom (Containment.normalize_atom x) in
                        let dy, my = Containment.split_atom (Containment.normalize_atom y) in
                        match (mx, my) with
                        | Some (Term.Var vx), Some (Term.Var vy)
                          when vx = kept_var && vy = dropped_var
                               && List.length dx = List.length dy
                               && List.for_all2 Term.equal dx dy ->
                            Some y
                        | _ -> None)
                    lhs)
                lhs
            in
            match pair with
            | None ->
                fail "no duplicate %s atoms with measures %s/%s in %s" relation
                  kept_var dropped_var a.target
            | Some dropped_atom ->
                let replay =
                  Tgd.Tuple_level
                    {
                      lhs =
                        List.filter_map
                          (fun at ->
                            if at == dropped_atom then None
                            else
                              Some
                                (subst_var dropped_var (Term.Var kept_var) at))
                          lhs;
                      rhs = subst_var dropped_var (Term.Var kept_var) rhs;
                    }
                in
                if Tgd.equal replay after then Ok ()
                else fail "replayed merge differs from the recorded result")
        | _ -> fail "merge certificate on a non tuple-level tgd")
  | Fusion_equivalence { producer; facts_compared = _ }, Some consumer, Some fused
    -> (
      (* the committed tgd is the fusion result after body minimization,
         so the replay minimizes too (with the action log discarded) *)
      let minimize = minimize_tgd (fun _ -> ()) ~original:r.original in
      match fuse_consumer ~producer ~consumer with
      | Some replay
        when alpha_equivalent replay fused
             || alpha_equivalent (minimize replay) fused ->
          Ok ()
      | Some _ -> fail "replayed fusion for %s differs from the recorded tgd" a.target
      | None -> fail "recorded fusion for %s does not replay" a.target)
  | Grid_equality { relation }, Some before, Some after -> (
      match specialize_outer before with
      | Some replay when Tgd.equal replay after -> (
          match before with
          | Tgd.Outer_combine { left; right; _ }
            when left.Tgd.rel = relation && right.Tgd.rel = relation ->
              Ok ()
          | _ -> fail "grid certificate names the wrong relation")
      | _ -> fail "outer specialization for %s does not replay" a.target)
  | Determination { chain }, Some tgd, None -> (
      match tgd with
      | Tgd.Tuple_level { lhs; rhs } -> (
          match Containment.fd_determines ~body:lhs ~head:rhs with
          | Some replay_chain
            when List.sort String.compare replay_chain
                 = List.sort String.compare chain ->
              Ok ()
          | Some _ -> fail "determination chain for %s does not replay" a.target
          | None ->
              fail "egd of %s is not implied by its defining tgd" a.target)
      | Tgd.Aggregation _ | Tgd.Table_fn _ | Tgd.Outer_combine _ ->
          if chain = [] then Ok ()
          else fail "non-empty chain on a construction-functional tgd")
  | _ -> fail "malformed certificate for %s" a.target

let verify (r : report) : (unit, string) result =
  let rec check = function
    | [] -> (
        (* the global re-chase: original and optimized mappings agree
           on the critical instance, independent of any single step.
           A mapping whose blackbox operators reject the synthetic
           instance outright cannot be re-chased — then the per-action
           certificates (none of which can be fusion, which needs the
           same evidence) are all the verification there is. *)
        match Exchange.Chase.run r.original (critical_instance r.original) with
        | Error _ -> Ok ()
        | Ok _ -> (
            match equivalent_on_critical r.original r.optimized with
            | Ok _ -> Ok ()
            | Error e -> Error e))
    | a :: rest -> (
        match verify_action r a with Ok () -> check rest | Error _ as e -> e)
  in
  check r.actions

(* --- rendering --------------------------------------------------------- *)

let diagnostics (r : report) =
  List.map (fun a -> Diagnostic.make ~code:a.code a.detail) r.actions

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let certificate_to_json = function
  | Subsumption_witness { by; hom } ->
      Printf.sprintf {|{"kind":"subsumption","by":"%s","witness":"%s"}|}
        (json_escape (Tgd.to_string by))
        (json_escape (Containment.hom_to_string hom))
  | Fold_witness { dropped; onto; hom } ->
      Printf.sprintf
        {|{"kind":"fold","dropped":"%s","onto":"%s","witness":"%s"}|}
        (json_escape (Tgd.atom_to_string dropped))
        (json_escape (Tgd.atom_to_string onto))
        (json_escape (Containment.hom_to_string hom))
  | Egd_merge { relation; dropped_var; kept_var } ->
      Printf.sprintf
        {|{"kind":"egd_merge","relation":"%s","dropped":"%s","kept":"%s"}|}
        (json_escape relation) (json_escape dropped_var) (json_escape kept_var)
  | Fusion_equivalence { producer; facts_compared } ->
      Printf.sprintf
        {|{"kind":"fusion_equivalence","producer":"%s","facts_compared":%d}|}
        (json_escape (Tgd.to_string producer))
        facts_compared
  | Grid_equality { relation } ->
      Printf.sprintf {|{"kind":"grid_equality","relation":"%s"}|}
        (json_escape relation)
  | Determination { chain } ->
      Printf.sprintf {|{"kind":"determination","chain":[%s]}|}
        (String.concat ","
           (List.map (fun v -> "\"" ^ json_escape v ^ "\"") chain))

let action_to_json (a : action) =
  let opt_tgd name = function
    | None -> ""
    | Some t ->
        Printf.sprintf {|"%s":"%s",|} name (json_escape (Tgd.to_string t))
  in
  Printf.sprintf {|{"code":"%s","target":"%s",%s%s"detail":"%s","certificate":%s}|}
    (json_escape a.code) (json_escape a.target)
    (opt_tgd "before" a.before)
    (opt_tgd "after" a.after)
    (json_escape a.detail)
    (certificate_to_json a.certificate)

let report_to_json (r : report) =
  Printf.sprintf
    {|{"fuse":%b,"tgds_before":%d,"tgds_after":%d,"egds_before":%d,"egds_after":%d,"est_matches_before":%d,"est_matches_after":%d,"actions":[%s]}|}
    r.fused
    (List.length r.original.Mapping.t_tgds)
    (List.length r.optimized.Mapping.t_tgds)
    (List.length r.original.Mapping.egds)
    (List.length r.optimized.Mapping.egds)
    r.est_before r.est_after
    (String.concat "," (List.map action_to_json r.actions))
