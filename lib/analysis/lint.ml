(* Lint driver: runs every analysis layer over an EXL source and
   produces one diagnostic report.

   Pipeline: parse (E001) → typecheck, accumulating (E00x) → EXL lints
   (W10x) → mapping generation → mapping checks (E20x/W205).  Later
   layers only run when earlier ones succeed — lints on an ill-typed
   program would be noise. *)

type report = {
  diagnostics : Diagnostic.t list;
  checked : Exl.Typecheck.checked option;
  mapping : Mappings.Mapping.t option;
}

let source_diagnostics source =
  match Exl.Parser.parse source with
  | Error e ->
      {
        diagnostics = [ Diagnostic.of_error ~default_code:"E001" e ];
        checked = None;
        mapping = None;
      }
  | Ok ast -> (
      match Exl.Typecheck.check ast with
      | Error errs ->
          {
            diagnostics = List.map Diagnostic.of_error errs;
            checked = None;
            mapping = None;
          }
      | Ok checked ->
          let exl_findings = Exl_lints.run checked in
          let mapping, map_findings =
            match Mappings.Generate.of_checked checked with
            | Ok g ->
                ( Some g.Mappings.Generate.mapping,
                  Map_lints.run g.Mappings.Generate.mapping )
            | Error e -> (None, [ Diagnostic.of_error e ])
          in
          let findings = exl_findings @ map_findings in
          (* Surface what the optimizer would do as I3xx notes — only on
             a clean mapping; chasing an inconsistent one is noise.
             I306 (egd discharge) is omitted here: it fires on nearly
             every tgd, so it only appears in [exlc optimize] reports. *)
          let opt_findings =
            match mapping with
            | Some m when not (List.exists Diagnostic.is_error findings) ->
                List.filter
                  (fun d -> d.Diagnostic.code <> "I306")
                  (Optimize.diagnostics (Optimize.run m))
            | _ -> []
          in
          {
            diagnostics = Diagnostic.sort (findings @ opt_findings);
            checked = Some checked;
            mapping;
          })

let filter ~suppress report =
  (* warnings and infos can be suppressed; errors always survive *)
  {
    report with
    diagnostics =
      List.filter
        (fun d ->
          Diagnostic.is_error d || not (List.mem d.Diagnostic.code suppress))
        report.diagnostics;
  }

(* Infos (I3xx optimizer notes) never affect the exit code, even under
   [--deny-warnings]. *)
let exit_code ~deny_warnings report =
  if List.exists Diagnostic.is_error report.diagnostics then 1
  else if deny_warnings && List.exists Diagnostic.is_warning report.diagnostics
  then 1
  else 0

let render_text ?source report =
  let render =
    match source with
    | Some source -> Diagnostic.to_string_with_source ~source
    | None -> Diagnostic.to_string
  in
  let body = List.map render report.diagnostics in
  let errors = List.length (List.filter Diagnostic.is_error report.diagnostics) in
  let warnings =
    List.length (List.filter Diagnostic.is_warning report.diagnostics)
  in
  let infos =
    List.length (List.filter Diagnostic.is_info report.diagnostics)
  in
  let summary =
    if errors = 0 && warnings = 0 && infos = 0 then "no diagnostics"
    else
      Printf.sprintf "%d error(s), %d warning(s)" errors warnings
      ^ if infos = 0 then "" else Printf.sprintf ", %d info(s)" infos
  in
  String.concat "\n" (body @ [ summary ])

let render_json report = Diagnostic.list_to_json report.diagnostics
