(* EXL-level lint passes.

   These run on a successfully type-checked program and find code that
   is legal but suspicious: dead cubes, no-op aggregations, operator
   uses that are guaranteed to fail at run time, shifts that fall off
   the calendar.  Every finding carries a W1xx code from
   Diagnostic.catalogue. *)

open Matrix
module Ast = Exl.Ast
module Typecheck = Exl.Typecheck

let referenced_cubes (checked : Typecheck.checked) =
  let referenced = Hashtbl.create 16 in
  List.iter
    (fun (s : Ast.stmt) ->
      List.iter
        (fun name -> Hashtbl.replace referenced name ())
        (Ast.cube_refs s.Ast.rhs))
    checked.Typecheck.statements;
  referenced

(* W101: elementary cube declared but never referenced. *)
let unused_elementary (checked : Typecheck.checked) =
  let referenced = referenced_cubes checked in
  List.filter_map
    (fun (d : Ast.decl) ->
      if Hashtbl.mem referenced d.Ast.d_name then None
      else
        Some
          (Diagnostic.makef ~code:"W101" ~pos:d.Ast.d_pos
             "elementary cube %s is declared but never used" d.Ast.d_name))
    (Ast.decls checked.Typecheck.program)

(* W102: derived cube that never reaches any emitted target.

   The program's emitted targets are its sinks — derived cubes no later
   statement consumes — except normalizer-style temporaries ([X__n]),
   which exist only to feed real cubes.  A derived cube all of whose
   consumers bottom out in such dead temporaries (or that is itself a
   dead temporary) computes data nobody ever sees. *)
let unreached_derived (checked : Typecheck.checked) =
  let stmts = checked.Typecheck.statements in
  let consumers = Hashtbl.create 16 in
  List.iter
    (fun (s : Ast.stmt) ->
      List.iter
        (fun operand ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt consumers operand) in
          Hashtbl.replace consumers operand (s.Ast.lhs :: prev))
        (Ast.cube_refs s.Ast.rhs))
    stmts;
  let is_sink name = not (Hashtbl.mem consumers name) in
  let emitted =
    List.filter_map
      (fun (s : Ast.stmt) ->
        if is_sink s.Ast.lhs && not (Exl.Normalize.is_temp s.Ast.lhs) then
          Some s.Ast.lhs
        else None)
      stmts
  in
  (* Cubes that reach an emitted target: walk the operand edges
     backwards from the emitted sinks. *)
  let operands_of = Hashtbl.create 16 in
  List.iter
    (fun (s : Ast.stmt) ->
      Hashtbl.replace operands_of s.Ast.lhs (Ast.cube_refs s.Ast.rhs))
    stmts;
  let reaches = Hashtbl.create 16 in
  let rec mark name =
    if not (Hashtbl.mem reaches name) then begin
      Hashtbl.replace reaches name ();
      List.iter mark (Option.value ~default:[] (Hashtbl.find_opt operands_of name))
    end
  in
  List.iter mark emitted;
  List.filter_map
    (fun (s : Ast.stmt) ->
      if Hashtbl.mem reaches s.Ast.lhs then None
      else
        Some
          (Diagnostic.makef ~code:"W102" ~pos:s.Ast.s_pos
             "derived cube %s never reaches any emitted target (only dead \
              temporaries consume it)"
             s.Ast.lhs))
    stmts

(* Walk every call expression in the original (pre-normalization)
   program, with the final environment available for operand typing. *)
let iter_calls (checked : Typecheck.checked) f =
  let rec go (e : Ast.expr) =
    match e with
    | Ast.Number _ | Ast.Cube_ref _ -> ()
    | Ast.Neg a -> go a
    | Ast.Binop (_, a, b) ->
        go a;
        go b
    | Ast.Call c ->
        f c;
        List.iter go c.Ast.args
  in
  List.iter (fun (s : Ast.stmt) -> go s.Ast.rhs) checked.Typecheck.statements

let operand_dims env (e : Ast.expr) =
  match Typecheck.infer_expr env e with
  | Ok (Typecheck.Cube_ty dims) -> Some dims
  | Ok Typecheck.Scalar_ty | Error _ -> None

(* W103: aggregation whose group-by keys are exactly the operand's
   dimensions (no dimension function, no collapsing): every group is a
   singleton, so the aggregation is an expensive identity. *)
let noop_aggregation (checked : Typecheck.checked) =
  let env = checked.Typecheck.env in
  let out = ref [] in
  iter_calls checked (fun c ->
      match (Ast.classify c.Ast.fn, c.Ast.group_by, c.Ast.args) with
      | Ast.Agg_op _, Some items, [ operand ]
        when List.for_all (fun (i : Ast.dim_item) -> i.Ast.fn = None) items -> (
          match operand_dims env operand with
          | Some dims
            when List.length items = List.length dims
                 && List.for_all
                      (fun (i : Ast.dim_item) -> List.mem_assoc i.Ast.src dims)
                      items ->
              out :=
                Diagnostic.makef ~code:"W103" ~pos:c.Ast.pos
                  "%s groups by every dimension of its operand; each group \
                   is a singleton, so the aggregation is a no-op"
                  c.Ast.fn
                :: !out
          | _ -> ())
      | _ -> ());
  List.rev !out

let periods_per_year = function
  | Calendar.Year -> 1
  | Calendar.Semester -> 2
  | Calendar.Quarter -> 4
  | Calendar.Month -> 12
  | Calendar.Week -> 52
  | Calendar.Day -> 365

(* The calendar supports years 1..9999; a shift whose distance exceeds
   that whole span can never land on a representable period. *)
let calendar_span_years = 9999

(* W104: a black-box operator that needs a seasonal period, called
   without an explicit one, on an operand whose frequency admits none
   (annual data has no sub-year season) — guaranteed runtime failure. *)
let blackbox_period (checked : Typecheck.checked) =
  let env = checked.Typecheck.env in
  let out = ref [] in
  iter_calls checked (fun c ->
      match Ast.classify c.Ast.fn with
      | Ast.Blackbox_op b when b.Ops.Blackbox.needs_period -> (
          match Ast.split_call_args c with
          | Ok ([], Some operand) -> (
              match operand_dims env operand with
              | Some dims -> (
                  let temporal =
                    List.filter (fun (_, d) -> Domain.is_temporal d) dims
                  in
                  match temporal with
                  | [ (dim, Domain.Period (Some f)) ]
                    when Ops.Blackbox.default_period f = None ->
                      out :=
                        Diagnostic.makef ~code:"W104" ~pos:c.Ast.pos
                          "%s needs a seasonal period, but none is given and \
                           none is inferable from the %s frequency of \
                           dimension %s"
                          c.Ast.fn
                          (Domain.to_string (Domain.Period (Some f)))
                          dim
                        :: !out
                  | _ -> ())
              | None -> ())
          | _ -> ())
      | _ -> ());
  List.rev !out

(* W105: shift by zero (a no-op) or by a distance no calendar start can
   absorb (the result is guaranteed out of the representable range). *)
let shift_range (checked : Typecheck.checked) =
  let env = checked.Typecheck.env in
  let out = ref [] in
  let warn pos fmt = Diagnostic.makef ~code:"W105" ~pos fmt in
  iter_calls checked (fun c ->
      if Ast.classify c.Ast.fn = Ast.Shift_op then
        let operand, dim, amount =
          match c.Ast.args with
          | [ e; k ] -> (Some e, None, Ast.as_number k)
          | [ e; Ast.Cube_ref d; k ] -> (Some e, Some d, Ast.as_number k)
          | _ -> (None, None, None)
        in
        match (operand, amount) with
        | Some operand, Some k ->
            if k = 0. then
              out := warn c.Ast.pos "shift by 0 is a no-op" :: !out
            else (
              match operand_dims env operand with
              | None -> ()
              | Some dims -> (
                  let domain =
                    match dim with
                    | Some d -> List.assoc_opt d dims
                    | None -> (
                        match
                          List.filter (fun (_, d) -> Domain.is_temporal d) dims
                        with
                        | [ (_, d) ] -> Some d
                        | _ -> None)
                  in
                  let per_year =
                    match domain with
                    | Some (Domain.Period (Some f)) -> Some (periods_per_year f)
                    | Some Domain.Date -> Some 365
                    | _ -> None
                  in
                  match per_year with
                  | Some per_year
                    when Float.abs k
                         > float_of_int (calendar_span_years * per_year) ->
                      out :=
                        warn c.Ast.pos
                          "shift distance %g exceeds the whole representable \
                           calendar (%d periods); the result is always empty"
                          k
                          (calendar_span_years * per_year)
                        :: !out
                  | _ -> ()))
        | _ -> ());
  List.rev !out

let run (checked : Typecheck.checked) =
  Diagnostic.sort
    (unused_elementary checked @ unreached_derived checked
   @ noop_aggregation checked @ blackbox_period checked @ shift_range checked)
