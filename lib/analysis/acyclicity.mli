(** Weak-acyclicity check with a machine-verifiable termination
    certificate (E202).

    The dependency graph has a node per (relation, position) of the
    mapping's schemas.  Edges come from the tgds: {e ordinary} when a
    body variable is copied verbatim into a head position, {e special}
    when it feeds a value-creating head term ([Shifted], [Dim_fn],
    [Scalar_fn], [Binapp], [Neg]) or a computed measure (aggregate,
    table function, outer combine).  The mapping is weakly acyclic iff
    no cycle goes through a special edge — the standard sufficient
    condition for chase termination (Fagin et al.), adapted to this
    engine's full-but-computing tgds. *)

type position = { rel : string; idx : int }
type edge_kind = Ordinary | Special

type edge = {
  src : position;
  dst : position;
  kind : edge_kind;
  via : string;  (** target relation of the tgd inducing this edge *)
}

type certificate = {
  positions : position list;
  edges : edge list;
  ranks : (position * int) list;
      (** every edge satisfies [rank dst >= rank src + w], [w] = 1 for
          special edges — a ranking function proving boundedness *)
  max_rank : int;
}

type violation = { cycle : edge list }

val tgd_edges : Mappings.Mapping.t -> Mappings.Tgd.t -> edge list
val all_edges : Mappings.Mapping.t -> edge list

val check : Mappings.Mapping.t -> (certificate, violation) result

val verify : certificate -> (unit, string) result
(** Independently re-checks the ranking: every edge must satisfy
    [rank dst >= rank src + w].  A certificate that passes is a proof
    of weak acyclicity regardless of how it was computed. *)

val position_to_string : Mappings.Mapping.t -> position -> string
val edge_to_string : Mappings.Mapping.t -> edge -> string
val cycle_to_string : Mappings.Mapping.t -> edge list -> string
val certificate_to_string : Mappings.Mapping.t -> certificate -> string

val diagnose : Mappings.Mapping.t -> Diagnostic.t list
(** [[]] if weakly acyclic, else a single [E202] diagnostic with the
    rendered cycle. *)
