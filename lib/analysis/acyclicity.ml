(* Weak acyclicity of the dependency graph (Fagin et al.), adapted to
   this engine's extended tgds.

   Classic weak acyclicity tracks existential variables: a cycle
   through a "special" edge means the chase can keep inventing labelled
   nulls forever.  Our generated tgds are full (no existentials), but
   head terms that *compute* values — [Shifted], [Dim_fn],
   [Scalar_fn], [Binapp], [Neg] — play the same role: a shift can
   mint new periods without bound if it feeds itself.  So:

   - an {b ordinary} edge copies a value: body position to a head
     position holding the same plain variable;
   - a {b special} edge creates a value: body position of a variable
     to a head position whose term uses that variable inside a
     computation.

   The mapping is weakly acyclic iff no cycle goes through a special
   edge.  When it is, we return a certificate: a rank per position
   such that every edge satisfies [rank dst >= rank src + w] (w = 1
   for special edges).  Such a ranking is exactly a proof that chase
   value-creation depth is bounded by the max rank, and [verify]
   re-checks it edge by edge. *)

open Matrix
module Mapping = Mappings.Mapping
module Tgd = Mappings.Tgd
module Term = Mappings.Term

type position = { rel : string; idx : int }
type edge_kind = Ordinary | Special

type edge = {
  src : position;
  dst : position;
  kind : edge_kind;
  via : string;  (** target relation of the tgd inducing this edge *)
}

type certificate = {
  positions : position list;
  edges : edge list;
  ranks : (position * int) list;
  max_rank : int;
}

type violation = { cycle : edge list }

let schema_for (m : Mapping.t) rel =
  List.find_opt (fun s -> s.Schema.name = rel) (m.source @ m.target)

(* An atom has [Schema.arity] dimension positions plus one trailing
   measure position, so a relation contributes [arity + 1] graph
   nodes. *)
let position_to_string (m : Mapping.t) p =
  match schema_for m p.rel with
  | Some s when p.idx >= 0 && p.idx <= Schema.arity s ->
      let label =
        if p.idx = Schema.arity s then s.Schema.measure_name
        else s.Schema.dims.(p.idx).Schema.dim_name
      in
      Printf.sprintf "%s.%s" p.rel label
  | _ -> Printf.sprintf "%s.%d" p.rel p.idx

let edge_to_string (m : Mapping.t) e =
  Printf.sprintf "%s -%s-> %s [%s]"
    (position_to_string m e.src)
    (match e.kind with Ordinary -> "" | Special -> "*")
    (position_to_string m e.dst)
    e.via

(* All (position index, variable) occurrences in an atom's arguments. *)
let atom_var_positions (a : Tgd.atom) =
  List.concat
    (List.mapi
       (fun i t -> List.map (fun v -> (i, v)) (Term.vars t))
       a.Tgd.args)

(* Edges from a variable occurrence [(rel, i, v)] into the head term
   [h] at head position [j]: ordinary if [h] is exactly [Var v],
   special if [v] occurs inside a larger (computing) term. *)
let edges_into via src j (h : Term.t) v =
  match h with
  | Term.Var x when x = v -> [ (fun dst_rel -> { src; dst = { rel = dst_rel; idx = j }; kind = Ordinary; via }) ]
  | _ when List.mem v (Term.vars h) ->
      [ (fun dst_rel -> { src; dst = { rel = dst_rel; idx = j }; kind = Special; via }) ]
  | _ -> []

let tgd_edges (m : Mapping.t) (tgd : Tgd.t) =
  let via = Tgd.target_relation tgd in
  let arity rel =
    match schema_for m rel with Some s -> Schema.arity s | None -> 0
  in
  match tgd with
  | Tgd.Tuple_level { lhs; rhs } ->
      List.concat_map
        (fun (a : Tgd.atom) ->
          List.concat_map
            (fun (i, v) ->
              let src = { rel = a.Tgd.rel; idx = i } in
              List.concat
                (List.mapi
                   (fun j h ->
                     List.map (fun f -> f rhs.Tgd.rel) (edges_into via src j h v))
                   rhs.Tgd.args))
            (atom_var_positions a))
        lhs
  | Tgd.Aggregation { source; group_by; measure; target; _ } ->
      let key_edges =
        List.concat_map
          (fun (i, v) ->
            let src = { rel = source.Tgd.rel; idx = i } in
            List.concat
              (List.mapi
                 (fun j g ->
                   List.map (fun f -> f target) (edges_into via src j g v))
                 group_by))
          (atom_var_positions source)
      in
      (* The aggregate computes a fresh measure from every tuple of the
         group: special edge from each source position binding the
         measure variable. *)
      let measure_idx = List.length group_by in
      let measure_edges =
        List.filter_map
          (fun (i, v) ->
            if v = measure then
              Some
                {
                  src = { rel = source.Tgd.rel; idx = i };
                  dst = { rel = target; idx = measure_idx };
                  kind = Special;
                  via;
                }
            else None)
          (atom_var_positions source)
      in
      key_edges @ measure_edges
  | Tgd.Table_fn { source; target; _ } ->
      (* A table function maps a whole series to a new series over the
         same dimension grid: dimensions copy (ordinary), the measure
         is computed (special).  [Schema.arity] counts dimensions; the
         measure sits at index [arity]. *)
      let sa = arity source and ta = arity target in
      let dims =
        List.init
          (max 0 (min sa ta))
          (fun i ->
            {
              src = { rel = source; idx = i };
              dst = { rel = target; idx = i };
              kind = Ordinary;
              via;
            })
      in
      {
        src = { rel = source; idx = sa };
        dst = { rel = target; idx = ta };
        kind = Special;
        via;
      }
      :: dims
  | Tgd.Outer_combine { left; right; target; _ } ->
      (* Target dimensions are the left atom's dimension terms; the
         right atom joins by shared variable names.  The combined
         measure is computed from both measures (special). *)
      let split (a : Tgd.atom) =
        match List.rev a.Tgd.args with
        | meas :: rev_dims -> (List.rev rev_dims, Some meas)
        | [] -> ([], None)
      in
      let left_dims, left_meas = split left in
      let right_dims, right_meas = split right in
      let measure_idx = List.length left_dims in
      let dim_target v =
        (* position of variable [v] among the target's dimensions *)
        let rec find j = function
          | [] -> None
          | Term.Var x :: _ when x = v -> Some j
          | _ :: rest -> find (j + 1) rest
        in
        find 0 left_dims
      in
      let atom_dim_edges (a : Tgd.atom) dims =
        List.concat
          (List.mapi
             (fun i t ->
               List.filter_map
                 (fun v ->
                   Option.map
                     (fun j ->
                       {
                         src = { rel = a.Tgd.rel; idx = i };
                         dst = { rel = target; idx = j };
                         kind = Ordinary;
                         via;
                       })
                     (dim_target v))
                 (Term.vars t))
             dims)
      in
      let measure_edge (a : Tgd.atom) dims meas =
        match meas with
        | None -> []
        | Some _ ->
            [
              {
                src = { rel = a.Tgd.rel; idx = List.length dims };
                dst = { rel = target; idx = measure_idx };
                kind = Special;
                via;
              };
            ]
      in
      atom_dim_edges left left_dims
      @ atom_dim_edges right right_dims
      @ measure_edge left left_dims left_meas
      @ measure_edge right right_dims right_meas

let all_positions (m : Mapping.t) =
  List.concat_map
    (fun s ->
      (* dims plus the trailing measure position *)
      List.init (Schema.arity s + 1) (fun i -> { rel = s.Schema.name; idx = i }))
    (m.Mapping.source @ m.Mapping.target)

let all_edges (m : Mapping.t) =
  List.concat_map (tgd_edges m) (m.Mapping.st_tgds @ m.Mapping.t_tgds)

(* Tarjan's strongly connected components over the position graph. *)
let sccs positions edges =
  let n = List.length positions in
  let index_of = Hashtbl.create n in
  List.iteri (fun i p -> Hashtbl.replace index_of p i) positions;
  let succ = Array.make n [] in
  List.iter
    (fun e ->
      match (Hashtbl.find_opt index_of e.src, Hashtbl.find_opt index_of e.dst) with
      | Some u, Some v -> succ.(u) <- v :: succ.(u)
      | _ -> ())
    edges;
  let indices = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comp = Array.make n (-1) in
  let comps = ref [] in
  let ncomp = ref 0 in
  let rec strongconnect v =
    indices.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if indices.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) indices.(w))
      succ.(v);
    if lowlink.(v) = indices.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- !ncomp;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let members = pop [] in
      comps := members :: !comps;
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if indices.(v) = -1 then strongconnect v
  done;
  (* Tarjan pops sinks first; reversing the pop order… the [comps]
     list already accumulates in reverse pop order, which is a
     topological order of the condensation (sources first is the
     reverse).  We return the component array plus a topological
     ordering of component ids: components in [comps] head = last
     popped = topologically first. *)
  let topo = List.map (fun members -> comp.(List.hd members)) !comps in
  (index_of, comp, topo)

(* Shortest edge path from [src_pos] to [dst_pos] staying inside one
   SCC — used to render the offending cycle. *)
let path_within positions edges comp index_of src_pos dst_pos =
  let cid p =
    match Hashtbl.find_opt index_of p with Some i -> comp.(i) | None -> -1
  in
  let target_comp = cid src_pos in
  let inside e = cid e.src = target_comp && cid e.dst = target_comp in
  let parent = Hashtbl.create 16 in
  let visited = Hashtbl.create 16 in
  let queue = Queue.create () in
  Hashtbl.replace visited src_pos ();
  Queue.add src_pos queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    if u = dst_pos then found := true
    else
      List.iter
        (fun e ->
          if e.src = u && inside e && not (Hashtbl.mem visited e.dst) then begin
            Hashtbl.replace visited e.dst ();
            Hashtbl.replace parent e.dst e;
            Queue.add e.dst queue
          end)
        edges
  done;
  ignore positions;
  if not !found then []
  else
    let rec build p acc =
      if p = src_pos then acc
      else
        match Hashtbl.find_opt parent p with
        | Some e -> build e.src (e :: acc)
        | None -> acc
    in
    build dst_pos []

let check (m : Mapping.t) : (certificate, violation) result =
  let edges = all_edges m in
  (* include endpoints of edges through relations the mapping carries
     no schema for (hand-built mappings may omit them) *)
  let positions =
    let seen = Hashtbl.create 32 in
    let add p = if not (Hashtbl.mem seen p) then Hashtbl.replace seen p () in
    List.iter add (all_positions m);
    List.iter
      (fun e ->
        add e.src;
        add e.dst)
      edges;
    Hashtbl.fold (fun p () acc -> p :: acc) seen []
  in
  let index_of, comp, topo = sccs positions edges in
  let cid p =
    match Hashtbl.find_opt index_of p with Some i -> comp.(i) | None -> -1
  in
  match
    List.find_opt
      (fun e -> e.kind = Special && cid e.src = cid e.dst && cid e.src >= 0)
      edges
  with
  | Some bad ->
      (* close the loop: path dst → src inside the SCC, then the
         special edge back *)
      let back = path_within positions edges comp index_of bad.dst bad.src in
      Error { cycle = (bad :: back) }
  | None ->
      (* Rank per SCC: single pass over components in topological
         order, relaxing outgoing edges.  Within an SCC all edges are
         ordinary, so one rank per component is consistent. *)
      let ncomp = List.length topo in
      let crank = Array.make (max 1 ncomp) 0 in
      List.iter
        (fun c ->
          List.iter
            (fun e ->
              let cs = cid e.src and cd = cid e.dst in
              if cs = c && cd <> c && cs >= 0 && cd >= 0 then
                let w = if e.kind = Special then 1 else 0 in
                if crank.(cs) + w > crank.(cd) then
                  crank.(cd) <- crank.(cs) + w)
            edges)
        topo;
      let ranks =
        List.map
          (fun p ->
            let c = cid p in
            (p, if c >= 0 then crank.(c) else 0))
          positions
      in
      let max_rank = List.fold_left (fun acc (_, r) -> max acc r) 0 ranks in
      Ok { positions; edges; ranks; max_rank }

let verify (c : certificate) : (unit, string) result =
  let rank p =
    match List.assoc_opt p c.ranks with
    | Some r -> Some r
    | None -> None
  in
  let check_edge e =
    match (rank e.src, rank e.dst) with
    | Some rs, Some rd ->
        let w = match e.kind with Ordinary -> 0 | Special -> 1 in
        if rd >= rs + w then Ok ()
        else
          Error
            (Printf.sprintf
               "rank constraint violated on %s.%d -> %s.%d: %d < %d + %d"
               e.src.rel e.src.idx e.dst.rel e.dst.idx rd rs w)
    | _ -> Error "certificate is missing a rank for an edge endpoint"
  in
  List.fold_left
    (fun acc e -> match acc with Error _ -> acc | Ok () -> check_edge e)
    (Ok ()) c.edges

let cycle_to_string (m : Mapping.t) cycle =
  String.concat " ; " (List.map (edge_to_string m) cycle)

let certificate_to_string (m : Mapping.t) (c : certificate) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "weakly acyclic: %d positions, %d edges, max rank %d (chase \
        value-creation depth is bounded by %d)\n"
       (List.length c.positions) (List.length c.edges) c.max_rank c.max_rank);
  List.iter
    (fun (p, r) ->
      if r > 0 then
        Buffer.add_string buf
          (Printf.sprintf "  rank %d: %s\n" r (position_to_string m p)))
    c.ranks;
  Buffer.contents buf

let diagnose (m : Mapping.t) : Diagnostic.t list =
  match check m with
  | Ok _ -> []
  | Error { cycle } ->
      [
        Diagnostic.makef ~code:"E202"
          "mapping is not weakly acyclic: cycle through a value-creating \
           edge (%s); chase termination cannot be certified"
          (cycle_to_string m cycle);
      ]
