type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  pos : Exl.Ast.pos option;
  message : string;
}

let severity_of_code code =
  if String.length code = 0 then Error
  else
    match code.[0] with 'W' -> Warning | 'I' -> Info | _ -> Error

let make ~code ?pos message = { code; severity = severity_of_code code; pos; message }

let makef ~code ?pos fmt =
  Format.kasprintf (fun message -> make ~code ?pos message) fmt

let of_error ?(default_code = "E002") (e : Exl.Errors.t) =
  make
    ~code:(Option.value ~default:default_code e.Exl.Errors.code)
    ?pos:e.Exl.Errors.pos e.Exl.Errors.msg

let is_error d = d.severity = Error
let is_warning d = d.severity = Warning
let is_info d = d.severity = Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let compare a b =
  let pos_key = function
    | None -> (max_int, max_int)
    | Some p -> (p.Exl.Ast.line, p.Exl.Ast.col)
  in
  let c = Stdlib.compare (pos_key a.pos) (pos_key b.pos) in
  if c <> 0 then c else Stdlib.compare (a.code, a.message) (b.code, b.message)

let sort ds = List.stable_sort compare ds

(* The full code catalogue; docs/DIAGNOSTICS.md is generated from the
   same descriptions, and the test suite asserts every emitted code is
   registered here. *)
let catalogue =
  [
    ("E001", "syntax error (lexer or parser)");
    ("E002", "type error");
    ("E003", "duplicate dimension name in a declaration or group by");
    ("E004", "group by key is not a dimension of the operand");
    ("E005", "unknown operator");
    ("E006", "operator arity or signature mismatch");
    ("E007", "reference to an undefined cube");
    ("E008", "vectorial operands have mismatched dimensions");
    ("E009", "cube declared or defined twice");
    ("W101", "elementary cube declared but never used");
    ("W102", "derived cube never reaches any emitted target");
    ("W103", "aggregation groups by every dimension of its operand (no-op)");
    ("W104", "black-box operator needs a seasonal period that is neither \
              given nor inferable");
    ("W105", "shift distance is zero or exceeds the representable calendar \
              range");
    ("W106", "statement is a provable identity after normalization (pure \
              copy of its operand)");
    ("E201", "unsafe tgd: a head variable is not bound by any body atom");
    ("E202", "dependency graph is not weakly acyclic (cycle through a \
              value-creating edge); chase termination not certified");
    ("E203", "functionality egd (dims determine measure) is not implied by \
              the defining tgd");
    ("E204", "stratification failure: tgd order is not a valid total order");
    ("W205", "target relation is never produced by any tgd");
    ("I301", "optimizer pruned a tgd subsumed by another (witness \
              homomorphism attached)");
    ("I302", "optimizer dropped a redundant body atom (core folding \
              witness attached)");
    ("I303", "optimizer merged duplicate functional body atoms (justified \
              by the relation's egd)");
    ("I304", "optimizer fused a temporary into its consumer(s) (cost model \
              win, equivalence checked on the critical instance)");
    ("I305", "optimizer specialized an outer combine with provably equal \
              grids to a tuple-level tgd");
    ("I306", "optimizer discharged a functionality egd implied by the \
              defining tgd (determination chain attached)");
  ]

let description code = List.assoc_opt code catalogue
let known_codes = List.map fst catalogue

let to_string d =
  let loc =
    match d.pos with
    | Some p -> Format.asprintf "%a: " Exl.Ast.pp_pos p
    | None -> ""
  in
  Printf.sprintf "%s[%s]: %s%s" (severity_to_string d.severity) d.code loc
    d.message

let to_string_with_source ~source d =
  match d.pos with
  | None -> to_string d
  | Some p ->
      let lines = String.split_on_char '\n' source in
      if p.Exl.Ast.line < 1 || p.Exl.Ast.line > List.length lines then
        to_string d
      else
        let line = List.nth lines (p.Exl.Ast.line - 1) in
        let caret = String.make (max 0 (p.Exl.Ast.col - 1)) ' ' ^ "^" in
        Printf.sprintf "%s\n  %s\n  %s" (to_string d) line caret

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let pos_fields =
    match d.pos with
    | Some p ->
        Printf.sprintf {|"line":%d,"col":%d,|} p.Exl.Ast.line p.Exl.Ast.col
    | None -> ""
  in
  Printf.sprintf {|{"code":"%s","severity":"%s",%s"message":"%s"}|}
    (json_escape d.code)
    (severity_to_string d.severity)
    pos_fields (json_escape d.message)

let list_to_json ds =
  let errors = List.length (List.filter is_error ds) in
  let warnings = List.length (List.filter is_warning ds) in
  let infos = List.length (List.filter is_info ds) in
  Printf.sprintf
    {|{"diagnostics":[%s],"summary":{"errors":%d,"warnings":%d,"infos":%d}}|}
    (String.concat "," (List.map to_json ds))
    errors warnings infos

let pp ppf d = Format.pp_print_string ppf (to_string d)
