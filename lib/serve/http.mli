(** A minimal HTTP/1.1 message layer for {!Server}.

    The toolchain has no HTTP library; the daemon needs exactly one
    thing from this module: a total request parser over raw bytes.
    [parse] never raises — malformed input maps to a structured
    {!error} (the fuzz hook {!Http_fuzz} enforces this), oversized
    input maps to 413/431 so the accept loop can bound memory before a
    request is even complete, and a short read maps to [Incomplete] so
    the connection loop knows to keep reading. *)

type limits = {
  max_request_line : int;  (** bytes in [METHOD SP target SP version] *)
  max_header_count : int;
  max_header_bytes : int;  (** one [name: value] line *)
  max_body : int;  (** declared [Content-Length] ceiling *)
}

val default_limits : limits
(** 4 KiB request line, 64 headers of 8 KiB each, 4 MiB body. *)

type request = {
  meth : string;  (** uppercase: ["GET"], ["POST"], ... *)
  target : string;  (** raw request target, undecoded *)
  path : string list;  (** decoded, split on [/], no empty segments *)
  query : (string * string) list;  (** decoded, in order of appearance *)
  version : string;  (** ["HTTP/1.1"] *)
  headers : (string * string) list;  (** names lowercased, in order *)
  body : string;
}

type error = { status : int; reason : string }
(** [status] is the HTTP status the connection should answer with
    (400, 413, 431 or 501); [reason] is a short diagnostic. *)

type parse_result =
  | Complete of request * int
      (** A full message and the bytes it consumed (pipelining: the
          next request starts at that offset). *)
  | Incomplete  (** Valid so far; need more bytes. *)
  | Failed of error

val parse : ?limits:limits -> string -> int -> parse_result
(** [parse buf off] parses one request starting at [off].  Accepts
    both CRLF and bare LF line endings.  [Transfer-Encoding] is not
    implemented (501); bodies require [Content-Length]. *)

val header : request -> string -> string option
(** Case-insensitive lookup, first match. *)

val query_param : request -> string -> string option

val wants_close : request -> bool
(** [Connection: close], or an HTTP/1.0 client without keep-alive. *)

val status_text : int -> string
(** Canonical reason phrase; ["Status"] for unknown codes. *)

val response :
  ?headers:(string * string) list ->
  ?content_type:string ->
  status:int ->
  string ->
  string
(** Serialize a response with [Content-Length] and the given body.
    [content_type] defaults to [application/json]. *)
