type violation = { input : string; reason : string }

let allowed_failure_status = [ 400; 413; 431; 501 ]

(* ----- the property ----- *)

let check ?(limits = Http.default_limits) input =
  match Http.parse ~limits input 0 with
  | exception exn ->
      Error (Printf.sprintf "parse raised %s" (Printexc.to_string exn))
  | Http.Failed e ->
      if List.mem e.Http.status allowed_failure_status then Ok ()
      else
        Error
          (Printf.sprintf "Failed with unexpected status %d (%s)" e.Http.status
             e.Http.reason)
  | Http.Incomplete -> Ok ()
  | Http.Complete (_, consumed) ->
      if consumed <= 0 then Error "Complete consumed nothing"
      else if consumed > String.length input then
        Error "Complete consumed past the end of the input"
      else (
        (* Pipelining stability: a complete message must parse the
           same when more bytes follow it. *)
        match Http.parse ~limits (input ^ "XYZ") 0 with
        | exception exn ->
            Error
              (Printf.sprintf "parse raised %s with trailing bytes"
                 (Printexc.to_string exn))
        | Http.Complete (_, consumed') when consumed' = consumed -> Ok ()
        | Http.Complete (_, consumed') ->
            Error
              (Printf.sprintf
                 "trailing bytes moved the message boundary (%d -> %d)"
                 consumed consumed')
        | Http.Incomplete | Http.Failed _ ->
            Error "trailing bytes demoted a complete message")

(* ----- the generator ----- *)

let pick rng l = List.nth l (Random.State.int rng (List.length l))

let junk rng n =
  String.init n (fun _ -> Char.chr (Random.State.int rng 256))

let token rng =
  pick rng
    [
      "GET"; "POST"; "HEAD"; "get"; "G E T"; ""; "P\x00ST"; "DELETE";
      String.make (Random.State.int rng 64) 'A';
    ]

let target rng =
  pick rng
    [
      "/"; "/v1/cube/GDP"; "/v1/cube/GDP?r=north&limit=5"; "no-slash";
      "/%"; "/%2"; "/%zz/%41"; "/a/../../etc"; "/?" ^ String.make 40 '&';
      "/" ^ String.make (Random.State.int rng 6000) 'x';
    ]

let version rng =
  pick rng [ "HTTP/1.1"; "HTTP/1.0"; "HTTP/2"; "http/1.1"; ""; "HTTP/1.1\x07" ]

let header_line rng =
  pick rng
    [
      "host: localhost"; "Content-Length: 5"; "content-length: -3";
      "content-length: 99999999999999999999"; "content-length: abc";
      "no-colon-here"; ": empty-name"; "sp ace: v"; "x: " ^ String.make 9000 'y';
      String.make (Random.State.int rng 9000) 'h' ^ ": v";
      "transfer-encoding: chunked"; "connection: close";
    ]

let eol rng = pick rng [ "\r\n"; "\n"; "\r"; "" ]

let case rng =
  match Random.State.int rng 6 with
  | 0 ->
      (* structured request with mutated pieces *)
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s%s" (token rng) (target rng) (version rng)
           (eol rng));
      for _ = 1 to Random.State.int rng 70 do
        Buffer.add_string buf (header_line rng);
        Buffer.add_string buf (eol rng)
      done;
      Buffer.add_string buf (eol rng);
      Buffer.add_string buf (junk rng (Random.State.int rng 64));
      Buffer.contents buf
  | 1 ->
      (* a well-formed request, truncated mid-flight *)
      let full =
        "POST /v1/update HTTP/1.1\r\nhost: x\r\ncontent-length: 40\r\n\r\n"
        ^ String.make 40 'b'
      in
      String.sub full 0 (Random.State.int rng (String.length full + 1))
  | 2 ->
      (* content-length disagreeing with the actual body *)
      Printf.sprintf
        "POST /v1/update HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s"
        (Random.State.int rng 100)
        (String.make (Random.State.int rng 100) 'b')
  | 3 -> junk rng (Random.State.int rng 512)
  | 4 ->
      (* unterminated giant request line / header block *)
      String.make (4000 + Random.State.int rng 10000) (pick rng [ 'A'; ':' ])
  | _ ->
      (* two pipelined messages, the second possibly cut *)
      let one = "GET /healthz HTTP/1.1\r\n\r\n" in
      let two = "GET /v1/cubes HTTP/1.1\r\nhost: x\r\n\r\n" in
      one ^ String.sub two 0 (Random.State.int rng (String.length two + 1))

(* ----- shrinking (greedy chunk removal, lib/fuzz style) ----- *)

let shrink ?(budget = 400) ?limits input reason =
  let budget = ref budget in
  let still candidate =
    if !budget <= 0 then false
    else begin
      decr budget;
      match check ?limits candidate with Error _ -> true | Ok () -> false
    end
  in
  let current = ref input and progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    (* remove chunks, biggest first *)
    let n = String.length !current in
    let chunk = ref (max 1 (n / 2)) in
    while (not !progress) && !chunk >= 1 do
      let c = !chunk in
      let i = ref 0 in
      while (not !progress) && !i + c <= String.length !current do
        let cand =
          String.sub !current 0 !i
          ^ String.sub !current (!i + c) (String.length !current - !i - c)
        in
        if still cand then begin
          current := cand;
          progress := true
        end
        else i := !i + c
      done;
      chunk := c / 2
    done
  done;
  let final_reason =
    match check ?limits !current with Error r -> r | Ok () -> reason
  in
  { input = !current; reason = final_reason }

let run ?limits ~seed ~count () =
  let rng = Random.State.make [| seed |] in
  let rec loop i =
    if i >= count then None
    else
      let input = case rng in
      match check ?limits input with
      | Ok () -> loop (i + 1)
      | Error reason -> Some (shrink ?limits input reason)
  in
  loop 0
