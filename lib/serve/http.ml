type limits = {
  max_request_line : int;
  max_header_count : int;
  max_header_bytes : int;
  max_body : int;
}

let default_limits =
  {
    max_request_line = 4096;
    max_header_count = 64;
    max_header_bytes = 8192;
    max_body = 4 * 1024 * 1024;
  }

type request = {
  meth : string;
  target : string;
  path : string list;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
}

type error = { status : int; reason : string }

type parse_result =
  | Complete of request * int
  | Incomplete
  | Failed of error

let fail status reason = Failed { status; reason }

(* Index just past the next line: [Some (line, next)] where [line] has
   the terminator (and a trailing CR) stripped.  [None] = no newline in
   the buffer yet. *)
let next_line buf off =
  match String.index_from_opt buf off '\n' with
  | None -> None
  | Some nl ->
      let stop = if nl > off && buf.[nl - 1] = '\r' then nl - 1 else nl in
      Some (String.sub buf off (stop - off), nl + 1)

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* Percent-decoding that never fails: an invalid escape stays literal.
   [plus_space] additionally maps '+' to ' ' (query components). *)
let pct_decode ?(plus_space = false) s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
        match (hex_digit s.[!i + 1], hex_digit s.[!i + 2]) with
        | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi * 16) + lo));
            i := !i + 2
        | _ -> Buffer.add_char buf '%')
    | '+' when plus_space -> Buffer.add_char buf ' '
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let split_query qs =
  String.split_on_char '&' qs
  |> List.filter_map (fun pair ->
         if pair = "" then None
         else
           match String.index_opt pair '=' with
           | None -> Some (pct_decode ~plus_space:true pair, "")
           | Some i ->
               Some
                 ( pct_decode ~plus_space:true (String.sub pair 0 i),
                   pct_decode ~plus_space:true
                     (String.sub pair (i + 1) (String.length pair - i - 1)) ))

let split_path target =
  let raw, query =
    match String.index_opt target '?' with
    | None -> (target, [])
    | Some i ->
        ( String.sub target 0 i,
          split_query (String.sub target (i + 1) (String.length target - i - 1))
        )
  in
  let segments =
    String.split_on_char '/' raw
    |> List.filter (fun s -> s <> "")
    |> List.map pct_decode
  in
  (segments, query)

let is_method s =
  s <> "" && String.for_all (fun c -> c >= 'A' && c <= 'Z') s

let trim = String.trim

let parse_request_line line =
  match List.filter (fun s -> s <> "") (String.split_on_char ' ' line) with
  | [ meth; target; version ] ->
      if not (is_method meth) then Error "malformed method"
      else if String.length target = 0 || target.[0] <> '/' then
        Error "target must start with /"
      else if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        Error "unsupported protocol version"
      else Ok (meth, target, version)
  | _ -> Error "malformed request line"

let parse_header line =
  match String.index_opt line ':' with
  | None -> Error "header without colon"
  | Some i ->
      let name = trim (String.sub line 0 i) in
      let value = trim (String.sub line (i + 1) (String.length line - i - 1)) in
      if name = "" || String.exists (fun c -> c = ' ' || c = '\t') name then
        Error "malformed header name"
      else Ok (String.lowercase_ascii name, value)

let header r name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name r.headers

let query_param r name = List.assoc_opt name r.query

let wants_close r =
  match header r "connection" with
  | Some v -> String.lowercase_ascii (trim v) = "close"
  | None -> r.version = "HTTP/1.0"

let parse ?(limits = default_limits) buf off =
  let len = String.length buf in
  if off >= len then Incomplete
  else
    match next_line buf off with
    | None ->
        if len - off > limits.max_request_line then
          fail 400 "request line too long"
        else Incomplete
    | Some (line, after_line) ->
        if String.length line > limits.max_request_line then
          fail 400 "request line too long"
        else (
          match parse_request_line line with
          | Error reason -> fail 400 reason
          | Ok (meth, target, version) ->
              (* Header block: one line at a time until the empty line. *)
              let rec headers acc count pos =
                match next_line buf pos with
                | None ->
                    if len - pos > limits.max_header_bytes then
                      `Failed { status = 413; reason = "header too large" }
                    else `Incomplete
                | Some ("", after) -> `Done (List.rev acc, after)
                | Some (line, after) ->
                    if String.length line > limits.max_header_bytes then
                      `Failed { status = 413; reason = "header too large" }
                    else if count >= limits.max_header_count then
                      `Failed { status = 413; reason = "too many headers" }
                    else (
                      match parse_header line with
                      | Error reason -> `Failed { status = 400; reason }
                      | Ok h -> headers (h :: acc) (count + 1) after)
              in
              (match headers [] 0 after_line with
              | `Incomplete -> Incomplete
              | `Failed e -> Failed e
              | `Done (headers, body_start) ->
                  let find name =
                    List.assoc_opt name headers
                  in
                  if find "transfer-encoding" <> None then
                    fail 501 "transfer-encoding not implemented"
                  else
                    let content_length =
                      match find "content-length" with
                      | None -> Ok 0
                      | Some v -> (
                          match int_of_string_opt (trim v) with
                          | Some n when n >= 0 -> Ok n
                          | _ -> Error "malformed content-length")
                    in
                    (match content_length with
                    | Error reason -> fail 400 reason
                    | Ok n when n > limits.max_body ->
                        fail 413 "body too large"
                    | Ok n ->
                        if len - body_start < n then Incomplete
                        else
                          let body = String.sub buf body_start n in
                          let path, query = split_path target in
                          Complete
                            ( {
                                meth;
                                target;
                                path;
                                query;
                                version;
                                headers;
                                body;
                              },
                              body_start + n - off ))))

let status_text = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Status"

let response ?(headers = []) ?(content_type = "application/json") ~status body =
  let buf = Buffer.create (256 + String.length body) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  Buffer.add_string buf (Printf.sprintf "content-type: %s\r\n" content_type);
  Buffer.add_string buf
    (Printf.sprintf "content-length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  Buffer.contents buf
