(** Fuzz hook for the HTTP request parser, in the [lib/fuzz] style:
    seeded generation of adversarial raw request bytes, a totality
    property, and an integrated greedy shrinker that re-derives a
    minimal violating input.

    The property: {!Http.parse} is {e total} over arbitrary bytes —

    - it never raises;
    - [Failed] always carries one of the statuses the connection loop
      knows how to answer (400, 413, 431, 501);
    - [Complete] consumes a positive prefix no longer than the input,
      and stays stable when more bytes arrive (pipelining);
    - [Incomplete] is only ever returned for inputs still within the
      configured limits' reach.

    The generator covers the attack shapes named in the issue:
    malformed request lines, oversized and unterminated headers,
    truncated and oversized bodies, binary junk, bare-LF endings and
    broken percent-escapes. *)

type violation = {
  input : string;  (** shrunk offending bytes *)
  reason : string;  (** which clause of the property failed *)
}

val check : ?limits:Http.limits -> string -> (unit, string) result
(** Run the totality property on one input. *)

val case : Random.State.t -> string
(** One generated adversarial input. *)

val run :
  ?limits:Http.limits -> seed:int -> count:int -> unit -> violation option
(** Generate [count] cases from [seed]; on the first violation, shrink
    it (greedy chunk removal, budgeted) and report it.  [None] means
    the parser survived the campaign. *)
