open Matrix

(** An immutable, atomically-published view of the engine's cube store.

    The server keeps exactly one writer (the coalescing update loop)
    and any number of reader threads.  Readers never touch the engine:
    every GET resolves against the snapshot last published with
    {!Atomic.set}, so a half-applied batch is invisible — the writer
    builds the next snapshot only after {!Engine.Exlengine.apply_updates}
    committed, and swaps it in with one atomic store (swap-on-commit).

    Publishing is cheap: elementary cubes (which the engine revises in
    place) are copied only when the batch touched them, derived cubes
    and history versions are fresh or copy-on-store objects the engine
    never mutates again, and untouched entries are shared with the
    previous snapshot. *)

type status =
  | Healthy
  | Quarantined of Engine.Faults.failure_report option
      (** Failed on every capable target during the last full
          recompute; the report (when one names the cube) carries the
          structured diagnostic the 503 body serves. *)
  | Skipped of unit
      (** Not attempted because an upstream cube is quarantined. *)

type entry = {
  kind : Registry.kind;
  schema : Schema.t;
  current : Cube.t option;  (** [None] when no data exists yet *)
  versions : (Calendar.Date.t * Cube.t) list;  (** oldest first *)
  status : status;
}

type t

val seq : t -> int
(** Publication sequence number, 0 for the boot snapshot. *)

val capture :
  ?report:Engine.Dispatcher.report -> Engine.Exlengine.t -> t
(** The boot snapshot: every cube copied out of the engine, statuses
    derived from the recompute [report]'s quarantined/skipped sets. *)

val publish : prev:t -> touched:string list -> Engine.Exlengine.t -> t
(** The post-commit snapshot: entries named in [touched] are re-read
    from the engine (elementary currents copied, derived currents and
    history versions shared), everything else is shared with [prev]. *)

val find : t -> string -> entry option

val names : t -> string list
(** Sorted. *)

val as_of : entry -> Calendar.Date.t -> Cube.t option
(** The version whose validity start is the latest one <= the date. *)
