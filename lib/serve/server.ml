open Matrix
module J = Obs.Json

type config = {
  max_queue : int;
  coalesce_window : float;
  request_timeout : float;
  commit_timeout : float;
  limits : Http.limits;
  log : (string -> unit) option;
}

let default_config =
  {
    max_queue = 64;
    coalesce_window = 0.002;
    request_timeout = 10.;
    commit_timeout = 30.;
    limits = Http.default_limits;
    log = None;
  }

(* One queued update batch.  The writer publishes the outcome (and the
   sequence number of the snapshot that includes it) through the
   atomic; the posting thread polls it with a deadline. *)
type job = {
  job_updates : Engine.Update.t list;
  job_as_of : Calendar.Date.t;
  job_outcome :
    ((Engine.Exlengine.update_report, string) result * int) option Atomic.t;
}

type t = {
  engine : Engine.Exlengine.t;
  config : config;
  snap : Snapshot.t Atomic.t;
  queue : job Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  stop : bool Atomic.t;
  drain_claimed : bool Atomic.t;
  paused : bool Atomic.t;
  writer_done : bool Atomic.t;
  inflight : int Atomic.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  cmutex : Mutex.t;
  mutable conn_id : int;
}

let snapshot t = Atomic.get t.snap

let queue_depth t =
  Mutex.lock t.qmutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.qmutex;
  n

let draining t = Atomic.get t.stop
let pause_writer t = Atomic.set t.paused true
let resume_writer t = Atomic.set t.paused false

(* ----- JSON rendering ----- *)

let value_json (v : Value.t) : J.t =
  match v with
  | Value.Null -> J.Null
  | Value.Bool b -> J.Bool b
  | Value.Int i -> J.Num (float_of_int i)
  | Value.Float f -> J.Num f
  | Value.String s -> J.Str s
  | Value.Date _ | Value.Period _ -> J.Str (Value.to_string v)

let schema_json (schema : Schema.t) : J.t =
  J.Obj
    [
      ( "dims",
        J.List
          (Array.to_list schema.Schema.dims
          |> List.map (fun (d : Schema.dimension) ->
                 J.Obj
                   [
                     ("name", J.Str d.Schema.dim_name);
                     ("domain", J.Str (Domain.to_string d.Schema.dim_domain));
                   ])) );
      ("measure", J.Str schema.Schema.measure_name);
      ( "measure_domain",
        J.Str (Domain.to_string schema.Schema.measure_domain) );
    ]

let error_body status reason =
  J.to_string
    (J.Obj [ ("error", J.Str reason); ("status", J.Num (float_of_int status)) ])

type reply = {
  status : int;
  headers : (string * string) list;
  content_type : string;
  body : string;
}

let reply ?(headers = []) ?(content_type = "application/json") status body =
  { status; headers; content_type; body }

let error_reply ?headers status reason =
  reply ?headers status (error_body status reason)

let cube_json ?limit ?(filter = []) ~seq ~name (entry : Snapshot.entry) cube =
  let indexed =
    List.map
      (fun (dim, v) ->
        (Schema.dim_index_exn entry.Snapshot.schema dim, v))
      filter
  in
  let matches tuple =
    List.for_all (fun (i, v) -> Value.equal (Tuple.get tuple i) v) indexed
  in
  let rows =
    Cube.to_alist cube
    |> List.filter (fun (tuple, _) -> matches tuple)
  in
  let rows =
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) rows
    | None -> rows
  in
  J.to_string
    (J.Obj
       [
         ("cube", J.Str name);
         ("kind", J.Str (Registry.kind_to_string entry.Snapshot.kind));
         ("schema", schema_json entry.Snapshot.schema);
         ( "rows",
           J.List
             (List.map
                (fun (tuple, v) ->
                  J.List
                    (List.map value_json (Tuple.to_list tuple)
                    @ [ value_json v ]))
                rows) );
         ("cardinality", J.Num (float_of_int (Cube.cardinality cube)));
         ("returned", J.Num (float_of_int (List.length rows)));
         ("seq", J.Num (float_of_int seq));
       ])

let quarantine_json name (fr : Engine.Faults.failure_report option) =
  let diagnostic =
    match fr with
    | None -> J.Null
    | Some f ->
        J.Obj
          [
            ("target", J.Str f.Engine.Faults.f_target);
            ( "stage",
              J.Str (Engine.Faults.stage_to_string f.Engine.Faults.f_stage) );
            ( "failure",
              J.Str (Engine.Faults.kind_to_string f.Engine.Faults.f_kind) );
            ("attempts", J.Num (float_of_int f.Engine.Faults.f_attempts));
          ]
  in
  J.to_string
    (J.Obj
       [
         ("error", J.Str "quarantined");
         ("cube", J.Str name);
         ("status", J.Num 503.);
         ("diagnostic", diagnostic);
       ])

let status_string = function
  | Snapshot.Healthy -> "healthy"
  | Snapshot.Quarantined _ -> "quarantined"
  | Snapshot.Skipped () -> "skipped"

(* ----- read endpoints ----- *)

(* Dimension filters come in as query parameters named after the
   cube's dimensions; [limit] caps the row count.  Anything else is a
   client error, so typos fail loudly instead of silently returning
   the unfiltered slice. *)
let parse_filters (entry : Snapshot.entry) (req : Http.request) =
  List.fold_left
    (fun acc (k, v) ->
      match acc with
      | Error _ -> acc
      | Ok (limit, filters) -> (
          if k = "limit" then
            match int_of_string_opt v with
            | Some n when n >= 0 -> Ok (Some n, filters)
            | _ -> Error "limit must be a non-negative integer"
          else
            match Schema.dim_index entry.Snapshot.schema k with
            | Some _ ->
                Ok (limit, filters @ [ (k, Value.of_string_guess v) ])
            | None -> Error (Printf.sprintf "unknown query parameter %s" k)))
    (Ok (None, []))
    req.Http.query

let degraded_reply name (entry : Snapshot.entry) =
  match entry.Snapshot.status with
  | Snapshot.Healthy -> None
  | Snapshot.Quarantined fr ->
      Some (reply 503 (quarantine_json name fr))
  | Snapshot.Skipped () ->
      Some
        (error_reply 503
           (Printf.sprintf "cube %s skipped: upstream quarantine" name))

let read_cube t ~as_of name req =
  let snap = snapshot t in
  match Snapshot.find snap name with
  | None -> error_reply 404 (Printf.sprintf "unknown cube %s" name)
  | Some entry -> (
      match parse_filters entry req with
      | Error msg -> error_reply 400 msg
      | Ok (limit, filter) -> (
          let render cube =
            reply 200
              (cube_json ?limit ~filter ~seq:(Snapshot.seq snap) ~name entry
                 cube)
          in
          match as_of with
          | None -> (
              match degraded_reply name entry with
              | Some r -> r
              | None -> (
                  match entry.Snapshot.current with
                  | Some cube -> render cube
                  | None ->
                      error_reply 404
                        (Printf.sprintf "no data for cube %s" name)))
          | Some date -> (
              (* Point-in-time reads answer from materialized history
                 versions even while the cube is quarantined — old
                 versions survive a failed recomputation. *)
              match Snapshot.as_of entry date with
              | Some cube -> render cube
              | None -> (
                  match degraded_reply name entry with
                  | Some r -> r
                  | None ->
                      error_reply 404
                        (Printf.sprintf "no version of %s as of %s" name
                           (Calendar.Date.to_string date))))))

let read_sdmx t ~dsd name req =
  let snap = snapshot t in
  match Snapshot.find snap name with
  | None -> error_reply 404 (Printf.sprintf "unknown cube %s" name)
  | Some entry -> (
      if dsd then
        reply ~content_type:"application/xml" 200
          (Sdmx.dsd_of_schema entry.Snapshot.schema)
      else
        match degraded_reply name entry with
        | Some r -> r
        | None -> (
            match entry.Snapshot.current with
            | None -> error_reply 404 (Printf.sprintf "no data for cube %s" name)
            | Some cube -> (
                match parse_filters entry req with
                | Error msg -> error_reply 400 msg
                | Ok (_, filter) ->
                    let indexed =
                      List.map
                        (fun (dim, v) ->
                          (Schema.dim_index_exn entry.Snapshot.schema dim, v))
                        filter
                    in
                    let cube =
                      if indexed = [] then cube
                      else
                        Cube.filter
                          (fun tuple _ ->
                            List.for_all
                              (fun (i, v) ->
                                Value.equal (Tuple.get tuple i) v)
                              indexed)
                          cube
                    in
                    reply ~content_type:"application/xml" 200
                      (Sdmx.generic_data_of_cube cube))))

let catalog t =
  let snap = snapshot t in
  let entries =
    List.map
      (fun name ->
        let entry = Option.get (Snapshot.find snap name) in
        J.Obj
          [
            ("name", J.Str name);
            ("kind", J.Str (Registry.kind_to_string entry.Snapshot.kind));
            ("status", J.Str (status_string entry.Snapshot.status));
            ( "cardinality",
              match entry.Snapshot.current with
              | Some c -> J.Num (float_of_int (Cube.cardinality c))
              | None -> J.Null );
            ( "versions",
              J.Num (float_of_int (List.length entry.Snapshot.versions)) );
          ])
      (Snapshot.names snap)
  in
  reply 200
    (J.to_string
       (J.Obj
          [
            ("seq", J.Num (float_of_int (Snapshot.seq snap)));
            ("cubes", J.List entries);
          ]))

let healthz t =
  reply 200
    (J.to_string
       (J.Obj
          [
            ("status", J.Str (if draining t then "draining" else "ok"));
            ("seq", J.Num (float_of_int (Snapshot.seq (snapshot t))));
            ("queue_depth", J.Num (float_of_int (queue_depth t)));
          ]))

let metrics_reply () =
  match Obs.get () with
  | Some c ->
      reply ~content_type:"text/plain; version=0.0.4" 200
        (Obs.Export.prometheus c.Obs.metrics)
  | None ->
      reply ~content_type:"text/plain; version=0.0.4" 200
        "# no collector installed\n"

let index () =
  reply 200
    (J.to_string
       (J.Obj
          [
            ("service", J.Str "exlserve");
            ( "endpoints",
              J.List
                (List.map
                   (fun s -> J.Str s)
                   [
                     "GET /healthz";
                     "GET /metrics";
                     "GET /v1/cubes";
                     "GET /v1/cube/:name?dim=value&limit=n";
                     "GET /v1/cube/:name/asof/:date";
                     "GET /v1/sdmx/:name";
                     "GET /v1/sdmx/:name/dsd";
                     "POST /v1/update";
                   ]) );
          ]))

(* ----- update endpoint ----- *)

let today () =
  let tm = Unix.gmtime (Unix.time ()) in
  Calendar.Date.make ~year:(tm.Unix.tm_year + 1900) ~month:(tm.Unix.tm_mon + 1)
    ~day:tm.Unix.tm_mday

let value_of_json (j : J.t) =
  match j with
  | J.Str s -> Ok (Value.of_string_guess s)
  | J.Num n ->
      Ok
        (if Float.is_integer n && Float.abs n < 1e15 then
           Value.Int (int_of_float n)
         else Value.Float n)
  | J.Bool b -> Ok (Value.Bool b)
  | J.Null -> Ok Value.Null
  | J.List _ | J.Obj _ -> Error "keys and values must be scalars"

let rec result_map f = function
  | [] -> Ok []
  | x :: rest -> (
      match f x with
      | Error _ as e -> e
      | Ok y -> (
          match result_map f rest with
          | Error _ as e -> e
          | Ok ys -> Ok (y :: ys)))

let update_of_json (j : J.t) =
  match j with
  | J.Obj _ -> (
      match (J.member "cube" j, J.member "key" j) with
      | Some (J.Str cube), Some (J.List key) -> (
          match result_map value_of_json key with
          | Error _ as e -> e
          | Ok key -> (
              match (J.member "value" j, J.member "delete" j) with
              | Some v, None -> (
                  match value_of_json v with
                  | Error _ as e -> e
                  | Ok v -> Ok (Engine.Update.set ~cube ~key v))
              | None, Some (J.Bool true) ->
                  Ok (Engine.Update.remove ~cube ~key)
              | _ -> Error "update needs either \"value\" or \"delete\": true"))
      | _ -> Error "update needs \"cube\" and \"key\" fields")
  | _ -> Error "each update must be an object"

(* The JSON batch form: either a bare list of updates or an object
   {"updates": [...], "as_of": "YYYY-MM-DD"}. *)
let updates_of_json text =
  match J.parse text with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok j -> (
      let items, as_of =
        match j with
        | J.List l -> (Some l, None)
        | J.Obj _ -> (
            ( (match J.member "updates" j with
              | Some (J.List l) -> Some l
              | _ -> None),
              match J.member "as_of" j with
              | Some (J.Str s) -> Some s
              | _ -> None ))
        | _ -> (None, None)
      in
      match items with
      | None -> Error "expected a list of updates or an \"updates\" field"
      | Some items -> (
          match result_map update_of_json items with
          | Error _ as e -> e
          | Ok updates -> (
              match as_of with
              | None -> Ok (updates, None)
              | Some s -> (
                  match Calendar.Date.of_string s with
                  | Some d -> Ok (updates, Some d)
                  | None -> Error (Printf.sprintf "invalid as_of date %s" s)))))

let parse_update_body t (req : Http.request) =
  let content_type =
    Option.value ~default:"text/plain" (Http.header req "content-type")
  in
  let is_json =
    String.length content_type >= 16
    && String.sub content_type 0 16 = "application/json"
  in
  let from_body =
    if is_json then updates_of_json req.Http.body
    else
      let schema_of =
        Engine.Determination.schema (Engine.Exlengine.determination t.engine)
      in
      Result.map
        (fun updates -> (updates, None))
        (Engine.Update.of_string ~schema_of req.Http.body)
  in
  match from_body with
  | Error _ as e -> e
  | Ok (updates, body_as_of) -> (
      match Http.query_param req "as_of" with
      | None -> Ok (updates, body_as_of)
      | Some s -> (
          match Calendar.Date.of_string s with
          | Some d -> Ok (updates, Some d)
          | None -> Error (Printf.sprintf "invalid as_of date %s" s)))

let enqueue t job =
  Mutex.lock t.qmutex;
  if Atomic.get t.stop then begin
    Mutex.unlock t.qmutex;
    `Draining
  end
  else if Queue.length t.queue >= t.config.max_queue then begin
    Mutex.unlock t.qmutex;
    Obs.count "serve.http_429";
    `Full
  end
  else begin
    Queue.push job t.queue;
    Obs.gauge "serve.queue_depth" (float_of_int (Queue.length t.queue));
    Condition.signal t.qcond;
    Mutex.unlock t.qmutex;
    `Queued
  end

let update_report_json (r : Engine.Exlengine.update_report) seq =
  J.to_string
    (J.Obj
       [
         ("committed", J.Bool true);
         ("seq", J.Num (float_of_int seq));
         ("updated", J.List (List.map (fun s -> J.Str s) r.Engine.Exlengine.updated));
         ( "recomputed",
           J.List (List.map (fun s -> J.Str s) r.Engine.Exlengine.recomputed) );
         ("facts_changed", J.Num (float_of_int r.Engine.Exlengine.facts_changed));
         ( "facts_rederived",
           J.Num (float_of_int r.Engine.Exlengine.facts_rederived) );
         ("total_facts", J.Num (float_of_int r.Engine.Exlengine.total_facts));
         ("cache_hit", J.Bool r.Engine.Exlengine.cache_hit);
         ( "strata_skipped",
           J.Num (float_of_int r.Engine.Exlengine.strata_skipped) );
         ( "strata_rederived",
           J.Num (float_of_int r.Engine.Exlengine.strata_rederived) );
       ])

let retry_after t =
  [ ("retry-after", string_of_int (max 1 (int_of_float (ceil t.config.coalesce_window)))) ]

let handle_update t (req : Http.request) =
  if draining t then error_reply 503 "draining"
  else
    match parse_update_body t req with
    | Error msg -> error_reply 400 msg
    | Ok (updates, as_of) -> (
        match Engine.Exlengine.validate_updates t.engine updates with
        | Error msg -> error_reply 400 msg
        | Ok () ->
            if updates = [] then
              reply 200
                (J.to_string
                   (J.Obj
                      [
                        ("committed", J.Bool true);
                        ("seq", J.Num (float_of_int (Snapshot.seq (snapshot t))));
                        ("updated", J.List []);
                        ("recomputed", J.List []);
                        ("facts_changed", J.Num 0.);
                      ]))
            else
              let job =
                {
                  job_updates = updates;
                  job_as_of = Option.value ~default:(today ()) as_of;
                  job_outcome = Atomic.make None;
                }
              in
              (match enqueue t job with
              | `Draining -> error_reply 503 "draining"
              | `Full ->
                  error_reply ~headers:(retry_after t) 429
                    "update queue full, retry later"
              | `Queued -> (
                  let deadline =
                    Unix.gettimeofday () +. t.config.commit_timeout
                  in
                  let rec wait () =
                    match Atomic.get job.job_outcome with
                    | Some (Ok r, seq) -> reply 200 (update_report_json r seq)
                    | Some (Error msg, _) -> error_reply 500 msg
                    | None ->
                        if Unix.gettimeofday () > deadline then
                          error_reply 504
                            "commit timed out (the batch may still apply)"
                        else begin
                          Thread.delay 0.001;
                          wait ()
                        end
                  in
                  wait ())))

(* ----- router ----- *)

let route t (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "GET", [] -> index ()
  | "GET", [ "healthz" ] -> healthz t
  | "GET", [ "metrics" ] -> metrics_reply ()
  | "GET", [ "v1"; "cubes" ] -> catalog t
  | "GET", [ "v1"; "cube"; name ] -> read_cube t ~as_of:None name req
  | "GET", [ "v1"; "cube"; name; "asof"; date ] -> (
      match Calendar.Date.of_string date with
      | Some d -> read_cube t ~as_of:(Some d) name req
      | None -> error_reply 400 (Printf.sprintf "invalid date %s" date))
  | "GET", [ "v1"; "sdmx"; name ] -> read_sdmx t ~dsd:false name req
  | "GET", [ "v1"; "sdmx"; name; "dsd" ] -> read_sdmx t ~dsd:true name req
  | "POST", [ "v1"; "update" ] -> handle_update t req
  | ("GET" | "HEAD" | "POST"), _ -> error_reply 404 "not found"
  | _ -> error_reply 405 "method not allowed"

let handle_request t req =
  let t0 = Unix.gettimeofday () in
  Obs.count "serve.requests";
  let r =
    try route t req
    with exn ->
      (* The router is total by construction; this is the backstop
         that keeps one bad request from killing its connection. *)
      error_reply 500 (Printexc.to_string exn)
  in
  let dt = Unix.gettimeofday () -. t0 in
  Obs.observe "serve.request_seconds" dt;
  Obs.count (Printf.sprintf "serve.responses_%dxx" (r.status / 100));
  (match t.config.log with
  | None -> ()
  | Some sink ->
      sink
        (J.to_string
           (J.Obj
              [
                ("t", J.Num t0);
                ("method", J.Str req.Http.meth);
                ("path", J.Str req.Http.target);
                ("status", J.Num (float_of_int r.status));
                ("seconds", J.Num dt);
                ("bytes", J.Num (float_of_int (String.length r.body)));
              ])));
  r

(* ----- the writer loop ----- *)

(* Consecutive jobs with the same as-of date commit as one compacted
   batch; a date change splits the run so history versions land under
   the dates their clients asked for, in arrival order. *)
let rec group_by_as_of = function
  | [] -> []
  | j :: rest ->
      let rec span acc = function
        | k :: more when Calendar.Date.equal k.job_as_of j.job_as_of ->
            span (k :: acc) more
        | more -> (List.rev acc, more)
      in
      let same, others = span [ j ] rest in
      (j.job_as_of, same) :: group_by_as_of others

let commit_group t (as_of, jobs) =
  let batch =
    Engine.Update.concat (List.map (fun j -> j.job_updates) jobs)
  in
  Obs.observe ~buckets:Obs.Metrics.size_buckets "serve.coalesced_batch"
    (float_of_int (List.length batch));
  Obs.count ~n:(List.length jobs) "serve.coalesced_jobs";
  let result = Engine.Exlengine.apply_updates ~as_of t.engine batch in
  let seq =
    match result with
    | Ok r ->
        let touched =
          r.Engine.Exlengine.updated @ r.Engine.Exlengine.recomputed
        in
        let snap =
          Snapshot.publish ~prev:(Atomic.get t.snap) ~touched t.engine
        in
        Atomic.set t.snap snap;
        Obs.count "serve.commits";
        Obs.gauge "serve.snapshot_seq" (float_of_int (Snapshot.seq snap));
        Snapshot.seq snap
    | Error _ ->
        Obs.count "serve.commit_errors";
        Snapshot.seq (Atomic.get t.snap)
  in
  List.iter (fun j -> Atomic.set j.job_outcome (Some (result, seq))) jobs

let writer_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.qmutex;
    while Queue.is_empty t.queue && not (Atomic.get t.stop) do
      Condition.wait t.qcond t.qmutex
    done;
    if Queue.is_empty t.queue then begin
      (* stop requested and nothing left to drain *)
      Mutex.unlock t.qmutex;
      running := false
    end
    else begin
      Mutex.unlock t.qmutex;
      (* Coalescing window: let followers of the first job queue up so
         they ride the same apply_updates call.  Skipped when
         draining — latency no longer matters, finish fast. *)
      if t.config.coalesce_window > 0. && not (Atomic.get t.stop) then
        Thread.delay t.config.coalesce_window;
      while Atomic.get t.paused && not (Atomic.get t.stop) do
        Thread.delay 0.001
      done;
      Mutex.lock t.qmutex;
      let jobs = ref [] in
      while not (Queue.is_empty t.queue) do
        jobs := Queue.pop t.queue :: !jobs
      done;
      Obs.gauge "serve.queue_depth" 0.;
      Mutex.unlock t.qmutex;
      List.iter (commit_group t) (group_by_as_of (List.rev !jobs))
    end
  done;
  Atomic.set t.writer_done true

let create ?(config = default_config) ?report engine =
  let t =
    {
      engine;
      config;
      snap = Atomic.make (Snapshot.capture ?report engine);
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      stop = Atomic.make false;
      drain_claimed = Atomic.make false;
      paused = Atomic.make false;
      writer_done = Atomic.make false;
      inflight = Atomic.make 0;
      conns = Hashtbl.create 32;
      cmutex = Mutex.create ();
      conn_id = 0;
    }
  in
  ignore (Thread.create writer_loop t);
  t

(* ----- sockets ----- *)

let listen_inet ?(backlog = 128) ~host ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd backlog;
  let actual =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, actual)

let listen_unix ?(backlog = 128) ~path () =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd backlog;
  fd

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let register_conn t fd =
  Mutex.lock t.cmutex;
  t.conn_id <- t.conn_id + 1;
  let id = t.conn_id in
  Hashtbl.replace t.conns id fd;
  Mutex.unlock t.cmutex;
  id

let unregister_conn t id =
  Mutex.lock t.cmutex;
  Hashtbl.remove t.conns id;
  Mutex.unlock t.cmutex

(* Per-connection loop: keep-alive with pipelining.  The parse buffer
   is bounded by the parser's own limits — a Failed verdict answers
   and closes, so a hostile peer cannot grow it without bound. *)
let connection t fd =
  let id = register_conn t fd in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.request_timeout;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.request_timeout;
     let chunk = Bytes.create 8192 in
     let data = ref "" in
     let closing = ref false in
     (try
        while not !closing do
          match Http.parse ~limits:t.config.limits !data 0 with
          | Http.Complete (req, consumed) ->
              data :=
                String.sub !data consumed (String.length !data - consumed);
              let r = handle_request t req in
              let close_after =
                Http.wants_close req || Atomic.get t.stop
              in
              let headers =
                ( "connection",
                  if close_after then "close" else "keep-alive" )
                :: r.headers
              in
              write_all fd
                (Http.response ~headers ~content_type:r.content_type
                   ~status:r.status r.body);
              if close_after then closing := true
          | Http.Failed e ->
              Obs.count "serve.parse_errors";
              write_all fd
                (Http.response
                   ~headers:[ ("connection", "close") ]
                   ~status:e.Http.status
                   (error_body e.Http.status e.Http.reason));
              closing := true
          | Http.Incomplete ->
              let n = Unix.read fd chunk 0 (Bytes.length chunk) in
              if n = 0 then closing := true
              else data := !data ^ Bytes.sub_string chunk 0 n
        done
      with
     | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
       ->
         (* Read timed out.  Mid-request gets a 408; an idle
            keep-alive connection is just closed. *)
         if !data <> "" then (
           try
             write_all fd
               (Http.response
                  ~headers:[ ("connection", "close") ]
                  ~status:408 (error_body 408 "request timed out"))
           with _ -> ())
     | Unix.Unix_error _ | Sys_error _ | End_of_file -> ())
   with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  unregister_conn t id;
  Atomic.decr t.inflight

let rec wait_until ~deadline cond =
  cond ()
  ||
  if Unix.gettimeofday () > deadline then false
  else begin
    Thread.delay 0.002;
    wait_until ~deadline cond
  end

let drain t =
  (* Let the writer finish the queue, give in-flight requests a grace
     period, then shut lingering connections down hard (wakes any
     thread blocked in read) and wait for the threads to exit. *)
  Mutex.lock t.qmutex;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex;
  let deadline = Unix.gettimeofday () +. t.config.request_timeout +. 1. in
  ignore (wait_until ~deadline (fun () -> Atomic.get t.writer_done));
  let grace = Unix.gettimeofday () +. 0.5 in
  ignore (wait_until ~deadline:grace (fun () -> Atomic.get t.inflight = 0));
  Mutex.lock t.cmutex;
  Hashtbl.iter
    (fun _ fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    t.conns;
  Mutex.unlock t.cmutex;
  ignore (wait_until ~deadline (fun () -> Atomic.get t.inflight = 0))

(* Whoever claims the drain first performs it — the stop flag alone
   cannot gate this, or a [request_shutdown] (signal handler) would
   leave nobody draining when [serve] unwinds. *)
let shutdown t =
  Atomic.set t.stop true;
  if not (Atomic.exchange t.drain_claimed true) then drain t

let request_shutdown t =
  Atomic.set t.stop true;
  Condition.broadcast t.qcond

let serve t fd =
  (* A dead client must surface as EPIPE on write, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try
     while not (Atomic.get t.stop) do
       match Unix.select [ fd ] [] [] 0.1 with
       | [], _, _ -> ()
       | _ -> (
           match Unix.accept ~cloexec:true fd with
           | client, _ ->
               Atomic.incr t.inflight;
               ignore (Thread.create (connection t) client)
           | exception
               Unix.Unix_error
                 ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                   | Unix.ECONNABORTED ),
                   _,
                   _ ) ->
               ())
     done
   with Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  shutdown t

let serve_background t fd = Thread.create (fun () -> serve t fd) ()
