open Matrix

(** exlserve: the concurrent query/update daemon over the incremental
    engine.

    Threading model (docs/SERVING.md):

    - {e One writer.}  A dedicated thread owns the engine.  POSTed
      update batches are queued; the writer drains the queue after a
      short coalescing window, merges everything into one compacted
      batch ({!Engine.Update.concat}) and commits it with a single
      {!Engine.Exlengine.apply_updates} call, then publishes a fresh
      {!Snapshot.t} with one atomic store.
    - {e Lock-free reads.}  Every GET resolves against the snapshot
      published by the last commit — readers never take a lock and
      never observe a half-applied batch (snapshot isolation); a
      client whose POST returned 200 sees its write on the very next
      GET (read-your-writes: the reply is sent only after publish).
    - {e Admission control.}  The queue is bounded; when it is full
      the request is rejected immediately with 429 and a
      [Retry-After] hint instead of queueing without bound.
    - {e Graceful degradation.}  Cubes quarantined by the
      fault/retry/fallback machinery answer 503 with a structured
      diagnostic while healthy cubes keep serving; point-in-time
      reads of a quarantined cube still answer from surviving
      history versions.
    - {e Clean drain.}  {!shutdown} stops accepting, lets in-flight
      requests and queued commits finish, then returns. *)

type config = {
  max_queue : int;  (** queued update jobs before 429 (default 64) *)
  coalesce_window : float;
      (** seconds the writer waits after the first queued job to
          merge followers into the same commit (default 2ms) *)
  request_timeout : float;
      (** socket read/write budget per request, seconds (default 10) *)
  commit_timeout : float;
      (** max seconds a POST waits for its commit before answering
          504 (the commit itself still completes; default 30) *)
  limits : Http.limits;  (** request parser bounds (400/413) *)
  log : (string -> unit) option;
      (** JSONL request-trace sink: one JSON object per request *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?report:Engine.Dispatcher.report ->
  Engine.Exlengine.t ->
  t
(** Wrap a booted engine (programs registered, data loaded,
    recomputed, ideally {!Engine.Exlengine.warm}ed).  Publishes the
    boot snapshot — [report] (from the boot recompute) seeds the
    quarantine statuses — and starts the writer thread.  The engine
    must not be touched by the caller afterwards. *)

val snapshot : t -> Snapshot.t
(** The currently published snapshot (what readers see). *)

val queue_depth : t -> int

val draining : t -> bool

(** {2 Request handling} (transport-independent, used by the tests) *)

type reply = {
  status : int;
  headers : (string * string) list;
  content_type : string;
  body : string;
}

val handle_request : t -> Http.request -> reply
(** Route and answer one parsed request.  POST [/v1/update] blocks
    until the write commits (or times out); GETs never block on the
    writer. *)

(** {2 Sockets} *)

val listen_inet :
  ?backlog:int -> host:string -> port:int -> unit -> Unix.file_descr * int
(** Bound + listening TCP socket; returns the actual port (pass
    [port:0] for an ephemeral one). *)

val listen_unix : ?backlog:int -> path:string -> unit -> Unix.file_descr
(** Bound + listening Unix-domain socket (unlinks [path] first). *)

val serve : t -> Unix.file_descr -> unit
(** Accept loop: one thread per connection with keep-alive and
    pipelining, honoring [config.request_timeout].  Blocks until
    {!shutdown}; closes the listening socket on exit. *)

val serve_background : t -> Unix.file_descr -> Thread.t

val shutdown : t -> unit
(** Drain: stop accepting, reject new updates with 503, finish queued
    commits and in-flight requests, stop the writer.  Idempotent;
    safe to call from a signal handler's deferred path. *)

val request_shutdown : t -> unit
(** Flip the stop flag and wake the writer, nothing else — the tiny,
    non-blocking half of {!shutdown} a SIGTERM handler can run; the
    {!serve} loop notices within its poll interval and performs the
    actual drain. *)

(** {2 Test hooks} *)

val pause_writer : t -> unit
(** Hold the writer before its next commit — queued updates
    accumulate (this is how the tests force 429 and observe snapshot
    isolation deterministically). *)

val resume_writer : t -> unit

val cube_json : ?limit:int -> ?filter:(string * Value.t) list ->
  seq:int -> name:string -> Snapshot.entry -> Cube.t -> string
(** The slice rendering used by [GET /v1/cube/:name] — exposed for
    the golden tests. *)
