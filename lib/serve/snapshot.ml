open Matrix

type status =
  | Healthy
  | Quarantined of Engine.Faults.failure_report option
  | Skipped of unit

type entry = {
  kind : Registry.kind;
  schema : Schema.t;
  current : Cube.t option;
  versions : (Calendar.Date.t * Cube.t) list;
  status : status;
}

type t = { snap_seq : int; entries : (string, entry) Hashtbl.t }

let seq t = t.snap_seq

let find t name = Hashtbl.find_opt t.entries name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.entries []
  |> List.sort String.compare

let as_of entry date =
  let applicable =
    List.filter
      (fun (d, _) -> Calendar.Date.compare d date <= 0)
      entry.versions
  in
  match List.rev applicable with (_, cube) :: _ -> Some cube | [] -> None

(* Elementary cubes are revised in place by the engine's update path,
   so the snapshot owns a copy; derived cubes are rebuilt as fresh
   objects on every recomputation and history versions are copied on
   store, so sharing those references is safe. *)
let read_entry engine ~status name =
  let det = Engine.Exlengine.determination engine in
  match (Engine.Determination.schema det name, Engine.Determination.kind det name)
  with
  | Some schema, Some kind ->
      let current =
        match Engine.Exlengine.cube engine name with
        | Some c when kind = Registry.Elementary -> Some (Cube.copy c)
        | other -> other
      in
      let versions =
        Engine.Historicity.versions (Engine.Exlengine.history engine) name
      in
      Some { kind; schema; current; versions; status }
  | _ -> None

let statuses report =
  match report with
  | None -> fun _ -> Healthy
  | Some (r : Engine.Dispatcher.report) ->
      fun name ->
        if List.mem name r.Engine.Dispatcher.quarantined then
          Quarantined
            (List.find_opt
               (fun (f : Engine.Faults.failure_report) ->
                 f.Engine.Faults.f_resolution = Engine.Faults.Quarantined
                 && List.mem name f.Engine.Faults.f_cubes)
               r.Engine.Dispatcher.failures)
        else if List.mem name r.Engine.Dispatcher.skipped then Skipped ()
        else Healthy

let capture ?report engine =
  let det = Engine.Exlengine.determination engine in
  let status_of = statuses report in
  let entries = Hashtbl.create 32 in
  List.iter
    (fun name ->
      match read_entry engine ~status:(status_of name) name with
      | Some e -> Hashtbl.replace entries name e
      | None -> ())
    (Engine.Determination.cubes det);
  { snap_seq = 0; entries }

let publish ~prev ~touched engine =
  let entries = Hashtbl.copy prev.entries in
  List.iter
    (fun name ->
      let status =
        match Hashtbl.find_opt prev.entries name with
        | Some e -> e.status
        | None -> Healthy
      in
      match read_entry engine ~status name with
      | Some e -> Hashtbl.replace entries name e
      | None -> ())
    touched;
  { snap_seq = prev.snap_seq + 1; entries }
