open Matrix

(** In-memory relational tables (bag semantics).

    Unlike {!Matrix.Cube}, a table does not enforce functionality — the
    DBMS substrate stores whatever the generated SQL inserts, and cube
    conversion applies the egd check at the boundary, like a production
    system would with a unique constraint. *)

type t

val create : name:string -> columns:string list -> t
val name : t -> string
val columns : t -> string list
val width : t -> int
val row_count : t -> int
val insert : t -> Value.t array -> unit
(** @raise Invalid_argument on width mismatch. *)

val rows : t -> Value.t array list
(** In insertion order. *)

val rows_array : t -> Value.t array array
(** The same rows as an array (insertion order), memoized until the
    next mutation; callers must not mutate it. *)

val column_codes : t -> int -> Columnar.Dict.t * int array
(** Column [i] dictionary-encoded over a per-(table, column) dict:
    [codes.(r)] is the code of row [r]'s value, equal codes iff equal
    values (including [Null], which gets a code like any other — mask
    it at the use site when null keys must not join).  Memoized until
    the next mutation. *)

val clear : t -> unit
val of_cube : Cube.t -> t
(** Columns are the dimension names followed by the measure name;
    rows in sorted key order. *)

val to_cube : Schema.t -> t -> Cube.t
(** @raise Cube.Functionality_violation when rows conflict. *)

val pp : Format.formatter -> t -> unit
