open Matrix

(* ----- lexer ----- *)

type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | EQUALS
  | OP of Ops.Binop.t
  | EOF

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let i = ref 0 in
  let emit t = out := t :: !out in
  while !i < n do
    (match src.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' ->
        emit LPAREN;
        incr i
    | ')' ->
        emit RPAREN;
        incr i
    | ',' ->
        emit COMMA;
        incr i
    | '.' when !i + 1 < n && is_digit src.[!i + 1] = false ->
        emit DOT;
        incr i
    | ';' ->
        emit SEMI;
        incr i
    | '=' ->
        emit EQUALS;
        incr i
    | '+' ->
        emit (OP Ops.Binop.Add);
        incr i
    | '*' ->
        emit (OP Ops.Binop.Mul);
        incr i
    | '/' ->
        emit (OP Ops.Binop.Div);
        incr i
    | '^' ->
        emit (OP Ops.Binop.Pow);
        incr i
    | '-' ->
        emit (OP Ops.Binop.Sub);
        incr i
    | '\'' ->
        let start = !i + 1 in
        let j = ref start in
        while !j < n && src.[!j] <> '\'' do
          incr j
        done;
        if !j >= n then fail "unterminated string literal";
        emit (STRING (String.sub src start (!j - start)));
        i := !j + 1
    | c when is_digit c || c = '.' ->
        let start = !i in
        while
          !i < n
          && (is_digit src.[!i] || src.[!i] = '.' || src.[!i] = 'e'
             || src.[!i] = 'E'
             || ((src.[!i] = '+' || src.[!i] = '-')
                && !i > start
                && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
        do
          incr i
        done;
        let text = String.sub src start (!i - start) in
        (match float_of_string_opt text with
        | Some f -> emit (NUMBER f)
        | None -> fail "bad number %s" text)
    | c when is_ident_start c ->
        let start = !i in
        while !i < n && is_ident_char src.[!i] do
          incr i
        done;
        emit (IDENT (String.sub src start (!i - start)))
    | c -> fail "unexpected character %C" c)
  done;
  emit EOF;
  Array.of_list (List.rev !out)

(* ----- parser ----- *)

type state = { tokens : token array; mutable pos : int }

let peek st = st.tokens.(st.pos)

let peek2 st =
  if st.pos + 1 < Array.length st.tokens then st.tokens.(st.pos + 1) else EOF

let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let token_name = function
  | IDENT s -> s
  | NUMBER f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "'%s'" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | SEMI -> ";"
  | EQUALS -> "="
  | OP op -> Ops.Binop.to_string op
  | EOF -> "<eof>"

let expect st tok =
  if peek st = tok then advance st
  else fail "expected %s but found %s" (token_name tok) (token_name (peek st))

let ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | t -> fail "expected an identifier, found %s" (token_name t)

(* keyword check, case-insensitive *)
let is_kw st kw =
  match peek st with
  | IDENT s -> String.uppercase_ascii s = kw
  | _ -> false

let eat_kw st kw =
  if is_kw st kw then advance st
  else fail "expected %s, found %s" kw (token_name (peek st))

let eat_kws st kws = List.iter (eat_kw st) kws

(* ----- expressions ----- *)

let classify_call fn args =
  let lfn = String.lowercase_ascii fn in
  if lfn = "coalesce" then
    match args with
    | [ a; b ] -> Sql_ast.Coalesce (a, b)
    | _ -> fail "COALESCE expects two arguments"
  else
    match Stats.Aggregate.of_string lfn with
    | Some aggr -> (
        match args with
        | [ a ] -> Sql_ast.Agg_call (aggr, a)
        | _ -> fail "%s expects one argument" fn)
    | None ->
        if Ops.Dim_fn.exists lfn then
          match args with
          | [ a ] -> Sql_ast.Dim_call (lfn, a)
          | _ -> fail "%s expects one argument" fn
        else
          (* scalar UDF: leading numeric literals are parameters *)
          let rec split params = function
            | [ last ] -> (List.rev params, last)
            | Sql_ast.Lit v :: rest when Value.to_float v <> None ->
                split (Option.get (Value.to_float v) :: params) rest
            | _ -> fail "unsupported argument shape for %s" fn
          in
          (match args with
          | [] -> fail "%s expects arguments" fn
          | _ ->
              let params, operand = split [] args in
              Sql_ast.Scalar_call (lfn, params, operand))

let rec parse_expr_prec st min_prec =
  let lhs = parse_unary st in
  climb st lhs min_prec

and climb st lhs min_prec =
  match peek st with
  | OP op when Ops.Binop.precedence op >= min_prec ->
      advance st;
      let next_min =
        if Ops.Binop.is_right_assoc op then Ops.Binop.precedence op
        else Ops.Binop.precedence op + 1
      in
      let rhs = parse_expr_prec st next_min in
      climb st (Sql_ast.Binop (op, lhs, rhs)) min_prec
  | _ -> lhs

and parse_unary st =
  match peek st with
  | OP Ops.Binop.Sub ->
      advance st;
      Sql_ast.Neg (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | NUMBER f ->
      advance st;
      Sql_ast.Lit (Value.Float f)
  | STRING s ->
      advance st;
      Sql_ast.Lit (Value.String s)
  | LPAREN ->
      advance st;
      let e = parse_expr_prec st 1 in
      expect st RPAREN;
      e
  | IDENT name when String.uppercase_ascii name = "NULL" ->
      advance st;
      Sql_ast.Lit Value.Null
  | IDENT name
    when String.uppercase_ascii name = "DATE"
         && match peek2 st with STRING _ -> true | _ -> false -> (
      advance st;
      match peek st with
      | STRING s -> (
          advance st;
          match Calendar.Date.of_string s with
          | Some d -> Sql_ast.Lit (Value.Date d)
          | None -> fail "bad DATE literal '%s'" s)
      | t -> fail "DATE must be followed by a string literal, found %s"
               (token_name t))
  | IDENT name
    when String.uppercase_ascii name = "PERIOD"
         && match peek2 st with STRING _ -> true | _ -> false -> (
      advance st;
      match peek st with
      | STRING s -> (
          advance st;
          match Calendar.Period.of_string s with
          | Some p -> Sql_ast.Lit (Value.Period p)
          | None -> fail "bad PERIOD literal '%s'" s)
      | t -> fail "PERIOD must be followed by a string literal, found %s"
               (token_name t))
  | IDENT name -> (
      advance st;
      match peek st with
      | DOT ->
          advance st;
          let column = ident st in
          Sql_ast.Col { alias = name; column }
      | LPAREN ->
          advance st;
          let rec args acc =
            let a = parse_expr_prec st 1 in
            if peek st = COMMA then begin
              advance st;
              args (a :: acc)
            end
            else List.rev (a :: acc)
          in
          let arguments = if peek st = RPAREN then [] else args [] in
          expect st RPAREN;
          classify_call name arguments
      | _ -> Sql_ast.Col { alias = ""; column = name })
  | t -> fail "expected an expression, found %s" (token_name t)

(* ----- clauses ----- *)

let parse_projection st =
  let e = parse_expr_prec st 1 in
  if is_kw st "AS" then begin
    advance st;
    let name = ident st in
    (e, name)
  end
  else
    match e with
    | Sql_ast.Col { column; _ } -> (e, column)
    | _ -> fail "projection without AS must be a plain column"

let keyword_set = [ "FROM"; "WHERE"; "GROUP"; "AS"; "AND"; "ON"; "FULL" ]

let parse_from st =
  (* table [alias], ... |  table alias FULL OUTER JOIN ... | fn(table, params) *)
  let first = ident st in
  if peek st = LPAREN then begin
    (* tabular function *)
    advance st;
    let table = ident st in
    let params = ref [] in
    while peek st = COMMA do
      advance st;
      match peek st with
      | NUMBER f ->
          advance st;
          params := f :: !params
      | t -> fail "expected a numeric parameter, found %s" (token_name t)
    done;
    expect st RPAREN;
    Sql_ast.From_table_fn
      { fn = String.lowercase_ascii first; params = List.rev !params; table }
  end
  else begin
    let alias_of name =
      match peek st with
      | IDENT a when not (List.mem (String.uppercase_ascii a) keyword_set) ->
          advance st;
          a
      | _ -> name
    in
    let first_alias = alias_of first in
    if is_kw st "FULL" then begin
      eat_kws st [ "FULL"; "OUTER"; "JOIN" ];
      let right = ident st in
      let right_alias = alias_of right in
      eat_kw st "ON";
      let rec keys acc =
        let a = parse_expr_prec st 1 in
        expect st EQUALS;
        let b = parse_expr_prec st 1 in
        let key =
          match (a, b) with
          | Sql_ast.Col { column = c1; _ }, Sql_ast.Col { column = c2; _ }
            when String.uppercase_ascii c1 = String.uppercase_ascii c2 ->
              c1
          | _ -> fail "FULL OUTER JOIN conditions must equate same-named columns"
        in
        if is_kw st "AND" then begin
          advance st;
          keys (key :: acc)
        end
        else List.rev (key :: acc)
      in
      Sql_ast.Full_outer_join
        {
          left = (first, first_alias);
          right = (right, right_alias);
          keys = keys [];
        }
    end
    else begin
      let rec more acc =
        if peek st = COMMA then begin
          advance st;
          let t = ident st in
          let a = alias_of t in
          more ((t, a) :: acc)
        end
        else List.rev acc
      in
      Sql_ast.Tables (more [ (first, first_alias) ])
    end
  end

let parse_select st =
  eat_kw st "SELECT";
  let rec projections acc =
    let p = parse_projection st in
    if peek st = COMMA then begin
      advance st;
      projections (p :: acc)
    end
    else List.rev (p :: acc)
  in
  let projections = projections [] in
  let from =
    if is_kw st "FROM" then begin
      advance st;
      parse_from st
    end
    else Sql_ast.Tables []
  in
  let where =
    if is_kw st "WHERE" then begin
      advance st;
      let rec eqs acc =
        let a = parse_expr_prec st 1 in
        expect st EQUALS;
        let b = parse_expr_prec st 1 in
        if is_kw st "AND" then begin
          advance st;
          eqs ((a, b) :: acc)
        end
        else List.rev ((a, b) :: acc)
      in
      eqs []
    end
    else []
  in
  let group_by =
    if is_kw st "GROUP" then begin
      eat_kws st [ "GROUP"; "BY" ];
      let rec exprs acc =
        let e = parse_expr_prec st 1 in
        if peek st = COMMA then begin
          advance st;
          exprs (e :: acc)
        end
        else List.rev (e :: acc)
      in
      exprs []
    end
    else []
  in
  { Sql_ast.projections; from; where; group_by }

let parse_columns st =
  expect st LPAREN;
  let rec cols acc =
    let c = ident st in
    if peek st = COMMA then begin
      advance st;
      cols (c :: acc)
    end
    else List.rev (c :: acc)
  in
  let columns = cols [] in
  expect st RPAREN;
  columns

let parse_statement_inner st =
  if is_kw st "INSERT" then begin
    eat_kws st [ "INSERT"; "INTO" ];
    let table = ident st in
    let columns = parse_columns st in
    let select = parse_select st in
    Sql_ast.Insert { table; columns; select }
  end
  else if is_kw st "CREATE" then begin
    eat_kws st [ "CREATE"; "VIEW" ];
    let name = ident st in
    let columns = parse_columns st in
    eat_kw st "AS";
    let select = parse_select st in
    Sql_ast.Create_view { name; columns; select }
  end
  else fail "expected INSERT or CREATE VIEW, found %s" (token_name (peek st))

let wrap f src =
  try
    let st = { tokens = tokenize src; pos = 0 } in
    let result = f st in
    (match peek st with
    | EOF -> ()
    | t -> fail "unexpected %s after the end of the statement" (token_name t));
    Ok result
  with Parse_error msg -> Error msg

let parse_statement src =
  wrap
    (fun st ->
      let stmt = parse_statement_inner st in
      if peek st = SEMI then advance st;
      stmt)
    src

let parse_expr src = wrap (fun st -> parse_expr_prec st 1) src

let parse_script src =
  wrap
    (fun st ->
      let rec loop acc =
        if peek st = EOF then List.rev acc
        else begin
          let stmt = parse_statement_inner st in
          if peek st = SEMI then advance st;
          loop (stmt :: acc)
        end
      in
      loop [])
    src
