open Matrix

(* Rows live in a prepend list (cheap inserts); [arr] and [cols] are
   derived caches — the row array and per-column dictionary encodings
   the executor's vectorized paths read — dropped on any mutation and
   rebuilt lazily. *)
type t = {
  name : string;
  columns : string list;
  mutable rev_rows : Value.t array list;
  mutable count : int;
  mutable arr : Value.t array array option;
  cols : (int, Columnar.Dict.t * int array) Hashtbl.t;
}

let create ~name ~columns =
  { name; columns; rev_rows = []; count = 0; arr = None; cols = Hashtbl.create 4 }

let name t = t.name
let columns t = t.columns
let width t = List.length t.columns
let row_count t = t.count

let insert t row =
  if Array.length row <> width t then
    invalid_arg
      (Printf.sprintf "Table.insert: row of width %d into %s(%s)"
         (Array.length row) t.name
         (String.concat ", " t.columns));
  t.rev_rows <- row :: t.rev_rows;
  t.count <- t.count + 1;
  t.arr <- None;
  Hashtbl.reset t.cols

let rows t = List.rev t.rev_rows

let rows_array t =
  match t.arr with
  | Some a -> a
  | None ->
      let a = Array.make t.count [||] in
      List.iteri (fun i row -> a.(t.count - 1 - i) <- row) t.rev_rows;
      t.arr <- Some a;
      a

let column_codes t i =
  match Hashtbl.find_opt t.cols i with
  | Some c -> c
  | None ->
      let a = rows_array t in
      let dict = Columnar.Dict.create () in
      let codes =
        Array.map (fun row -> Columnar.Dict.encode dict row.(i)) a
      in
      Hashtbl.replace t.cols i (dict, codes);
      (dict, codes)

let clear t =
  t.rev_rows <- [];
  t.count <- 0;
  t.arr <- None;
  Hashtbl.reset t.cols

let of_cube cube =
  let schema = Cube.schema cube in
  let t =
    create ~name:schema.Schema.name
      ~columns:(Schema.dim_names schema @ [ schema.Schema.measure_name ])
  in
  List.iter (fun (k, v) -> insert t (Tuple.append k v)) (Cube.to_alist cube);
  t

let to_cube schema t =
  let n = Schema.arity schema in
  let cube = Cube.create schema in
  List.iter
    (fun row ->
      let key = Tuple.of_array (Array.sub row 0 n) in
      Cube.add_strict cube key row.(n))
    (rows t);
  cube

let pp ppf t =
  Format.fprintf ppf "@[<v2>%s(%s) [%d rows]" t.name
    (String.concat ", " t.columns)
    t.count;
  List.iter
    (fun row ->
      Format.fprintf ppf "@,%s"
        (String.concat " | "
           (List.map Value.to_string (Array.to_list row))))
    (rows t);
  Format.fprintf ppf "@]"
