open Matrix

type schema_lookup = string -> Schema.t option

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Exec_error m)) fmt

let columns_of_schema schema =
  Schema.dim_names schema @ [ schema.Schema.measure_name ]

let schema_exn lookup table =
  match lookup table with
  | Some s -> s
  | None -> fail "no schema for table %s" table

(* ----- layouts: which (alias, column) lives at which row offset ----- *)

let rec layout lookup = function
  | Plan.One_row -> []
  | Plan.Scan { table; alias } ->
      List.map (fun c -> (alias, c)) (columns_of_schema (schema_exn lookup table))
  | Plan.Hash_join { build; probe; _ } -> layout lookup build @ layout lookup probe
  | Plan.Full_outer_hash_join { build; probe; _ } ->
      layout lookup build @ layout lookup probe
  | Plan.Filter { input; _ } -> layout lookup input
  | Plan.Project { exprs; _ } -> List.map (fun (_, n) -> ("", n)) exprs
  | Plan.Aggregate { keys; measure_name; _ } ->
      List.map (fun (_, n) -> ("", n)) keys @ [ ("", measure_name) ]
  | Plan.Table_fn_scan { table; _ } ->
      List.map (fun c -> ("", c)) (columns_of_schema (schema_exn lookup table))

type resolver = { index : string * string -> int option }

(* Lookup is case-insensitive: printed SQL (and therefore re-parsed
   SQL) carries upper-cased identifiers. *)
let resolver_of_layout lay =
  let exact = Hashtbl.create 16 and by_column = Hashtbl.create 16 in
  let norm = String.lowercase_ascii in
  List.iteri
    (fun i (alias, column) ->
      Hashtbl.replace exact (norm alias, norm column) i;
      if not (Hashtbl.mem by_column (norm column)) then
        Hashtbl.replace by_column (norm column) i)
    lay;
  {
    index =
      (fun (alias, column) ->
        if alias = "" then Hashtbl.find_opt by_column (norm column)
        else Hashtbl.find_opt exact (norm alias, norm column));
  }

(* ----- expression evaluation ----- *)

let shift_value amount = function
  | Value.Period p -> Value.Period (Calendar.Period.shift p amount)
  | Value.Date d -> Value.Date (Calendar.Date.add_days d amount)
  | Value.(Null | Bool _ | Int _ | Float _ | String _) -> Value.Null

let rec eval_expr resolver row expr =
  match expr with
  | Sql_ast.Col { alias; column } -> (
      match resolver.index (alias, column) with
      | Some i -> row.(i)
      | None -> fail "unknown column %s.%s" alias column)
  | Sql_ast.Lit v -> v
  | Sql_ast.Binop (op, a, b) -> (
      let va = eval_expr resolver row a and vb = eval_expr resolver row b in
      (* temporal +/- integer is period/date arithmetic, as in SQL
         dialects with date + int; needed so re-parsed scripts (where
         Period_add prints as +) stay execution-equivalent *)
      match (op, va, vb) with
      | ( (Ops.Binop.Add | Ops.Binop.Sub),
          (Value.Period _ | Value.Date _),
          (Value.Int _ | Value.Float _) ) ->
          let k =
            match Value.to_int vb with Some k -> k | None -> 0
          in
          let k = if op = Ops.Binop.Sub then -k else k in
          shift_value k va
      | Ops.Binop.Add, (Value.Int _ | Value.Float _), (Value.Period _ | Value.Date _)
        ->
          let k = match Value.to_int va with Some k -> k | None -> 0 in
          shift_value k vb
      | _ -> Ops.Binop.eval_value op va vb)
  | Sql_ast.Neg a -> (
      match Value.to_float (eval_expr resolver row a) with
      | Some f -> Value.of_float (-.f)
      | None -> Value.Null)
  | Sql_ast.Scalar_call (fn, params, a) -> (
      match Ops.Scalar_fn.find fn with
      | Some f -> Ops.Scalar_fn.apply_value f ~params (eval_expr resolver row a)
      | None -> fail "unknown scalar function %s" fn)
  | Sql_ast.Dim_call (fn, a) -> (
      match Ops.Dim_fn.find fn with
      | Some f -> (
          match Ops.Dim_fn.apply f (eval_expr resolver row a) with
          | Some v -> v
          | None -> Value.Null)
      | None -> fail "unknown dimension function %s" fn)
  | Sql_ast.Period_add (a, k) -> shift_value k (eval_expr resolver row a)
  | Sql_ast.Agg_call _ -> fail "aggregate call outside GROUP BY context"
  | Sql_ast.Coalesce (a, b) -> (
      match eval_expr resolver row a with
      | Value.Null -> eval_expr resolver row b
      | v -> v)

(* ----- plan execution ----- *)

(* Views (the Section 6 reformulation) are selects evaluated on demand:
   the first scan of a view compiles, runs and memoizes it; later scans
   reuse the materialized rows.  INSERTs invalidate dependent caches
   (see [invalidate_views]). *)
type view_env = {
  view_defs : (string, Sql_ast.select) Hashtbl.t;
  view_rows : (string, Value.t array list) Hashtbl.t;
}

let fresh_views () = { view_defs = Hashtbl.create 8; view_rows = Hashtbl.create 8 }

(* Base tables a select reads directly (view names included). *)
let direct_tables_of_select (s : Sql_ast.select) =
  match s.Sql_ast.from with
  | Sql_ast.Tables tables -> List.map fst tables
  | Sql_ast.From_table_fn { table; _ } -> [ table ]
  | Sql_ast.Full_outer_join { left = lt, _; right = rt, _; _ } -> [ lt; rt ]

(* Drop every memoized view that (transitively, through other view
   definitions) reads [table]. *)
let invalidate_views views table =
  let rec depends seen name =
    (not (List.mem name seen))
    && (name = table
       || (match Hashtbl.find_opt views.view_defs name with
          | None -> false
          | Some s ->
              List.exists (depends (name :: seen)) (direct_tables_of_select s)))
  in
  let stale =
    Hashtbl.fold
      (fun name _ acc -> if depends [] name then name :: acc else acc)
      views.view_rows []
  in
  Obs.count ~n:(List.length stale) "executor.view_invalidations";
  List.iter (Hashtbl.remove views.view_rows) stale

(* ----- vectorized fast paths over encoded base-table columns ----- *)

(* A plan node the batch kernels can read directly: a scan of a base
   table (views fall back to the generic row path — their memoized
   rows have no column cache to hang dictionaries on). *)
let base_scan db = function
  | Plan.Scan { table; _ } -> Database.find db table
  | _ -> None

(* Positions of plain-column key expressions in a scan's layout; [None]
   as soon as any key is computed (the generic path must evaluate it
   per row). *)
let col_positions lookup scan t keys =
  let res = resolver_of_layout (layout lookup scan) in
  let pos = function
    | Sql_ast.Col { alias; column } -> (
        match res.index (alias, column) with
        | Some i when i < Table.width t -> Some i
        | _ -> None)
    | _ -> None
  in
  let ps = List.map pos keys in
  if List.for_all Option.is_some ps then Some (List.map Option.get ps)
  else None

(* Code of the (at most one) [Null] entry of a dict, or -1. *)
let null_code dict =
  let rec go c =
    if c >= Columnar.Dict.size dict then -1
    else if Value.is_null (Columnar.Dict.decode dict c) then c
    else go (c + 1)
  in
  go 0

(* Dictionary-encoded int-key hash join between two base tables: key
   columns compare by code (probe codes translated into the build
   dict's space once per column), null keys poisoned to -1 so they
   never join.  Row-for-row identical to the generic path, including
   output order: probe rows in insertion order, each paired with its
   matching build rows in insertion order. *)
let vectorized_hash_join lookup tb tp build probe build_keys probe_keys =
  match
    (col_positions lookup build tb build_keys,
     col_positions lookup probe tp probe_keys)
  with
  | Some bpos, Some ppos when List.length bpos = List.length ppos ->
      Obs.count "executor.vectorized_joins";
      let brows = Table.rows_array tb and prows = Table.rows_array tp in
      let nbuild = Array.length brows and nprobe = Array.length prows in
      let mask dict codes =
        match null_code dict with
        | -1 -> codes
        | nc -> Array.map (fun c -> if c = nc then -1 else c) codes
      in
      let build_cols, probe_cols, radices =
        List.fold_right2
          (fun bp pp (bs, ps, rs) ->
            let db, cb = Table.column_codes tb bp in
            let dp, cp = Table.column_codes tp pp in
            let cp =
              match Columnar.Dict.xlate dp db with
              | None -> cp
              | Some x -> Array.map (fun c -> x.(c)) cp
            in
            (mask db cb :: bs, mask dp cp :: ps, Columnar.Dict.size db :: rs))
          bpos ppos ([], [], [])
      in
      let build_keys, probe_keys =
        Columnar.Kernels.joined_keys
          ~build_cols:(Array.of_list build_cols)
          ~probe_cols:(Array.of_list probe_cols)
          ~nbuild ~nprobe (Array.of_list radices)
      in
      let tbl : (int, int list) Hashtbl.t = Hashtbl.create (max 16 nbuild) in
      (* Reverse fill so each bucket lists build rows in insertion
         order, the order the generic path emits them in. *)
      for br = nbuild - 1 downto 0 do
        let k = build_keys.(br) in
        if k >= 0 then
          Hashtbl.replace tbl k
            (br :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
      done;
      let out = ref [] in
      for pr = 0 to nprobe - 1 do
        let k = probe_keys.(pr) in
        if k >= 0 then
          List.iter
            (fun br -> out := Array.append brows.(br) prows.(pr) :: !out)
            (Option.value ~default:[] (Hashtbl.find_opt tbl k))
      done;
      Some (List.rev !out)
  | _ -> None

(* Grouped aggregation over a base table, vectorized: group keys
   compare by per-column dictionary code, measures gather into one
   float array segmented per group.  Replays the generic path exactly —
   rows sorted first, groups in first-seen order over the sorted rows,
   bags in sorted-row order, rows with a null key or non-numeric
   measure skipped. *)
let vectorized_aggregate lookup t input keys measure aggr =
  match
    col_positions lookup input t (List.map fst keys @ [ measure ])
  with
  | None -> None
  | Some positions ->
      Obs.count "executor.vectorized_aggregates";
      let kpos = Array.of_list (List.filteri (fun i _ -> i < List.length keys) positions) in
      let mpos = List.nth positions (List.length keys) in
      let rows = Table.rows_array t in
      let n = Array.length rows in
      let order = Array.init n Fun.id in
      Array.sort
        (fun a b ->
          Tuple.compare (Tuple.of_array rows.(a)) (Tuple.of_array rows.(b)))
        order;
      let key_cols =
        Array.map
          (fun p ->
            let dict, codes = Table.column_codes t p in
            let nc = null_code dict in
            ((dict, codes, nc) : Columnar.Dict.t * int array * int))
          kpos
      in
      (* Select the participating rows (sorted order), gathering their
         measures; a null key or undefined measure drops the row. *)
      let sel = Array.make n 0 and mf = Array.make (max 1 n) 0. in
      let nsel = ref 0 in
      for j = 0 to n - 1 do
        let r = order.(j) in
        let key_ok =
          Array.for_all (fun (_, codes, nc) -> codes.(r) <> nc) key_cols
        in
        if key_ok then
          match Value.to_float rows.(r).(mpos) with
          | None -> ()
          | Some m ->
              sel.(!nsel) <- r;
              mf.(!nsel) <- m;
              incr nsel
      done;
      let nsel = !nsel in
      let cols =
        Array.map
          (fun ((_, codes, _) : Columnar.Dict.t * int array * int) ->
            Array.init nsel (fun j -> codes.(sel.(j))))
          key_cols
      in
      let radices =
        Array.map (fun (d, _, _) -> Columnar.Dict.size d) key_cols
      in
      let gkeys = Columnar.Kernels.dense_keys ~nrows:nsel cols radices in
      let g = Columnar.Kernels.group gkeys in
      let offsets, data =
        Columnar.Kernels.segment g (Array.sub mf 0 nsel)
      in
      let out = ref [] in
      for gid = g.Columnar.Kernels.n_groups - 1 downto 0 do
        let off = offsets.(gid) in
        let len = offsets.(gid + 1) - off in
        let result = Stats.Aggregate.apply_slice aggr data ~off ~len in
        let rep = rows.(sel.(g.Columnar.Kernels.rep_rows.(gid))) in
        out :=
          Array.of_list
            (Array.to_list (Array.map (fun p -> rep.(p)) kpos)
            @ [ Value.of_float result ])
          :: !out
      done;
      Some !out

let rec execute db lookup (views : view_env) plan : Value.t array list =
  match plan with
  | Plan.One_row -> [ [||] ]
  | Plan.Scan { table; _ } -> (
      match Database.find db table with
      | Some t -> Table.rows t
      | None -> (
          match Hashtbl.find_opt views.view_defs table with
          | Some select -> rows_of_view db lookup views table select
          | None -> []))
  | Plan.Hash_join { build; probe; build_keys; probe_keys } -> (
      let fast =
        match (base_scan db build, base_scan db probe) with
        | Some tb, Some tp ->
            vectorized_hash_join lookup tb tp build probe build_keys probe_keys
        | _ -> None
      in
      match fast with
      | Some rows -> rows
      | None ->
          let build_rows = execute db lookup views build in
          let probe_rows = execute db lookup views probe in
          let build_res = resolver_of_layout (layout lookup build) in
          let probe_res = resolver_of_layout (layout lookup probe) in
          let key resolver keys row =
            let vals = List.map (eval_expr resolver row) keys in
            if List.exists Value.is_null vals then None
            else Some (Tuple.of_list vals)
          in
          let index : Value.t array list Tuple.Table.t =
            Tuple.Table.create 256
          in
          List.iter
            (fun row ->
              match key build_res build_keys row with
              | None -> ()
              | Some k ->
                  let prev =
                    Option.value ~default:[] (Tuple.Table.find_opt index k)
                  in
                  Tuple.Table.replace index k (row :: prev))
            build_rows;
          List.concat_map
            (fun probe_row ->
              match key probe_res probe_keys probe_row with
              | None -> []
              | Some k ->
                  List.rev_map
                    (fun build_row -> Array.append build_row probe_row)
                    (Option.value ~default:[] (Tuple.Table.find_opt index k)))
            probe_rows)
  | Plan.Full_outer_hash_join { build; probe; build_keys; probe_keys } ->
      let build_rows = execute db lookup views build in
      let probe_rows = execute db lookup views probe in
      let build_lay = layout lookup build and probe_lay = layout lookup probe in
      let build_res = resolver_of_layout build_lay in
      let probe_res = resolver_of_layout probe_lay in
      let build_width = List.length build_lay in
      let probe_width = List.length probe_lay in
      let key resolver keys row =
        let vals = List.map (eval_expr resolver row) keys in
        if List.exists Value.is_null vals then None
        else Some (Tuple.of_list vals)
      in
      let index : Value.t array list Tuple.Table.t = Tuple.Table.create 256 in
      let matched_build : unit Tuple.Table.t = Tuple.Table.create 256 in
      List.iter
        (fun row ->
          match key build_res build_keys row with
          | None -> ()
          | Some k ->
              let prev = Option.value ~default:[] (Tuple.Table.find_opt index k) in
              Tuple.Table.replace index k (row :: prev))
        build_rows;
      let probe_side =
        List.concat_map
          (fun probe_row ->
            match key probe_res probe_keys probe_row with
            | None ->
                [ Array.append (Array.make build_width Value.Null) probe_row ]
            | Some k -> (
                match Tuple.Table.find_opt index k with
                | Some matches ->
                    Tuple.Table.replace matched_build k ();
                    List.rev_map
                      (fun build_row -> Array.append build_row probe_row)
                      matches
                | None ->
                    [ Array.append (Array.make build_width Value.Null) probe_row ]))
          probe_rows
      in
      let build_only =
        List.filter_map
          (fun build_row ->
            match key build_res build_keys build_row with
            | Some k when Tuple.Table.mem matched_build k -> None
            | _ ->
                Some (Array.append build_row (Array.make probe_width Value.Null)))
          build_rows
      in
      probe_side @ build_only
  | Plan.Filter { input; equalities } ->
      let res = resolver_of_layout (layout lookup input) in
      List.filter
        (fun row ->
          List.for_all
            (fun (a, b) ->
              let va = eval_expr res row a and vb = eval_expr res row b in
              (not (Value.is_null va)) && (not (Value.is_null vb))
              && Value.equal va vb)
            equalities)
        (execute db lookup views input)
  | Plan.Project { input; exprs } ->
      let res = resolver_of_layout (layout lookup input) in
      List.map
        (fun row ->
          Array.of_list (List.map (fun (e, _) -> eval_expr res row e) exprs))
        (execute db lookup views input)
  | Plan.Aggregate { input; keys; aggr; measure; measure_name = _ } -> (
      let fast =
        match base_scan db input with
        | Some t -> vectorized_aggregate lookup t input keys measure aggr
        | None -> None
      in
      match fast with
      | Some rows -> rows
      | None ->
      let res = resolver_of_layout (layout lookup input) in
      let rows =
        List.sort
          (fun a b -> Tuple.compare (Tuple.of_array a) (Tuple.of_array b))
          (execute db lookup views input)
      in
      let groups : float list ref Tuple.Table.t = Tuple.Table.create 64 in
      let order = ref [] in
      List.iter
        (fun row ->
          let key_vals = List.map (fun (e, _) -> eval_expr res row e) keys in
          if not (List.exists Value.is_null key_vals) then
            let key = Tuple.of_list key_vals in
            match Value.to_float (eval_expr res row measure) with
            | None -> ()
            | Some m -> (
                match Tuple.Table.find_opt groups key with
                | Some bag -> bag := m :: !bag
                | None ->
                    Tuple.Table.replace groups key (ref [ m ]);
                    order := key :: !order))
        rows;
      List.rev_map
        (fun key ->
          let bag = List.rev !(Tuple.Table.find groups key) in
          let result = Stats.Aggregate.apply aggr bag in
          Array.of_list (Tuple.to_list key @ [ Value.of_float result ]))
        !order)
  | Plan.Table_fn_scan { fn; params; table } -> (
      let schema = schema_exn lookup table in
      let source =
        match Database.find db table with
        | Some t -> Table.to_cube schema t
        | None -> (
            match Hashtbl.find_opt views.view_defs table with
            | Some select ->
                let rows = rows_of_view db lookup views table select in
                let cube = Cube.create schema in
                let n = Schema.arity schema in
                List.iter
                  (fun row ->
                    let key = Tuple.of_array (Array.sub row 0 n) in
                    Cube.add_strict cube key row.(n))
                  rows;
                cube
            | None -> Cube.create schema)
      in
      let op =
        match Ops.Blackbox.find fn with
        | Some op -> op
        | None -> fail "unknown table function %s" fn
      in
      match Ops.Blackbox.apply_cube op ~params source with
      | Error msg -> fail "%s" msg
      | Ok result ->
          List.map (fun (k, v) -> Tuple.append k v) (Cube.to_alist result))

and rows_of_view db lookup views name select =
  match Hashtbl.find_opt views.view_rows name with
  | Some rows ->
      Obs.count "executor.view_memo_hits";
      rows
  | None ->
      Obs.count "executor.view_builds";
      let rows = execute db lookup views (plan_of_select_exn lookup select) in
      Hashtbl.replace views.view_rows name rows;
      rows

(* ----- SELECT compilation ----- *)

and plan_of_select_exn _lookup (s : Sql_ast.select) =
  let base =
    match s.Sql_ast.from with
    | Sql_ast.From_table_fn { fn; params; table } ->
        Plan.Table_fn_scan { fn; params; table }
    | Sql_ast.Full_outer_join { left = lt, la; right = rt, ra; keys } ->
        Plan.Full_outer_hash_join
          {
            build = Plan.Scan { table = lt; alias = la };
            probe = Plan.Scan { table = rt; alias = ra };
            build_keys =
              List.map (fun k -> Sql_ast.Col { alias = la; column = k }) keys;
            probe_keys =
              List.map (fun k -> Sql_ast.Col { alias = ra; column = k }) keys;
          }
    | Sql_ast.Tables [] -> Plan.One_row
    | Sql_ast.Tables tables ->
        let consumed = Hashtbl.create 8 in
        let joined, aliases =
          List.fold_left
            (fun (acc, aliases) (table, alias) ->
              let scan = Plan.Scan { table; alias } in
              match acc with
              | None -> (Some scan, [ alias ])
              | Some left ->
                  (* Equalities linking the accumulated aliases to the
                     new one become hash-join keys. *)
                  let keys =
                    List.filteri
                      (fun i (a, b) ->
                        if Hashtbl.mem consumed i then false
                        else
                          let aa = Sql_ast.expr_aliases a in
                          let ab = Sql_ast.expr_aliases b in
                          let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
                          (subset aa aliases && subset ab [ alias ])
                          || (subset ab aliases && subset aa [ alias ]))
                      s.Sql_ast.where
                  in
                  (* Mark them consumed and orient build/probe sides. *)
                  List.iteri
                    (fun i pair ->
                      if List.memq pair keys then Hashtbl.replace consumed i ())
                    s.Sql_ast.where;
                  let build_keys, probe_keys =
                    List.split
                      (List.map
                         (fun (a, b) ->
                           let aa = Sql_ast.expr_aliases a in
                           if List.for_all (fun x -> List.mem x aliases) aa
                           then (a, b)
                           else (b, a))
                         keys)
                  in
                  ( Some
                      (Plan.Hash_join
                         { build = left; probe = scan; build_keys; probe_keys }),
                    alias :: aliases ))
            (None, []) tables
        in
        ignore aliases;
        let joined = Option.get joined in
        let residual =
          List.filteri (fun i _ -> not (Hashtbl.mem consumed i)) s.Sql_ast.where
        in
        if residual = [] then joined
        else Plan.Filter { input = joined; equalities = residual }
  in
  (* Aggregate or plain projection on top. *)
  let aggregates =
    List.filter (fun (e, _) -> Sql_ast.expr_is_aggregate e) s.Sql_ast.projections
  in
  match aggregates with
  | [] ->
      if s.Sql_ast.group_by <> [] then fail "GROUP BY without an aggregate";
      Plan.Project { input = base; exprs = s.Sql_ast.projections }
  | [ (Sql_ast.Agg_call (aggr, measure), measure_name) ] ->
      let keys =
        List.filter
          (fun (e, _) -> not (Sql_ast.expr_is_aggregate e))
          s.Sql_ast.projections
      in
      Plan.Aggregate { input = base; keys; aggr; measure; measure_name }
  | _ -> fail "unsupported aggregate projection shape"

let wrap f = try Ok (f ()) with Exec_error msg -> Error msg

let no_views : view_env = fresh_views ()

let plan_of_select lookup s = wrap (fun () -> plan_of_select_exn lookup s)

let rows_of_select db lookup s =
  wrap (fun () -> execute db lookup no_views (plan_of_select_exn lookup s))

let run_insert_with_views db lookup views (i : Sql_ast.insert) =
  let rows =
    execute db lookup views (plan_of_select_exn lookup i.Sql_ast.select)
  in
  let table =
    match Database.find db i.Sql_ast.table with
    | Some t -> t
    | None ->
        Database.create_table db ~name:i.Sql_ast.table ~columns:i.Sql_ast.columns
  in
  List.iter (Table.insert table) rows;
  List.length rows

let run_insert db lookup i =
  wrap (fun () -> run_insert_with_views db lookup no_views i)

let run_script db lookup script =
  let rec loop total = function
    | [] -> Ok total
    | insert :: rest -> (
        match run_insert db lookup insert with
        | Ok n -> loop (total + n) rest
        | Error msg ->
            Error
              (Printf.sprintf "in INSERT INTO %s: %s" insert.Sql_ast.table msg))
  in
  loop 0 script

let run_statements db lookup statements =
  let views = fresh_views () in
  let rec loop total = function
    | [] -> Ok total
    | Sql_ast.Create_view { name; select; _ } :: rest ->
        Hashtbl.replace views.view_defs name select;
        Hashtbl.remove views.view_rows name;
        loop total rest
    | Sql_ast.Insert insert :: rest -> (
        match wrap (fun () -> run_insert_with_views db lookup views insert) with
        | Ok n ->
            (* The inserted-into table may feed later view scans. *)
            invalidate_views views insert.Sql_ast.table;
            loop (total + n) rest
        | Error msg ->
            Error
              (Printf.sprintf "in INSERT INTO %s: %s" insert.Sql_ast.table msg))
  in
  loop 0 statements

let run_mapping ?(views = `None) db mapping =
  match Sql_gen.statements_of_mapping ~views mapping with
  | Error msg -> Error msg
  | Ok statements ->
      run_statements db (Mappings.Mapping.target_schema mapping) statements
