open Matrix

type artifact =
  | Sql_script of string
  | R_script of string
  | Matlab_script of string
  | Kettle_xml of string
  | Tgd_program of string

let artifact_kind = function
  | Sql_script _ -> "sql"
  | R_script _ -> "r"
  | Matlab_script _ -> "matlab"
  | Kettle_xml _ -> "kettle-xml"
  | Tgd_program _ -> "tgd"

let artifact_text = function
  | Sql_script s | R_script s | Matlab_script s | Kettle_xml s | Tgd_program s
    ->
      s

type t = {
  name : string;
  supports : Mappings.Tgd.t -> bool;
  translate : Mappings.Mapping.t -> (artifact, string) result;
  execute : Mappings.Mapping.t -> Registry.t -> (Registry.t, string) result;
}

let registry_of_sources mapping registry =
  let out = Registry.create () in
  List.iter
    (fun schema ->
      let cube =
        match Registry.find registry schema.Schema.name with
        | Some c -> Cube.with_schema schema (Cube.copy c)
        | None -> Cube.create schema
      in
      Registry.add out Registry.Elementary cube)
    mapping.Mappings.Mapping.source;
  out

let sql =
  {
    name = "sql";
    supports = (fun _ -> true);
    translate =
      (fun mapping ->
        Result.map
          (fun script -> Sql_script (Relational.Sql_print.script_to_string script))
          (Relational.Sql_gen.script_of_mapping mapping));
    execute =
      (fun mapping registry ->
        let db = Relational.Database.create () in
        List.iter
          (fun schema ->
            let cube =
              match Registry.find registry schema.Schema.name with
              | Some c -> Cube.with_schema schema c
              | None -> Cube.create schema
            in
            Relational.Database.load_cube db cube)
          mapping.Mappings.Mapping.source;
        match Relational.Executor.run_mapping db mapping with
        | Error _ as e -> e
        | Ok _ -> (
            try
              Ok
                (Relational.Database.to_registry db
                   ~schemas:mapping.Mappings.Mapping.target
                   ~elementary:
                     (List.map
                        (fun s -> s.Schema.name)
                        mapping.Mappings.Mapping.source))
            with
            | Cube.Functionality_violation { cube; key } ->
                Error
                  (Printf.sprintf "functionality violation in %s at %s" cube
                     (Tuple.to_string key))
            | Invalid_argument msg -> Error msg))
  }

let vector_supports = function
  | Mappings.Tgd.Tuple_level { lhs; _ } -> List.length lhs <= 2
  | Mappings.Tgd.Aggregation _ | Mappings.Tgd.Table_fn _
  | Mappings.Tgd.Outer_combine _ ->
      true

let vector =
  {
    name = "vector";
    supports = vector_supports;
    translate =
      (fun mapping ->
        Result.map
          (fun script -> R_script (Vector.R_print.script_to_string script))
          (Vector.Script_gen.script_of_mapping mapping));
    execute =
      (fun mapping registry ->
        match Vector.Script_gen.script_of_mapping mapping with
        | Error _ as e -> e
        | Ok script -> (
            let env = Vector.Script_interp.create_env () in
            List.iter
              (fun schema ->
                let cube =
                  match Registry.find registry schema.Schema.name with
                  | Some c -> Cube.with_schema schema c
                  | None -> Cube.create schema
                in
                Vector.Script_interp.bind env schema.Schema.name
                  (Vector.Frame.of_cube cube))
              mapping.Mappings.Mapping.source;
            let schema_lookup = Mappings.Mapping.target_schema mapping in
            match Vector.Script_interp.run ~schema_lookup env script with
            | Error _ as e -> e
            | Ok () -> (
                try
                  let out = Registry.create () in
                  let elementary =
                    List.map
                      (fun s -> s.Schema.name)
                      mapping.Mappings.Mapping.source
                  in
                  List.iter
                    (fun schema ->
                      let name = schema.Schema.name in
                      let kind =
                        if List.mem name elementary then Registry.Elementary
                        else Registry.Derived
                      in
                      let cube =
                        match Vector.Script_interp.frame env name with
                        | Some f -> Vector.Frame.to_cube schema f
                        | None -> Cube.create schema
                      in
                      Registry.add out kind cube)
                    mapping.Mappings.Mapping.target;
                  Ok out
                with
                | Cube.Functionality_violation { cube; key } ->
                    Error
                      (Printf.sprintf "functionality violation in %s at %s" cube
                         (Tuple.to_string key))
                | Invalid_argument msg -> Error msg)))
  }

let stl_family = [ "stl_t"; "stl_s"; "stl_r"; "deseason"; "trend_classical" ]

let etl_supports ~with_stl = function
  | Mappings.Tgd.Tuple_level { lhs; _ } -> List.length lhs <= 2
  | Mappings.Tgd.Aggregation _ | Mappings.Tgd.Outer_combine _ -> true
  | Mappings.Tgd.Table_fn { fn; _ } ->
      with_stl || not (List.mem (String.lowercase_ascii fn) stl_family)

let make_etl ~name ~with_stl =
  {
    name;
    supports = etl_supports ~with_stl;
    translate =
      (fun mapping ->
        Result.map
          (fun job -> Kettle_xml (Etl.Kettle.job_to_xml job))
          (Etl.Etl_gen.job_of_mapping mapping));
    execute =
      (fun mapping registry ->
        match Etl.Etl_gen.job_of_mapping mapping with
        | Error _ as e -> e
        | Ok job -> (
            let storage = registry_of_sources mapping registry in
            let schema_lookup = Mappings.Mapping.target_schema mapping in
            match Etl.Engine.run_job ~storage ~schema_lookup job with
            | Error _ as e -> e
            | Ok _stats -> Ok storage
            | exception Cube.Functionality_violation { cube; key } ->
                Error
                  (Printf.sprintf "functionality violation in %s at %s" cube
                     (Tuple.to_string key))
            | exception Invalid_argument msg -> Error msg))
  }

let etl_no_stl = make_etl ~name:"etl" ~with_stl:false
let etl_full = make_etl ~name:"etl-full" ~with_stl:true

(* The chase target runs the sub-mapping natively with the semi-naive
   chase over relational instances — the reference engine of Section 4.
   Its deployable artifact is the mapping itself, rendered as a tgd
   program; execution is certified by the same machinery the test
   oracle uses, and (unlike the other targets) it emits chase-round
   spans into an installed Obs collector. *)
let chase =
  {
    name = "chase";
    supports = (fun _ -> true);
    translate =
      (fun mapping ->
        Ok
          (Tgd_program
             (String.concat "\n"
                (List.map Mappings.Tgd.to_string
                   mapping.Mappings.Mapping.t_tgds))));
    execute =
      (fun mapping registry ->
        let source =
          Exchange.Instance.of_registry (registry_of_sources mapping registry)
        in
        match Exchange.Chase.run mapping source with
        | Error _ as e -> e
        | Ok (instance, _stats) -> (
            try
              Ok
                (Exchange.Instance.to_registry instance
                   ~elementary:
                     (List.map
                        (fun s -> s.Schema.name)
                        mapping.Mappings.Mapping.source))
            with
            | Cube.Functionality_violation { cube; key } ->
                Error
                  (Printf.sprintf "functionality violation in %s at %s" cube
                     (Tuple.to_string key))
            | Invalid_argument msg -> Error msg));
  }

let builtins = [ sql; vector; etl_no_stl; chase ]
let find targets name = List.find_opt (fun t -> t.name = name) targets

(* The dispatcher's single door into a target engine: consult the fault
   plan first (an injected failure must cost nothing real), then run the
   backend, demoting its string errors — and any exception that escapes
   its own error paths — into structured failure kinds. *)
let guarded_execute ?faults ~cubes t mapping registry =
  match
    match faults with
    | Some plan -> Faults.check plan ~stage:Faults.Execute ~target:t.name ~cubes
    | None -> None
  with
  | Some kind -> Error kind
  | None -> (
      match t.execute mapping registry with
      | Ok _ as ok -> ok
      | Error msg -> Error (Faults.Execute_error msg)
      | exception e ->
          Error
            (Faults.Worker_crash
               (Printf.sprintf "%s [%s]: %s" t.name (String.concat ", " cubes)
                  (Printexc.to_string e))))
