open Matrix

(** Batched elementary-cube updates (the input of
    {!Exlengine.apply_updates}).

    The on-disk form is a line-based text format, one update per line:

    {v
    # revise two daily observations, retract a third
    set PDR 2019-03-14 r001 1012000.5
    set PDR 2019-03-15 r001 1012012.5
    del PDR 2019-03-16 r001
    v}

    [set] upserts the measure at a key (dimension values in schema
    order); [del] retracts the key.  Blank lines and [#] comments are
    ignored.  Values are parsed like CSV cells ({!Matrix.Value}'s
    guessing rules) and validated against the cube's registered schema,
    so a batch either parses completely or reports the first bad
    line. *)

type action = Set of Value.t | Remove
type t = { cube : string; key : Value.t list; action : action }

val set : cube:string -> key:Value.t list -> Value.t -> t
val remove : cube:string -> key:Value.t list -> t

val compact : t list -> t list
(** The net effect of applying the batch in order: at most one update
    per (cube, key), the last action winning — a [set] followed by a
    [del] of the same key nets out to the [del], a [del] followed by a
    [set] to the [set].  Keys keep their first-appearance order, so
    compaction is stable and idempotent. *)

val concat : t list list -> t list
(** Merge several pending batches into one equivalent batch:
    [compact] of their concatenation in order.  This is what the
    server's coalescer feeds to a single
    {!Exlengine.apply_updates} call — compaction works across batch
    boundaries, so opposing updates queued by different clients
    cancel before validation instead of being replayed one by one. *)

val of_string :
  schema_of:(string -> Schema.t option) -> string -> (t list, string) result
(** Parse a batch, resolving each cube's schema through [schema_of]
    (typically {!Determination.schema}); [Error] names the first
    offending line. *)

val to_string : t -> string
(** One line in the text format ([of_string]-compatible). *)
