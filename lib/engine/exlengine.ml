open Matrix

type config = {
  targets : Target.t list;
  policy : Dispatcher.assignment_policy;
  record_history : bool;
  parallel_dispatch : bool;
  pool_size : int option;
      (* worker-domain count for parallel dispatch; None = the shared
         pool sized from Domain.recommended_domain_count *)
  retry : Dispatcher.retry_policy;
  faults : Faults.plan option;
      (* injected failures, for drills and tests; None in production *)
}

let default_config =
  {
    targets = Target.builtins;
    policy = Dispatcher.default_policy;
    record_history = true;
    parallel_dispatch = false;
    pool_size = None;
    retry = Dispatcher.default_retry;
    faults = None;
  }

type t = {
  config : config;
  determination : Determination.t;
  translation : Translation.t;
  store : Registry.t;
  history : Historicity.t;
  pool : Pool.t option;
  mutable dirty : string list;
}

let create ?(config = default_config) () =
  {
    config;
    determination = Determination.create ();
    translation = Translation.create ();
    store = Registry.create ();
    history = Historicity.create ();
    pool =
      (if config.parallel_dispatch then
         Some
           (match config.pool_size with
           | Some size -> Pool.create ~size ()
           | None -> Pool.shared ())
       else None);
    dirty = [];
  }

let register_program t ~name source =
  Determination.register_source t.determination ~name source

let load_elementary t cube =
  let name = Cube.name cube in
  match Determination.schema t.determination name with
  | None -> Error (Printf.sprintf "no program declares cube %s" name)
  | Some schema ->
      if Determination.kind t.determination name <> Some Registry.Elementary
      then Error (Printf.sprintf "cube %s is derived, not elementary" name)
      else begin
        let ok = ref true in
        Cube.iter
          (fun k _ -> if not (Schema.compatible_tuple schema k) then ok := false)
          cube;
        if not !ok then
          Error (Printf.sprintf "data for %s does not fit schema %s" name
                   (Schema.to_string schema))
        else begin
          Registry.add t.store Registry.Elementary
            (Cube.with_schema schema (Cube.copy cube));
          if not (List.mem name t.dirty) then t.dirty <- name :: t.dirty;
          Ok ()
        end
      end

let changed t = List.sort String.compare t.dirty

let default_as_of = Calendar.Date.make ~year:2026 ~month:1 ~day:1

let run_affected ?(as_of = default_as_of) t affected =
  Obs.with_span "engine.recompute"
    ~attrs:[ ("affected", string_of_int (List.length affected)) ]
  @@ fun () ->
  match
    Dispatcher.run ~parallel:t.config.parallel_dispatch ?pool:t.pool
      ~retry:t.config.retry ?faults:t.config.faults ~targets:t.config.targets
      ~policy:t.config.policy ~translation:t.translation
      ~determination:t.determination ~store:t.store ~affected ()
  with
  | Error _ as e -> e
  | Ok report ->
      if t.config.record_history then
        List.iter
          (fun cube ->
            match Registry.find t.store cube with
            | Some c -> Historicity.store t.history ~valid_from:as_of c
            | None -> ())
          report.Dispatcher.recomputed;
      t.dirty <- [];
      Ok report

let recompute ?as_of t =
  let affected = Determination.affected t.determination ~changed:t.dirty in
  run_affected ?as_of t affected

let recompute_all ?as_of t =
  run_affected ?as_of t (Determination.derived_order t.determination)

let save_store t ~dir = Store.save ~dir t.store

let load_store t ~dir =
  match Store.load ~dir with
  | Error _ as e -> e
  | Ok loaded ->
      let rec loop = function
        | [] -> Ok ()
        | name :: rest -> (
            let cube = Registry.find_exn loaded name in
            match Registry.kind_of loaded name with
            | Some Registry.Elementary -> (
                match load_elementary t cube with
                | Ok () -> loop rest
                | Error _ as e -> e)
            | _ ->
                Registry.add t.store Registry.Derived cube;
                loop rest)
      in
      loop (Registry.names loaded)

let cube t name = Registry.find t.store name
let cube_as_of t date name = Historicity.as_of t.history date name
let store t = t.store
let determination t = t.determination
let translation_cache t = t.translation
let history t = t.history
