open Matrix

type config = {
  targets : Target.t list;
  policy : Dispatcher.assignment_policy;
  record_history : bool;
  parallel_dispatch : bool;
  pool_size : int option;
      (* worker-domain count for parallel dispatch; None = the shared
         pool sized from Domain.recommended_domain_count *)
  retry : Dispatcher.retry_policy;
  faults : Faults.plan option;
      (* injected failures, for drills and tests; None in production *)
  optimize : bool;
      (* run the exl-opt containment pass on generated mappings before
         chasing them; on by default, opt out for A/B runs *)
  columnar : bool;
      (* chase through the vectorized column-batch kernels; on by
         default, opt out for A/B runs against the row path *)
  shards : int;
      (* partition full chases across this many shards, run on the
         domain pool with work stealing; 1 = unsharded *)
  shard_key : string option;
      (* dimension to partition on; None = chosen per mapping by the
         co-partitioning check *)
}

let default_config =
  {
    targets = Target.builtins;
    policy = Dispatcher.default_policy;
    record_history = true;
    parallel_dispatch = false;
    pool_size = None;
    retry = Dispatcher.default_retry;
    faults = None;
    optimize = true;
    columnar = true;
    shards = 1;
    shard_key = None;
  }

(* The solution cache of the incremental path: the chase instance a
   full run produced (source Σst copies, every derived relation, and
   their persistent indexes), kept alive between update batches so the
   next batch can seed {!Exchange.Chase.incremental} with fact deltas
   instead of re-chasing full instances. *)
type solution = {
  sol_mapping : Mappings.Mapping.t;
  sol_instance : Exchange.Instance.t;
  sol_covered : string list;  (* derived cubes the mapping computes *)
  sol_state : Exchange.Chase.incr_state;
      (* group-scoped aggregation bags; lives and dies with the
         instance *)
}

type t = {
  config : config;
  determination : Determination.t;
  translation : Translation.t;
  store : Registry.t;
  history : Historicity.t;
  pool : Pool.t option;
  mutable dirty : string list;
  mutable solution : solution option;
}

let create ?(config = default_config) () =
  if config.shards > 1 then Shard.Driver.install ();
  {
    config;
    determination = Determination.create ();
    translation = Translation.create ();
    store = Registry.create ();
    history = Historicity.create ();
    pool =
      (* sharded chases also need the pool: shard tasks run on it with
         work stealing *)
      (if config.parallel_dispatch || config.shards > 1 then
         Some
           (match config.pool_size with
           | Some size -> Pool.create ~size ()
           | None -> Pool.shared ())
       else None);
    dirty = [];
    solution = None;
  }

let invalidate_solution t = t.solution <- None

let register_program t ~name source =
  let r = Determination.register_source t.determination ~name source in
  if Result.is_ok r then invalidate_solution t;
  r

let load_elementary t cube =
  let name = Cube.name cube in
  match Determination.schema t.determination name with
  | None -> Error (Printf.sprintf "no program declares cube %s" name)
  | Some schema ->
      if Determination.kind t.determination name <> Some Registry.Elementary
      then Error (Printf.sprintf "cube %s is derived, not elementary" name)
      else begin
        let ok = ref true in
        Cube.iter
          (fun k _ -> if not (Schema.compatible_tuple schema k) then ok := false)
          cube;
        if not !ok then
          Error (Printf.sprintf "data for %s does not fit schema %s" name
                   (Schema.to_string schema))
        else begin
          Registry.add t.store Registry.Elementary
            (Cube.with_schema schema (Cube.copy cube));
          if not (List.mem name t.dirty) then t.dirty <- name :: t.dirty;
          (* A wholesale replacement invalidates the incremental
             solution cache; the next update batch rebuilds it. *)
          invalidate_solution t;
          Ok ()
        end
      end

let changed t = List.sort String.compare t.dirty

let default_as_of = Calendar.Date.make ~year:2026 ~month:1 ~day:1

let run_affected ?(as_of = default_as_of) t affected =
  Obs.with_span "engine.recompute"
    ~attrs:[ ("affected", string_of_int (List.length affected)) ]
  @@ fun () ->
  match
    Dispatcher.run ~parallel:t.config.parallel_dispatch ?pool:t.pool
      ~retry:t.config.retry ?faults:t.config.faults ~targets:t.config.targets
      ~policy:t.config.policy ~translation:t.translation
      ~determination:t.determination ~store:t.store ~affected ()
  with
  | Error _ as e -> e
  | Ok report ->
      if t.config.record_history then
        List.iter
          (fun cube ->
            match Registry.find t.store cube with
            | Some c -> Historicity.store t.history ~valid_from:as_of c
            | None -> ())
          report.Dispatcher.recomputed;
      t.dirty <- [];
      Ok report

let recompute ?as_of t =
  let affected = Determination.affected t.determination ~changed:t.dirty in
  run_affected ?as_of t affected

let recompute_all ?as_of t =
  run_affected ?as_of t (Determination.derived_order t.determination)

(* ----- batched incremental updates ----- *)

type update_report = {
  updated : string list;
  recomputed : string list;
  facts_changed : int;
  facts_rederived : int;
  total_facts : int;
  cache_hit : bool;
  strata_skipped : int;
  strata_rederived : int;
}

let empty_update_report =
  {
    updated = [];
    recomputed = [];
    facts_changed = 0;
    facts_rederived = 0;
    total_facts = 0;
    cache_hit = false;
    strata_skipped = 0;
    strata_rederived = 0;
  }

let validate_update t (u : Update.t) =
  match Determination.schema t.determination u.Update.cube with
  | None -> Error (Printf.sprintf "no program declares cube %s" u.Update.cube)
  | Some schema ->
      if Determination.kind t.determination u.Update.cube <> Some Registry.Elementary
      then
        Error
          (Printf.sprintf "cube %s is derived, not elementary" u.Update.cube)
      else
        let key = Tuple.of_list u.Update.key in
        if not (Schema.compatible_tuple schema key) then
          Error
            (Printf.sprintf "update key %s does not fit schema %s"
               (Tuple.to_string key) (Schema.to_string schema))
        else
          match u.Update.action with
          | Update.Remove -> Ok ()
          | Update.Set v ->
              if Domain.member v schema.Schema.measure_domain then Ok ()
              else
                Error
                  (Printf.sprintf "measure %s out of domain %s for %s"
                     (Value.to_string v)
                     (Domain.to_string schema.Schema.measure_domain)
                     u.Update.cube)

let validate_updates t updates =
  let rec loop = function
    | [] -> Ok ()
    | u :: rest -> (
        match validate_update t u with Error _ as e -> e | Ok () -> loop rest)
  in
  loop updates

(* Apply the batch to the store's elementary cubes in order, then
   compact it to net per-key changes: a key revised twice contributes
   one removed/added pair, a revision back to the original value
   contributes nothing. *)
let apply_to_store t updates =
  let originals : (string, Value.t option Tuple.Table.t) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (u : Update.t) ->
      let name = u.Update.cube in
      let cube =
        match Registry.find t.store name with
        | Some c -> c
        | None ->
            (* First data for this cube arrives as an update batch. *)
            let c =
              Cube.create (Option.get (Determination.schema t.determination name))
            in
            Registry.add t.store Registry.Elementary c;
            c
      in
      let touched =
        match Hashtbl.find_opt originals name with
        | Some tbl -> tbl
        | None ->
            let tbl = Tuple.Table.create 16 in
            Hashtbl.replace originals name tbl;
            tbl
      in
      let key = Tuple.of_list u.Update.key in
      if not (Tuple.Table.mem touched key) then
        Tuple.Table.replace touched key (Cube.find cube key);
      match u.Update.action with
      | Update.Set v -> Cube.set cube key v
      | Update.Remove -> Cube.remove cube key)
    updates;
  let fact key v = Array.append (Tuple.to_array key) [| v |] in
  Hashtbl.fold
    (fun name touched acc ->
      let cube = Registry.find_exn t.store name in
      let added = ref [] and removed = ref [] in
      Tuple.Table.iter
        (fun key original ->
          let final = Cube.find cube key in
          match (original, final) with
          | None, None -> ()
          | Some o, Some f when Value.equal o f -> ()
          | o, f ->
              Option.iter (fun v -> removed := fact key v :: !removed) o;
              Option.iter (fun v -> added := fact key v :: !added) f)
        touched;
      if !added = [] && !removed = [] then acc
      else
        (name, { Exchange.Chase.added = !added; removed = !removed }) :: acc)
    originals []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Full rebuild of the solution cache: one semi-naive chase of the
   complete program over the (already updated) store. *)
let rebuild_solution t covered =
  match Translation.submapping t.determination ~cubes:covered with
  | Error _ as e -> e
  | Ok generated -> (
      (* The optimized mapping is what gets chased, cached and repaired
         incrementally; [covered] only names user cubes (never
         temporaries), so pruning temporaries is invisible to
         [store_derived]. *)
      let mapping =
        if t.config.optimize then
          (Analysis.Optimize.run generated).Analysis.Optimize.optimized
        else generated
      in
      let source = Exchange.Instance.of_registry t.store in
      let executor =
        (* shard tasks are coarse and uneven: steal-half rebalancing
           beats the plain shared-queue executor there *)
        match t.pool with
        | Some pool when t.config.shards > 1 -> Pool.stealing_executor pool
        | _ -> Exchange.Chase.sequential_executor
      in
      match
        Exchange.Chase.run ~columnar:t.config.columnar ~executor
          ~shards:t.config.shards ?shard_key:t.config.shard_key mapping source
      with
      | Error _ as e -> e
      | Ok (instance, stats) ->
          let sol =
            {
              sol_mapping = mapping;
              sol_instance = instance;
              sol_covered = covered;
              sol_state = Exchange.Chase.create_incr_state ();
            }
          in
          t.solution <- Some sol;
          Ok (sol, stats.Exchange.Chase.tuples_generated))

let warm t =
  match t.solution with
  | Some _ -> Ok ()
  | None ->
      Result.map
        (fun _ -> ())
        (rebuild_solution t (Determination.derived_order t.determination))

let store_derived ?(as_of = default_as_of) t sol ~write_back ~versioned =
  List.iter
    (fun name ->
      let cube = Exchange.Instance.cube_of_relation sol.sol_instance name in
      Registry.add t.store Registry.Derived cube;
      if t.config.record_history && List.mem name versioned then
        Historicity.store t.history ~valid_from:as_of cube)
    write_back

let apply_updates ?as_of t (updates : Update.t list) =
  if updates = [] then Ok empty_update_report
  else
    Obs.with_span "incr.apply_updates"
      ~attrs:[ ("updates", string_of_int (List.length updates)) ]
    @@ fun () ->
    match validate_updates t updates with
    | Error _ as e -> e
    | Ok () -> (
        let deltas = apply_to_store t updates in
        let facts_changed =
          List.fold_left
            (fun acc (_, d) ->
              acc
              + List.length d.Exchange.Chase.added
              + List.length d.Exchange.Chase.removed)
            0 deltas
        in
        let updated = List.map fst deltas in
        Obs.count "incr.batches";
        if deltas = [] then Ok { empty_update_report with facts_changed }
        else
          let dirty = Determination.dirty_set t.determination ~changed:updated in
          let affected = dirty.Determination.dirty_derived in
          Obs.observe "incr.dirty_cubes" (float_of_int (List.length affected));
          if affected = [] then
            (* e.g. an update to a cube no statement reads *)
            Ok { empty_update_report with updated; facts_changed }
          else
            let propagated =
              match t.solution with
              | Some sol ->
                  Obs.count "incr.cache_hits";
                  let executor = Option.map Pool.executor t.pool in
                  (* A cube nothing reads has no relation in the cached
                     solution; its store update is already done and its
                     delta propagates nowhere. *)
                  let deltas =
                    List.filter
                      (fun (name, _) ->
                        Determination.dependents_of t.determination name <> [])
                      deltas
                  in
                  Result.map
                    (fun (_stats, istats) -> (sol, true, istats))
                    (match
                       Exchange.Chase.incremental ?executor
                         ~state:sol.sol_state sol.sol_mapping
                         ~solution:sol.sol_instance ~deltas
                     with
                    | Ok _ as ok -> ok
                    | Error _ as e ->
                        (* The instance (and bags) may be partially
                           repaired: drop the cache so the next batch
                           rebuilds from the store. *)
                        invalidate_solution t;
                        e)
              | None ->
                  Obs.count "incr.cache_misses";
                  Result.map
                    (fun (sol, tuples) ->
                      let istats = Exchange.Chase.empty_incr_stats () in
                      istats.Exchange.Chase.facts_rederived <- tuples;
                      (sol, false, istats))
                    (rebuild_solution t
                       (Determination.derived_order t.determination))
            in
            match propagated with
            | Error _ as e -> e
            | Ok (sol, cache_hit, istats) ->
                (* Transitive invalidation: only the affected cubes get
                   a new dated version; untouched cubes keep their
                   history so [cube_as_of] still answers for them. *)
                let write_back = if cache_hit then affected else sol.sol_covered in
                store_derived ?as_of t sol ~write_back ~versioned:affected;
                if not cache_hit then t.dirty <- [];
                Obs.count ~n:istats.Exchange.Chase.facts_rederived
                  "incr.facts_rederived";
                Ok
                  {
                    updated;
                    recomputed = affected;
                    facts_changed;
                    facts_rederived = istats.Exchange.Chase.facts_rederived;
                    total_facts =
                      Exchange.Instance.total_facts sol.sol_instance;
                    cache_hit;
                    strata_skipped = istats.Exchange.Chase.strata_skipped;
                    strata_rederived = istats.Exchange.Chase.strata_rederived;
                  })

let save_store t ~dir = Store.save ~dir t.store

let load_store t ~dir =
  invalidate_solution t;
  match Store.load ~dir with
  | Error _ as e -> e
  | Ok loaded ->
      let rec loop = function
        | [] -> Ok ()
        | name :: rest -> (
            let cube = Registry.find_exn loaded name in
            match Registry.kind_of loaded name with
            | Some Registry.Elementary -> (
                match load_elementary t cube with
                | Ok () -> loop rest
                | Error _ as e -> e)
            | _ ->
                Registry.add t.store Registry.Derived cube;
                loop rest)
      in
      loop (Registry.names loaded)

let cube t name = Registry.find t.store name
let cube_as_of t date name = Historicity.as_of t.history date name
let store t = t.store
let determination t = t.determination
let translation_cache t = t.translation
let history t = t.history
