(** A reusable domain pool.

    The dispatcher's wave parallelism and the chase's within-stratum
    parallelism both need short bursts of independent work; spawning
    and joining fresh domains per burst costs hundreds of microseconds
    each.  A pool keeps [size] worker domains alive across bursts, and
    the submitting domain helps drain the queue, so a burst never waits
    on a fully occupied (or zero-sized) pool. *)

type t

val create : ?size:int -> unit -> t
(** [size] defaults to [Domain.recommended_domain_count () - 1] (at
    least 1): the submitter participates, so the default saturates the
    recommended parallelism.  [size = 0] is legal — every task then
    runs on the submitting domain. *)

val size : t -> int

exception Missing_result of string
(** Internal invariant breach: a task finished without recording an
    outcome.  Only ever delivered through {!try_all}'s [Error] case —
    the pool never raises it. *)

val try_all : t -> (string * (unit -> 'a)) list -> ('a, string * exn) result list
(** Execute all labelled thunks (on workers and the calling domain) and
    return their outcomes in order.  A task that raises yields
    [Error (label, exn)] instead of poisoning the burst — the label
    tells the caller {e which} unit of work crashed, so worker failures
    can surface as structured [Worker_crash] reports.  Never raises.
    Safe to call from several domains at once. *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** Execute all thunks (on workers and the calling domain) and return
    their results in order.  If any task raises, one of the exceptions
    is re-raised after all tasks have finished.  Safe to call from
    several domains at once. *)

val executor : t -> (unit -> unit) list -> unit
(** [run_all] specialised to unit tasks — matches the chase's
    [?executor] parameter. *)

val run_stealing : t -> (unit -> unit) list -> unit
(** Execute the burst with work stealing: the tasks are dealt
    round-robin onto one deque per participant (the [size] workers
    plus the caller); each participant pops its own deque from the
    front and, when empty, steals the {e back half} of the first
    non-empty victim's deque (keeping one task, queueing the rest
    locally).  Coarse, unevenly sized tasks — per-shard chases — thus
    rebalance automatically; [Obs] counts ["pool.steals"] /
    ["pool.steal_tasks"].  If any task raises, the first exception is
    re-raised on the calling domain after all tasks have finished —
    the same contract as {!executor}. *)

val stealing_executor : t -> (unit -> unit) list -> unit
(** {!run_stealing} partially applied — matches the chase's
    [?executor] parameter, used for shard tasks. *)

val shutdown : t -> unit
(** Signal workers to exit and join them; idempotent.  Tasks already
    queued are still drained. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** Create, run, and always shut down. *)

val shared : unit -> t
(** The lazily created process-wide pool (default size), shut down at
    exit. *)
