open Matrix

type assignment_policy = {
  priority : string list;
  overrides : (string * string) list;
}

let default_policy = { priority = [ "sql"; "vector"; "etl" ]; overrides = [] }

(* All tgds (including those for normalizer temporaries) a cube's
   statement generates — what a target must support to own the cube. *)
let tgds_of_cube determination cube =
  Result.bind (Translation.submapping determination ~cubes:[ cube ])
    (fun mapping -> Ok mapping.Mappings.Mapping.t_tgds)

let supports_all (target : Target.t) tgds =
  List.for_all target.Target.supports tgds

let assign ~targets ~policy determination cube =
  Result.bind (tgds_of_cube determination cube) (fun tgds ->
      match List.assoc_opt cube policy.overrides with
      | Some forced -> (
          match Target.find targets forced with
          | None -> Error (Printf.sprintf "override for %s names unknown target %s" cube forced)
          | Some t ->
              if supports_all t tgds then Ok forced
              else
                Error
                  (Printf.sprintf
                     "override: target %s cannot compute cube %s (unsupported operator)"
                     forced cube))
      | None -> (
          let candidate =
            List.find_map
              (fun name ->
                match Target.find targets name with
                | Some t when supports_all t tgds -> Some name
                | _ -> None)
              policy.priority
          in
          match candidate with
          | Some name -> Ok name
          | None ->
              Error
                (Printf.sprintf "no target in [%s] can compute cube %s"
                   (String.concat ", " policy.priority)
                   cube)))

(* --- retry policy --- *)

type retry_policy = {
  max_attempts : int;
  base_backoff : float;
  backoff_multiplier : float;
  max_backoff : float;
  jitter : float;
  subgraph_timeout : float option;
}

let default_retry =
  {
    max_attempts = 3;
    base_backoff = 0.01;
    backoff_multiplier = 2.0;
    max_backoff = 0.5;
    jitter = 0.5;
    subgraph_timeout = None;
  }

(* Exponential backoff with deterministic jitter: attempt [n] waits
   min(base * multiplier^(n-1), max) scaled into [1 - jitter, 1] by the
   seeded hash — reproducible for a given (seed, subgraph, attempt),
   yet de-synchronized across subgraphs like randomized jitter. *)
let backoff_duration ~retry ~seed ~key ~attempt =
  if retry.base_backoff <= 0. then 0.
  else
    let exp =
      retry.base_backoff
      *. (retry.backoff_multiplier ** float_of_int (attempt - 1))
    in
    let capped = Float.min exp retry.max_backoff in
    capped *. (1. -. (retry.jitter *. Faults.uniform ~seed ~key attempt))

type subgraph_report = {
  target : string;
  cubes : string list;
  artifact : Target.artifact;
  translate_seconds : float;
  execute_seconds : float;
  attempts : int;
  translate_attempts : int;
}

type wave_report = {
  wave_subgraphs : (string * string list) list;
      (** (target name, cubes) of each subgraph run in the wave *)
  wave_seconds : float;  (** wall-clock for the whole wave *)
}

type report = {
  subgraphs : subgraph_report list;
  waves : wave_report list;
  recomputed : string list;
  translation_cache_hits : int;
  failures : Faults.failure_report list;
  quarantined : string list;
  skipped : string list;
}

let degraded r = r.quarantined <> [] || r.skipped <> []

let failure_summary r =
  if not (degraded r) && r.failures = [] then ""
  else
    String.concat "\n"
      (("failure summary:"
        :: List.map (fun f -> "  " ^ Faults.report_to_string f) r.failures)
      @ (if r.quarantined = [] then []
         else [ "quarantined: " ^ String.concat ", " r.quarantined ])
      @
      if r.skipped = [] then []
      else [ "skipped (upstream quarantined): " ^ String.concat ", " r.skipped ])

(* Wall clock, not [Sys.time]: CPU time over-counts when subgraphs run
   on several domains and under-counts blocked waits.  The Obs shim
   additionally clamps it monotone, so NTP steps cannot produce
   negative durations in reports or backoff math. *)
let now () = Obs.Clock.now ()

let merge_into store (result : Registry.t) cubes =
  List.iter
    (fun cube ->
      match Registry.find result cube with
      | Some c -> Registry.add store Registry.Derived (Cube.copy c)
      | None -> ())
    cubes

(* Group the (ordered) per-target subgraphs into waves: a wave extends
   while the next group reads nothing produced inside the wave, so all
   groups of a wave can execute concurrently (the paper's
   "parallelization patterns" in the dispatcher).  Generic over the
   group representation so prepared groups flow through directly — no
   re-association by physical equality afterwards. *)
let waves_of_groups ~sources_of ~cubes_of groups =
  let rec build acc wave wave_targets = function
    | [] -> List.rev (if wave = [] then acc else List.rev wave :: acc)
    | group :: rest ->
        let cubes = cubes_of group in
        let sources = sources_of cubes in
        let independent =
          List.for_all (fun s -> not (List.mem s wave_targets)) sources
        in
        if wave = [] || independent then
          build acc (group :: wave) (cubes @ wave_targets) rest
        else build (List.rev wave :: acc) [ group ] cubes rest
  in
  build [] [] [] groups

(* --- fault-tolerant subgraph execution --- *)

type group_outcome =
  | Computed of subgraph_report * Registry.t * Faults.failure_report list
      (** result to merge, plus the (resolved) failures survived on the
          way — each one a target that was abandoned for the next *)
  | Abandoned of Faults.failure_report list
      (** every capable target failed persistently: the subgraph's live
          cubes are quarantined *)

(* Fallback order: the assigned target first, then the remaining
   priority targets (in priority order) that exist and support every
   tgd of the (possibly narrowed) cube set. *)
let candidate_targets ~targets ~policy ~assigned tgds =
  assigned
  :: List.filter
       (fun name ->
         name <> assigned
         &&
         match Target.find targets name with
         | Some t -> supports_all t tgds
         | None -> false)
       policy.priority

(* Stamp resolutions onto the per-target failure trail: each abandoned
   target fell back to the next one tried; the last one either fell
   back to the target that finally succeeded or caused quarantine. *)
let stamp_resolutions ~success trail =
  let rec stamp = function
    | [] -> []
    | [ (f : Faults.failure_report) ] ->
        [
          {
            f with
            Faults.f_resolution =
              (match success with
              | Some name -> Faults.Fell_back name
              | None -> Faults.Quarantined);
          };
        ]
    | f :: ((next : Faults.failure_report) :: _ as rest) ->
        { f with Faults.f_resolution = Faults.Fell_back next.Faults.f_target }
        :: stamp rest
  in
  stamp trail

(* Run one subgraph to completion, quarantine, or bust: for each
   candidate target, translate then execute, retrying each failed step
   up to [retry.max_attempts] with jittered exponential backoff; on a
   persistently failing target, fall back to the next capable one
   (re-translating for the new engine).  Runs inside a pooled task, so
   it must never raise. *)
let run_group ?faults ~retry ~seed ~wave ~targets ~policy ~translation
    ~determination ~store (assigned, cubes) =
  let key = String.concat "," cubes in
  let sleep ~stage ~target ~attempt d =
    if d > 0. then begin
      Obs.count "dispatcher.retries";
      Obs.with_span "dispatch.backoff"
        ~attrs:
          [
            ("stage", stage);
            ("target", target);
            ("attempt", string_of_int attempt);
          ]
        (fun () -> Unix.sleepf d)
    end
    else Obs.count "dispatcher.retries"
  in
  let unresolved ~target ~stage ~kind ~attempts =
    {
      Faults.f_cubes = cubes;
      f_target = target;
      f_stage = stage;
      f_kind = kind;
      f_attempts = attempts;
      f_resolution = Faults.Quarantined (* stamped later *);
    }
  in
  match
    Result.map
      (fun (m : Mappings.Mapping.t) -> m.Mappings.Mapping.t_tgds)
      (Translation.submapping determination ~cubes)
  with
  | Error msg ->
      (* The subgraph's own mapping cannot be generated: no target can
         help, quarantine immediately. *)
      Abandoned
        [
          unresolved ~target:assigned ~stage:Faults.Translate
            ~kind:(Faults.Translate_error msg) ~attempts:1;
        ]
  | Ok tgds ->
      let exec_attempts = ref 0 in
      let translate_attempts = ref 0 in
      let attempt_target (t : Target.t) =
        let backoff_key = t.Target.name ^ "/" ^ key in
        let rec translate attempt =
          incr translate_attempts;
          match
            Obs.with_span "dispatch.retry"
              ~attrs:
                [
                  ("stage", "translate");
                  ("target", t.Target.name);
                  ("attempt", string_of_int attempt);
                ]
              (fun () ->
                Translation.translate ?faults translation determination
                  ~target:t ~cubes)
          with
          | Ok pair -> Ok pair
          | Error kind ->
              if attempt >= retry.max_attempts then
                Error (Faults.Translate, kind, attempt)
              else begin
                sleep ~stage:"translate" ~target:t.Target.name ~attempt
                  (backoff_duration ~retry ~seed ~key:backoff_key ~attempt);
                translate (attempt + 1)
              end
        in
        let t0 = now () in
        match translate 1 with
        | Error _ as e -> e
        | Ok (artifact, mapping) ->
            let translate_seconds = now () -. t0 in
            let rec execute attempt =
              incr exec_attempts;
              let t1 = now () in
              let outcome =
                Obs.with_span "dispatch.retry"
                  ~attrs:
                    [
                      ("stage", "execute");
                      ("target", t.Target.name);
                      ("attempt", string_of_int attempt);
                      ("cubes", key);
                    ]
                  (fun () ->
                    Target.guarded_execute ?faults ~cubes t mapping store)
              in
              let elapsed = now () -. t1 in
              let outcome =
                match (outcome, retry.subgraph_timeout) with
                | Ok _, Some limit when elapsed > limit ->
                    Error (Faults.Timeout elapsed)
                | _ -> outcome
              in
              match outcome with
              | Ok result ->
                  Ok
                    ( {
                        target = t.Target.name;
                        cubes;
                        artifact;
                        translate_seconds;
                        execute_seconds = elapsed;
                        attempts = 0 (* filled in below *);
                        translate_attempts = 0;
                      },
                      mapping,
                      result )
              | Error kind ->
                  if attempt >= retry.max_attempts then
                    Error (Faults.Execute, kind, attempt)
                  else begin
                    sleep ~stage:"execute" ~target:t.Target.name ~attempt
                      (backoff_duration ~retry ~seed ~key:backoff_key ~attempt);
                    execute (attempt + 1)
                  end
            in
            execute 1
      in
      let rec try_candidates trail = function
        | [] -> Abandoned (stamp_resolutions ~success:None (List.rev trail))
        | name :: rest -> (
            match Target.find targets name with
            | None ->
                (* the assigned target vanished from the palette: a
                   metadata failure, surfaced as a trail entry *)
                try_candidates
                  (unresolved ~target:name ~stage:Faults.Translate
                     ~kind:
                       (Faults.Translate_error
                          (Printf.sprintf "unknown target %s" name))
                     ~attempts:1
                  :: trail)
                  rest
            | Some t -> (
                match attempt_target t with
                | Ok (sr, mapping, result) ->
                    let fails =
                      stamp_resolutions ~success:(Some name) (List.rev trail)
                    in
                    Obs.count ~n:(List.length fails) "dispatcher.fallbacks";
                    let sr =
                      {
                        sr with
                        attempts = !exec_attempts;
                        translate_attempts = !translate_attempts;
                      }
                    in
                    if Obs.enabled () then
                      List.iter
                        (fun cube ->
                          Obs.record_provenance
                            {
                              Obs.Provenance.cube;
                              tgds =
                                List.filter_map
                                  (fun tgd ->
                                    if
                                      Mappings.Tgd.target_relation tgd = cube
                                    then Some (Mappings.Tgd.to_string tgd)
                                    else None)
                                  mapping.Mappings.Mapping.t_tgds;
                              wave;
                              target = name;
                              status = Obs.Provenance.Computed;
                              attempts = sr.attempts;
                              translate_attempts = sr.translate_attempts;
                              translate_seconds = sr.translate_seconds;
                              execute_seconds = sr.execute_seconds;
                            })
                        cubes;
                    Computed (sr, result, fails)
                | Error (stage, kind, attempts) ->
                    try_candidates
                      (unresolved ~target:name ~stage ~kind ~attempts :: trail)
                      rest))
      in
      try_candidates [] (candidate_targets ~targets ~policy ~assigned tgds)

let run ?(parallel = false) ?pool ?(retry = default_retry) ?faults ~targets
    ~policy ~translation ~determination ~store ~affected () =
  Obs.with_span "dispatcher.run"
    ~attrs:
      [
        ("affected", string_of_int (List.length affected));
        ("parallel", string_of_bool parallel);
      ]
  @@ fun () ->
  let seed = match faults with Some p -> Faults.seed p | None -> 0 in
  (* 1. assignment (static capability/override errors fail the run:
     they are configuration problems, not runtime faults) *)
  let rec assign_all acc = function
    | [] -> Ok (List.rev acc)
    | cube :: rest -> (
        match assign ~targets ~policy determination cube with
        | Ok target -> assign_all ((cube, target) :: acc) rest
        | Error _ as e -> e)
  in
  Result.bind (assign_all [] affected) (fun assignments ->
      (* 2. partition into consecutive same-target subgraphs *)
      let groups =
        Determination.partition
          ~assign:(fun cube ->
            match List.assoc_opt cube assignments with
            | Some t -> t
            | None -> "" (* unreachable: assignments covers [affected] *))
          affected
      in
      (* 3. order into waves; groups inside a wave touch disjoint data
         and may run on separate domains *)
      let sources_of cubes =
        List.concat_map (Determination.sources_of determination) cubes
      in
      let waves =
        if parallel then waves_of_groups ~sources_of ~cubes_of:snd groups
        else List.map (fun g -> [ g ]) groups
      in
      (* cube -> why it is dead: quarantined (its subgraph failed) or
         skipped (an upstream cube is dead) *)
      let dead : (string, [ `Quarantined | `Skipped ]) Hashtbl.t =
        Hashtbl.create 8
      in
      let run_group_task ~wave ((assigned, cubes) as group) () =
        Obs.with_span "dispatch.subgraph"
          ~attrs:
            [
              ("target", assigned);
              ("cubes", String.concat "," cubes);
              ("wave", string_of_int wave);
            ]
          (fun () ->
            run_group ?faults ~retry ~seed ~wave ~targets ~policy ~translation
              ~determination ~store group)
      in
      let rec run_waves w sub_acc wave_acc fail_acc = function
        | [] ->
            let with_status status =
              List.filter (fun c -> Hashtbl.find_opt dead c = Some status)
                affected
            in
            Obs.count
              ~n:(List.length (with_status `Quarantined))
              "dispatcher.quarantined_cubes";
            Obs.count
              ~n:(List.length (with_status `Skipped))
              "dispatcher.skipped_cubes";
            Ok
              {
                subgraphs = List.rev sub_acc;
                waves = List.rev wave_acc;
                recomputed =
                  List.filter (fun c -> not (Hashtbl.mem dead c)) affected;
                translation_cache_hits = Translation.cache_hits translation;
                failures = List.rev fail_acc;
                quarantined = with_status `Quarantined;
                skipped = with_status `Skipped;
              }
        | wave :: rest ->
            let t0 = now () in
            (* Narrow each group to its live cubes: a cube whose source
               is dead (in order, so intra-group chains propagate) is
               skipped, not executed against stale or missing data. *)
            let narrowed =
              List.filter_map
                (fun (target, cubes) ->
                  let live =
                    List.fold_left
                      (fun live cube ->
                        let dead_source =
                          List.exists (Hashtbl.mem dead)
                            (Determination.sources_of determination cube)
                        in
                        if dead_source then begin
                          Hashtbl.replace dead cube `Skipped;
                          if Obs.enabled () then
                            Obs.record_provenance
                              {
                                Obs.Provenance.cube;
                                tgds = [];
                                wave = w;
                                target = "";
                                status = Obs.Provenance.Skipped;
                                attempts = 0;
                                translate_attempts = 0;
                                translate_seconds = 0.;
                                execute_seconds = 0.;
                              };
                          live
                        end
                        else cube :: live)
                      [] cubes
                    |> List.rev
                  in
                  if live = [] then None else Some (target, live))
                wave
            in
            if narrowed = [] then run_waves (w + 1) sub_acc wave_acc fail_acc rest
            else begin
              let tasks =
                List.map
                  (fun ((target, live) as group) ->
                    ( Printf.sprintf "%s [%s]" target (String.concat ", " live),
                      run_group_task ~wave:w group ))
                  narrowed
              in
              let outcomes =
                Obs.with_span "dispatcher.wave"
                  ~attrs:
                    [
                      ("wave", string_of_int w);
                      ("subgraphs", string_of_int (List.length narrowed));
                    ]
                  (fun () ->
                    match tasks with
                    | [ (label, f) ] ->
                        [ (try Ok (f ()) with e -> Error (label, e)) ]
                    | _ ->
                        let pool =
                          match pool with Some p -> p | None -> Pool.shared ()
                        in
                        Pool.try_all pool tasks)
              in
              let wave_entry =
                {
                  wave_subgraphs = narrowed;
                  wave_seconds = now () -. t0;
                }
              in
              Obs.count "dispatcher.waves";
              Obs.count ~n:(List.length narrowed) "dispatcher.subgraphs";
              Obs.observe "dispatcher.wave_seconds" wave_entry.wave_seconds;
              let quarantine target live =
                List.iter
                  (fun c ->
                    Hashtbl.replace dead c `Quarantined;
                    if Obs.enabled () then
                      Obs.record_provenance
                        {
                          Obs.Provenance.cube = c;
                          tgds = [];
                          wave = w;
                          target;
                          status = Obs.Provenance.Quarantined;
                          attempts = 0;
                          translate_attempts = 0;
                          translate_seconds = 0.;
                          execute_seconds = 0.;
                        })
                  live
              in
              let sub_acc, fail_acc =
                List.fold_left2
                  (fun (sub_acc, fail_acc) (target, live) outcome ->
                    match outcome with
                    | Ok (Computed (sr, result, fails)) ->
                        merge_into store result live;
                        (sr :: sub_acc, List.rev_append fails fail_acc)
                    | Ok (Abandoned fails) ->
                        quarantine target live;
                        (sub_acc, List.rev_append fails fail_acc)
                    | Error (label, exn) ->
                        (* an exception escaped [run_group] itself —
                           surface it, quarantine, keep the wave *)
                        quarantine target live;
                        ( sub_acc,
                          {
                            Faults.f_cubes = live;
                            f_target = target;
                            f_stage = Faults.Execute;
                            f_kind =
                              Faults.Worker_crash
                                (label ^ ": " ^ Printexc.to_string exn);
                            f_attempts = 1;
                            f_resolution = Faults.Quarantined;
                          }
                          :: fail_acc ))
                  (sub_acc, fail_acc) narrowed outcomes
              in
              run_waves (w + 1) sub_acc (wave_entry :: wave_acc) fail_acc rest
            end
      in
      run_waves 0 [] [] [] waves)
