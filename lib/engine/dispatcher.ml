open Matrix

type assignment_policy = {
  priority : string list;
  overrides : (string * string) list;
}

let default_policy = { priority = [ "sql"; "vector"; "etl" ]; overrides = [] }

(* All tgds (including those for normalizer temporaries) a cube's
   statement generates — what a target must support to own the cube. *)
let tgds_of_cube determination cube =
  Result.bind (Translation.submapping determination ~cubes:[ cube ])
    (fun mapping -> Ok mapping.Mappings.Mapping.t_tgds)

let supports_all (target : Target.t) tgds =
  List.for_all target.Target.supports tgds

let assign ~targets ~policy determination cube =
  Result.bind (tgds_of_cube determination cube) (fun tgds ->
      match List.assoc_opt cube policy.overrides with
      | Some forced -> (
          match Target.find targets forced with
          | None -> Error (Printf.sprintf "override for %s names unknown target %s" cube forced)
          | Some t ->
              if supports_all t tgds then Ok forced
              else
                Error
                  (Printf.sprintf
                     "override: target %s cannot compute cube %s (unsupported operator)"
                     forced cube))
      | None -> (
          let candidate =
            List.find_map
              (fun name ->
                match Target.find targets name with
                | Some t when supports_all t tgds -> Some name
                | _ -> None)
              policy.priority
          in
          match candidate with
          | Some name -> Ok name
          | None ->
              Error
                (Printf.sprintf "no target in [%s] can compute cube %s"
                   (String.concat ", " policy.priority)
                   cube)))

type subgraph_report = {
  target : string;
  cubes : string list;
  artifact : Target.artifact;
  translate_seconds : float;
  execute_seconds : float;
}

type wave_report = {
  wave_subgraphs : (string * string list) list;
      (** (target name, cubes) of each subgraph run in the wave *)
  wave_seconds : float;  (** wall-clock for the whole wave *)
}

type report = {
  subgraphs : subgraph_report list;
  waves : wave_report list;
  recomputed : string list;
  translation_cache_hits : int;
}

(* Wall clock, not [Sys.time]: CPU time over-counts when subgraphs run
   on several domains and under-counts blocked waits. *)
let now () = Unix.gettimeofday ()

let merge_into store (result : Registry.t) cubes =
  List.iter
    (fun cube ->
      match Registry.find result cube with
      | Some c -> Registry.add store Registry.Derived (Cube.copy c)
      | None -> ())
    cubes

(* Group the (ordered) per-target subgraphs into waves: a wave extends
   while the next group reads nothing produced inside the wave, so all
   groups of a wave can execute concurrently (the paper's
   "parallelization patterns" in the dispatcher).  Generic over the
   group representation so prepared groups flow through directly — no
   re-association by physical equality afterwards. *)
let waves_of_groups ~sources_of ~cubes_of groups =
  let rec build acc wave wave_targets = function
    | [] -> List.rev (if wave = [] then acc else List.rev wave :: acc)
    | group :: rest ->
        let cubes = cubes_of group in
        let sources = sources_of cubes in
        let independent =
          List.for_all (fun s -> not (List.mem s wave_targets)) sources
        in
        if wave = [] || independent then
          build acc (group :: wave) (cubes @ wave_targets) rest
        else build (List.rev wave :: acc) [ group ] cubes rest
  in
  build [] [] [] groups

let run ?(parallel = false) ?pool ~targets ~policy ~translation ~determination
    ~store ~affected () =
  (* 1. assignment *)
  let rec assign_all acc = function
    | [] -> Ok (List.rev acc)
    | cube :: rest -> (
        match assign ~targets ~policy determination cube with
        | Ok target -> assign_all ((cube, target) :: acc) rest
        | Error _ as e -> e)
  in
  Result.bind (assign_all [] affected) (fun assignments ->
      (* 2. partition into consecutive same-target subgraphs *)
      let groups =
        Determination.partition
          ~assign:(fun cube -> List.assoc cube assignments)
          affected
      in
      (* 3. translate every subgraph up front (cached, "offline"). *)
      let rec translate_all acc = function
        | [] -> Ok (List.rev acc)
        | (target_name, cubes) :: rest -> (
            let target =
              match Target.find targets target_name with
              | Some t -> t
              | None -> invalid_arg ("Dispatcher.run: unknown target " ^ target_name)
            in
            let t0 = now () in
            match Translation.translate translation determination ~target ~cubes with
            | Error msg ->
                Error (Printf.sprintf "translating %s for %s: %s"
                         (String.concat ", " cubes) target_name msg)
            | Ok (artifact, mapping) ->
                translate_all
                  ((target, cubes, artifact, mapping, now () -. t0) :: acc)
                  rest)
      in
      Result.bind (translate_all [] groups) (fun prepared ->
          (* 4. execute, wave by wave; groups inside a wave touch
             disjoint data and may run on separate domains. *)
          let sources_of cubes =
            List.concat_map (Determination.sources_of determination) cubes
          in
          let waves =
            if parallel then
              waves_of_groups ~sources_of
                ~cubes_of:(fun (_, c, _, _, _) -> c)
                prepared
            else List.map (fun entry -> [ entry ]) prepared
          in
          let execute_one (target, cubes, _, mapping, _) =
            let t1 = now () in
            match target.Target.execute mapping store with
            | Error msg ->
                Error
                  (Printf.sprintf "executing %s on %s: %s"
                     (String.concat ", " cubes) target.Target.name msg)
            | Ok result -> Ok (result, now () -. t1)
          in
          let rec run_waves acc wave_acc = function
            | [] ->
                Ok
                  {
                    subgraphs = List.rev acc;
                    waves = List.rev wave_acc;
                    recomputed = affected;
                    translation_cache_hits = Translation.cache_hits translation;
                  }
            | wave :: rest -> (
                let t0 = now () in
                let outcomes =
                  match wave with
                  | [ single ] -> [ (single, execute_one single) ]
                  | _ ->
                      let pool =
                        match pool with Some p -> p | None -> Pool.shared ()
                      in
                      List.combine wave
                        (Pool.run_all pool
                           (List.map (fun entry () -> execute_one entry) wave))
                in
                let wave_entry =
                  {
                    wave_subgraphs =
                      List.map
                        (fun (t, c, _, _, _) -> (t.Target.name, c))
                        wave;
                    wave_seconds = now () -. t0;
                  }
                in
                let rec fold_outcomes acc = function
                  | [] -> Ok acc
                  | ((target, cubes, artifact, _, t_sec), Ok (result, e_sec))
                    :: rest ->
                      merge_into store result cubes;
                      fold_outcomes
                        ({
                           target = target.Target.name;
                           cubes;
                           artifact;
                           translate_seconds = t_sec;
                           execute_seconds = e_sec;
                         }
                        :: acc)
                        rest
                  | (_, Error msg) :: _ -> Error msg
                in
                match fold_outcomes acc outcomes with
                | Error _ as e -> e
                | Ok acc -> run_waves acc (wave_entry :: wave_acc) rest)
          in
          run_waves [] [] waves))
