open Matrix

(** EXLEngine: the metadata-driven engine of Section 6, tying together
    the determination engine, the translation engine (with its offline
    cache), the dispatcher and the versioned cube store. *)

type config = {
  targets : Target.t list;
  policy : Dispatcher.assignment_policy;
  record_history : bool;
      (** Store a dated version of every recomputed cube. *)
  parallel_dispatch : bool;
      (** Run independent per-target subgraphs on the domain pool. *)
  pool_size : int option;
      (** Worker-domain count for parallel dispatch; [None] uses the
          process-wide {!Pool.shared} sized from
          [Domain.recommended_domain_count]. *)
  retry : Dispatcher.retry_policy;
      (** Retry/backoff/timeout policy for dispatch steps. *)
  faults : Faults.plan option;
      (** Deterministic fault injection for drills and tests;
          [None] (production) injects nothing. *)
  optimize : bool;
      (** Run the exl-opt containment pass ({!Analysis.Optimize}) on
          generated mappings before chasing them.  On by default; the
          optimized mapping is what gets chased, cached, and repaired
          incrementally. *)
  columnar : bool;
      (** Chase through the vectorized column-batch kernels
          ({!Exchange.Chase.run}'s [columnar]).  On by default —
          solutions and counters are identical to the row path; opt
          out for A/B comparisons. *)
  shards : int;
      (** Partition full chases across this many shards
          ({!Exchange.Chase.run}'s [shards]), running the per-shard
          chases on the domain pool with work stealing.  [1] (the
          default) = unsharded; [> 1] also brings the pool up even
          without [parallel_dispatch].  Solutions are identical to the
          unsharded run's. *)
  shard_key : string option;
      (** Dimension to partition on; [None] (the default) lets the
          co-partitioning check choose per mapping. *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t
val register_program : t -> name:string -> string -> (unit, string) result
(** Register EXL source text; its cubes join the global DAG. *)

val load_elementary : t -> Cube.t -> (unit, string) result
(** Load (or replace) elementary data, validated against the declared
    schema, and mark the cube as changed. *)

val changed : t -> string list
(** Cubes marked dirty since the last recomputation. *)

val recompute :
  ?as_of:Calendar.Date.t -> t -> (Dispatcher.report, string) result
(** Determination → partition → (cached) translation → dispatch; clears
    the dirty set.  [as_of] stamps the history versions (defaults to
    2026-01-01).  A degraded run (some cubes quarantined or skipped
    after retries and fallback) still returns [Ok]; only the
    successfully recomputed cubes enter the store and history — check
    {!Dispatcher.degraded} on the report. *)

val recompute_all :
  ?as_of:Calendar.Date.t -> t -> (Dispatcher.report, string) result
(** Recompute every derived cube regardless of the dirty set. *)

type update_report = {
  updated : string list;
      (** Elementary cubes with a net change after batch compaction
          (sorted). *)
  recomputed : string list;
      (** Derived cubes invalidated and recomputed — the dirty set of
          {!Determination.dirty_set}, in topological order. *)
  facts_changed : int;
      (** Net elementary facts added plus removed by the batch. *)
  facts_rederived : int;
      (** Facts (re)derived while propagating the change. *)
  total_facts : int;  (** Facts in the full solution, for comparison. *)
  cache_hit : bool;
      (** Whether the propagation ran incrementally against the cached
          solution ([true]) or had to rebuild it from scratch. *)
  strata_skipped : int;  (** Chase strata no delta reached. *)
  strata_rederived : int;  (** Strata rebuilt DRed-style. *)
}

val warm : t -> (unit, string) result
(** Eagerly build the incremental solution cache (one full semi-naive
    chase over the current store), so the next {!apply_updates} batch
    propagates incrementally instead of rebuilding.  A no-op when the
    cache is already warm. *)

val validate_updates : t -> Update.t list -> (unit, string) result
(** The validation pass of {!apply_updates} alone (unknown cube,
    derived cube, key or measure out of domain), without touching the
    store.  The server runs it per client batch before coalescing, so
    one malformed batch gets its 400 instead of poisoning the merged
    commit.  Read-only: safe to call concurrently with reads. *)

val apply_updates :
  ?as_of:Calendar.Date.t -> t -> Update.t list -> (update_report, string) result
(** Apply a batch of elementary-cube updates and incrementally
    recompute exactly the affected derived cubes.

    The whole batch is validated first (unknown cube, derived cube,
    key/measure domain mismatch ⇒ [Error], store untouched), then
    applied to the store and compacted to net per-key fact deltas
    (updates that cancel out propagate nothing).  The dirty derived set
    comes from {!Determination.dirty_set}; propagation seeds
    {!Exchange.Chase.incremental} with the fact deltas against the
    cached solution of the previous batch, or falls back to one full
    semi-naive chase when no cached solution exists (first batch, or
    after {!load_elementary} / {!register_program} / {!load_store}
    invalidated it).  Affected cubes get a new dated version in the
    history; unaffected cubes keep theirs, so {!cube_as_of} still
    answers for both.  An empty batch is a no-op. *)

val save_store : t -> dir:string -> (unit, string) result
(** Persist the central cube store (elementary and derived) to a
    directory via {!Matrix.Store}. *)

val load_store : t -> dir:string -> (unit, string) result
(** Load previously saved cubes into the store.  Elementary cubes are
    validated against the registered programs and marked changed (so
    the next [recompute] refreshes anything stale); derived cubes are
    restored as-is. *)

val cube : t -> string -> Cube.t option
val cube_as_of : t -> Calendar.Date.t -> string -> Cube.t option
val store : t -> Registry.t
val determination : t -> Determination.t
val translation_cache : t -> Translation.t
val history : t -> Historicity.t
