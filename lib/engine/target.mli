open Matrix

(** Target-system descriptors (paper, Sections 5 and 6).

    Each target declares which tgds it can natively run ("it is not the
    case that all operators are natively supported by all systems"),
    how to render its deployable artifact, and how to execute a
    sub-mapping against cube storage. *)

type artifact =
  | Sql_script of string
  | R_script of string
  | Matlab_script of string
  | Kettle_xml of string
  | Tgd_program of string
      (** the executable schema mapping itself, rendered textually —
          the {!chase} target's deployable artifact *)

val artifact_kind : artifact -> string
val artifact_text : artifact -> string

type t = {
  name : string;
  supports : Mappings.Tgd.t -> bool;
  translate : Mappings.Mapping.t -> (artifact, string) result;
  execute : Mappings.Mapping.t -> Registry.t -> (Registry.t, string) result;
      (** Run the mapping's tgds; the input registry provides this
          sub-mapping's source relations; the result holds the target
          relations. *)
}

val sql : t
(** The DBMS target: supports every tgd shape (black boxes via tabular
    UDFs), including fused multi-atom tgds. *)

val vector : t
(** The R/Matlab target: native statistical operators, at most two
    atoms per tuple-level tgd. *)

val etl_no_stl : t
(** The ETL target with realistic capabilities: tuple-level operators,
    aggregations, and simple user-defined steps — but {e no} seasonal
    decomposition (off-the-shelf ETL engines lack it), so such tgds must
    be dispatched elsewhere. *)

val etl_full : t
(** The ETL target with user-defined steps covering all black boxes. *)

val chase : t
(** The reference engine: runs the sub-mapping directly with the
    semi-naive chase; supports every tgd shape.  Last in the default
    priority order, but first when full observability (chase-round
    spans) is wanted — see exlrun's engine backend. *)

val builtins : t list
(** [sql; vector; etl_no_stl; chase], the default palette.  The default
    {!Dispatcher.default_policy} priority still reads
    [sql; vector; etl], so adding [chase] to the palette changes no
    existing assignment. *)

val find : t list -> string -> t option

val guarded_execute :
  ?faults:Faults.plan ->
  cubes:string list ->
  t ->
  Mappings.Mapping.t ->
  Registry.t ->
  (Registry.t, Faults.kind) result
(** Run [execute] behind the failure model: the fault [plan] (if any)
    is consulted first for an injected {!Faults.kind}; string errors
    from the backend become {!Faults.Execute_error}; an exception
    escaping the backend becomes {!Faults.Worker_crash} labelled with
    the target and cubes.  Never raises. *)
