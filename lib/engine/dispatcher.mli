open Matrix

(** The dispatcher (paper, Section 6): assigns each recomputed cube to
    a target system using technical metadata (explicit overrides) and
    capabilities, partitions the topologically sorted recomputation set
    into per-target subgraphs, and runs each subgraph's executable on
    its engine, sharing data through the central cube store. *)

type assignment_policy = {
  priority : string list;
      (** Target names in preference order; the first whose
          capabilities cover all of a cube's tgds wins. *)
  overrides : (string * string) list;
      (** Technical metadata: cube name → target name. An override
          naming a target that cannot run the cube is an error. *)
}

val default_policy : assignment_policy

val assign :
  targets:Target.t list ->
  policy:assignment_policy ->
  Determination.t ->
  string ->
  (string, string) result
(** The target that will compute the given derived cube. *)

type subgraph_report = {
  target : string;
  cubes : string list;
  artifact : Target.artifact;
  translate_seconds : float;  (** wall-clock *)
  execute_seconds : float;  (** wall-clock *)
}

type wave_report = {
  wave_subgraphs : (string * string list) list;
      (** (target name, cubes) of each subgraph run in the wave *)
  wave_seconds : float;  (** wall-clock for the whole wave *)
}

type report = {
  subgraphs : subgraph_report list;
  waves : wave_report list;
      (** One entry per executed wave, in execution order; without
          [parallel] every wave holds a single subgraph. *)
  recomputed : string list;
  translation_cache_hits : int;
}

val run :
  ?parallel:bool ->
  ?pool:Pool.t ->
  targets:Target.t list ->
  policy:assignment_policy ->
  translation:Translation.t ->
  determination:Determination.t ->
  store:Registry.t ->
  affected:string list ->
  unit ->
  (report, string) result
(** Executes the per-target subgraphs in topological order; each
    subgraph's derived cubes are merged back into [store] so later
    subgraphs (possibly on other engines) can read them.  All
    translation happens up front (offline, cached); with [parallel],
    consecutive subgraphs that do not read each other's outputs execute
    concurrently on the domain pool (the paper's dispatcher
    "parallelization patterns") — [pool] defaults to {!Pool.shared}. *)
