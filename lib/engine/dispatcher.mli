open Matrix

(** The dispatcher (paper, Section 6): assigns each recomputed cube to
    a target system using technical metadata (explicit overrides) and
    capabilities, partitions the topologically sorted recomputation set
    into per-target subgraphs, and runs each subgraph's executable on
    its engine, sharing data through the central cube store.

    Dispatch is failure-aware: every translate/execute step may fail
    (for real, or via an injected {!Faults.plan}), is retried with
    jittered exponential backoff, falls back to the next capable target
    on persistent failure, and — only when no capable target remains —
    quarantines the subgraph's cubes, skipping their dependents instead
    of aborting the whole run. *)

type assignment_policy = {
  priority : string list;
      (** Target names in preference order; the first whose
          capabilities cover all of a cube's tgds wins.  Also the
          fallback order when an assigned target persistently fails. *)
  overrides : (string * string) list;
      (** Technical metadata: cube name → target name. An override
          naming a target that cannot run the cube is an error. *)
}

val default_policy : assignment_policy

val assign :
  targets:Target.t list ->
  policy:assignment_policy ->
  Determination.t ->
  string ->
  (string, string) result
(** The target that will compute the given derived cube. *)

(** {1 Retry policy} *)

type retry_policy = {
  max_attempts : int;  (** attempts per (subgraph, target, stage) *)
  base_backoff : float;  (** seconds before the 2nd attempt *)
  backoff_multiplier : float;  (** growth factor per further attempt *)
  max_backoff : float;  (** backoff cap, seconds *)
  jitter : float;
      (** fraction of the backoff randomized (deterministically, from
          the fault plan's seed): waits land in [1 - jitter, 1] × the
          exponential value *)
  subgraph_timeout : float option;
      (** wall-clock budget per execute attempt; exceeding it counts as
          a {!Faults.Timeout} failure (checked post-hoc: in-process
          targets cannot be pre-empted) *)
}

val default_retry : retry_policy
(** 3 attempts, 10ms base backoff doubling to a 0.5s cap, 50% jitter,
    no timeout. *)

val backoff_duration :
  retry:retry_policy -> seed:int -> key:string -> attempt:int -> float
(** The wait before retrying [attempt + 1] of the step identified by
    [key] — exposed for tests; pure and deterministic. *)

(** {1 Reports} *)

type subgraph_report = {
  target : string;  (** the target that finally computed the subgraph *)
  cubes : string list;
  artifact : Target.artifact;
  translate_seconds : float;  (** wall-clock, successful target only *)
  execute_seconds : float;  (** wall-clock, successful attempt only *)
  attempts : int;
      (** total execute attempts across all targets tried (1 = clean) *)
  translate_attempts : int;
      (** total translate attempts across all targets tried *)
}

type wave_report = {
  wave_subgraphs : (string * string list) list;
      (** (assigned target name, live cubes) of each subgraph run in
          the wave *)
  wave_seconds : float;  (** wall-clock for the whole wave *)
}

type report = {
  subgraphs : subgraph_report list;
      (** one entry per subgraph that produced a result *)
  waves : wave_report list;
      (** One entry per executed wave, in execution order; without
          [parallel] every wave holds a single subgraph. *)
  recomputed : string list;
      (** cubes actually recomputed — the affected set minus
          [quarantined] and [skipped] *)
  translation_cache_hits : int;
  failures : Faults.failure_report list;
      (** every target persistently abandoned during the run, with how
          it was resolved; empty iff no fallback or quarantine happened
          (transient failures recovered by retry on the same target
          only show up as [attempts] > 1) *)
  quarantined : string list;
      (** cubes whose subgraph failed on every capable target *)
  skipped : string list;
      (** cubes not attempted because an upstream cube is dead *)
}

val degraded : report -> bool
(** True when any cube was quarantined or skipped. *)

val failure_summary : report -> string
(** Human-readable multi-line summary of [failures], [quarantined] and
    [skipped]; empty string for a fully clean run. *)

val run :
  ?parallel:bool ->
  ?pool:Pool.t ->
  ?retry:retry_policy ->
  ?faults:Faults.plan ->
  targets:Target.t list ->
  policy:assignment_policy ->
  translation:Translation.t ->
  determination:Determination.t ->
  store:Registry.t ->
  affected:string list ->
  unit ->
  (report, string) result
(** Executes the per-target subgraphs in topological order; each
    subgraph's derived cubes are merged back into [store] so later
    subgraphs (possibly on other engines) can read them.  Translation
    is cached (offline in spirit: repeated runs translate nothing), and
    with [parallel], consecutive subgraphs that do not read each
    other's outputs execute concurrently on the domain pool (the
    paper's dispatcher "parallelization patterns") — [pool] defaults to
    {!Pool.shared}.

    Failure semantics: each step is retried per [retry] (default
    {!default_retry}); a target exhausting its attempts is abandoned
    for the next capable target in [policy.priority] (the subgraph is
    re-translated for the new engine); if none remains, the subgraph's
    cubes are quarantined and every downstream cube is skipped.  A
    degraded run still returns [Ok] — inspect {!degraded} and the
    report's [failures]/[quarantined]/[skipped].  [Error] is reserved
    for static configuration problems (unknown override target, no
    capable target at assignment time).  [faults] injects deterministic
    failures for testing; its seed also drives backoff jitter. *)
