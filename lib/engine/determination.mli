open Matrix

(** The determination engine (paper, Section 6).

    Maintains the global DAG of dependencies among all stored cubes
    across every registered program; when elementary cubes change, it
    computes the topologically sorted set of derived cubes to
    recalculate and dynamically builds the EXL program to run. *)

type t

val create : unit -> t

val register_program :
  ?synthetic:string list ->
  t ->
  name:string ->
  Exl.Typecheck.checked ->
  (unit, string) result
(** Programs share elementary cubes (schemas must agree) but no derived
    cube may be defined twice across programs.  [synthetic] names
    declarations that only satisfied the standalone type check and must
    not join the graph (used by [register_source]). *)

val register_source : t -> name:string -> string -> (unit, string) result
(** Parse, check and register EXL source text.  References to cubes
    already in the global graph — including derived cubes of other
    programs — are resolved automatically. *)

val cubes : t -> string list
(** All cubes in the global graph, sorted. *)

val schema : t -> string -> Schema.t option
val kind : t -> string -> Registry.kind option
val sources_of : t -> string -> string list
(** Direct dependencies (edges into the cube). *)

val dependents_of : t -> string -> string list
val derived_order : t -> string list
(** All derived cubes in global definition order (a topological
    order). *)

type dirty_set = {
  changed_elementary : string list;
      (** Elementary cubes the caller reported as changed (sorted). *)
  changed_derived : string list;
      (** Derived cubes the caller reported as changed (sorted) — e.g.
          restored from an external store.  Their new content {e is}
          the change, so they are inputs of the propagation, not
          members of [dirty_derived]. *)
  dirty_derived : string list;
      (** Derived cubes to recompute: the transitive dependents of all
          changed cubes (minus the changed cubes themselves), in
          topological order. *)
}

val dirty_set : t -> changed:string list -> dirty_set
(** Classify a change set: which reported cubes are elementary vs
    derived, and which derived cubes must be recomputed as a
    consequence.  An explicitly changed derived cube is never in
    [dirty_derived] — recomputing it from its (unchanged) sources would
    overwrite exactly the data that changed. *)

val affected : t -> changed:string list -> string list
(** [dirty_derived] of {!dirty_set}: derived cubes that (transitively)
    depend on any changed cube — excluding the changed cubes
    themselves — in topological order; the recomputation set. *)

val build_program :
  t -> cubes:string list -> (Exl.Typecheck.checked, string) result
(** Dynamically build the EXL program computing exactly [cubes] (in
    their global order): inputs that are not recomputed become
    declarations. *)

val partition : assign:(string -> string) -> string list -> (string * string list) list
(** Group a topologically ordered cube list into maximal consecutive
    runs with the same assigned target — the per-target subgraphs the
    dispatcher delegates. *)

val dot : t -> string
(** Graphviz rendering of the dependency DAG (documentation aid). *)
