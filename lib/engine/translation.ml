type entry = (Target.artifact * Mappings.Mapping.t, string) result

type t = {
  cache : (string * string list, entry) Hashtbl.t;
  mutex : Mutex.t;
      (* fallback re-translation happens inside pooled dispatcher
         tasks, so the cache must tolerate concurrent callers *)
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { cache = Hashtbl.create 32; mutex = Mutex.create (); hits = 0; misses = 0 }

let submapping determination ~cubes =
  Result.bind (Determination.build_program determination ~cubes)
    (fun checked ->
      match Mappings.Generate.of_checked checked with
      | Ok g -> Ok g.Mappings.Generate.mapping
      | Error e -> Error (Exl.Errors.to_string e))

let translate ?faults t determination ~(target : Target.t) ~cubes =
  (* Injected translate faults short-circuit before the cache: they are
     transient, so they must neither be served from nor poison the
     cached (deterministic, "offline") translations. *)
  match
    match faults with
    | Some plan ->
        Faults.check plan ~stage:Faults.Translate ~target:target.Target.name
          ~cubes
    | None -> None
  with
  | Some kind -> Error kind
  | None ->
      let key = (target.Target.name, cubes) in
      Mutex.lock t.mutex;
      let entry =
        match Hashtbl.find_opt t.cache key with
        | Some entry ->
            t.hits <- t.hits + 1;
            Obs.count "translation.cache_hits";
            entry
        | None ->
            t.misses <- t.misses + 1;
            Obs.count "translation.cache_misses";
            Mutex.unlock t.mutex;
            let entry =
              Result.bind (submapping determination ~cubes) (fun mapping ->
                  Result.map
                    (fun artifact -> (artifact, mapping))
                    (target.Target.translate mapping))
            in
            Mutex.lock t.mutex;
            Hashtbl.replace t.cache key entry;
            entry
      in
      Mutex.unlock t.mutex;
      Result.map_error (fun msg -> Faults.Translate_error msg) entry

let cache_hits t =
  Mutex.lock t.mutex;
  let h = t.hits in
  Mutex.unlock t.mutex;
  h

let cache_misses t =
  Mutex.lock t.mutex;
  let m = t.misses in
  Mutex.unlock t.mutex;
  m
