(** The translation engine (paper, Section 6): subgraph → schema
    mapping → target artifact, cached.

    "All the activities described so far can be efficiently performed
    off line or at the startup of the system" — the cache is what makes
    translation cost independent of the data, which experiment X3
    quantifies.  The cache is thread-safe: target fallback re-translates
    inside pooled dispatcher tasks. *)

type t

val create : unit -> t

val submapping :
  Determination.t -> cubes:string list -> (Mappings.Mapping.t, string) result
(** The schema mapping computing exactly [cubes], treating earlier
    derived cubes as sources. *)

val translate :
  ?faults:Faults.plan ->
  t ->
  Determination.t ->
  target:Target.t ->
  cubes:string list ->
  (Target.artifact * Mappings.Mapping.t, Faults.kind) result
(** Cached by (target name, cube list).  Real translation failures are
    cached like successes (they are deterministic) and surface as
    {!Faults.Translate_error}; injected faults from [faults] short-
    circuit {e before} the cache, so a transient injected failure never
    poisons, nor is masked by, a cached translation. *)

val cache_hits : t -> int
val cache_misses : t -> int
