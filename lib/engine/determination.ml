open Matrix

type t = {
  schemas : (string, Schema.t * Registry.kind) Hashtbl.t;
  stmts : (string, Exl.Ast.stmt) Hashtbl.t;
  deps : (string, string list) Hashtbl.t;
  dependents : (string, string list) Hashtbl.t;
  mutable derived_rev : string list;  (* reverse global definition order *)
  mutable programs : string list;
}

let create () =
  {
    schemas = Hashtbl.create 64;
    stmts = Hashtbl.create 64;
    deps = Hashtbl.create 64;
    dependents = Hashtbl.create 64;
    derived_rev = [];
    programs = [];
  }

let group_by_sources (s : Exl.Ast.stmt) =
  (* group-by source dimensions are not cube references; cube_refs
     already excludes them, as well as shift's dimension argument. *)
  Exl.Ast.cube_refs s.Exl.Ast.rhs

let register_program ?(synthetic = []) t ~name
    (checked : Exl.Typecheck.checked) =
  let env = checked.Exl.Typecheck.env in
  (* Validate before mutating. *)
  let conflict = ref None in
  List.iter
    (fun cube ->
      if !conflict = None && not (List.mem cube synthetic) then
        let schema = Exl.Typecheck.Env.schema_exn env cube in
        let kind = Option.get (Exl.Typecheck.Env.kind env cube) in
        match (Hashtbl.find_opt t.schemas cube, kind) with
        | Some (_, Registry.Derived), _ | Some _, Registry.Derived ->
            (* Derived cubes are single-definition globally; an
               elementary may not shadow a derived cube either. *)
            if
              kind = Registry.Derived
              || snd (Hashtbl.find t.schemas cube) = Registry.Derived
            then
              conflict :=
                Some
                  (Printf.sprintf "program %s: cube %s is already defined" name
                     cube)
        | Some (existing, Registry.Elementary), Registry.Elementary ->
            if not (Schema.equal existing schema) then
              conflict :=
                Some
                  (Printf.sprintf
                     "program %s: elementary cube %s redeclared with a different schema"
                     name cube)
        | None, _ -> ())
    (Exl.Typecheck.Env.names env);
  match !conflict with
  | Some msg -> Error msg
  | None ->
      List.iter
        (fun cube ->
          let schema = Exl.Typecheck.Env.schema_exn env cube in
          let kind = Option.get (Exl.Typecheck.Env.kind env cube) in
          if (not (Hashtbl.mem t.schemas cube)) && not (List.mem cube synthetic)
          then Hashtbl.replace t.schemas cube (schema, kind))
        (Exl.Typecheck.Env.names env);
      List.iter
        (fun (s : Exl.Ast.stmt) ->
          let cube = s.Exl.Ast.lhs in
          Hashtbl.replace t.schemas cube
            (Exl.Typecheck.Env.schema_exn env cube, Registry.Derived);
          Hashtbl.replace t.stmts cube s;
          let sources = group_by_sources s in
          Hashtbl.replace t.deps cube sources;
          List.iter
            (fun src ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt t.dependents src) in
              if not (List.mem cube prev) then
                Hashtbl.replace t.dependents src (cube :: prev))
            sources;
          t.derived_rev <- cube :: t.derived_rev)
        checked.Exl.Typecheck.statements;
      t.programs <- name :: t.programs;
      Ok ()

let domain_keyword d = Domain.to_string d

let decl_of_schema (s : Schema.t) =
  {
    Exl.Ast.d_name = s.Schema.name;
    d_dims =
      Array.to_list s.Schema.dims
      |> List.map (fun d -> (d.Schema.dim_name, domain_keyword d.Schema.dim_domain));
    d_measure = Some (domain_keyword s.Schema.measure_domain);
    d_pos = Exl.Ast.no_pos;
  }

(* Programs may reference cubes defined by previously registered
   programs (the global DAG spans programs); those references are
   satisfied by synthetic input declarations during the standalone
   type check. *)
let register_source t ~name source =
  match Exl.Parser.parse source with
  | Error e -> Error (Exl.Errors.to_string e)
  | Ok program ->
      let local = Hashtbl.create 16 in
      List.iter
        (function
          | Exl.Ast.Decl d -> Hashtbl.replace local d.Exl.Ast.d_name ()
          | Exl.Ast.Stmt st -> Hashtbl.replace local st.Exl.Ast.lhs ())
        program;
      let synthetic = ref [] in
      List.iter
        (fun (st : Exl.Ast.stmt) ->
          List.iter
            (fun ref_name ->
              if
                (not (Hashtbl.mem local ref_name))
                && (not (List.mem ref_name !synthetic))
                && Hashtbl.mem t.schemas ref_name
              then synthetic := ref_name :: !synthetic)
            (Exl.Ast.cube_refs st.Exl.Ast.rhs))
        (Exl.Ast.stmts program);
      let prelude =
        List.rev_map
          (fun c -> Exl.Ast.Decl (decl_of_schema (fst (Hashtbl.find t.schemas c))))
          !synthetic
      in
      (match Exl.Typecheck.check (prelude @ program) with
      | Error es -> Error (Exl.Errors.list_to_string es)
      | Ok checked -> register_program ~synthetic:!synthetic t ~name checked)

let cubes t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.schemas [] |> List.sort String.compare

let schema t name = Option.map fst (Hashtbl.find_opt t.schemas name)
let kind t name = Option.map snd (Hashtbl.find_opt t.schemas name)
let sources_of t name = Option.value ~default:[] (Hashtbl.find_opt t.deps name)

let dependents_of t name =
  List.sort String.compare
    (Option.value ~default:[] (Hashtbl.find_opt t.dependents name))

let derived_order t = List.rev t.derived_rev

type dirty_set = {
  changed_elementary : string list;
  changed_derived : string list;
  dirty_derived : string list;
}

let dirty_set t ~changed =
  let dirty = Hashtbl.create 16 in
  let rec mark name =
    if not (Hashtbl.mem dirty name) then begin
      Hashtbl.replace dirty name ();
      List.iter mark
        (Option.value ~default:[] (Hashtbl.find_opt t.dependents name))
    end
  in
  List.iter mark changed;
  let of_kind k =
    List.sort_uniq String.compare
      (List.filter (fun c -> kind t c = Some k) changed)
  in
  (* An explicitly changed cube is an input of the propagation, never a
     member of the recomputation set: its new content *is* the change
     (recomputing it from its unchanged sources would overwrite exactly
     what the caller just loaded).  Its transitive dependents are what
     must be rederived. *)
  let dirty_derived =
    List.filter
      (fun cube ->
        Hashtbl.mem dirty cube
        && (not (List.mem cube changed))
        && Hashtbl.mem t.stmts cube)
      (derived_order t)
  in
  {
    changed_elementary = of_kind Registry.Elementary;
    changed_derived = of_kind Registry.Derived;
    dirty_derived;
  }

let affected t ~changed = (dirty_set t ~changed).dirty_derived

let build_program t ~cubes:selected =
  let selected_set = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace selected_set c ()) selected;
  (* Inputs: sources of selected statements not themselves selected. *)
  let inputs = ref [] in
  let add_input c =
    if (not (Hashtbl.mem selected_set c)) && not (List.mem c !inputs) then
      inputs := c :: !inputs
  in
  let missing =
    List.filter (fun c -> not (Hashtbl.mem t.stmts c)) selected
  in
  if missing <> [] then
    Error
      (Printf.sprintf "no defining statement for cube(s) %s"
         (String.concat ", " missing))
  else begin
    List.iter
      (fun c -> List.iter add_input (sources_of t c))
      selected;
    (* An input without a registered schema is a metadata hole, not a
       programming error: report it so the dispatcher can quarantine
       the subgraph instead of crashing the wave. *)
    let unknown = List.filter (fun c -> schema t c = None) !inputs in
    if unknown <> [] then
      Error
        (Printf.sprintf "no registered schema for source cube(s) %s"
           (String.concat ", " unknown))
    else begin
    let decls =
      List.rev_map
        (fun c -> Exl.Ast.Decl (decl_of_schema (Option.get (schema t c))))
        !inputs
    in
    (* Keep the global definition order among the selected statements. *)
    let stmts =
      List.filter_map
        (fun c ->
          if Hashtbl.mem selected_set c then
            Some (Exl.Ast.Stmt (Hashtbl.find t.stmts c))
          else None)
        (derived_order t)
    in
    match Exl.Typecheck.check (decls @ stmts) with
    | Ok checked -> Ok checked
    | Error es -> Error (Exl.Errors.list_to_string es)
    end
  end

let partition ~assign ordered =
  let rec loop acc current_target current = function
    | [] ->
        List.rev
          (if current = [] then acc
           else (current_target, List.rev current) :: acc)
    | cube :: rest ->
        let target = assign cube in
        if target = current_target || current = [] then
          loop acc target (cube :: current) rest
        else loop ((current_target, List.rev current) :: acc) target [ cube ] rest
  in
  loop [] "" [] ordered

let dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph cubes {\n  rankdir=LR;\n";
  List.iter
    (fun cube ->
      let shape =
        match kind t cube with
        | Some Registry.Elementary -> "box"
        | _ -> "ellipse"
      in
      Buffer.add_string buf (Printf.sprintf "  %s [shape=%s];\n" cube shape))
    (cubes t);
  List.iter
    (fun cube ->
      List.iter
        (fun src -> Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" src cube))
        (sources_of t cube))
    (cubes t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
