type stage = Translate | Execute

type kind =
  | Translate_error of string
  | Execute_error of string
  | Timeout of float
  | Worker_crash of string

let stage_to_string = function Translate -> "translate" | Execute -> "execute"

let kind_to_string = function
  | Translate_error msg -> "translate error: " ^ msg
  | Execute_error msg -> "execute error: " ^ msg
  | Timeout s -> Printf.sprintf "timeout after %.3fs" s
  | Worker_crash msg -> "worker crash: " ^ msg

type trigger = {
  t_stage : stage;
  t_target : string option;
  t_cube : string option;
  t_kind : kind;
  t_times : int;
  t_probability : float;
}

let always = -1

let trigger ?target ?cube ?(times = 1) ?(probability = 1.0) stage kind =
  {
    t_stage = stage;
    t_target = target;
    t_cube = cube;
    t_kind = kind;
    t_times = times;
    t_probability = probability;
  }

(* Per-trigger mutable state: [remaining] counts down the budget
   (negative = unlimited); [seen] counts matching checks, so a
   probabilistic trigger's nth opportunity hashes deterministically. *)
type entry = {
  idx : int;  (* position in the plan, to give each trigger its own
                 deterministic probability stream *)
  trig : trigger;
  mutable remaining : int;
  mutable seen : int;
}

type plan = {
  p_seed : int;
  mutex : Mutex.t;
  entries : entry list;
  mutable p_fired : int;
}

let plan ?(seed = 0) triggers =
  {
    p_seed = seed;
    mutex = Mutex.create ();
    entries =
      List.mapi
        (fun idx t -> { idx; trig = t; remaining = t.t_times; seen = 0 })
        triggers;
    p_fired = 0;
  }

let seed p = p.p_seed
let triggers p = List.map (fun e -> e.trig) p.entries

(* splitmix64-style finalizer over a fold of the inputs; the usual way
   to get a high-quality deterministic [0,1) stream without carrying
   PRNG state through every layer. *)
let uniform ~seed ~key n =
  let open Int64 in
  let h = ref (of_int ((seed * 0x9E3779B1) lxor (n * 0x85EBCA6B))) in
  String.iter
    (fun c -> h := add (mul !h 0x100000001B3L) (of_int (Char.code c)))
    key;
  let z = ref (add !h 0x9E3779B97F4A7C15L) in
  z := mul (logxor !z (shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L;
  z := mul (logxor !z (shift_right_logical !z 27)) 0x94D049BB133111EBL;
  z := logxor !z (shift_right_logical !z 31);
  (* top 53 bits -> [0,1) *)
  to_float (shift_right_logical !z 11) /. 9007199254740992.

let matches trig ~stage ~target ~cubes =
  trig.t_stage = stage
  && (match trig.t_target with None -> true | Some t -> t = target)
  && match trig.t_cube with None -> true | Some c -> List.mem c cubes

let check p ~stage ~target ~cubes =
  Mutex.lock p.mutex;
  let rec scan = function
    | [] -> None
    | e :: rest ->
        if matches e.trig ~stage ~target ~cubes && e.remaining <> 0 then begin
          e.seen <- e.seen + 1;
          let admits =
            e.trig.t_probability >= 1.0
            || uniform ~seed:p.p_seed
                 ~key:(Printf.sprintf "trigger-%d" e.idx)
                 e.seen
               < e.trig.t_probability
          in
          if admits then begin
            if e.remaining > 0 then e.remaining <- e.remaining - 1;
            p.p_fired <- p.p_fired + 1;
            Some e.trig.t_kind
          end
          else scan rest
        end
        else scan rest
  in
  let result = scan p.entries in
  Mutex.unlock p.mutex;
  result

let fired p =
  Mutex.lock p.mutex;
  let n = p.p_fired in
  Mutex.unlock p.mutex;
  n

let reset p =
  Mutex.lock p.mutex;
  List.iter
    (fun e ->
      e.remaining <- e.trig.t_times;
      e.seen <- 0)
    p.entries;
  p.p_fired <- 0;
  Mutex.unlock p.mutex

(* --- textual plans --- *)

let kind_name = function
  | Translate_error _ -> "translate-error"
  | Execute_error _ -> "execute-error"
  | Timeout _ -> "timeout"
  | Worker_crash _ -> "worker-crash"

let kind_message = function
  | Translate_error m | Execute_error m | Worker_crash m -> m
  | Timeout _ -> ""

let kind_of_name name msg =
  match name with
  | "translate-error" -> Ok (Translate_error msg)
  | "execute-error" -> Ok (Execute_error msg)
  | "timeout" -> Ok (Timeout 0.)
  | "worker-crash" -> Ok (Worker_crash msg)
  | other -> Error (Printf.sprintf "unknown fault kind %S" other)

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match split_words line with
  | [] -> Ok None
  | [ "seed"; n ] -> (
      match int_of_string_opt n with
      | Some s -> Ok (Some (`Seed s))
      | None -> Error (Printf.sprintf "line %d: bad seed %S" lineno n))
  | "fault" :: stage :: target :: cube :: kind :: opts -> (
      let stage =
        match stage with
        | "translate" -> Ok Translate
        | "execute" -> Ok Execute
        | s -> Error (Printf.sprintf "line %d: unknown stage %S" lineno s)
      in
      Result.bind stage (fun stage ->
          let wild = function "*" -> None | s -> Some s in
          let rec parse_opts times probability msg = function
            | [] -> Ok (times, probability, msg)
            | "always" :: rest -> parse_opts always probability msg rest
            | opt :: rest -> (
                match String.index_opt opt '=' with
                | Some i -> (
                    let k = String.sub opt 0 i in
                    let v = String.sub opt (i + 1) (String.length opt - i - 1) in
                    match k with
                    | "times" -> (
                        match int_of_string_opt v with
                        | Some n -> parse_opts n probability msg rest
                        | None ->
                            Error
                              (Printf.sprintf "line %d: bad times=%S" lineno v))
                    | "p" -> (
                        match float_of_string_opt v with
                        | Some p -> parse_opts times p msg rest
                        | None ->
                            Error (Printf.sprintf "line %d: bad p=%S" lineno v))
                    | "msg" ->
                        (* msg= consumes the rest of the line *)
                        Ok (times, probability, String.concat " " (v :: rest))
                    | other ->
                        Error
                          (Printf.sprintf "line %d: unknown option %S" lineno
                             other))
                | None ->
                    Error (Printf.sprintf "line %d: unknown option %S" lineno opt)
                )
          in
          Result.bind (parse_opts 1 1.0 "injected" opts)
            (fun (times, probability, msg) ->
              Result.map
                (fun k ->
                  Some
                    (`Trigger
                       (trigger ?target:(wild target) ?cube:(wild cube) ~times
                          ~probability stage k)))
                (kind_of_name kind msg))))
  | w :: _ -> Error (Printf.sprintf "line %d: unknown directive %S" lineno w)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec loop lineno seed acc = function
    | [] -> Ok (plan ~seed (List.rev acc))
    | line :: rest -> (
        match parse_line lineno line with
        | Error _ as e -> e
        | Ok None -> loop (lineno + 1) seed acc rest
        | Ok (Some (`Seed s)) -> loop (lineno + 1) s acc rest
        | Ok (Some (`Trigger t)) -> loop (lineno + 1) seed (t :: acc) rest)
  in
  loop 1 0 [] lines

let to_string p =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "seed %d\n" p.p_seed);
  List.iter
    (fun e ->
      let t = e.trig in
      let opt = function None -> "*" | Some s -> s in
      Buffer.add_string buf
        (Printf.sprintf "fault %s %s %s %s %s%s%s\n" (stage_to_string t.t_stage)
           (opt t.t_target) (opt t.t_cube) (kind_name t.t_kind)
           (if t.t_times < 0 then "always"
            else Printf.sprintf "times=%d" t.t_times)
           (if t.t_probability < 1.0 then Printf.sprintf " p=%g" t.t_probability
            else "")
           (match kind_message t.t_kind with
           | "" -> ""
           | m -> " msg=" ^ m)))
    p.entries;
  Buffer.contents buf

(* --- failure reports --- *)

type resolution = Fell_back of string | Quarantined

type failure_report = {
  f_cubes : string list;
  f_target : string;
  f_stage : stage;
  f_kind : kind;
  f_attempts : int;
  f_resolution : resolution;
}

let report_to_string r =
  Printf.sprintf "[%s] %s %s: %s (%d attempt%s) -> %s"
    (String.concat ", " r.f_cubes)
    r.f_target
    (stage_to_string r.f_stage)
    (kind_to_string r.f_kind) r.f_attempts
    (if r.f_attempts = 1 then "" else "s")
    (match r.f_resolution with
    | Fell_back t -> "fell back to " ^ t
    | Quarantined -> "quarantined")
