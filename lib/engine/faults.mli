(** The engine's failure model, and deterministic fault injection.

    Dispatching per-target subgraphs to heterogeneous engines (paper,
    Section 6) is exactly the setting where real deployments see
    transient failures: a target system times out, a translation
    service hiccups, a worker dies mid-subgraph.  This module gives
    those outcomes structure — a {!kind} for every way a dispatch step
    can fail — and provides {e injectable fault plans}: deterministic,
    seeded scripts of failures that the dispatcher consults at each
    translate/execute step, so the retry/fallback/quarantine machinery
    can be exercised (and regression-tested) without any real outage. *)

(** {1 Failure kinds} *)

type stage = Translate | Execute

type kind =
  | Translate_error of string
      (** The subgraph's mapping could not be rendered for the target. *)
  | Execute_error of string
      (** The target engine ran the artifact and reported failure. *)
  | Timeout of float
      (** The step exceeded its budget; carries the observed seconds
          (0. for injected timeouts). *)
  | Worker_crash of string
      (** An exception escaped the worker running the step; carries the
          task label and exception text. *)

val stage_to_string : stage -> string
val kind_to_string : kind -> string

(** {1 Fault plans} *)

type trigger = {
  t_stage : stage;  (** which step of the pipeline the fault hits *)
  t_target : string option;  (** [None] matches any target *)
  t_cube : string option;
      (** [None] matches any subgraph; [Some c] matches subgraphs
          containing cube [c] *)
  t_kind : kind;  (** the failure to inject *)
  t_times : int;  (** fire at most this many times; negative = always *)
  t_probability : float;
      (** chance a matching check fires, decided by the plan's seeded
          hash — deterministic for a given seed *)
}

val always : int
(** Sentinel for [t_times]: never exhausts (a permanent fault). *)

val trigger :
  ?target:string ->
  ?cube:string ->
  ?times:int ->
  ?probability:float ->
  stage ->
  kind ->
  trigger
(** [times] defaults to [1] (a single transient fault);
    [probability] to [1.0]. *)

type plan

val plan : ?seed:int -> trigger list -> plan
(** A mutable, thread-safe fault plan.  [seed] (default 0) drives both
    probabilistic triggers and the dispatcher's backoff jitter. *)

val seed : plan -> int
val triggers : plan -> trigger list

val check : plan -> stage:stage -> target:string -> cubes:string list -> kind option
(** Consult the plan for one translate/execute attempt.  The first
    matching, non-exhausted trigger (in plan order) whose probability
    admits this invocation fires: its budget is decremented and its
    kind returned.  Deterministic: the nth call with given arguments
    always answers the same for the same plan history. *)

val fired : plan -> int
(** Total faults injected so far. *)

val reset : plan -> unit
(** Restore every trigger's budget and counters (for reruns). *)

val uniform : seed:int -> key:string -> int -> float
(** Deterministic hash of [(seed, key, n)] to [0, 1) — the source of
    probabilistic firing and of the dispatcher's backoff jitter. *)

(** {1 Textual plans}

    One directive per line; [#] starts a comment.

    {v
    seed 42
    fault execute  *    GDP  execute-error   times=1
    fault execute  etl  *    worker-crash    always
    fault translate sql TOTAL translate-error times=2 p=0.5 msg=flaky link
    v}

    Stage is [translate] or [execute]; target and cube are names or
    [*]; kind is [translate-error], [execute-error], [timeout] or
    [worker-crash]; options are [times=N], [always], [p=FLOAT] and
    [msg=TEXT] (rest of line). *)

val of_string : string -> (plan, string) result
val to_string : plan -> string
(** Canonical textual form; [of_string] of it yields an equal plan. *)

(** {1 Failure reports} *)

type resolution =
  | Fell_back of string
      (** The subgraph was re-dispatched to the named target. *)
  | Quarantined
      (** No capable target remained: the subgraph's cubes are dropped
          from the run and their dependents skipped. *)

type failure_report = {
  f_cubes : string list;  (** the (live) cubes of the failed subgraph *)
  f_target : string;  (** the target that persistently failed *)
  f_stage : stage;
  f_kind : kind;  (** the failure observed on the last attempt *)
  f_attempts : int;  (** attempts made on that target at that stage *)
  f_resolution : resolution;
}

val report_to_string : failure_report -> string
