open Matrix

type action = Set of Value.t | Remove
type t = { cube : string; key : Value.t list; action : action }

let set ~cube ~key v = { cube; key; action = Set v }
let remove ~cube ~key = { cube; key; action = Remove }

(* Last-wins compaction per (cube, key), stable in first-appearance
   order: applying the compacted batch leaves the store in the same
   state as applying the original in sequence. *)
let compact updates =
  (* Keys are matched with Value-aware tuple equality (Int 2 = Float 2.,
     like the store itself), not generic structural equality. *)
  let by_cube : (string, (int * t) Tuple.Table.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let next = ref 0 in
  List.iter
    (fun u ->
      let keys =
        match Hashtbl.find_opt by_cube u.cube with
        | Some tbl -> tbl
        | None ->
            let tbl = Tuple.Table.create 16 in
            Hashtbl.replace by_cube u.cube tbl;
            tbl
      in
      let key = Tuple.of_list u.key in
      match Tuple.Table.find_opt keys key with
      | Some (rank, _) -> Tuple.Table.replace keys key (rank, u)
      | None ->
          Tuple.Table.replace keys key (!next, u);
          incr next)
    updates;
  Hashtbl.fold
    (fun _ tbl acc -> Tuple.Table.fold (fun _ ranked acc -> ranked :: acc) tbl acc)
    by_cube []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  |> List.map snd

let concat batches = compact (List.concat batches)

let to_string u =
  let key = String.concat " " (List.map Value.to_string u.key) in
  match u.action with
  | Set v -> Printf.sprintf "set %s %s %s" u.cube key (Value.to_string v)
  | Remove -> Printf.sprintf "del %s %s" u.cube key

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_line ~schema_of lineno line =
  let fail fmt = Printf.ksprintf (fun m -> Error m) ("line %d: " ^^ fmt) lineno in
  match tokens line with
  | [] -> Ok None
  | verb :: rest when verb = "set" || verb = "del" -> (
      match rest with
      | [] -> fail "missing cube name"
      | cube :: cells -> (
          match schema_of cube with
          | None -> fail "unknown cube %s" cube
          | Some schema ->
              let arity = Schema.arity schema in
              let expected = if verb = "set" then arity + 1 else arity in
              if List.length cells <> expected then
                fail "%s %s expects %d value(s), got %d" verb cube expected
                  (List.length cells)
              else
                let vals = List.map Value.of_string_guess cells in
                let key = List.filteri (fun i _ -> i < arity) vals in
                if not (Schema.compatible_tuple schema (Tuple.of_list key)) then
                  fail "key %s out of domain for %s"
                    (Tuple.to_string (Tuple.of_list key))
                    (Schema.to_string schema)
                else if verb = "del" then Ok (Some (remove ~cube ~key))
                else
                  let measure = List.nth vals arity in
                  if not (Domain.member measure schema.Schema.measure_domain)
                  then
                    fail "measure %s out of domain %s"
                      (Value.to_string measure)
                      (Domain.to_string schema.Schema.measure_domain)
                  else Ok (Some (set ~cube ~key measure))))
  | verb :: _ -> fail "unknown verb %s (expected set or del)" verb

let of_string ~schema_of text =
  let lines = String.split_on_char '\n' text in
  let rec loop lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match parse_line ~schema_of lineno line with
        | Error _ as e -> e
        | Ok None -> loop (lineno + 1) acc rest
        | Ok (Some u) -> loop (lineno + 1) (u :: acc) rest)
  in
  loop 1 [] lines
