type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  task_done : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec await () =
    if not (Queue.is_empty t.tasks) then Some (Queue.pop t.tasks)
    else if t.closed then None
    else begin
      Condition.wait t.work_available t.mutex;
      await ()
    end
  in
  match await () with
  | None -> Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker_loop t

let default_size () = max 1 (Domain.recommended_domain_count () - 1)

let create ?size () =
  let size = match size with Some n -> max 0 n | None -> default_size () in
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      task_done = Condition.create ();
      tasks = Queue.create ();
      closed = false;
      workers = [];
      size;
    }
  in
  t.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

exception Missing_result of string

(* The caller participates: after enqueueing it keeps popping and
   executing queued tasks itself, so a burst makes progress even on a
   zero-worker pool (and never deadlocks when every worker is busy with
   somebody else's work).  Exceptions never cross domain boundaries
   raw: every task's outcome — value or exception — is captured per
   task, with its label, so callers (the dispatcher) can turn a crashed
   worker into a structured [Worker_crash] failure instead of losing
   the whole burst. *)
let try_all (type a) t (fs : (string * (unit -> a)) list) :
    (a, string * exn) result list =
  match fs with
  | [] -> []
  | [ (label, f) ] -> [ (try Ok (f ()) with e -> Error (label, e)) ]
  | fs ->
      let n = List.length fs in
      let results : (a, string * exn) result option array = Array.make n None in
      let remaining = ref n in
      let wrap i label f () =
        let outcome = try Ok (f ()) with e -> Error (label, e) in
        Obs.count "pool.tasks_completed";
        Mutex.lock t.mutex;
        results.(i) <- Some outcome;
        decr remaining;
        Condition.broadcast t.task_done;
        Mutex.unlock t.mutex
      in
      Obs.count ~n "pool.tasks_submitted";
      Mutex.lock t.mutex;
      List.iteri (fun i (label, f) -> Queue.push (wrap i label f) t.tasks) fs;
      Obs.gauge "pool.queue_depth" (float_of_int (Queue.length t.tasks));
      Condition.broadcast t.work_available;
      let rec drain () =
        if !remaining > 0 then begin
          (if not (Queue.is_empty t.tasks) then begin
             let task = Queue.pop t.tasks in
             Mutex.unlock t.mutex;
             task ();
             Mutex.lock t.mutex
           end
           else Condition.wait t.task_done t.mutex);
          drain ()
        end
      in
      drain ();
      Mutex.unlock t.mutex;
      List.mapi
        (fun i (label, _) ->
          match results.(i) with
          | Some outcome -> outcome
          | None ->
              (* unreachable: [drain] returns only once every wrapped
                 task has stored its outcome — but surface it as a
                 typed per-task failure, never a crash *)
              Error (label, Missing_result label))
        fs

let run_all (type a) t (fs : (unit -> a) list) : a list =
  let outcomes = try_all t (List.map (fun f -> ("task", f)) fs) in
  (* preserve the historical contract: if any task raised, re-raise one
     of the exceptions after all tasks have finished *)
  List.map (function Ok v -> v | Error (_, e) -> raise e) outcomes

let executor t tasks = ignore (run_all t tasks : unit list)

(* ----- work-stealing bursts ----- *)

(* One deque per participant (the [size] workers plus the submitting
   domain).  The owner pops from the front; an idle participant steals
   the {e back half} of the first non-empty victim it finds, keeps one
   task and appends the rest to its own deque.  Shard bursts are coarse
   — tens of tasks, milliseconds each — so a mutex-protected list beats
   a lock-free Chase–Lev deque on simplicity at no measurable cost. *)
type deque = { dmutex : Mutex.t; mutable items : (unit -> unit) list }

let pop_own d =
  Mutex.lock d.dmutex;
  let r =
    match d.items with
    | [] -> None
    | x :: rest ->
        d.items <- rest;
        Some x
  in
  Mutex.unlock d.dmutex;
  r

(* Take ceil(n/2) tasks from the back of [victim]. *)
let steal_half victim =
  Mutex.lock victim.dmutex;
  let n = List.length victim.items in
  let taken =
    if n = 0 then []
    else begin
      let keep = n / 2 in
      let rec split i = function
        | [] -> ([], [])
        | x :: rest ->
            if i < keep then begin
              let kept, stolen = split (i + 1) rest in
              (x :: kept, stolen)
            end
            else ([], x :: rest)
      in
      let kept, stolen = split 0 victim.items in
      victim.items <- kept;
      stolen
    end
  in
  Mutex.unlock victim.dmutex;
  taken

let push_back d tasks =
  if tasks <> [] then begin
    Mutex.lock d.dmutex;
    d.items <- d.items @ tasks;
    Mutex.unlock d.dmutex
  end

let run_stealing t (tasks : (unit -> unit) list) : unit =
  match tasks with
  | [] -> ()
  | [ f ] -> f ()
  | tasks ->
      let participants = t.size + 1 in
      let buckets = Array.make participants [] in
      List.iteri
        (fun i task ->
          let j = i mod participants in
          buckets.(j) <- task :: buckets.(j))
        tasks;
      let deques =
        Array.map
          (fun items -> { dmutex = Mutex.create (); items = List.rev items })
          buckets
      in
      (* Exceptions never cross domains raw: keep the first one and
         re-raise it on the submitting domain after the burst — the
         executor contract the chase relies on. *)
      let first_error = Atomic.make None in
      let run_task task =
        try task ()
        with e -> ignore (Atomic.compare_and_set first_error None (Some e))
      in
      let participant me () =
        let rec try_steal k =
          if k >= participants then None
          else
            match steal_half deques.((me + k) mod participants) with
            | [] -> try_steal (k + 1)
            | stolen :: rest ->
                Obs.count "pool.steals";
                Obs.count ~n:(1 + List.length rest) "pool.steal_tasks";
                push_back deques.(me) rest;
                Some stolen
        in
        let rec loop () =
          match pop_own deques.(me) with
          | Some task ->
              run_task task;
              loop ()
          | None -> (
              (* A participant mid-steal may hold tasks invisible to
                 this scan; exiting early is safe — [try_all] below
                 returns only once {e every} participant has drained,
                 so no task is ever lost, only tail parallelism. *)
              match try_steal 1 with
              | Some task ->
                  run_task task;
                  loop ()
              | None -> ())
        in
        loop ()
      in
      ignore
        (try_all t (List.init participants (fun i -> ("steal", participant i)))
          : (unit, string * exn) result list);
      (match Atomic.get first_error with None -> () | Some e -> raise e)

let stealing_executor t tasks = run_stealing t tasks

let shutdown t =
  Mutex.lock t.mutex;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  if not was_closed then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One lazily created process-wide pool, shared by the dispatcher and
   the parallel chase so repeated waves reuse warm domains instead of
   spawning fresh ones. *)
let shared_lock = Mutex.create ()
let shared_pool = ref None

let shared () =
  Mutex.lock shared_lock;
  let t =
    match !shared_pool with
    | Some t -> t
    | None ->
        let t = create () in
        shared_pool := Some t;
        at_exit (fun () -> shutdown t);
        t
  in
  Mutex.unlock shared_lock;
  t
