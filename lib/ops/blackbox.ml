open Matrix

type t = {
  name : string;
  min_params : int;
  max_params : int;
  needs_period : bool;
  eval : params:float list -> period:int option -> float array -> float array;
}

let catalogue : (string, t) Hashtbl.t = Hashtbl.create 32

let register ~name ?(min_params = 0) ?(max_params = 0) ?(needs_period = false)
    eval =
  let name = String.lowercase_ascii name in
  if Hashtbl.mem catalogue name then
    invalid_arg ("Blackbox.register: duplicate operator " ^ name);
  Hashtbl.replace catalogue name
    { name; min_params; max_params; needs_period; eval }

let period_exn = function
  | Some p -> p
  | None -> invalid_arg "Blackbox: seasonal period required"

let () =
  register ~name:"stl_t" ~max_params:1 ~needs_period:true
    (fun ~params:_ ~period a -> Stats.Decompose.trend ~period:(period_exn period) a);
  register ~name:"stl_s" ~max_params:1 ~needs_period:true
    (fun ~params:_ ~period a ->
      Stats.Decompose.seasonal ~period:(period_exn period) a);
  register ~name:"stl_r" ~max_params:1 ~needs_period:true
    (fun ~params:_ ~period a ->
      Stats.Decompose.remainder ~period:(period_exn period) a);
  register ~name:"deseason" ~max_params:1 ~needs_period:true
    (fun ~params:_ ~period a ->
      Stats.Decompose.deseasonalize ~period:(period_exn period) a);
  register ~name:"trend_classical" ~max_params:1 ~needs_period:true
    (fun ~params:_ ~period a ->
      Stats.Decompose.trend ~method_:Stats.Decompose.Classical
        ~period:(period_exn period) a);
  register ~name:"ma" ~min_params:1 ~max_params:1 (fun ~params ~period:_ a ->
      match params with
      | [ w ] -> Stats.Moving.trailing_average ~window:(int_of_float w) a
      | _ -> invalid_arg "ma: expected exactly one window parameter");
  register ~name:"cumsum" (fun ~params:_ ~period:_ a -> Stats.Moving.cumsum a);
  register ~name:"diff" ~max_params:1 (fun ~params ~period:_ a ->
      let lag = match params with [ l ] -> int_of_float l | _ -> 1 in
      Stats.Moving.diff ~lag a);
  register ~name:"pct" ~max_params:1 (fun ~params ~period:_ a ->
      let lag = match params with [ l ] -> int_of_float l | _ -> 1 in
      Stats.Moving.pct_change ~lag a);
  register ~name:"ewma" ~min_params:1 ~max_params:1 (fun ~params ~period:_ a ->
      match params with
      | [ alpha ] -> Stats.Moving.ewma ~alpha a
      | _ -> invalid_arg "ewma: expected exactly one smoothing parameter");
  register ~name:"lintrend" (fun ~params:_ ~period:_ a ->
      Stats.Regression.fitted_line a);
  register ~name:"acf" ~min_params:1 ~max_params:1 (fun ~params ~period:_ a ->
      (* replaces every point with the series' autocorrelation at the
         given lag — a whole-series statistic broadcast back, like a
         rolling diagnostic panel would show *)
      match params with
      | [ lag ] ->
          let r = Stats.Descriptive.autocorrelation ~lag:(int_of_float lag) a in
          Array.map (fun _ -> r) a
      | _ -> invalid_arg "acf: expected exactly one lag parameter");
  register ~name:"zscore" (fun ~params:_ ~period:_ a ->
      if Array.length a = 0 then a
      else
        let m = Stats.Descriptive.mean a in
        let sd = Stats.Descriptive.stddev a in
        if sd = 0. then Array.map (fun _ -> 0.) a
        else Array.map (fun x -> (x -. m) /. sd) a)

let find name = Hashtbl.find_opt catalogue (String.lowercase_ascii name)

let find_exn name =
  match find name with
  | Some t -> t
  | None -> invalid_arg ("Blackbox.find_exn: unknown operator " ^ name)

let exists name = Option.is_some (find name)

let names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) catalogue []
  |> List.sort String.compare

let default_period = function
  | Calendar.Year -> None
  | Calendar.Semester -> Some 2
  | Calendar.Quarter -> Some 4
  | Calendar.Month -> Some 12
  | Calendar.Week -> Some 52
  | Calendar.Day -> Some 7

let resolve_period t ~params ~freq =
  if not t.needs_period then Ok None
  else
    match params with
    | p :: _ -> Ok (Some (int_of_float p))
    | [] -> (
        match Option.bind freq default_period with
        | Some p -> Ok (Some p)
        | None ->
            Error
              (Printf.sprintf
                 "%s: no seasonal period given and none inferable from frequency"
                 t.name))

let apply_vector t ~params ~freq a =
  let n = List.length params in
  if n < t.min_params || n > t.max_params then
    Error
      (Printf.sprintf "%s: expected %d..%d parameters, got %d" t.name
         t.min_params t.max_params n)
  else
    match resolve_period t ~params ~freq with
    | Error _ as e -> e
    | Ok period -> (
        try Ok (t.eval ~params ~period a) with
        | Invalid_argument msg -> Error (t.name ^ ": " ^ msg))

let temporal_dim_index schema =
  let idxs =
    List.mapi (fun i d -> (i, d)) (Array.to_list schema.Schema.dims)
    |> List.filter (fun (_, d) -> Domain.is_temporal d.Schema.dim_domain)
  in
  match idxs with
  | [ (i, _) ] -> Ok i
  | [] -> Error "no temporal dimension"
  | _ -> Error "more than one temporal dimension"

let apply_cube t ~params c =
  let schema = Cube.schema c in
  match temporal_dim_index schema with
  | Error msg -> Error (Printf.sprintf "%s on %s: %s" t.name (Cube.name c) msg)
  | Ok tdim ->
      let n = Schema.arity schema in
      let other_idxs =
        Array.of_list (List.filter (fun i -> i <> tdim) (List.init n Fun.id))
      in
      (* Group tuples into slices by the non-temporal dimension values. *)
      let slices : (Tuple.t * Value.t) list Tuple.Table.t =
        Tuple.Table.create 16
      in
      Cube.iter
        (fun k v ->
          let slice_key = Tuple.project k other_idxs in
          let prev =
            Option.value ~default:[] (Tuple.Table.find_opt slices slice_key)
          in
          Tuple.Table.replace slices slice_key ((k, v) :: prev))
        c;
      let out = Cube.create schema in
      let err = ref None in
      let period_of_key k =
        match Tuple.get k tdim with
        | Value.Period p -> Some p
        | Value.Date d -> Some (Calendar.Period.day d)
        | Value.(Null | Bool _ | Int _ | Float _ | String _) -> None
      in
      Tuple.Table.iter
        (fun _slice_key tuples ->
          if !err = None then begin
            let pts =
              List.filter_map
                (fun (k, v) ->
                  match (period_of_key k, Value.to_float v) with
                  | Some p, Some f -> Some (p, f, k)
                  | _ -> None)
                tuples
              |> List.sort (fun (a, _, _) (b, _, _) -> Calendar.Period.compare a b)
            in
            let values = Array.of_list (List.map (fun (_, f, _) -> f) pts) in
            let freq =
              match pts with
              | (p, _, _) :: _ -> Some (Calendar.Period.freq p)
              | [] -> None
            in
            match apply_vector t ~params ~freq values with
            | Error msg -> err := Some msg
            | Ok result ->
                List.iteri
                  (fun i (_, _, k) ->
                    if not (Float.is_nan result.(i)) then
                      Cube.set out k (Value.Float result.(i)))
                  pts
          end)
        slices;
      (match !err with Some e -> Error e | None -> Ok out)
