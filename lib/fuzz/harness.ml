open Matrix

type outcome = Agree | Skip of string | Disagree of string

type check = {
  axis : Lattice.axis;
  fuse : Lattice.fuse_mode;
  outcome : outcome;
}

(* --- shared plumbing ------------------------------------------------- *)

let parse_program source =
  match Exl.Parser.parse source with
  | Ok prog -> Ok prog
  | Error e -> Error (Exl.Errors.to_string e)

(* Statement left-hand sides of the original (unnormalized) program:
   the cubes every configuration must agree on.  Temps introduced by
   normalization are representation detail — fused/optimized mappings
   legitimately drop them. *)
let derived_names source =
  match parse_program source with
  | Error _ -> []
  | Ok prog ->
      List.fold_left
        (fun acc (s : Exl.Ast.stmt) ->
          if List.mem s.lhs acc then acc else acc @ [ s.lhs ])
        []
        (Exl.Ast.stmts prog)

let compiled scenario = Core.compile scenario.Scenario.source

let chase ?(columnar = false) mapping data =
  Exchange.Chase.run ~columnar mapping
    (Exchange.Instance.of_registry (Registry.copy data))

let compare_relations ?(eps = 1e-6) names j1 j2 =
  List.find_map
    (fun name ->
      let c1 = Exchange.Instance.cube_of_relation j1 name in
      let c2 = Exchange.Instance.cube_of_relation j2 name in
      if Cube.equal_data ~eps c1 c2 then None
      else
        Some
          (Printf.sprintf "cube %s differs (%d vs %d facts)" name
             (Cube.cardinality c1) (Cube.cardinality c2)))
    names

(* --- axis: parse/pretty round-trip ----------------------------------- *)

let roundtrip_once what prog =
  let printed = Exl.Pretty.program_to_string prog in
  match Exl.Parser.parse printed with
  | Error e ->
      Some
        (Printf.sprintf "%s: pretty output does not re-parse: %s" what
           (Exl.Errors.to_string e))
  | Ok back ->
      if Exl.Ast.equal_program prog back then None
      else Some (Printf.sprintf "%s: pretty round-trip changes the program" what)

let check_roundtrip scenario =
  match parse_program scenario.Scenario.source with
  | Error msg -> Disagree ("generated program does not parse: " ^ msg)
  | Ok ast -> (
      match roundtrip_once "raw" ast with
      | Some d -> Disagree d
      | None -> (
          (* normalization folds constants: the floats it introduces
             must round-trip too *)
          match roundtrip_once "normalized" (Exl.Normalize.program ast) with
          | Some d -> Disagree d
          | None -> Agree))

(* --- axis: lint verdict stability ------------------------------------ *)

let lint_codes (r : Analysis.Lint.report) =
  List.sort compare
    (List.map (fun (d : Analysis.Diagnostic.t) -> d.code) r.diagnostics)

let check_lint scenario =
  let source = scenario.Scenario.source in
  let r1 = Analysis.Lint.source_diagnostics source in
  let errors =
    List.filter
      (fun (d : Analysis.Diagnostic.t) -> d.severity = Analysis.Diagnostic.Error)
      r1.diagnostics
  in
  if errors <> [] then
    Disagree
      ("generated program has lint errors: "
      ^ String.concat ", "
          (List.map (fun (d : Analysis.Diagnostic.t) -> d.code) errors))
  else
    match parse_program source with
    | Error msg -> Disagree ("does not parse: " ^ msg)
    | Ok ast ->
        let printed = Exl.Pretty.program_to_string ast in
        let r2 = Analysis.Lint.source_diagnostics printed in
        if lint_codes r1 = lint_codes r2 then Agree
        else
          Disagree
            (Printf.sprintf
               "lint verdict changes across pretty round-trip: [%s] vs [%s]"
               (String.concat ";" (lint_codes r1))
               (String.concat ";" (lint_codes r2)))

(* --- axis: all execution backends ------------------------------------ *)

let check_backends scenario =
  match compiled scenario with
  | Error msg -> Disagree ("does not compile: " ^ msg)
  | Ok prog -> (
      match
        Core.verify_all_backends prog (Registry.copy scenario.Scenario.data)
      with
      | Ok () -> Agree
      | Error msg -> Disagree msg)

(* --- axis: row vs columnar chase ------------------------------------- *)

let stats_diff (a : Exchange.Chase.stats) (b : Exchange.Chase.stats) =
  let fields =
    [
      ("matches_examined", a.matches_examined, b.matches_examined);
      ("tuples_generated", a.tuples_generated, b.tuples_generated);
      ("tgds_applied", a.tgds_applied, b.tgds_applied);
      ("egd_checks", a.egd_checks, b.egd_checks);
      ("nulls_created", a.nulls_created, b.nulls_created);
      ("rounds", a.rounds, b.rounds);
    ]
  in
  List.find_map
    (fun (name, x, y) ->
      if x = y then None
      else Some (Printf.sprintf "counter %s: %d vs %d" name x y))
    fields

let check_columnar scenario =
  match Result.bind (compiled scenario) Core.mapping_of with
  | Error msg -> Disagree ("no mapping: " ^ msg)
  | Ok mapping -> (
      let data = scenario.Scenario.data in
      match (chase ~columnar:false mapping data, chase ~columnar:true mapping data) with
      | Ok (j1, s1), Ok (j2, s2) -> (
          let names =
            List.map
              (fun (s : Schema.t) -> s.Schema.name)
              mapping.Mappings.Mapping.target
          in
          let facts_diff =
            List.find_map
              (fun name ->
                if
                  Exchange.Instance.facts j1 name
                  = Exchange.Instance.facts j2 name
                then None
                else Some (Printf.sprintf "relation %s differs" name))
              names
          in
          match facts_diff with
          | Some d -> Disagree ("row vs columnar: " ^ d)
          | None -> (
              match stats_diff s1 s2 with
              | Some d -> Disagree ("row vs columnar: " ^ d)
              | None -> Agree))
      | Error e1, Error e2 ->
          if e1 = e2 then Agree
          else
            Disagree
              (Printf.sprintf "row vs columnar error messages differ: %s vs %s"
                 e1 e2)
      | Ok _, Error e -> Disagree ("columnar path errored, row did not: " ^ e)
      | Error e, Ok _ -> Disagree ("row path errored, columnar did not: " ^ e))

(* --- axis: sharded vs unsharded chase --------------------------------- *)

let check_shards scenario =
  Shard.Driver.install ();
  match Result.bind (compiled scenario) Core.mapping_of with
  | Error msg -> Disagree ("no mapping: " ^ msg)
  | Ok mapping -> (
      let data = scenario.Scenario.data in
      let sharded mapping data =
        Exchange.Chase.run ~shards:3 mapping
          (Exchange.Instance.of_registry (Registry.copy data))
      in
      match (chase ~columnar:true mapping data, sharded mapping data) with
      | Ok (j1, _), Ok (j2, _) -> (
          let names =
            List.map
              (fun (s : Schema.t) -> s.Schema.name)
              mapping.Mappings.Mapping.target
          in
          let facts_diff =
            List.find_map
              (fun name ->
                if
                  Exchange.Instance.facts j1 name
                  = Exchange.Instance.facts j2 name
                then None
                else Some (Printf.sprintf "relation %s differs" name))
              names
          in
          match facts_diff with
          | Some d -> Disagree ("sharded vs unsharded: " ^ d)
          | None -> Agree)
      | Error _, Error _ ->
          (* both reject; tgd errors may surface in per-shard order, so
             message equality is not required — the verdict is *)
          Agree
      | Ok _, Error e -> Disagree ("sharded chase errored, unsharded did not: " ^ e)
      | Error e, Ok _ -> Disagree ("unsharded chase errored, sharded did not: " ^ e))

(* --- axis: optimized mapping ------------------------------------------ *)

let check_optimize scenario =
  match Result.bind (compiled scenario) Core.mapping_of with
  | Error msg -> Disagree ("no mapping: " ^ msg)
  | Ok mapping -> (
      let report = Analysis.Optimize.run mapping in
      match Analysis.Optimize.verify report with
      | Error msg -> Disagree ("optimizer certificate fails: " ^ msg)
      | Ok () -> (
          let data = scenario.Scenario.data in
          match
            (chase mapping data, chase report.Analysis.Optimize.optimized data)
          with
          | Ok (j1, _), Ok (j2, _) -> (
              let names =
                Registry.elementary_names data
                @ derived_names scenario.Scenario.source
              in
              match compare_relations names j1 j2 with
              | None -> Agree
              | Some d -> Disagree ("optimized vs original: " ^ d))
          | Error e1, Error e2 ->
              if e1 = e2 then Agree
              else
                Disagree
                  (Printf.sprintf
                     "optimized vs original error messages differ: %s vs %s" e1
                     e2)
          | Ok _, Error e -> Disagree ("optimized chase errored: " ^ e)
          | Error e, Ok _ -> Disagree ("original chase errored: " ^ e)))

(* --- axis: fusion ----------------------------------------------------- *)

(* The historical naive aggregation fusion (outlawed by the optimizer's
   machine-checked certificates): inline a tuple-level producer into an
   aggregation by substituting its body atom, but keep the group-by
   keys positional instead of rewriting them through the unifier — a
   shifted key silently loses its shift.  Kept here, deliberately, as
   fault injection for the harness itself: [--fuse unsafe] must be
   caught and shrunk by the differential checks. *)
let naive_fuse (m : Mappings.Mapping.t) =
  let open Mappings in
  let uses rel t = List.mem rel (Tgd.source_relations t) in
  let consumers rel =
    List.length (List.filter (uses rel) m.Mapping.t_tgds)
  in
  let candidate =
    List.find_map
      (fun t ->
        match t with
        | Tgd.Aggregation { source; group_by; aggr; measure = _; target }
          when Exl.Normalize.is_temp source.Tgd.rel
               && consumers source.Tgd.rel = 1 -> (
            match Mapping.tgd_for m source.Tgd.rel with
            | Some (Tgd.Tuple_level { lhs = [ p_atom ]; _ } as producer) -> (
                let idx_of v =
                  let rec go i = function
                    | [] -> None
                    | Term.Var w :: _ when w = v -> Some i
                    | _ :: rest -> go (i + 1) rest
                  in
                  go 0 source.Tgd.args
                in
                let keys =
                  List.map
                    (fun term ->
                      match term with
                      | Term.Var v -> (
                          match idx_of v with
                          | Some i -> List.nth p_atom.Tgd.args i
                          | None -> term)
                      | other -> other)
                    group_by
                in
                match List.rev p_atom.Tgd.args with
                | Term.Var mv :: _ ->
                    Some
                      ( producer,
                        t,
                        source.Tgd.rel,
                        Tgd.Aggregation
                          {
                            source = p_atom;
                            group_by = keys;
                            aggr;
                            measure = mv;
                            target;
                          } )
                | _ -> None)
            | _ -> None)
        | _ -> None)
      m.Mapping.t_tgds
  in
  Option.map
    (fun (producer, consumer, temp, fused) ->
      {
        m with
        Mapping.t_tgds =
          List.filter_map
            (fun t ->
              if t == producer then None
              else if t == consumer then Some fused
              else Some t)
            m.Mapping.t_tgds;
        target =
          List.filter
            (fun (s : Schema.t) -> s.Schema.name <> temp)
            m.Mapping.target;
        egds =
          List.filter (fun (e : Egd.t) -> e.Egd.relation <> temp) m.Mapping.egds;
      })
    candidate

let compare_mappings scenario baseline variant ~what =
  let data = scenario.Scenario.data in
  match (chase baseline data, chase variant data) with
  | Ok (j1, _), Ok (j2, _) -> (
      let names =
        Registry.elementary_names data @ derived_names scenario.Scenario.source
      in
      match compare_relations names j1 j2 with
      | None -> Agree
      | Some d -> Disagree (what ^ ": " ^ d))
  | Error e1, Error e2 ->
      if e1 = e2 then Agree
      else
        Disagree
          (Printf.sprintf "%s: error messages differ: %s vs %s" what e1 e2)
  | Ok _, Error e -> Disagree (Printf.sprintf "%s: variant errored: %s" what e)
  | Error e, Ok _ -> Disagree (Printf.sprintf "%s: baseline errored: %s" what e)

let check_fusion ~fuse scenario =
  match fuse with
  | Lattice.Off -> Skip "fusion disabled"
  | Lattice.Safe -> (
      match compiled scenario with
      | Error msg -> Disagree ("does not compile: " ^ msg)
      | Ok prog -> (
          match (Core.mapping_of prog, Core.fused_mapping_of prog) with
          | Ok baseline, Ok fused ->
              compare_mappings scenario baseline fused ~what:"fused vs unfused"
          | Error msg, _ | _, Error msg -> Disagree ("no mapping: " ^ msg)))
  | Lattice.Unsafe -> (
      match Result.bind (compiled scenario) Core.mapping_of with
      | Error msg -> Disagree ("no mapping: " ^ msg)
      | Ok mapping -> (
          match naive_fuse mapping with
          | None -> Skip "no temp-fed aggregation to fuse"
          | Some naive ->
              compare_mappings scenario mapping naive
                ~what:"naive agg fusion vs unfused"))

(* --- axis: incremental vs scratch ------------------------------------- *)

let engine_config =
  { Engine.Exlengine.default_config with record_history = false }

let make_engine ?(config = engine_config) source data =
  let engine = Engine.Exlengine.create ~config () in
  match Engine.Exlengine.register_program engine ~name:"main" source with
  | Error msg -> Error msg
  | Ok () -> (
      match
        List.fold_left
          (fun acc name ->
            match acc with
            | Error _ -> acc
            | Ok () ->
                Engine.Exlengine.load_elementary engine
                  (Cube.copy (Registry.find_exn data name)))
          (Ok ())
          (Registry.elementary_names data)
      with
      | Error msg -> Error msg
      | Ok () -> Ok engine)

let apply_batch_directly data batch =
  List.iter
    (fun (u : Engine.Update.t) ->
      let cube = Registry.find_exn data u.cube in
      let k = Tuple.of_list u.key in
      match u.action with
      | Engine.Update.Set v -> Cube.set cube k v
      | Engine.Update.Remove -> Cube.remove cube k)
    batch

let compare_engines ?(eps = 1e-6) a b =
  List.find_map
    (fun name ->
      match (Engine.Exlengine.cube a name, Engine.Exlengine.cube b name) with
      | Some ca, Some cb ->
          if Cube.equal_data ~eps cb ca then None
          else Some (Printf.sprintf "cube %s differs" name)
      | None, None -> None
      | Some _, None -> Some (Printf.sprintf "cube %s only incremental" name)
      | None, Some _ -> Some (Printf.sprintf "cube %s only scratch" name))
    (Engine.Determination.derived_order (Engine.Exlengine.determination a))

let check_incremental scenario =
  if scenario.Scenario.updates = [] then Skip "no update batches"
  else
    match make_engine scenario.Scenario.source scenario.Scenario.data with
    | Error msg -> Disagree ("engine setup: " ^ msg)
    | Ok engine -> (
        match Engine.Exlengine.recompute_all engine with
        | Error msg -> Disagree ("initial recompute: " ^ msg)
        | Ok _ -> (
            let incremental_error =
              List.fold_left
                (fun acc batch ->
                  match acc with
                  | Some _ -> acc
                  | None -> (
                      match Engine.Exlengine.apply_updates engine batch with
                      | Ok _ -> None
                      | Error msg -> Some msg))
                None scenario.Scenario.updates
            in
            match incremental_error with
            | Some msg -> Disagree ("apply_updates: " ^ msg)
            | None -> (
                let data = Registry.copy scenario.Scenario.data in
                List.iter (apply_batch_directly data) scenario.Scenario.updates;
                match make_engine scenario.Scenario.source data with
                | Error msg -> Disagree ("scratch engine setup: " ^ msg)
                | Ok scratch -> (
                    match Engine.Exlengine.recompute_all scratch with
                    | Error msg -> Disagree ("scratch recompute: " ^ msg)
                    | Ok _ -> (
                        match compare_engines engine scratch with
                        | None -> Agree
                        | Some d -> Disagree ("incremental vs scratch: " ^ d))))))

(* --- axis: fault transparency ----------------------------------------- *)

(* Tight backoff so injected timeouts and crashes don't make the fuzz
   campaign wall-clock-bound on retry sleeps. *)
let fault_retry =
  {
    Engine.Exlengine.default_config.retry with
    base_backoff = 0.0005;
    max_backoff = 0.005;
  }

let check_faults scenario =
  match scenario.Scenario.faults with
  | None -> Skip "no fault plan"
  | Some plan -> (
      Engine.Faults.reset plan;
      (* vector-first priority so sql-free faults actually bite, with
         sql as the always-capable fallback *)
      let policy =
        { Engine.Dispatcher.priority = [ "vector"; "etl"; "sql" ]; overrides = [] }
      in
      let config faults =
        { engine_config with policy; retry = fault_retry; faults }
      in
      let build faults =
        match
          make_engine ~config:(config faults) scenario.Scenario.source
            scenario.Scenario.data
        with
        | Error msg -> Error msg
        | Ok engine -> (
            match Engine.Exlengine.recompute_all engine with
            | Error msg -> Error msg
            | Ok report -> Ok (engine, report))
      in
      match (build (Some plan), build None) with
      | Ok (faulted, report), Ok (plain, _) -> (
          if Engine.Dispatcher.degraded report then
            Disagree
              ("sql-free faulted run degraded: "
              ^ Engine.Dispatcher.failure_summary report)
          else
            match compare_engines ~eps:1e-7 faulted plain with
            | None -> Agree
            | Some d -> Disagree ("faulted vs fault-free: " ^ d))
      | Error e1, Error e2 ->
          if e1 = e2 then Agree
          else
            Disagree
              (Printf.sprintf "faulted vs fault-free errors differ: %s vs %s" e1
                 e2)
      | Error e, Ok _ -> Disagree ("faulted run errored: " ^ e)
      | Ok _, Error e -> Disagree ("fault-free run errored: " ^ e))

(* --- dispatch --------------------------------------------------------- *)

let check_axis ~fuse scenario axis =
  match axis with
  | Lattice.Roundtrip -> check_roundtrip scenario
  | Lattice.Lint -> check_lint scenario
  | Lattice.Backends -> check_backends scenario
  | Lattice.Columnar -> check_columnar scenario
  | Lattice.Optimize -> check_optimize scenario
  | Lattice.Fusion -> check_fusion ~fuse scenario
  | Lattice.Incremental -> check_incremental scenario
  | Lattice.Faults -> check_faults scenario
  | Lattice.Shards -> check_shards scenario

let run ?(axes = Lattice.all) ?(fuse = Lattice.Safe) scenario =
  List.map
    (fun axis -> { axis; fuse; outcome = check_axis ~fuse scenario axis })
    axes

let replay scenario =
  let specs =
    match scenario.Scenario.axes with
    | [] -> List.map (fun a -> (a, Lattice.Safe)) Lattice.all
    | specs -> List.filter_map Lattice.of_spec specs
  in
  List.map
    (fun (axis, fuse) -> { axis; fuse; outcome = check_axis ~fuse scenario axis })
    specs

let disagreements checks =
  List.filter (fun c -> match c.outcome with Disagree _ -> true | _ -> false) checks

(* --- shrinking -------------------------------------------------------- *)

let stmt_count scenario =
  match parse_program scenario.Scenario.source with
  | Error _ -> 0
  | Ok prog -> List.length (Exl.Ast.stmts prog)

module SS = Set.Make (String)

(* Statements that must leave together with [lhs0]: everything
   (transitively) reading a removed cube. *)
let dependents stmts lhs0 =
  let removed = ref (SS.singleton lhs0) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (s : Exl.Ast.stmt) ->
        if
          (not (SS.mem s.lhs !removed))
          && List.exists (fun r -> SS.mem r !removed) (Exl.Ast.cube_refs s.rhs)
        then (
          removed := SS.add s.lhs !removed;
          changed := true))
      stmts
  done;
  !removed

(* Rebuild a scenario around a subset of its statements: unreferenced
   declarations lose their decl, data and updates; the program text is
   regenerated through the (round-trip-safe) pretty printer. *)
let rebuild scenario kept_stmts =
  match parse_program scenario.Scenario.source with
  | Error _ -> None
  | Ok prog ->
      let refs =
        List.fold_left
          (fun acc (s : Exl.Ast.stmt) ->
            SS.union acc (SS.of_list (Exl.Ast.cube_refs s.rhs)))
          SS.empty kept_stmts
      in
      let decls =
        List.filter
          (fun (d : Exl.Ast.decl) -> SS.mem d.d_name refs)
          (Exl.Ast.decls prog)
      in
      let keep_cube name =
        List.exists (fun (d : Exl.Ast.decl) -> d.d_name = name) decls
      in
      let items =
        List.map (fun d -> Exl.Ast.Decl d) decls
        @ List.map (fun s -> Exl.Ast.Stmt s) kept_stmts
      in
      let source = Exl.Pretty.program_to_string items in
      let data = Registry.create () in
      List.iter
        (fun name ->
          if keep_cube name then
            Registry.add data Registry.Elementary
              (Cube.copy (Registry.find_exn scenario.Scenario.data name)))
        (Registry.elementary_names scenario.Scenario.data);
      let updates =
        List.filter_map
          (fun batch ->
            match
              List.filter (fun (u : Engine.Update.t) -> keep_cube u.cube) batch
            with
            | [] -> None
            | kept -> Some kept)
          scenario.Scenario.updates
      in
      Some { scenario with Scenario.source; data; updates }

let with_data scenario f =
  let data = Registry.create () in
  List.iter
    (fun name ->
      match f name (Registry.find_exn scenario.Scenario.data name) with
      | Some cube -> Registry.add data Registry.Elementary cube
      | None ->
          Registry.add data Registry.Elementary
            (Cube.copy (Registry.find_exn scenario.Scenario.data name)))
    (Registry.elementary_names scenario.Scenario.data);
  { scenario with Scenario.data }

let shrink ?(budget = 300) ~fuse ~axis scenario =
  let budget = ref budget in
  let still candidate =
    if !budget <= 0 then false
    else (
      decr budget;
      match check_axis ~fuse candidate axis with
      | Disagree _ -> true
      | Agree | Skip _ -> false)
  in
  if not (still scenario) then scenario
  else
    let current = ref scenario in
    (* 1. statements, last first, each with its dependents *)
    let shrink_stmts () =
      let progress = ref true in
      while !progress && !budget > 0 do
        progress := false;
        match parse_program !current.Scenario.source with
        | Error _ -> ()
        | Ok prog ->
            let stmts = Exl.Ast.stmts prog in
            let try_remove lhs =
              let removed = dependents stmts lhs in
              let kept =
                List.filter
                  (fun (s : Exl.Ast.stmt) -> not (SS.mem s.lhs removed))
                  stmts
              in
              if kept = [] then false
              else
                match rebuild !current kept with
                | Some candidate when still candidate ->
                    current := candidate;
                    true
                | _ -> false
            in
            List.iter
              (fun (s : Exl.Ast.stmt) ->
                if (not !progress) && try_remove s.lhs then progress := true)
              (List.rev stmts)
      done
    in
    (* 2. update batches: whole batches, then halves *)
    let shrink_updates () =
      let try_with updates =
        let candidate = { !current with Scenario.updates } in
        if still candidate then (
          current := candidate;
          true)
        else false
      in
      let progress = ref true in
      while !progress && !budget > 0 do
        progress := false;
        let batches = !current.Scenario.updates in
        List.iteri
          (fun i _ ->
            if not !progress then
              let without = List.filteri (fun j _ -> j <> i) batches in
              if try_with without then progress := true)
          batches;
        if not !progress then
          List.iteri
            (fun i batch ->
              let n = List.length batch in
              if (not !progress) && n > 1 then (
                let first = List.filteri (fun j _ -> j < n / 2) batch in
                let second = List.filteri (fun j _ -> j >= n / 2) batch in
                let replace half =
                  List.mapi (fun j b -> if j = i then half else b) batches
                in
                if try_with (replace first) then progress := true
                else if try_with (replace second) then progress := true))
            batches
      done
    in
    (* 3. fault triggers *)
    let shrink_faults () =
      match !current.Scenario.faults with
      | None -> ()
      | Some plan ->
          (* the whole plan first (any axis but Faults survives that) *)
          let without = { !current with Scenario.faults = None } in
          if still without then current := without
          else
          let seed = Engine.Faults.seed plan in
          let progress = ref true in
          while !progress && !budget > 0 do
            progress := false;
            match !current.Scenario.faults with
            | None -> ()
            | Some plan ->
                let triggers = Engine.Faults.triggers plan in
                if List.length triggers > 1 then
                  List.iteri
                    (fun i _ ->
                      if not !progress then
                        let remaining = List.filteri (fun j _ -> j <> i) triggers in
                        let candidate =
                          {
                            !current with
                            Scenario.faults =
                              Some (Engine.Faults.plan ~seed remaining);
                          }
                        in
                        if still candidate then (
                          current := candidate;
                          progress := true))
                    triggers
          done
    in
    (* 4. data slices: drop groups of keys sharing a non-temporal
       dimension value, and truncate temporal series to their back half *)
    let shrink_data () =
      let progress = ref true in
      while !progress && !budget > 0 do
        progress := false;
        List.iter
          (fun name ->
            if not !progress then
              let cube = Registry.find_exn !current.Scenario.data name in
              let schema = Cube.schema cube in
              let dims = Schema.dim_names schema in
              List.iteri
                (fun di dim ->
                  if
                    (not !progress)
                    && not
                         (Domain.is_temporal
                            (Option.get (Schema.dim_domain schema dim)))
                  then
                    let values =
                      List.sort_uniq compare
                        (List.map
                           (fun (k, _) -> List.nth (Tuple.to_list k) di)
                           (Cube.to_alist cube))
                    in
                    if List.length values > 1 then
                      List.iter
                        (fun v ->
                          if not !progress then
                            let candidate =
                              with_data !current (fun n c ->
                                  if n <> name then None
                                  else
                                    Some
                                      (Cube.filter
                                         (fun k _ ->
                                           List.nth (Tuple.to_list k) di <> v)
                                         c))
                            in
                            if still candidate then (
                              current := candidate;
                              progress := true))
                        values)
                dims)
          (Registry.elementary_names !current.Scenario.data)
      done
    in
    shrink_stmts ();
    shrink_updates ();
    shrink_faults ();
    shrink_data ();
    (* a data shrink can unlock another statement shrink *)
    shrink_stmts ();
    !current
