type axis =
  | Roundtrip
  | Lint
  | Backends
  | Columnar
  | Optimize
  | Fusion
  | Incremental
  | Faults
  | Shards

let all =
  [
    Roundtrip;
    Lint;
    Backends;
    Columnar;
    Optimize;
    Fusion;
    Incremental;
    Faults;
    Shards;
  ]

let name = function
  | Roundtrip -> "roundtrip"
  | Lint -> "lint"
  | Backends -> "backends"
  | Columnar -> "columnar"
  | Optimize -> "optimize"
  | Fusion -> "fusion"
  | Incremental -> "incremental"
  | Faults -> "faults"
  | Shards -> "shards"

let axis_of_name s = List.find_opt (fun a -> name a = s) all

type fuse_mode = Safe | Unsafe | Off

let fuse_mode_name = function
  | Safe -> "safe"
  | Unsafe -> "unsafe"
  | Off -> "off"

let fuse_mode_of_name = function
  | "safe" -> Some Safe
  | "unsafe" -> Some Unsafe
  | "off" -> Some Off
  | _ -> None

let of_spec spec =
  match String.index_opt spec ':' with
  | None -> Option.map (fun a -> (a, Safe)) (axis_of_name spec)
  | Some i -> (
      let axis = String.sub spec 0 i in
      let mode = String.sub spec (i + 1) (String.length spec - i - 1) in
      match (axis_of_name axis, fuse_mode_of_name mode) with
      | Some a, Some m -> Some (a, m)
      | _ -> None)

let to_spec axis mode =
  match (axis, mode) with
  | Fusion, (Unsafe | Off) -> name axis ^ ":" ^ fuse_mode_name mode
  | _ -> name axis
