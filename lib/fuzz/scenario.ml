open Matrix

type t = {
  seed : int;
  profile : string;
  source : string;
  data : Registry.t;
  updates : Engine.Update.t list list;
  faults : Engine.Faults.plan option;
  axes : string list;
}

let ( let* ) = Result.bind

(* --- generation ------------------------------------------------------ *)

(* One revision batch over the elementary instance.  Measures are
   revised everywhere; keys are retracted only on non-temporal cubes so
   the generator's series-length guarantees (gating stl/diff) survive
   every batch.  [removed] tracks retractions across batches so a later
   batch never retracts an absent fact. *)
let rand_batch st data removed ~factor =
  List.concat_map
    (fun name ->
      let cube = Registry.find_exn data name in
      let temporal = Schema.time_dims (Cube.schema cube) <> [] in
      List.filter_map
        (fun (k, v) ->
          let key = Tuple.to_list k in
          if Hashtbl.mem removed (name, key) then None
          else
            let roll = Random.State.float st 1.0 in
            if roll < 0.1 then
              let f = Option.value ~default:1. (Value.to_float v) in
              Some
                (Engine.Update.set ~cube:name ~key
                   (Value.Float ((f *. factor) +. 1.)))
            else if (not temporal) && roll < 0.15 then (
              Hashtbl.replace removed (name, key) ();
              Some (Engine.Update.remove ~cube:name ~key))
            else None)
        (Cube.to_alist cube))
    (Registry.elementary_names data)

(* Sql-free fault plans: the always-capable sql target stays clean, so
   fallback terminates and a faulted run must be cube-equal to the
   fault-free one (the failure-transparency property). *)
let rand_faults st data =
  if Random.State.float st 1.0 < 0.5 then None
  else
    let cubes = None :: List.map Option.some (Registry.names data) in
    let n = Gen.rand_int st 1 3 in
    let triggers =
      List.init n (fun _ ->
          let stage = Gen.pick st [ Engine.Faults.Translate; Engine.Faults.Execute ] in
          let target = Gen.pick st [ "vector"; "etl" ] in
          let cube = Gen.pick st cubes in
          let kind =
            Gen.pick st
              [
                Engine.Faults.Execute_error "injected";
                Engine.Faults.Translate_error "injected";
                Engine.Faults.Timeout 0.;
                Engine.Faults.Worker_crash "injected";
              ]
          in
          let times = Gen.pick st [ 1; 2; 3; Engine.Faults.always ] in
          let probability = Gen.pick st [ 1.0; 0.5 ] in
          Engine.Faults.trigger ~target ?cube ~times ~probability stage kind)
    in
    Some (Engine.Faults.plan ~seed:(Gen.rand_int st 0 1_000_000) triggers)

let generate ?(profile = "quick") seed =
  let p = Option.value ~default:Gen.quick (Gen.profile_of_name profile) in
  let st = Random.State.make [| seed; 0xE1; 0x5E |] in
  let source, data = Gen.rand_program_and_data ~profile:p st in
  let removed = Hashtbl.create 16 in
  let n_batches = Gen.rand_int st 0 2 in
  let updates =
    List.init n_batches (fun _ ->
        rand_batch st data removed ~factor:(Gen.pick st [ 1.5; 0.5; 2.0 ]))
  in
  let faults = rand_faults st data in
  { seed; profile; source; data; updates; faults; axes = [] }

(* --- schemas from source -------------------------------------------- *)

let schemas_of_source source =
  match Exl.Parser.parse source with
  | Error e -> Error (Exl.Errors.to_string e)
  | Ok prog -> (
      try
        Ok
          (List.map
             (fun (d : Exl.Ast.decl) ->
               let dims =
                 List.map
                   (fun (n, kw) ->
                     match Domain.of_string kw with
                     | Some dom -> (n, dom)
                     | None -> failwith (Printf.sprintf "unknown domain %s" kw))
                   d.d_dims
               in
               Schema.make ~name:d.d_name ~dims ())
             (Exl.Ast.decls prog))
      with Failure msg | Invalid_argument msg -> Error msg)

let schema_of_source source =
  let* schemas = schemas_of_source source in
  Ok (fun name -> List.find_opt (fun s -> s.Schema.name = name) schemas)

(* --- repro files ----------------------------------------------------- *)

let data_lines data =
  List.concat_map
    (fun name ->
      let cube = Registry.find_exn data name in
      List.map
        (fun (k, v) ->
          Engine.Update.to_string
            (Engine.Update.set ~cube:name ~key:(Tuple.to_list k) v))
        (Cube.to_alist cube))
    (Registry.elementary_names data)

let section buf header lines =
  Buffer.add_string buf (header ^ " {\n");
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines;
  Buffer.add_string buf "}\n"

let trim_trailing_newlines s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = '\n' do
    decr n
  done;
  String.sub s 0 !n

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# exl-fuzz scenario repro\n";
  Buffer.add_string buf (Printf.sprintf "seed %d\n" t.seed);
  Buffer.add_string buf (Printf.sprintf "profile %s\n" t.profile);
  if t.axes <> [] then
    Buffer.add_string buf ("axes " ^ String.concat " " t.axes ^ "\n");
  section buf "program"
    (String.split_on_char '\n' (trim_trailing_newlines t.source));
  section buf "data" (data_lines t.data);
  List.iter
    (fun batch ->
      section buf "updates" (List.map Engine.Update.to_string batch))
    t.updates;
  (match t.faults with
  | None -> ()
  | Some plan ->
      section buf "faults"
        (String.split_on_char '\n'
           (trim_trailing_newlines (Engine.Faults.to_string plan))));
  Buffer.contents buf

type parse_state = {
  mutable p_seed : int;
  mutable p_profile : string;
  mutable p_axes : string list;
  mutable p_program : string list option;
  mutable p_data : string list;
  mutable p_updates : string list list;
  mutable p_faults : string list option;
}

let of_string text =
  let st =
    {
      p_seed = 0;
      p_profile = "quick";
      p_axes = [];
      p_program = None;
      p_data = [];
      p_updates = [];
      p_faults = None;
    }
  in
  let lines = String.split_on_char '\n' text in
  (* Collect sections: a section runs from "<name> {" to a line that is
     exactly "}".  Outside sections, blank lines and # comments are
     skipped and the remaining lines are directives. *)
  let rec directives = function
    | [] -> Ok ()
    | line :: rest -> (
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then directives rest
        else
          match String.split_on_char ' ' trimmed with
          | "seed" :: v :: _ -> (
              match int_of_string_opt v with
              | Some n ->
                  st.p_seed <- n;
                  directives rest
              | None -> Error (Printf.sprintf "bad seed line: %s" trimmed))
          | "profile" :: v :: _ ->
              st.p_profile <- v;
              directives rest
          | "axes" :: axes ->
              st.p_axes <- List.filter (fun a -> a <> "") axes;
              directives rest
          | [ name; "{" ] -> in_section name [] rest
          | _ -> Error (Printf.sprintf "unrecognized line: %s" trimmed))
  and in_section name acc = function
    | [] -> Error (Printf.sprintf "unterminated section %s" name)
    | "}" :: rest -> (
        let body = List.rev acc in
        match name with
        | "program" ->
            st.p_program <- Some body;
            directives rest
        | "data" ->
            st.p_data <- body;
            directives rest
        | "updates" ->
            st.p_updates <- st.p_updates @ [ body ];
            directives rest
        | "faults" ->
            st.p_faults <- Some body;
            directives rest
        | other -> Error (Printf.sprintf "unknown section %s" other))
    | line :: rest -> in_section name (line :: acc) rest
  in
  let* () = directives lines in
  let* program =
    match st.p_program with
    | Some p -> Ok p
    | None -> Error "repro has no program section"
  in
  let source = String.concat "\n" program ^ "\n" in
  let* schemas = schemas_of_source source in
  let schema_of name = List.find_opt (fun s -> s.Schema.name = name) schemas in
  let parse_batch what body =
    match
      Engine.Update.of_string ~schema_of (String.concat "\n" body ^ "\n")
    with
    | Ok ups -> Ok ups
    | Error msg -> Error (Printf.sprintf "%s section: %s" what msg)
  in
  let* data_updates = parse_batch "data" st.p_data in
  let registry = Registry.create () in
  List.iter (fun s -> Registry.declare registry Registry.Elementary s) schemas;
  List.iter
    (fun (u : Engine.Update.t) ->
      let cube = Registry.find_exn registry u.cube in
      match u.action with
      | Engine.Update.Set v -> Cube.set cube (Tuple.of_list u.key) v
      | Engine.Update.Remove -> Cube.remove cube (Tuple.of_list u.key))
    data_updates;
  let* updates =
    List.fold_left
      (fun acc body ->
        let* acc = acc in
        let* batch = parse_batch "updates" body in
        Ok (acc @ [ batch ]))
      (Ok []) st.p_updates
  in
  let* faults =
    match st.p_faults with
    | None -> Ok None
    | Some body -> (
        match Engine.Faults.of_string (String.concat "\n" body ^ "\n") with
        | Ok plan -> Ok (Some plan)
        | Error msg -> Error (Printf.sprintf "faults section: %s" msg))
  in
  Ok
    {
      seed = st.p_seed;
      profile = st.p_profile;
      source;
      data = registry;
      updates;
      faults;
      axes = st.p_axes;
    }

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then (
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ())

let save ~dir ~name t =
  mkdirs dir;
  let path = Filename.concat dir name in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t));
  path
