type disagreement = {
  d_seed : int;
  d_spec : string;
  d_detail : string;
  d_stmts : int;
  d_scenario : Scenario.t;
  d_path : string option;
}

type report = {
  r_scenarios : int;
  r_checks : int;
  r_skipped : int;
  r_disagreements : disagreement list;
}

let run ?(progress = fun _ -> ()) ?(axes = Lattice.all) ?(fuse = Lattice.Safe)
    ?out_dir ?(profile = "quick") ~seed ~count () =
  let checks = ref 0 in
  let skipped = ref 0 in
  let disagreements = ref [] in
  for i = 0 to count - 1 do
    let scenario_seed = seed + i in
    let scenario = Scenario.generate ~profile scenario_seed in
    let results = Harness.run ~axes ~fuse scenario in
    List.iter
      (fun (c : Harness.check) ->
        incr checks;
        match c.outcome with
        | Harness.Agree -> ()
        | Harness.Skip _ -> incr skipped
        | Harness.Disagree detail ->
            let spec = Lattice.to_spec c.axis c.fuse in
            progress
              (Printf.sprintf "seed %d: %s disagrees (%s); shrinking..."
                 scenario_seed spec detail);
            let shrunk = Harness.shrink ~fuse:c.fuse ~axis:c.axis scenario in
            let detail =
              match Harness.check_axis ~fuse:c.fuse shrunk c.axis with
              | Harness.Disagree d -> d
              | _ -> detail
            in
            let repro = { shrunk with Scenario.axes = [ spec ] } in
            let path =
              Option.map
                (fun dir ->
                  Scenario.save ~dir
                    ~name:
                      (Printf.sprintf "seed%d-%s.repro" scenario_seed
                         (String.map (fun ch -> if ch = ':' then '-' else ch) spec))
                    repro)
                out_dir
            in
            disagreements :=
              {
                d_seed = scenario_seed;
                d_spec = spec;
                d_detail = detail;
                d_stmts = Harness.stmt_count repro;
                d_scenario = repro;
                d_path = path;
              }
              :: !disagreements)
      results;
    if (i + 1) mod 25 = 0 then
      progress (Printf.sprintf "%d/%d scenarios checked" (i + 1) count)
  done;
  {
    r_scenarios = count;
    r_checks = !checks;
    r_skipped = !skipped;
    r_disagreements = List.rev !disagreements;
  }

let summary r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d scenario(s), %d check(s), %d skipped, %d disagreement(s)\n"
       r.r_scenarios r.r_checks r.r_skipped
       (List.length r.r_disagreements));
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "- seed %d, axis %s: %s\n  shrunk to %d statement(s)%s\n"
           d.d_seed d.d_spec d.d_detail d.d_stmts
           (match d.d_path with
           | Some p -> Printf.sprintf "\n  repro: %s" p
           | None -> "")))
    r.r_disagreements;
  Buffer.contents buf
