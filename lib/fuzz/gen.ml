(* Random EXL programs with matching elementary data.  Statement
   shapes cover every operator class the language has (vectorial
   binops, scalar and black-box functions, shift, filter, inner and
   outer joins, aggregations) plus — beyond the historical test
   generator — compound right-hand sides that exercise the normalizer,
   CSE and the fusion passes: aggregations over shifted operands,
   nested binops, constant subexpressions that fold into
   non-representable floats. *)
open Matrix

type cube_shape = {
  name : string;
  dims : (string * Domain.t) list;
  series_len : int option;
}

type profile = {
  elementary : int * int;
  statements : int * int;
  quarters : int;
  regions : string list;
  nested : float;
  exotic_literals : bool;
  keep : float;
}

let compat =
  {
    elementary = (2, 3);
    statements = (3, 8);
    quarters = 12;
    regions = [ "north"; "south"; "east" ];
    nested = 0.;
    exotic_literals = false;
    keep = 0.85;
  }

let quick =
  {
    elementary = (2, 3);
    statements = (3, 7);
    quarters = 10;
    regions = [ "north"; "south" ];
    nested = 0.35;
    exotic_literals = false;
    keep = 0.85;
  }

let deep =
  {
    elementary = (2, 4);
    statements = (5, 14);
    quarters = 12;
    regions = [ "north"; "south"; "east" ];
    nested = 0.45;
    exotic_literals = true;
    keep = 0.8;
  }

let profile_of_name = function
  | "quick" -> Some quick
  | "deep" -> Some deep
  | "compat" -> Some compat
  | _ -> None

let quarter_domain = Domain.Period (Some Calendar.Quarter)

(* Candidate dimension pools; every temporal cube uses dimension "t" so
   generated cubes are join-compatible whenever their dim sets match. *)
let shapes =
  [
    [ ("t", quarter_domain) ];
    [ ("t", quarter_domain); ("r", Domain.String) ];
    [ ("r", Domain.String) ];
    [ ("t", quarter_domain); ("r", Domain.String); ("k", Domain.Int) ];
  ]

let rand_int st lo hi = lo + Random.State.int st (hi - lo + 1)
let pick st xs = List.nth xs (Random.State.int st (List.length xs))

(* Positive measures keep sqrt-like functions and products tame. *)
let rand_measure st = float_of_int (rand_int st 1 400) /. 4.

let non_temporal_keys p dims =
  let rec keys = function
    | [] -> [ [] ]
    | (_, dom) :: rest ->
        let values =
          match dom with
          | Domain.String -> List.map (fun r -> Value.String r) p.regions
          | Domain.Int -> List.map (fun i -> Value.Int i) [ 1; 2 ]
          | _ -> [ Value.Int 0 ]
        in
        List.concat_map (fun v -> List.map (fun k -> v :: k) (keys rest)) values
  in
  keys (List.filter (fun (_, d) -> not (Domain.is_temporal d)) dims)

let quarters p =
  List.init p.quarters (fun i ->
      Value.Period (Calendar.Period.make Calendar.Quarter ((2019 * 4) + i)))

(* Temporal cubes get full, contiguous series per kept slice (sparsity
   lives at the slice level); purely categorical cubes get pointwise
   sparsity.  This keeps stl/diff preconditions decidable statically. *)
let fill_cube p st cube dims =
  let has_time = List.exists (fun (_, d) -> Domain.is_temporal d) dims in
  let tpos = ref (-1) in
  List.iteri (fun i (_, d) -> if Domain.is_temporal d then tpos := i) dims;
  let insert key = Cube.set cube (Tuple.of_list key) (Value.Float (rand_measure st)) in
  if has_time then
    List.iter
      (fun rest_key ->
        if Random.State.float st 1.0 < p.keep then
          List.iter
            (fun q ->
              (* splice q into position !tpos among the other dims *)
              let rec splice i rest =
                if i = !tpos then q :: rest
                else
                  match rest with
                  | [] -> [ q ]
                  | x :: xs -> x :: splice (i + 1) xs
              in
              insert (splice 0 rest_key))
            (quarters p))
      (non_temporal_keys p dims)
  else
    List.iter
      (fun key -> if Random.State.float st 1.0 < p.keep then insert key)
      (non_temporal_keys p dims)

let domain_keyword = function
  | Domain.Period (Some Calendar.Quarter) -> "quarter"
  | Domain.String -> "string"
  | Domain.Int -> "int"
  | Domain.Date -> "date"
  | d -> Domain.to_string d

let decl_of { name; dims; _ } =
  Printf.sprintf "cube %s(%s);" name
    (String.concat ", "
       (List.map (fun (n, d) -> Printf.sprintf "%s: %s" n (domain_keyword d)) dims))

(* Exotic-but-lexable string literals: the EXL lexer understands
   escaped quote / backslash / n / t and passes any other byte raw. *)
let exotic_strings =
  [ "qu\"ote"; "back\\slash"; "tab\tsep"; "new\nline"; "caf\xc3\xa9"; " pad " ]

let same_dims a b =
  List.sort compare (List.map fst a.dims) = List.sort compare (List.map fst b.dims)

(* Build one random statement over the cubes defined so far; returns
   the statement source and the shape of the new cube. *)
let rand_stmt p st idx available =
  let lhs = Printf.sprintf "D%d" idx in
  let operand = pick st available in
  let simple () =
    let choice = rand_int st 0 8 in
    match choice with
    | 0 ->
        (* binary op between cubes with the same dims *)
        let partner = pick st (List.filter (same_dims operand) available) in
        let op = pick st [ "+"; "-"; "*" ] in
        let series_len =
          (* Intersection of two full slices is full only if both cover
             the same quarters, which holds when neither was shifted;
             be conservative: only keep the guarantee when both operands
             carry one and take the min. *)
          match (operand.series_len, partner.series_len) with
          | Some a, Some b -> Some (min a b)
          | _ -> None
        in
        ( Printf.sprintf "%s := %s %s %s;" lhs operand.name op partner.name,
          { name = lhs; dims = operand.dims; series_len } )
    | 1 ->
        let k = float_of_int (rand_int st 1 9) in
        let op = pick st [ "+"; "*" ] in
        ( Printf.sprintf "%s := %s %s %g;" lhs operand.name op k,
          { operand with name = lhs } )
    | 2 ->
        (* total functions only: sqrt of a negative (possible after
           subtraction) would drop tuples and invalidate series_len *)
        let fn = pick st [ "abs"; "round"; "incr" ] in
        ( Printf.sprintf "%s := %s(%s);" lhs fn operand.name,
          { operand with name = lhs } )
    | 3 when operand.series_len <> None ->
        let k = rand_int st (-3) 3 in
        (* Shifting moves the window: slices stay full and contiguous,
           but a later join with an unshifted cube loses the guarantee —
           encode that by dropping it. *)
        ( Printf.sprintf "%s := shift(%s, %d);" lhs operand.name k,
          { name = lhs; dims = operand.dims; series_len = None } )
    | 4 when operand.dims <> [] ->
        let aggr = pick st [ "sum"; "avg"; "min"; "max"; "count" ] in
        let n = rand_int st 1 (List.length operand.dims) in
        let kept = List.filteri (fun i _ -> i < n) operand.dims in
        let keeps_time = List.exists (fun (_, d) -> Domain.is_temporal d) kept in
        ( Printf.sprintf "%s := %s(%s, group by %s);" lhs aggr operand.name
            (String.concat ", " (List.map fst kept)),
          {
            name = lhs;
            dims = kept;
            series_len = (if keeps_time then operand.series_len else None);
          } )
    | 5 when (match operand.series_len with Some l -> l >= 2 | None -> false) ->
        let fn = pick st [ "cumsum"; "lintrend"; "zscore" ] in
        ( Printf.sprintf "%s := %s(%s);" lhs fn operand.name,
          { operand with name = lhs } )
    | 6 when (match operand.series_len with Some l -> l >= 9 | None -> false) ->
        let fn = pick st [ "stl_t"; "stl_s"; "deseason"; "diff" ] in
        let series_len =
          match (fn, operand.series_len) with
          | "diff", Some l -> Some (l - 1)
          | _, l -> l
        in
        ( Printf.sprintf "%s := %s(%s);" lhs fn operand.name,
          { name = lhs; dims = operand.dims; series_len } )
    | 7 when List.mem_assoc "r" operand.dims ->
        let region =
          if p.exotic_literals && Random.State.float st 1.0 < 0.3 then
            pick st exotic_strings
          else pick st p.regions
        in
        (* whole slices are kept or dropped, so per-slice series stay
           full and the guarantee survives (vacuously so for an exotic
           literal matching no slice at all) *)
        ( Printf.sprintf "%s := filter(%s, r = %s);" lhs operand.name
            (Exl.Pretty.literal_to_string (Value.String region)),
          { operand with name = lhs } )
    | 8 ->
        (* default-value vectorial variant: union of key sets *)
        let partner = pick st (List.filter (same_dims operand) available) in
        let op = pick st [ "vadd"; "vsub"; "vmul" ] in
        let series_len =
          (* union of full, equally ranged slices stays full *)
          match (operand.series_len, partner.series_len) with
          | Some a, Some b when a = b -> Some a
          | _ -> None
        in
        ( Printf.sprintf "%s := %s(%s, %s);" lhs op operand.name partner.name,
          { name = lhs; dims = operand.dims; series_len } )
    | _ ->
        ( Printf.sprintf "%s := 2 * %s;" lhs operand.name,
          { operand with name = lhs } )
  in
  let compound () =
    let choice = rand_int st 0 3 in
    match choice with
    | 0 when operand.series_len <> None && operand.dims <> [] ->
        (* aggregation over a shifted operand: normalizes into a shift
           temp feeding the aggregation tgd — the exact shape whose
           naive fusion PR 6 outlawed *)
        let aggr = pick st [ "sum"; "avg"; "min"; "max" ] in
        let k = rand_int st 1 2 in
        let n = rand_int st 1 (List.length operand.dims) in
        let kept = List.filteri (fun i _ -> i < n) operand.dims in
        ( Printf.sprintf "%s := %s(shift(%s, %d), group by %s);" lhs aggr
            operand.name k
            (String.concat ", " (List.map fst kept)),
          { name = lhs; dims = kept; series_len = None } )
    | 1 ->
        (* nested binop over three join-compatible cubes *)
        let partners = List.filter (same_dims operand) available in
        let b = pick st partners and c = pick st partners in
        let op1 = pick st [ "+"; "-"; "*" ] and op2 = pick st [ "+"; "*" ] in
        let series_len =
          match (operand.series_len, b.series_len, c.series_len) with
          | Some x, Some y, Some z -> Some (min x (min y z))
          | _ -> None
        in
        ( Printf.sprintf "%s := (%s %s %s) %s %s;" lhs operand.name op1 b.name
            op2 c.name,
          { name = lhs; dims = operand.dims; series_len } )
    | 2 ->
        (* scalar function over a difference *)
        let partner = pick st (List.filter (same_dims operand) available) in
        let series_len =
          match (operand.series_len, partner.series_len) with
          | Some a, Some b -> Some (min a b)
          | _ -> None
        in
        ( Printf.sprintf "%s := abs(%s - %s);" lhs operand.name partner.name,
          { name = lhs; dims = operand.dims; series_len } )
    | _ ->
        (* constant subexpression: folds at normalization time into a
           float whose shortest decimal form needs >12 digits —
           parse/pretty round-trip fodder *)
        let c1 = float_of_int (rand_int st 1 9) /. 10. in
        let c2 = float_of_int (rand_int st 1 9) /. 10. in
        ( Printf.sprintf "%s := %s * (%g + %g);" lhs operand.name c1 c2,
          { operand with name = lhs } )
  in
  if Random.State.float st 1.0 < p.nested then compound () else simple ()

let rand_program_and_data ?(profile = compat) st =
  let p = profile in
  let n_elementary = rand_int st (fst p.elementary) (snd p.elementary) in
  let elementary =
    List.init n_elementary (fun i ->
        let dims = pick st shapes in
        let temporal =
          List.length (List.filter (fun (_, d) -> Domain.is_temporal d) dims)
        in
        {
          name = Printf.sprintf "E%d" i;
          dims;
          series_len = (if temporal = 1 then Some p.quarters else None);
        })
  in
  let n_stmts = rand_int st (fst p.statements) (snd p.statements) in
  let rec build idx available acc =
    if idx > n_stmts then List.rev acc
    else
      let src, shape = rand_stmt p st idx available in
      build (idx + 1) (shape :: available) (src :: acc)
  in
  let stmts = build 1 elementary [] in
  let source =
    String.concat "\n" (List.map decl_of elementary @ stmts) ^ "\n"
  in
  let registry = Registry.create () in
  List.iter
    (fun shape ->
      let schema = Schema.make ~name:shape.name ~dims:shape.dims () in
      let cube = Cube.create schema in
      fill_cube p st cube shape.dims;
      Registry.add registry Registry.Elementary cube)
    elementary;
  (source, registry)

let program_of_seed ?profile seed =
  let st = Random.State.make [| seed; 0xE1; 0x5E |] in
  rand_program_and_data ?profile st
