(** Fuzz campaigns: generate scenarios, run the differential harness,
    shrink and persist disagreements ([exlc fuzz]'s engine). *)

type disagreement = {
  d_seed : int;  (** the scenario seed that produced it *)
  d_spec : string;  (** axis spec, e.g. ["columnar"] or ["fusion:unsafe"] *)
  d_detail : string;  (** the harness's diff summary *)
  d_stmts : int;  (** statements left after shrinking *)
  d_scenario : Scenario.t;  (** the shrunk scenario, axes set for replay *)
  d_path : string option;  (** repro file, when an out-dir was given *)
}

type report = {
  r_scenarios : int;
  r_checks : int;  (** axis checks executed (skips included) *)
  r_skipped : int;
  r_disagreements : disagreement list;
}

val run :
  ?progress:(string -> unit) ->
  ?axes:Lattice.axis list ->
  ?fuse:Lattice.fuse_mode ->
  ?out_dir:string ->
  ?profile:string ->
  seed:int ->
  count:int ->
  unit ->
  report
(** Run [count] scenarios derived from consecutive seeds starting at
    [seed].  Every disagreement is shrunk ({!Harness.shrink}) and, when
    [out_dir] is given, written as a self-contained repro file named
    [seed<N>-<axis>.repro].  [profile] defaults to ["quick"]. *)

val summary : report -> string
(** Multi-line human summary (campaign totals, then one block per
    disagreement). *)
