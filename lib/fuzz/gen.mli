open Matrix

(** Random well-typed EXL programs with matching elementary data.

    Promoted from the test suite's ad-hoc generator: the core theorem
    (chase == interpreter == every target engine) must hold on
    arbitrary well-typed programs, not just the paper's example, and
    every engine configuration added since (semi-naive, incremental,
    optimized, columnar, faulted) multiplies the configurations that
    must agree.  The fuzz {!Harness} runs whole scenarios built on
    these programs through the full configuration lattice.

    Generated programs always parse, type-check and lint without
    errors; the accompanying registry holds elementary data satisfying
    every static precondition (series lengths for seasonal operators,
    join compatibility for vectorial ones), so any divergence found
    downstream is an engine bug, not a generator artifact. *)

type cube_shape = {
  name : string;
  dims : (string * Domain.t) list;
  series_len : int option;
      (** Guaranteed length of every temporal slice, when the cube has
          exactly one temporal dimension and its slices are full,
          contiguous quarter ranges; [None] otherwise.  Gates operators
          with length preconditions (stl needs two periods). *)
}

type profile = {
  elementary : int * int;  (** inclusive range of elementary cube count *)
  statements : int * int;  (** inclusive range of statement count *)
  quarters : int;  (** length of every full temporal series *)
  regions : string list;  (** value pool of the [r] dimension *)
  nested : float;
      (** probability that a statement gets a compound right-hand side
          (nested operators, the normalizer's temp-cube fodder) *)
  exotic_literals : bool;
      (** filter conditions may carry string literals with quotes,
          backslashes and control characters — parse/pretty round-trip
          fodder *)
  keep : float;  (** data density: probability a slice/key is present *)
}

val compat : profile
(** The historical [test/gen.ml] distribution (single-operator
    statements only); the in-tree qcheck properties run on it. *)

val quick : profile
(** Small data, compound statements on: the default fuzz profile. *)

val deep : profile
(** Longer programs, wider data, exotic literals. *)

val profile_of_name : string -> profile option
(** ["quick"], ["deep"] or ["compat"]. *)

val rand_int : Random.State.t -> int -> int -> int
val pick : Random.State.t -> 'a list -> 'a

val rand_program_and_data :
  ?profile:profile -> Random.State.t -> string * Registry.t
(** One random program (concrete EXL source) plus a registry of its
    elementary cubes filled with matching data.  Default profile:
    {!compat}. *)

val program_of_seed : ?profile:profile -> int -> string * Registry.t
(** Derive program and data deterministically from a seed, so failures
    are reproducible from the seed alone. *)
