(** The differential harness: run one scenario across the configuration
    lattice, diff the results, and shrink any disagreement.

    Every check compares two executions of the same scenario that the
    engine's metatheory says must agree — solutions cube-by-cube, chase
    counters on the columnar axis, diagnostic verdicts on the lint
    axis, degradation status on the faults axis.  A [Disagree] outcome
    is therefore always a bug (in the engine, or — by design — in the
    {!Lattice.Unsafe} fuser used to validate the harness itself). *)

type outcome =
  | Agree
  | Skip of string  (** axis not applicable to this scenario *)
  | Disagree of string  (** human-readable diff summary *)

type check = {
  axis : Lattice.axis;
  fuse : Lattice.fuse_mode;
  outcome : outcome;
}

val check_axis :
  fuse:Lattice.fuse_mode -> Scenario.t -> Lattice.axis -> outcome

val run :
  ?axes:Lattice.axis list ->
  ?fuse:Lattice.fuse_mode ->
  Scenario.t ->
  check list
(** Check the scenario on every requested axis (default: all, safe
    fusion). *)

val replay : Scenario.t -> check list
(** Run the axes recorded in the scenario's own [axes] field (repro
    files store the axis that disagreed, including its fuse mode); all
    axes when the field is empty. *)

val disagreements : check list -> check list

val stmt_count : Scenario.t -> int
(** Statements in the scenario's program (repro size metric). *)

val shrink :
  ?budget:int ->
  fuse:Lattice.fuse_mode ->
  axis:Lattice.axis ->
  Scenario.t ->
  Scenario.t
(** Greedily minimize a disagreeing scenario while it still disagrees
    on [axis]: drop statements (with their dependents and now-unused
    declarations and data), drop or halve update batches, drop fault
    triggers, drop data slices.  [budget] caps re-check executions
    (default 300).  Returns the smallest still-disagreeing scenario
    found; the input itself if it does not disagree. *)
