(** The configuration lattice a scenario is cross-checked against.

    Each axis is one differential comparison between two (or more)
    engine configurations that must agree on every scenario: the
    correctness claims the repository already property-tests, gathered
    behind one enumeration so the fuzz {!Driver} can run them all and
    the CLI can select subsets ([exlc fuzz --axes]). *)

type axis =
  | Roundtrip  (** parse ∘ pretty is the identity (raw and normalized) *)
  | Lint  (** diagnostics are error-free and stable across pretty *)
  | Backends  (** interpreter == chase == sql == vector == etl *)
  | Columnar  (** row chase == columnar chase, counters included *)
  | Optimize  (** optimized mapping == original on the scenario data *)
  | Fusion  (** fused mapping == unfused (mode selects the fuser) *)
  | Incremental  (** apply_updates == from-scratch recomputation *)
  | Faults  (** sql-free faulted run == fault-free run, non-degraded *)
  | Shards  (** sharded multicore chase == unsharded chase *)

val all : axis list
(** Every axis, in the order above. *)

val name : axis -> string
val axis_of_name : string -> axis option

(** How the {!Fusion} axis builds its fused mapping. [Safe] is the
    verified fuser ({!Core.fused_mapping_of}); [Unsafe] deliberately
    reintroduces the historical naive aggregation fusion that fails to
    rewrite group-by keys through the unifier — the harness must catch
    it (fault-injection for the fuzzer itself); [Off] skips the axis. *)
type fuse_mode = Safe | Unsafe | Off

val fuse_mode_name : fuse_mode -> string
val fuse_mode_of_name : string -> fuse_mode option

val of_spec : string -> (axis * fuse_mode) option
(** Parse an axis spec as written in repro files and [--axes]:
    ["columnar"], ["fusion"], or ["fusion:unsafe"].  The fuse mode is
    [Safe] unless the spec says otherwise; it only matters for
    {!Fusion}. *)

val to_spec : axis -> fuse_mode -> string
(** Inverse of {!of_spec}: ["fusion:unsafe"] for the unsafe fuser, the
    plain axis name otherwise. *)
