open Matrix

(** A complete fuzz scenario: a generated program, its elementary
    instance, a script of update batches, and an optional fault plan —
    everything one differential run needs.

    Scenarios have a self-contained textual form (the {e repro file})
    so any disagreement the harness finds can be checked in under
    [test/corpus/] and replayed by the test suite without re-running
    the generator: the file embeds the program source, the data as
    [set] lines in {!Engine.Update}'s text format, each update batch,
    and the fault plan in {!Engine.Faults}'s text format. *)

type t = {
  seed : int;  (** generator seed, or [0] for hand-written repros *)
  profile : string;  (** generator profile name, informational *)
  source : string;  (** EXL program text *)
  data : Registry.t;  (** elementary instance *)
  updates : Engine.Update.t list list;  (** update batches, in order *)
  faults : Engine.Faults.plan option;
  axes : string list;
      (** lattice axes to replay ([[]] means every axis); axis names
          are interpreted by {!Lattice.axis_of_name} *)
}

val generate : ?profile:string -> int -> t
(** Derive a whole scenario deterministically from a seed: program and
    data via {!Gen.program_of_seed}'s stream, then update batches
    (measure revisions everywhere; key removals only on non-temporal
    cubes, so series-length preconditions survive) and, half of the
    time, an sql-free fault plan — sql stays clean so fallback keeps
    every run non-degraded and comparable.  [profile] defaults to
    ["quick"]; unknown names fall back to quick. *)

val schema_of_source : string -> ((string -> Schema.t option), string) result
(** Parse the program's declarations into a schema lookup (for
    {!Engine.Update.of_string} on the data/update sections). *)

val to_string : t -> string
(** The repro-file form. *)

val of_string : string -> (t, string) result
(** Parse a repro file; [Error] names the offending section or line. *)

val load : string -> (t, string) result
(** [of_string] of a file's contents; [Error] on unreadable files. *)

val save : dir:string -> name:string -> t -> string
(** Write the repro file into [dir] (created if missing) and return its
    path. *)
