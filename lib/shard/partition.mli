(** Dimension partitioning for the sharded chase.

    A plan fixes a shard key (a dimension name), classifies every
    relation of the mapping, and splits the statement tgds into the
    {e shard-local} set — provably evaluable per partition, with the
    per-shard union equal to the global result — and the {e residual}
    set, which the driver runs after the merge.  The classification is
    the co-partitioning check: a tuple-level tgd is local iff every
    atom over a partitioned relation carries one and the same plain
    variable at its relation's shard position (all joins equated on
    the key); an aggregation is local iff its group-by keeps the key;
    an outer combine needs both operands partitioned at the same
    position (or both replicated); a blackbox needs a replicated
    source.  Everything else is named, with a reason, in {!t.reasons}
    and {!report}. *)

open Mappings
open Exchange

type status =
  | Partitioned of int
      (** carries the shard key at this dimension position; each fact
          lives in exactly one shard *)
  | Replicated  (** no shard key; full copy in every shard *)
  | Merged
      (** per-shard union is exactly the global fact set, but the key
          was projected away — unreadable during the shard phase, egd
          checked only after the merge *)
  | Residual  (** computed only by the post-merge residual pass *)

type t = {
  mapping : Mapping.t;
  key : string;
  shards : int;
  range : bool;  (** range partitioning instead of hash *)
  status : (string * status) list;
      (** every source and target relation, sorted by name *)
  local : Tgd.t list;  (** shard-local tgds, statement order *)
  residual : Tgd.t list;  (** cross-shard tgds, statement order *)
  reasons : (string * string) list;
      (** target relation -> why it is residual (or merged) *)
}

val status_to_string : status -> string

val make :
  ?key:string -> ?range:bool -> shards:int -> Mapping.t -> (t, string) result
(** Build a plan.  When [key] is omitted the dimension keeping the
    most tgds shard-local is chosen (ties broken deterministically);
    an explicit [key] must be a dimension of some source relation.
    [Error] when [shards < 2] or no candidate key exists. *)

val report : t -> string
(** Human-readable co-partitioning verdict: every relation's status,
    every local tgd, and every residual tgd with the atom (and reason)
    that breaks locality. *)

val split : ?columnar:bool -> t -> Instance.t -> Instance.t array
(** Partition the source instance into [shards] read-only instances:
    partitioned relations scatter on the key value (hash of the
    printed value, or sorted-range cuts when [range]), all others are
    replicated.  With [columnar] (default) the split works on the
    memoized source batches — per-shard row selections sharing the
    dictionaries, replicated relations installed as the same shared
    batch — so nothing is re-encoded. *)
