(* Dimension partitioning for the sharded chase.

   A shard plan answers two questions about a mapping [M] and a shard
   key (a dimension name): which relations can be split by that key,
   and which tgds stay *shard-local* — evaluating them independently
   on each partition and unioning the per-shard results yields exactly
   the global chase result.  The co-partitioning check below proves
   locality tgd by tgd, or names the atom that breaks it; everything
   it cannot prove runs after the merge, in the residual pass.

   Relation statuses form a small lattice:

   - [Partitioned p]: the relation carries the shard key at dimension
     position [p]; every fact lives in exactly one shard, decided by
     its key value.
   - [Replicated]: no shard key; every shard holds the full relation
     (sources are copied in, replicated *derived* relations are
     recomputed identically per shard from replicated inputs).
   - [Merged]: the per-shard union is exactly the global fact set, but
     the key was projected away, so no single shard holds a
     shard-consistent slice — the relation is *unreadable* during the
     shard phase and its functionality egd can only be checked after
     the merge.
   - [Residual]: only computed by the post-merge residual pass; any
     tgd reading it is itself residual. *)

open Matrix
open Mappings
open Exchange

type status = Partitioned of int | Replicated | Merged | Residual

type t = {
  mapping : Mapping.t;
  key : string;
  shards : int;
  range : bool;
  status : (string * status) list;  (** every source and target relation *)
  local : Tgd.t list;  (** shard-local tgds, statement order *)
  residual : Tgd.t list;  (** cross-shard tgds, statement order *)
  reasons : (string * string) list;
      (** target relation -> why it is residual (or merged) *)
}

let status_to_string = function
  | Partitioned p -> Printf.sprintf "partitioned@%d" p
  | Replicated -> "replicated"
  | Merged -> "merged"
  | Residual -> "residual"

(* ----- the co-partitioning check ----- *)

(* The term a partitioned atom carries at its relation's shard
   position, when it is a plain variable. *)
let shard_var (a : Tgd.atom) p =
  match List.nth_opt a.Tgd.args p with Some (Term.Var v) -> Some v | _ -> None

(* Position of [Var v] among a term list (rhs dims or group-by). *)
let var_position v terms =
  let rec find i = function
    | [] -> None
    | Term.Var u :: _ when String.equal u v -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 terms

type verdict =
  | Local of status  (* shard-local; the target's resulting status *)
  | Cross of string  (* cross-shard, with the offending atom / reason *)
  | Local_merged of string  (* shard-local but the target is Merged *)

let classify ~key (m : Mapping.t) =
  let status : (string, status) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Schema.t) ->
      Hashtbl.replace status s.Schema.name
        (match Schema.dim_index s key with
        | Some p -> Partitioned p
        | None -> Replicated))
    m.Mapping.source;
  (* Targets of not-yet-classified tgds: reading one means the mapping
     is not stratified along statement order here — conservatively
     cross-shard. *)
  let pending = Hashtbl.create 16 in
  List.iter
    (fun t -> Hashtbl.replace pending (Tgd.target_relation t) ())
    m.Mapping.t_tgds;
  let lookup rel =
    match Hashtbl.find_opt status rel with
    | Some st -> Ok st
    | None ->
        if Hashtbl.mem pending rel then
          Error (Printf.sprintf "%s is derived by a later statement" rel)
        else
          (* neither a source nor any tgd's target: it stays empty, so
             any placement is correct — classify by schema *)
          Ok
            (match
               List.find_opt
                 (fun (s : Schema.t) -> String.equal s.Schema.name rel)
                 m.Mapping.target
             with
            | Some s -> (
                match Schema.dim_index s key with
                | Some p -> Partitioned p
                | None -> Replicated)
            | None -> Replicated)
  in
  (* A source atom whose relation is merged or residual poisons the
     whole tgd: merged relations are not shard-consistent, residual
     ones do not exist yet during the shard phase. *)
  let unreadable rels =
    List.find_map
      (fun rel ->
        match lookup rel with
        | Error why -> Some why
        | Ok Residual ->
            Some (Printf.sprintf "%s is residual (computed after the merge)" rel)
        | Ok Merged ->
            Some
              (Printf.sprintf
                 "%s is merged-only (its per-shard slices are not \
                  shard-consistent)"
                 rel)
        | Ok _ -> None)
      rels
  in
  let classify_tgd (tgd : Tgd.t) : verdict =
    match tgd with
    | Tgd.Tuple_level { lhs; rhs } -> (
        match unreadable (List.map (fun (a : Tgd.atom) -> a.Tgd.rel) lhs) with
        | Some why -> Cross why
        | None -> (
            let parts =
              List.filter_map
                (fun (a : Tgd.atom) ->
                  match lookup a.Tgd.rel with
                  | Ok (Partitioned p) -> Some (a, p)
                  | _ -> None)
                lhs
            in
            match parts with
            | [] -> Local Replicated (* all-replicated, or a constant cube *)
            | (a0, p0) :: rest -> (
                (* every partitioned atom must carry one and the same
                   plain variable at its relation's shard position:
                   then all joins over those atoms are equated on the
                   key, hence shard-local *)
                match shard_var a0 p0 with
                | None ->
                    Cross
                      (Printf.sprintf
                         "atom %s has a non-variable term at shard position %d"
                         (Tgd.atom_to_string a0) p0)
                | Some v -> (
                    match
                      List.find_opt
                        (fun (a, p) -> shard_var a p <> Some v)
                        rest
                    with
                    | Some (a, p) ->
                        Cross
                          (Printf.sprintf
                             "atom %s does not join on the shard key \
                              variable %s at position %d"
                             (Tgd.atom_to_string a) v p)
                    | None -> (
                        (* shard-local; does the target keep the key? *)
                        let nargs = List.length rhs.Tgd.args in
                        let dims =
                          List.filteri (fun i _ -> i < nargs - 1) rhs.Tgd.args
                        in
                        match var_position v dims with
                        | Some q -> Local (Partitioned q)
                        | None ->
                            Local_merged
                              (Printf.sprintf
                                 "projection drops the shard key variable %s"
                                 v))))))
    | Tgd.Aggregation { source; group_by; _ } -> (
        match unreadable [ source.Tgd.rel ] with
        | Some why -> Cross why
        | None -> (
            match lookup source.Tgd.rel with
            | Ok Replicated -> Local Replicated
            | Ok (Partitioned p) -> (
                match shard_var source p with
                | None ->
                    Cross
                      (Printf.sprintf
                         "source %s has a non-variable term at shard \
                          position %d"
                         (Tgd.atom_to_string source) p)
                | Some v -> (
                    (* partial aggregates do not union: the group-by
                       must keep the key so every group is wholly
                       inside one shard *)
                    match var_position v group_by with
                    | Some q -> Local (Partitioned q)
                    | None ->
                        Cross
                          (Printf.sprintf
                             "group-by drops the shard key variable %s: \
                              groups span shards"
                             v)))
            | Ok _ | Error _ -> Cross "unreachable: unreadable checked above"))
    | Tgd.Table_fn { source; _ } -> (
        match unreadable [ source ] with
        | Some why -> Cross why
        | None -> (
            match lookup source with
            | Ok Replicated -> Local Replicated
            | Ok (Partitioned _) ->
                (* a blackbox consumes the whole relation; nothing
                   proves it distributes over a partition of it *)
                Cross
                  (Printf.sprintf
                     "blackbox table function consumes the whole of %s"
                     source)
            | Ok _ | Error _ -> Cross "unreachable: unreadable checked above"))
    | Tgd.Outer_combine { left; right; _ } -> (
        match unreadable [ left.Tgd.rel; right.Tgd.rel ] with
        | Some why -> Cross why
        | None -> (
            match (lookup left.Tgd.rel, lookup right.Tgd.rel) with
            | Ok Replicated, Ok Replicated -> Local Replicated
            | Ok (Partitioned p), Ok (Partitioned q) when p = q ->
                (* operands are matched positionally on their dim
                   tuples; equal key positions put every matching (and
                   every default-filled) pair in one shard *)
                Local (Partitioned p)
            | Ok (Partitioned p), Ok (Partitioned q) ->
                Cross
                  (Printf.sprintf
                     "operands are partitioned on different dimension \
                      positions (%d vs %d)"
                     p q)
            | Ok (Partitioned _), Ok Replicated
            | Ok Replicated, Ok (Partitioned _) ->
                (* the replicated side's unmatched tuples would be
                   default-filled once per shard, each time against a
                   different slice of the partitioned side — wrong in
                   every shard but the owner *)
                Cross
                  "outer default-fill pairs a partitioned operand with a \
                   replicated one"
            | _ -> Cross "unreachable: unreadable checked above"))
  in
  let local = ref [] and residual = ref [] and reasons = ref [] in
  List.iter
    (fun tgd ->
      let target = Tgd.target_relation tgd in
      Hashtbl.remove pending target;
      match classify_tgd tgd with
      | Local st ->
          Hashtbl.replace status target st;
          local := tgd :: !local
      | Local_merged why ->
          Hashtbl.replace status target Merged;
          reasons := (target, why) :: !reasons;
          local := tgd :: !local
      | Cross why ->
          Hashtbl.replace status target Residual;
          reasons := (target, why) :: !reasons;
          residual := tgd :: !residual)
    m.Mapping.t_tgds;
  let statuses =
    Hashtbl.fold (fun rel st acc -> (rel, st) :: acc) status []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (statuses, List.rev !local, List.rev !residual, List.rev !reasons)

let build ~key ~range ~shards (m : Mapping.t) =
  let status, local, residual, reasons = classify ~key m in
  { mapping = m; key; shards; range; status; local; residual; reasons }

let candidate_keys (m : Mapping.t) =
  List.sort_uniq String.compare
    (List.concat_map Schema.dim_names m.Mapping.source)

let make ?key ?(range = false) ~shards (m : Mapping.t) =
  if shards < 2 then
    Error (Printf.sprintf "shard count must be at least 2 (got %d)" shards)
  else
    match key with
    | Some k ->
        if List.mem k (candidate_keys m) then Ok (build ~key:k ~range ~shards m)
        else
          Error
            (Printf.sprintf
               "shard key %s is not a dimension of any source relation" k)
    | None -> (
        (* Choose the key that keeps the most tgds shard-local; break
           ties toward more partitioned relations, then toward the
           lexicographically smallest name — a deterministic choice. *)
        match candidate_keys m with
        | [] -> Error "no candidate shard key: sources have no dimensions"
        | ks ->
            let score p =
              (* prefer keys whose local tgds actually split their work
                 (partitioned or merged targets); a local tgd with a
                 replicated target is recomputed identically in every
                 shard, so it counts against the key *)
              let target_status tgd =
                List.assoc_opt (Tgd.target_relation tgd) p.status
              in
              let distributed =
                List.length
                  (List.filter
                     (fun tgd ->
                       match target_status tgd with
                       | Some (Partitioned _) | Some Merged -> true
                       | _ -> false)
                     p.local)
              in
              let replicated_derived =
                List.length
                  (List.filter
                     (fun tgd -> target_status tgd = Some Replicated)
                     p.local)
              in
              ( distributed,
                -replicated_derived,
                List.length p.local,
                List.length
                  (List.filter
                     (fun (_, s) ->
                       match s with Partitioned _ -> true | _ -> false)
                     p.status) )
            in
            let best =
              List.fold_left
                (fun acc k ->
                  let p = build ~key:k ~range ~shards m in
                  match acc with
                  | None -> Some p
                  | Some q -> if score p > score q then Some p else Some q)
                None ks
            in
            Ok (Option.get best))

(* ----- the report: a locality proof, or the cross-shard atoms ----- *)

let report t =
  let b = Buffer.create 256 in
  Printf.bprintf b "shard plan: key=%s shards=%d %s\n" t.key t.shards
    (if t.range then "range" else "hash");
  List.iter
    (fun (rel, st) -> Printf.bprintf b "  %-12s %s\n" rel (status_to_string st))
    t.status;
  List.iter
    (fun tgd ->
      Printf.bprintf b "  local    %s\n" (Tgd.to_string tgd))
    t.local;
  List.iter
    (fun tgd ->
      let target = Tgd.target_relation tgd in
      let why =
        match List.assoc_opt target t.reasons with Some w -> w | None -> ""
      in
      Printf.bprintf b "  residual %s — %s\n" (Tgd.to_string tgd) why)
    t.residual;
  Buffer.contents b

(* ----- partitioning the data ----- *)

(* Shard assignment for one key value.  Hash partitioning hashes the
   printed value (deterministic across runs and domains — never the
   physical representation); range partitioning sorts the distinct key
   values observed in the partitioned source relations and cuts them
   into [shards] near-equal contiguous runs. *)
let assignment t source =
  let hash v = Hashtbl.hash (Value.to_string v) mod t.shards in
  if not t.range then hash
  else begin
    let seen : (Value.t, unit) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun (s : Schema.t) ->
        match List.assoc_opt s.Schema.name t.status with
        | Some (Partitioned p) ->
            Instance.iter_facts source s.Schema.name (fun fact ->
                Hashtbl.replace seen fact.(p) ())
        | _ -> ())
      t.mapping.Mapping.source;
    let values =
      Hashtbl.fold (fun v () acc -> v :: acc) seen [] |> List.sort Value.compare
    in
    let n = List.length values in
    let tbl = Hashtbl.create (max 16 n) in
    List.iteri (fun i v -> Hashtbl.replace tbl v (i * t.shards / max 1 n)) values;
    fun v -> match Hashtbl.find_opt tbl v with Some s -> s | None -> hash v
  end

(* Split the source instance into [shards] instances: partitioned
   relations scatter fact-by-fact on the key value, everything else is
   replicated into every shard.  With [columnar] the split runs at the
   batch level — per-shard row selections out of the (memoized) source
   batch, dictionaries shared, nothing re-encoded — and replicated
   relations are installed as the *same* shared batch in O(columns)
   per shard.  Fact arrays are shared with [source] either way; shard
   instances are read-only inputs to the per-shard chases, which copy
   on Σst exactly like the unsharded run. *)
let split ?(columnar = true) t source =
  let parts = Array.init t.shards (fun _ -> Instance.create ()) in
  let assign = assignment t source in
  (* Dictionary pools are deliberately unsynchronized, so batches
     installed into different shards must never share dictionary
     objects: per-shard chases append codes concurrently from their
     own domains.  Each shard gets one code-identical [Dict.copy] per
     *source dictionary object* — keyed by physical identity, not by
     domain: two source batches of the same domain may carry different
     dictionaries (installed under different pools), and a column's
     codes are only valid against a copy of its own dictionary.
     Columns that shared a dictionary in the source keep sharing the
     copy, so the shard preserves the source's code-sharing exactly. *)
  let part_dicts = Array.make t.shards [] in
  (* Materialize every source batch *before* the first [Dict.copy]:
     building a batch appends codes to the (shared, lazily grown) pool
     dictionaries, so a copy taken mid-way would be missing the codes
     of every batch encoded after it. *)
  if columnar then
    List.iter
      (fun (s : Schema.t) ->
        match Instance.schema source s.Schema.name with
        | Some _ -> ignore (Instance.batch source s.Schema.name : Columnar.Batch.t)
        | None -> ())
      t.mapping.Mapping.source;
  let rebase i (s : Schema.t) b =
    let dicts =
      Array.init (Array.length s.Schema.dims) (fun j ->
          let orig = Columnar.Batch.dim_dict b j in
          match List.find_opt (fun (o, _) -> o == orig) part_dicts.(i) with
          | Some (_, d) -> d
          | None ->
              let d = Columnar.Dict.copy orig in
              part_dicts.(i) <- (orig, d) :: part_dicts.(i);
              d)
    in
    Columnar.Batch.with_dicts b dicts
  in
  List.iter
    (fun (s : Schema.t) ->
      let name = s.Schema.name in
      match Instance.schema source name with
      | None -> ()
      | Some _ -> (
          Array.iter (fun p -> Instance.add_relation p s) parts;
          match List.assoc_opt name t.status with
          | Some (Partitioned pos) ->
              if columnar then begin
                let b = Instance.batch source name in
                let dict = Columnar.Batch.dim_dict b pos in
                let codes = Columnar.Batch.dim_codes b pos in
                (* decide each *code* once, then scatter row indexes *)
                let code_shard =
                  Array.init (Columnar.Dict.size dict) (fun c ->
                      assign (Columnar.Dict.decode dict c))
                in
                let nrows = Columnar.Batch.nrows b in
                let counts = Array.make t.shards 0 in
                for r = 0 to nrows - 1 do
                  let s = code_shard.(codes.(r)) in
                  counts.(s) <- counts.(s) + 1
                done;
                let rows = Array.map (fun n -> Array.make n 0) counts in
                let fill = Array.make t.shards 0 in
                for r = 0 to nrows - 1 do
                  let s = code_shard.(codes.(r)) in
                  rows.(s).(fill.(s)) <- r;
                  fill.(s) <- fill.(s) + 1
                done;
                Array.iteri
                  (fun i idx ->
                    Instance.set_batch parts.(i) name
                      (rebase i s (Columnar.Batch.select b idx)))
                  rows
              end
              else
                Instance.iter_facts source name (fun fact ->
                    ignore
                      (Instance.insert parts.(assign fact.(pos)) name fact
                        : bool))
          | _ ->
              if columnar then begin
                let b = Instance.batch source name in
                Array.iteri
                  (fun i p -> Instance.set_batch p name (rebase i s b))
                  parts
              end
              else
                Instance.iter_facts source name (fun fact ->
                    Array.iter
                      (fun p -> ignore (Instance.insert p name fact : bool))
                      parts)))
    t.mapping.Mapping.source;
  parts
