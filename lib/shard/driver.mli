(** The sharded chase driver (see [docs/SHARDING.md]).

    Partition the source on the plan's shard key, chase the shard-local
    tgds on every shard independently (one executor task per shard),
    union the shard solutions deterministically, then run the residual
    tgds and the deferred functionality egds stratum by stratum.  The
    solution equals the unsharded chase's (property-tested); the
    [stats] are aggregates over the shards plus the residual pass. *)

open Mappings
open Exchange

val run_sharded :
  check_egds:bool ->
  executor:((unit -> unit) list -> unit) ->
  columnar:bool ->
  request:Chase.shard_request ->
  Mapping.t ->
  Instance.t ->
  (Instance.t * Chase.stats, string) result
(** The {!Chase.shard_runner} implementation.  Falls back to the plain
    chase when the plan leaves no tgd shard-local.  [executor] receives
    one task per shard (and is also used for the residual pass's
    round-one parallelism). *)

val install : unit -> unit
(** Point {!Chase.shard_runner} at {!run_sharded}.  Runs at module
    initialization; call it (idempotently) to force the linker to keep
    this library, e.g. from binaries that only reach sharding through
    [Chase.run ~shards]. *)
