(* The sharded chase driver: partition, chase per shard, merge,
   residual pass.

   Phase A splits the source instance along the plan's shard key.
   Phase B runs the shard-local tgds to fixpoint on every shard
   independently — one executor task per shard, so a work-stealing
   executor rebalances uneven shards across domains; each task is a
   plain [Chase.run] (semi-naive, columnar, egds deferred) over the
   sub-mapping that keeps only the local tgds.  Phase C builds the
   merged solution deterministically: Σst source copies exactly as the
   unsharded run installs them, then the set-union of every shard's
   derived relations ([Instance.insert] is set-semantic and
   [Instance.facts] sorts, so insertion order cannot leak into the
   result).  Phase D walks the full stratification in order, running
   each stratum's residual tgds against the merged instance and then
   checking the stratum's functionality egds — the same per-stratum
   egd schedule the unsharded chase follows, only deferred past the
   merge for the shard phase's targets. *)

open Matrix
open Mappings
open Exchange

let local_targets (plan : Partition.t) =
  List.sort_uniq String.compare (List.map Tgd.target_relation plan.local)

let merge ~columnar (plan : Partition.t) (m : Mapping.t) source
    (sols : Instance.t list) =
  let merged = Instance.create () in
  List.iter (Instance.add_relation merged) m.Mapping.target;
  (* Σst: identical to the unsharded run — batch install when the
     schemas match on the columnar path, row copies otherwise. *)
  List.iter
    (fun (schema : Schema.t) ->
      let name = schema.Schema.name in
      match Instance.schema source name with
      | None -> ()
      | Some src_schema ->
          let batched =
            columnar
            &&
            match Instance.schema merged name with
            | Some tgt_schema -> Schema.equal tgt_schema src_schema
            | None -> false
          in
          if batched then Instance.set_batch merged name (Instance.batch source name)
          else
            Instance.iter_facts source name (fun fact ->
                ignore (Instance.insert merged name (Array.copy fact) : bool)))
    m.Mapping.source;
  List.iter
    (fun rel ->
      List.iter
        (fun sol ->
          Instance.iter_facts sol rel (fun fact ->
              ignore (Instance.insert merged rel (Array.copy fact) : bool)))
        sols)
    (local_targets plan);
  merged

let residual_pass ~check_egds ~executor ~columnar (plan : Partition.t)
    (m : Mapping.t) merged (stats : Chase.stats) =
  let residual_targets =
    List.sort_uniq String.compare (List.map Tgd.target_relation plan.residual)
  in
  let strata = Chase.strata_of m in
  let rec loop i = function
    | [] -> Ok ()
    | stratum :: rest -> (
        let res =
          List.filter
            (fun tgd -> List.mem (Tgd.target_relation tgd) residual_targets)
            stratum
        in
        let step =
          if res = [] then Ok ()
          else
            Obs.with_span "shard.residual"
              ~attrs:
                [
                  ("stratum", string_of_int i);
                  ("tgds", string_of_int (List.length res));
                ]
              (fun () -> Chase.run_stratum ~executor ~columnar merged stats res)
        in
        match step with
        | Error _ as e -> e
        | Ok () -> (
            match
              Chase.check_target_egds ~check_egds m merged stats
                (List.map Tgd.target_relation stratum)
            with
            | Error _ as e -> e
            | Ok () -> loop (i + 1) rest))
  in
  loop 0 strata

let run_planned ~check_egds ~executor ~columnar (plan : Partition.t)
    (m : Mapping.t) source =
  let shards = plan.Partition.shards in
  let stats = Chase.empty_stats () in
  (* Phase A: partition the source. *)
  let parts =
    Obs.with_span "shard.split"
      ~attrs:[ ("key", plan.Partition.key) ]
      (fun () -> Partition.split ~columnar plan source)
  in
  if Obs.enabled () then begin
    let sizes = Array.map Instance.total_facts parts in
    let mx = Array.fold_left max 0 sizes in
    let mean =
      float_of_int (Array.fold_left ( + ) 0 sizes) /. float_of_int shards
    in
    Obs.gauge "shard.imbalance"
      (if mean > 0. then float_of_int mx /. mean else 1.)
  end;
  (* Phase B: chase every shard independently; one task per shard, so
     the executor (work-stealing under the engine) balances them. *)
  let sub = { m with Mapping.t_tgds = plan.Partition.local } in
  let solutions = Array.make shards None in
  let tasks =
    List.init shards (fun i () ->
        solutions.(i) <-
          Some
            (Obs.with_span "shard.chase"
               ~attrs:[ ("shard", string_of_int i) ]
               (fun () ->
                 Chase.run ~check_egds:false ~columnar sub parts.(i))))
  in
  executor tasks;
  let rec collect i acc =
    if i = shards then Ok (List.rev acc)
    else
      match solutions.(i) with
      | None -> Error (Printf.sprintf "shard %d task did not run" i)
      | Some (Error msg) -> Error msg
      | Some (Ok (sol, sstats)) ->
          Chase.merge_stats ~into:stats sstats;
          (* rounds are driver bookkeeping: report the parallel depth,
             i.e. the deepest shard *)
          stats.Chase.rounds <- max stats.Chase.rounds sstats.Chase.rounds;
          collect (i + 1) (sol :: acc)
  in
  match collect 0 [] with
  | Error _ as e -> e
  | Ok sols -> (
      (* Phase C: deterministic merge. *)
      let merged =
        Obs.with_span "shard.merge" (fun () ->
            merge ~columnar plan m source sols)
      in
      (* Phase D: residual tgds + deferred egd checks, in stratum
         order. *)
      match residual_pass ~check_egds ~executor ~columnar plan m merged stats with
      | Error _ as e -> e
      | Ok () -> Ok (merged, stats))

let run_sharded ~check_egds ~executor ~columnar
    ~(request : Chase.shard_request) (m : Mapping.t) source =
  match
    Partition.make ?key:request.Chase.shard_key ~range:request.Chase.shard_range
      ~shards:request.Chase.shard_count m
  with
  | Error _ when request.Chase.shard_key = None ->
      (* No candidate key at all (e.g. dimension-less sources): there is
         nothing to partition on, so sharding degrades to the plain
         chase.  An explicit key that fails still errors below. *)
      Chase.run ~check_egds ~executor ~columnar m source
  | Error msg -> Error ("sharded chase: " ^ msg)
  | Ok plan ->
      if plan.Partition.local = [] then
        (* Nothing is shard-local: partitioning would only add
           overhead, so run the plain chase.  The plan's reasons still
           name every cross-shard atom for diagnostics. *)
        Chase.run ~check_egds ~executor ~columnar m source
      else
        Obs.with_span "shard.run"
          ~attrs:
            [
              ("key", plan.Partition.key);
              ("shards", string_of_int plan.Partition.shards);
              ("local", string_of_int (List.length plan.Partition.local));
              ("residual", string_of_int (List.length plan.Partition.residual));
            ]
          (fun () -> run_planned ~check_egds ~executor ~columnar plan m source)

let install () = Chase.shard_runner := Some run_sharded
let () = install ()
