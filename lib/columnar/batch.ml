(* A column batch: one relation's fact set decomposed into
   dictionary-encoded dimension columns plus a typed measure column.
   Batches are immutable snapshots — the chase installs them wholesale
   (Σst source copies), kernels read them, and row stores materialize
   from them lazily when tuple-at-a-time access is actually needed.

   Row order is the construction order and is significant: batches are
   built from [Instance.facts] (sorted), so kernels that replay the
   row path's "iterate sorted facts" loops hit the same rows in the
   same order — which keeps float accumulation order, first-seen group
   order, and error precedence bit-identical to the row-at-a-time
   engine. *)

open Matrix

type t = {
  schema : Schema.t;
  nrows : int;
  dim_codes : int array array;  (* per dimension: one code per row *)
  dim_dicts : Dict.t array;  (* per dimension: the (shared) dictionary *)
  meas : Value.t array;  (* exact measure values, one per row *)
  meas_float : float array;  (* Value.to_float view; nan when undefined *)
  meas_valid : Bytes.t;  (* validity bitmap: to_float was Some *)
}

let schema t = t.schema
let nrows t = t.nrows
let dim_codes t i = t.dim_codes.(i)
let dim_dict t i = t.dim_dicts.(i)
let measures t = t.meas
let measure_floats t = t.meas_float
let measure_valid t r = Bytes.get t.meas_valid r <> '\000'

(* Build from facts (dimension values followed by the measure), one
   row per fact in list order.  Dimension dictionaries come from
   [pool], keyed by the schema's per-dimension domain, so every batch
   encoded under one pool shares codes per domain. *)
let of_facts ~pool schema (facts : Value.t array list) =
  let ndims = Schema.arity schema in
  let nrows = List.length facts in
  let dim_dicts =
    Array.init ndims (fun i ->
        Dict.for_domain pool schema.Schema.dims.(i).Schema.dim_domain)
  in
  let dim_codes = Array.init ndims (fun _ -> Array.make nrows 0) in
  let meas = Array.make nrows Value.Null in
  let meas_float = Array.make nrows Float.nan in
  let meas_valid = Bytes.make nrows '\000' in
  List.iteri
    (fun r fact ->
      if Array.length fact <> ndims + 1 then
        invalid_arg
          (Printf.sprintf "Batch.of_facts: fact of width %d into %s"
             (Array.length fact)
             (Schema.to_string schema));
      for i = 0 to ndims - 1 do
        dim_codes.(i).(r) <- Dict.encode dim_dicts.(i) fact.(i)
      done;
      let m = fact.(ndims) in
      meas.(r) <- m;
      match Value.to_float m with
      | Some f ->
          meas_float.(r) <- f;
          Bytes.set meas_valid r '\001'
      | None -> ())
    facts;
  { schema; nrows; dim_codes; dim_dicts; meas; meas_float; meas_valid }

(* Decode row [r] into a fresh fact array (callers may keep it). *)
let row t r =
  let ndims = Array.length t.dim_dicts in
  let fact = Array.make (ndims + 1) t.meas.(r) in
  for i = 0 to ndims - 1 do
    fact.(i) <- Dict.decode t.dim_dicts.(i) t.dim_codes.(i).(r)
  done;
  fact

let iter_rows t f =
  for r = 0 to t.nrows - 1 do
    f (row t r)
  done

(* Gather the given rows — ascending indices — into a new batch
   sharing the dictionaries.  A subsequence of a sorted, duplicate-free
   batch is itself sorted and duplicate-free, so the result satisfies
   [Instance.set_batch]'s row invariant whenever the input does; the
   shard partitioner leans on exactly that to split an encoded source
   relation without re-encoding a single value. *)
(* Same rows under different dictionaries.  The caller guarantees
   [dicts.(i)] decodes every code of [dim_codes.(i)] to the same value
   — e.g. a [Dict.copy] per shard, so shards never append to a shared
   dictionary concurrently. *)
let with_dicts t dim_dicts = { t with dim_dicts }

let select t rows =
  let k = Array.length rows in
  let ndims = Array.length t.dim_dicts in
  let dim_codes =
    Array.init ndims (fun i ->
        let src = t.dim_codes.(i) in
        Array.init k (fun j -> src.(rows.(j))))
  in
  let meas = Array.init k (fun j -> t.meas.(rows.(j))) in
  let meas_float = Array.init k (fun j -> t.meas_float.(rows.(j))) in
  let meas_valid = Bytes.init k (fun j -> Bytes.get t.meas_valid rows.(j)) in
  { t with nrows = k; dim_codes; meas; meas_float; meas_valid }

(* Decoded facts in row order.  Note the decode is up to [Value.equal]:
   a column holding both [Int 1] and [Float 1.] (equal values, one
   code) decodes every occurrence as whichever was encoded first —
   the same conflation the row stores' tuple-keyed hashtables apply
   on insert. *)
let to_facts t = List.init t.nrows (row t)
