(* Dictionary encoding for column batches: a dense int code per
   distinct value (distinctness is [Value.equal], so [Int 1] and
   [Float 1.] share a code exactly as they share a slot in the row
   stores).  Dictionaries are append-only — codes, once issued, stay
   valid for the lifetime of every batch that references them — which
   is what makes batches shareable across instance snapshots without
   copying.

   Alongside the code -> value table each dictionary maintains a
   per-code float view ([Value.to_float], computed once per distinct
   value instead of once per row) and a validity flag (was [to_float]
   defined), so measure-like columns and group-by translations run as
   tight loops over arrays. *)

open Matrix

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = {
  mutable values : Value.t array;  (* code -> first value encoded *)
  mutable floats : float array;  (* code -> to_float, nan when undefined *)
  mutable valid : Bytes.t;  (* code -> to_float was Some (1 byte/code) *)
  mutable size : int;
  codes : int VH.t;
}

let create () =
  {
    values = Array.make 16 Value.Null;
    floats = Array.make 16 Float.nan;
    valid = Bytes.make 16 '\000';
    size = 0;
    codes = VH.create 64;
  }

let size t = t.size

let grow t =
  let cap = Array.length t.values in
  if t.size >= cap then begin
    let cap' = cap * 2 in
    let values = Array.make cap' Value.Null in
    Array.blit t.values 0 values 0 t.size;
    t.values <- values;
    let floats = Array.make cap' Float.nan in
    Array.blit t.floats 0 floats 0 t.size;
    t.floats <- floats;
    let valid = Bytes.make cap' '\000' in
    Bytes.blit t.valid 0 valid 0 t.size;
    t.valid <- valid
  end

(* Find-or-add: the code of [v], issuing a fresh one on first sight. *)
let encode t v =
  match VH.find_opt t.codes v with
  | Some c -> c
  | None ->
      grow t;
      let c = t.size in
      t.values.(c) <- v;
      (match Value.to_float v with
      | Some f ->
          t.floats.(c) <- f;
          Bytes.set t.valid c '\001'
      | None -> ());
      t.size <- c + 1;
      VH.replace t.codes v c;
      c

(* An independent clone issuing identical codes for everything encoded
   so far.  The shard splitter hands each shard its own clone: the
   shard's batches keep their codes valid while per-shard chases append
   new codes without sharing mutable state across domains (pools are
   deliberately unsynchronized, see below). *)
let copy t =
  {
    values = Array.copy t.values;
    floats = Array.copy t.floats;
    valid = Bytes.copy t.valid;
    size = t.size;
    codes = VH.copy t.codes;
  }

(* Find-only: [None] when the value was never encoded (a probe against
   a foreign dictionary that cannot match). *)
let find t v = VH.find_opt t.codes v

let decode t c =
  if c < 0 || c >= t.size then invalid_arg "Dict.decode: code out of range";
  t.values.(c)

let float_of_code t c = t.floats.(c)
let float_defined t c = Bytes.get t.valid c <> '\000'
let is_null t c = Value.is_null t.values.(c)

(* ----- per-domain dictionary pools ----- *)

(* One dictionary per {!Matrix.Domain.t} within a pool: two columns of
   the same domain (e.g. the quarter key of every relation in an
   instance) share codes, so equi-joins compare ints with no
   translation.  Pools are per-instance, not process-global: the
   append path is unsynchronized, and sharing across OCaml 5 domains
   would need locking on the hot path. *)
type pool = (Domain.t, t) Hashtbl.t

let create_pool () : pool = Hashtbl.create 8

let for_domain (pool : pool) dom =
  match Hashtbl.find_opt pool dom with
  | Some d -> d
  | None ->
      let d = create () in
      Hashtbl.replace pool dom d;
      d

(* Adopt a foreign dictionary (from a batch encoded under another
   pool) as this pool's dictionary for [dom], unless one exists
   already.  Installing a source instance's batches into a chase
   target adopts the source dictionaries, so every batch later encoded
   in the target shares their codes. *)
let adopt (pool : pool) dom d =
  if not (Hashtbl.mem pool dom) then Hashtbl.replace pool dom d

(* Code translation between dictionaries: [xlate a b].(c) is [b]'s
   code for [a]'s value [c], or -1 when [b] never saw that value.
   Used by join kernels when the two sides' columns ended up in
   different dictionaries; O(|a|) once instead of a hash probe per
   row. *)
let xlate a b =
  if a == b then None
  else
    Some
      (Array.init a.size (fun c ->
           match find b a.values.(c) with Some c' -> c' | None -> -1))
