(* Vectorized kernels over encoded columns: key packing, grouping,
   segmented gather, and int-keyed hash join.  Everything here works on
   plain int/float arrays — no [Value.t] or [Tuple.t] allocation per
   row — and leaves semantics (term evaluation, error precedence,
   emission) to the caller, which replays the row engine's rules. *)

(* ----- mixed-radix key packing ----- *)

(* Combine per-column codes into one int key per row:
   key = c0 + r0*(c1 + r1*(c2 + ...)), exact (no collisions) because
   each code is < its radix.  [None] when the combined key space would
   overflow 62-bit ints — callers fall back to the row path.  A
   negative input code (a probe value absent from the build-side
   dictionary) poisons its row's key to -1, which every consumer
   treats as "matches nothing". *)
let pack ~nrows (cols : int array array) (radices : int array) =
  let ncols = Array.length cols in
  if ncols = 0 then None
  else
    let max_key = max_int / 2 in
    let space = ref 1 in
    let overflow = ref false in
    Array.iter
      (fun radix ->
        if radix <= 0 then overflow := true
        else if !space > max_key / radix then overflow := true
        else space := !space * radix)
      radices;
    if !overflow then None
    else begin
      let keys = Array.make nrows 0 in
      for r = 0 to nrows - 1 do
        let key = ref 0 and stride = ref 1 and poisoned = ref false in
        for i = 0 to ncols - 1 do
          let c = cols.(i).(r) in
          if c < 0 then poisoned := true
          else begin
            key := !key + (c * !stride);
            stride := !stride * radices.(i)
          end
        done;
        keys.(r) <- (if !poisoned then -1 else !key)
      done;
      Some keys
    end

(* Dense int keys for one row set: packed when the key space fits,
   otherwise renumbered through a composite-key table — so callers
   never fall back to row-at-a-time processing on wide keys. *)
let dense_keys ~nrows (cols : int array array) (radices : int array) =
  if Array.length cols = 0 then Array.make nrows 0
  else
    match pack ~nrows cols radices with
    | Some keys -> keys
    | None ->
        let ncols = Array.length cols in
        let tbl : (int array, int) Hashtbl.t = Hashtbl.create (max 64 nrows) in
        let next = ref 0 in
        Array.init nrows (fun r ->
            let key = Array.init ncols (fun i -> cols.(i).(r)) in
            if Array.exists (fun c -> c < 0) key then -1
            else
              match Hashtbl.find_opt tbl key with
              | Some id -> id
              | None ->
                  let id = !next in
                  incr next;
                  Hashtbl.replace tbl key id;
                  id)

(* Dense keys for a build/probe pair sharing one key space: probe-side
   composites never seen on the build side map to -1 (match nothing),
   mirroring a hash-index miss. *)
let joined_keys ~(build_cols : int array array) ~(probe_cols : int array array)
    ~nbuild ~nprobe (radices : int array) =
  match (pack ~nrows:nbuild build_cols radices, pack ~nrows:nprobe probe_cols radices)
  with
  | Some bk, Some pk -> (bk, pk)
  | _ ->
      let ncols = Array.length build_cols in
      let tbl : (int array, int) Hashtbl.t = Hashtbl.create (max 64 nbuild) in
      let next = ref 0 in
      let bk =
        Array.init nbuild (fun r ->
            let key = Array.init ncols (fun i -> build_cols.(i).(r)) in
            if Array.exists (fun c -> c < 0) key then -1
            else
              match Hashtbl.find_opt tbl key with
              | Some id -> id
              | None ->
                  let id = !next in
                  incr next;
                  Hashtbl.replace tbl key id;
                  id)
      in
      let pk =
        Array.init nprobe (fun r ->
            let key = Array.init ncols (fun i -> probe_cols.(i).(r)) in
            if Array.exists (fun c -> c < 0) key then -1
            else Option.value ~default:(-1) (Hashtbl.find_opt tbl key))
      in
      (bk, pk)

(* ----- grouping ----- *)

type groups = {
  gids : int array;  (* row -> group id, ids issued in first-seen row order *)
  n_groups : int;
  rep_rows : int array;  (* group id -> first row carrying it *)
}

let group (keys : int array) =
  let nrows = Array.length keys in
  let ids : (int, int) Hashtbl.t = Hashtbl.create (max 16 (nrows / 4)) in
  let gids = Array.make nrows 0 in
  let reps = ref [] in
  let n = ref 0 in
  for r = 0 to nrows - 1 do
    let key = keys.(r) in
    match Hashtbl.find_opt ids key with
    | Some g -> gids.(r) <- g
    | None ->
        let g = !n in
        Hashtbl.replace ids key g;
        gids.(r) <- g;
        reps := r :: !reps;
        incr n
  done;
  let n_groups = !n in
  let rep_rows = Array.make (max 1 n_groups) 0 in
  List.iter (fun r -> rep_rows.(gids.(r)) <- r) !reps;
  { gids; n_groups; rep_rows }

(* Stable segmented gather: bucket [values] by group id, preserving
   row order within each group (so per-group accumulation replays the
   row engine's bag order exactly).  Returns [(offsets, data)] with
   group [g]'s values in [data.(offsets.(g)) .. data.(offsets.(g+1))-1]. *)
let segment { gids; n_groups; _ } (values : float array) =
  let nrows = Array.length gids in
  let counts = Array.make (n_groups + 1) 0 in
  for r = 0 to nrows - 1 do
    let g = gids.(r) in
    counts.(g) <- counts.(g) + 1
  done;
  let offsets = Array.make (n_groups + 1) 0 in
  for g = 1 to n_groups do
    offsets.(g) <- offsets.(g - 1) + counts.(g - 1)
  done;
  let cursor = Array.copy offsets in
  let data = Array.make nrows 0. in
  for r = 0 to nrows - 1 do
    let g = gids.(r) in
    data.(cursor.(g)) <- values.(r);
    cursor.(g) <- cursor.(g) + 1
  done;
  (offsets, data)

(* ----- int-keyed hash join ----- *)

(* Build a multimap over [build_keys], then probe with [probe_keys] in
   row order, calling [f probe_row build_row] per matching pair.
   Negative keys never match (build rows are skipped, probe rows find
   nothing).  [on_probe probe_row bucket_size] fires once per
   non-poisoned probe row before its pairs — the hook the chase uses
   to count examined candidates exactly like the row path's indexed
   lookups. *)
let hash_join ~(build_keys : int array) ~(probe_keys : int array)
    ?(on_probe = fun _ _ -> ()) f =
  let nbuild = Array.length build_keys in
  let tbl : (int, int list) Hashtbl.t = Hashtbl.create (max 16 nbuild) in
  for br = 0 to nbuild - 1 do
    let k = build_keys.(br) in
    if k >= 0 then
      Hashtbl.replace tbl k
        (br :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  done;
  for pr = 0 to Array.length probe_keys - 1 do
    let k = probe_keys.(pr) in
    if k >= 0 then begin
      let bucket = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
      on_probe pr (List.length bucket);
      List.iter (fun br -> f pr br) bucket
    end
    else on_probe pr 0
  done
