(* exlserve: the long-running query/update daemon over the incremental
   engine (docs/SERVING.md).

   Boot: register EXL programs, load elementary data (CSV directory
   and/or a persisted store), recompute everything once (a fault plan
   may quarantine cubes — they serve 503 while healthy cubes answer),
   warm the incremental solution cache, then serve:

     POST /v1/update                 batched revisions (text or JSON)
     GET  /v1/cube/:name             current slice, dim filters
     GET  /v1/cube/:name/asof/:date  point-in-time read from history
     GET  /v1/sdmx/:name             SDMX-ML generic data
     GET  /metrics                   Prometheus exposition

   Examples:
     exlserve --programs examples/quickstart.exl --data ./data --port 8080
     exlserve --programs ./programs --store-dir ./store --unix-socket /tmp/exl.sock *)

open Cmdliner
open Matrix

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --programs accepts .exl files and directories of them. *)
let program_files paths =
  List.concat_map
    (fun path ->
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list |> List.sort String.compare
        |> List.filter (fun f -> Filename.check_suffix f ".exl")
        |> List.map (Filename.concat path)
      else [ path ])
    paths

let load_csv_data engine data_dir =
  let det = Engine.Exlengine.determination engine in
  let rec loop = function
    | [] -> Ok ()
    | name :: rest -> (
        match
          (Engine.Determination.kind det name, Engine.Determination.schema det name)
        with
        | Some Registry.Elementary, Some schema -> (
            let path = Filename.concat data_dir (name ^ ".csv") in
            if not (Sys.file_exists path) then begin
              Printf.eprintf
                "warning: no data for elementary cube %s (%s missing)\n" name
                path;
              loop rest
            end
            else
              match Csv.cube_of_string schema (read_file path) with
              | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
              | Ok cube -> (
                  match Engine.Exlengine.load_elementary engine cube with
                  | Error msg -> Error msg
                  | Ok () -> loop rest))
        | _ -> loop rest)
  in
  loop (Engine.Determination.cubes det)

let boot ~programs ~data_dir ~store_dir ~fault_plan ~shards ~pool_size =
  let faults =
    match fault_plan with
    | None -> Ok None
    | Some path -> (
        match Engine.Faults.of_string (read_file path) with
        | Ok plan -> Ok (Some plan)
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  in
  match faults with
  | Error _ as e -> e
  | Ok faults -> (
      let config =
        { Engine.Exlengine.default_config with faults; shards; pool_size }
      in
      let engine = Engine.Exlengine.create ~config () in
      let rec register = function
        | [] -> Ok ()
        | path :: rest -> (
            match
              Engine.Exlengine.register_program engine
                ~name:(Filename.remove_extension (Filename.basename path))
                (read_file path)
            with
            | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
            | Ok () -> register rest)
      in
      match register (program_files programs) with
      | Error _ as e -> e
      | Ok () -> (
          let loaded =
            match store_dir with
            | Some dir when Sys.file_exists (Filename.concat dir "manifest") ->
                Engine.Exlengine.load_store engine ~dir
            | _ -> Ok ()
          in
          match loaded with
          | Error _ as e -> e
          | Ok () -> (
              let data =
                match data_dir with
                | Some dir -> load_csv_data engine dir
                | None -> Ok ()
              in
              match data with
              | Error _ as e -> e
              | Ok () -> (
                  match Engine.Exlengine.recompute_all engine with
                  | Error _ as e -> e
                  | Ok report -> (
                      match Engine.Exlengine.warm engine with
                      | Error msg ->
                          (* A quarantined boot cannot always build the
                             full solution cache; serve degraded rather
                             than refuse to start. *)
                          Printf.eprintf
                            "warning: incremental cache not warmed: %s\n" msg;
                          Ok (engine, report)
                      | Ok () -> Ok (engine, report))))))

let run programs data_dir store_dir port host unix_socket max_queue
    coalesce_window request_timeout commit_timeout fault_plan shards pool_size
    log_file =
  if programs = [] then begin
    prerr_endline "error: at least one --programs file or directory required";
    1
  end
  else
    match boot ~programs ~data_dir ~store_dir ~fault_plan ~shards ~pool_size with
    | Error msg ->
        prerr_endline ("error: " ^ msg);
        1
    | Ok (engine, report) ->
        let collector = Obs.create () in
        Obs.install collector;
        let log =
          match log_file with
          | None -> None
          | Some path ->
              let oc = open_out path in
              let m = Mutex.create () in
              at_exit (fun () -> close_out_noerr oc);
              Some
                (fun line ->
                  Mutex.lock m;
                  output_string oc line;
                  output_char oc '\n';
                  flush oc;
                  Mutex.unlock m)
        in
        let config =
          {
            Serve.Server.default_config with
            max_queue;
            coalesce_window;
            request_timeout;
            commit_timeout;
            log;
          }
        in
        let server = Serve.Server.create ~config ~report engine in
        let summary = Engine.Dispatcher.failure_summary report in
        if summary <> "" then begin
          print_endline "boot recompute degraded:";
          print_endline summary
        end;
        let fd =
          match unix_socket with
          | Some path ->
              let fd = Serve.Server.listen_unix ~path () in
              Printf.printf "exlserve: listening on %s\n%!" path;
              fd
          | None ->
              let fd, actual = Serve.Server.listen_inet ~host ~port () in
              Printf.printf "exlserve: listening on http://%s:%d/\n%!" host
                actual;
              fd
        in
        let stop _ = Serve.Server.request_shutdown server in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Serve.Server.serve server fd;
        (match unix_socket with
        | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | None -> ());
        (match store_dir with
        | None -> ()
        | Some dir -> (
            match Engine.Exlengine.save_store engine ~dir with
            | Ok () -> Printf.printf "exlserve: store saved to %s\n%!" dir
            | Error msg ->
                Printf.eprintf "error: saving store to %s: %s\n" dir msg));
        print_endline "exlserve: drained";
        0

let programs_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "p"; "programs" ] ~docv:"PATH"
        ~doc:"EXL program file, or a directory of .exl files (repeatable).")

let data_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "d"; "data" ] ~docv:"DIR"
        ~doc:"Directory with <CUBE>.csv files for elementary cubes.")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent cube store: loaded at boot when a manifest exists, \
           saved back on drain.")

let port_arg =
  Arg.(
    value & opt int 8080
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port to listen on; 0 picks an ephemeral port.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")

let unix_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "unix-socket" ] ~docv:"PATH"
        ~doc:"Listen on a Unix-domain socket instead of TCP.")

let max_queue_arg =
  Arg.(
    value & opt int 64
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Queued update batches before admission control answers 429 with \
           Retry-After.")

let coalesce_arg =
  Arg.(
    value & opt float 0.002
    & info [ "coalesce-window" ] ~docv:"SECONDS"
        ~doc:
          "How long the writer waits after the first queued batch to merge \
           followers into one compacted commit.")

let request_timeout_arg =
  Arg.(
    value & opt float 10.
    & info [ "request-timeout" ] ~docv:"SECONDS"
        ~doc:"Socket read/write budget per request.")

let commit_timeout_arg =
  Arg.(
    value & opt float 30.
    & info [ "commit-timeout" ] ~docv:"SECONDS"
        ~doc:"Max time a POST /v1/update waits for its commit before 504.")

let fault_plan_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "fault-plan" ] ~docv:"FILE"
        ~doc:
          "Inject deterministic failures during the boot recompute (see \
           docs/RELIABILITY.md); quarantined cubes serve 503 diagnostics.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition full chases (boot recompute, cache rebuilds) into \
           $(docv) shards run on the domain pool with work stealing (see \
           docs/SHARDING.md).  1 disables sharding.")

let pool_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "pool-size" ] ~docv:"N"
        ~doc:
          "Worker-domain count for the engine's pool.  Defaults to the \
           machine's recommended domain count.")

let log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:"Write a JSONL request trace (one JSON object per request).")

let cmd =
  let doc = "serve EXL cubes over HTTP with coalesced incremental updates" in
  Cmd.v
    (Cmd.info "exlserve" ~version:"1.0" ~doc)
    Term.(
      const run $ programs_arg $ data_arg $ store_arg $ port_arg $ host_arg
      $ unix_socket_arg $ max_queue_arg $ coalesce_arg $ request_timeout_arg
      $ commit_timeout_arg $ fault_plan_arg $ shards_arg $ pool_size_arg
      $ log_arg)

let () = exit (Cmd.eval' cmd)
