(* exlc: the EXL compiler driver.

   Compiles an EXL program and emits a chosen artifact: the schema
   mapping in logic notation, SQL (plain or fused), DDL, R, Matlab, the
   Kettle XML catalog, the dependency graph, or the normalized program.

   Examples:
     exlc program.exl --emit tgds
     exlc program.exl --emit sql-fused
     exlc program.exl --emit kettle > job.xml *)

open Cmdliner

(* cmdliner's [Arg.file] accepts directories too; reading one raises
   Sys_error, so wrap drivers with [with_source]. *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_source file k =
  match read_file file with
  | source -> k source
  | exception Sys_error msg ->
      prerr_endline ("error: cannot read " ^ file ^ ": " ^ msg);
      1

type emit =
  | Tgds
  | Sql
  | Sql_fused
  | Ddl
  | R
  | Matlab
  | Kettle
  | Dot
  | Normalized
  | Check

let emit_conv =
  Arg.enum
    [
      ("tgds", Tgds);
      ("sql", Sql);
      ("sql-fused", Sql_fused);
      ("ddl", Ddl);
      ("r", R);
      ("matlab", Matlab);
      ("kettle", Kettle);
      ("dot", Dot);
      ("normalized", Normalized);
      ("check", Check);
    ]

let dot_of_program source =
  let d = Engine.Determination.create () in
  match Engine.Determination.register_source d ~name:"main" source with
  | Ok () -> Ok (Engine.Determination.dot d)
  | Error msg -> Error msg

(* --out DIR: write every artifact at once (what EXLEngine would stage
   for the target systems). *)
let write_bundle dir program source =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let write name content =
    let path = Filename.concat dir name in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content);
    Printf.printf "wrote %s\n" path
  in
  let artifacts =
    [
      ("mapping.tgds", Core.tgds_of program);
      ("schema.sql", Core.ddl_of program);
      ("program.sql", Core.sql_of ~fused:true program);
      ("program.r", Core.r_of program);
      ("program.m", Core.matlab_of program);
      ("job.kettle.xml", Core.kettle_of program);
      ("graph.dot", dot_of_program source);
    ]
  in
  let rec loop = function
    | [] -> 0
    | (name, Ok content) :: rest ->
        write name content;
        loop rest
    | (name, Error msg) :: _ ->
        prerr_endline ("error generating " ^ name ^ ": " ^ msg);
        1
  in
  loop artifacts

let run file emit out_dir =
  with_source file @@ fun source ->
  match Exl.Program.load source with
  | Error e ->
      prerr_endline
        ("error: " ^ Exl.Errors.to_string_with_source ~source e);
      1
  | Ok program when out_dir <> None -> write_bundle (Option.get out_dir) program source
  | Ok program -> (
      let output =
        match emit with
        | Check ->
            let warnings = Exl.Typecheck.warnings program in
            Ok
              ("program is well-typed\n"
              ^ String.concat ""
                  (List.map (fun w -> "warning: " ^ w ^ "\n") warnings))
        | Tgds -> Core.tgds_of program
        | Sql -> Core.sql_of ~fused:false program
        | Sql_fused -> Core.sql_of ~fused:true program
        | Ddl -> Core.ddl_of program
        | R -> Core.r_of program
        | Matlab -> Core.matlab_of program
        | Kettle -> Core.kettle_of program
        | Dot -> dot_of_program source
        | Normalized ->
            Result.map
              (fun (c : Exl.Typecheck.checked) ->
                Exl.Pretty.program_to_string c.Exl.Typecheck.program)
              (Result.map_error Exl.Errors.to_string
                 (Exl.Normalize.checked program))
      in
      match output with
      | Ok text ->
          print_string text;
          0
      | Error msg ->
          prerr_endline ("error: " ^ msg);
          1)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"EXL program file.")

let emit_arg =
  Arg.(
    value
    & opt emit_conv Tgds
    & info [ "e"; "emit" ] ~docv:"KIND"
        ~doc:
          "What to emit: $(b,tgds) (schema mapping, default), $(b,sql), \
           $(b,sql-fused), $(b,ddl), $(b,r), $(b,matlab), $(b,kettle), \
           $(b,dot), $(b,normalized) or $(b,check).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"DIR"
        ~doc:
          "Write every artifact (tgds, DDL, SQL, R, Matlab, Kettle XML, dot) \
           into $(docv).")

(* --- lint subcommand ------------------------------------------------ *)

type lint_format = Text | Json

let explain code =
  match Analysis.Diagnostic.description code with
  | Some text ->
      Printf.printf "%s: %s\n" code text;
      0
  | None ->
      Printf.eprintf "error: unknown diagnostic code %s (known: %s)\n" code
        (String.concat ", " Analysis.Diagnostic.known_codes);
      1

let lint file format deny_warnings suppress explain_code =
  match (explain_code, file) with
  | Some code, _ -> explain code
  | None, None ->
      prerr_endline "error: FILE is required unless --explain is given";
      1
  | None, Some file ->
      with_source file @@ fun source ->
      let report =
        Analysis.Lint.filter ~suppress (Analysis.Lint.source_diagnostics source)
      in
      (match format with
      | Text -> print_endline (Analysis.Lint.render_text ~source report)
      | Json -> print_endline (Analysis.Lint.render_json report));
      Analysis.Lint.exit_code ~deny_warnings report

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text) (default) or $(b,json).")

let deny_warnings_arg =
  Arg.(
    value & flag
    & info [ "deny-warnings" ]
        ~doc:"Exit non-zero if any warning remains after suppression.")

let suppress_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "W"; "suppress" ] ~docv:"CODE"
        ~doc:
          "Suppress the warning $(docv) (e.g. $(b,-W W101)); repeatable. \
           Errors cannot be suppressed.")

let explain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"CODE"
        ~doc:
          "Print the catalogue entry for the diagnostic $(docv) (e.g. \
           $(b,--explain W106)) and exit; no file is read.")

let opt_file_arg =
  Arg.(
    value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"EXL program file.")

let lint_cmd =
  let doc =
    "lint an EXL program: accumulate all type errors, run the EXL lints, the \
     mapping-level checks (tgd safety, weak acyclicity, egd consistency, \
     stratification) and report what the optimizer would do as I3xx notes"
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const lint $ opt_file_arg $ format_arg $ deny_warnings_arg $ suppress_arg
      $ explain_arg)

(* --- optimize subcommand -------------------------------------------- *)

type fuse_mode = Fuse_safe | Fuse_unsafe | Fuse_off

let optimize file format fuse_mode no_fuse verify =
  with_source file @@ fun source ->
  let report = Analysis.Lint.source_diagnostics source in
  match report.Analysis.Lint.mapping with
  | None ->
      prerr_endline (Analysis.Lint.render_text ~source report);
      1
  | Some mapping -> (
      let fuse_mode = if no_fuse then Fuse_off else fuse_mode in
      let opt =
        match fuse_mode with
        | Fuse_safe -> Analysis.Optimize.run ~fuse:true mapping
        | Fuse_off -> Analysis.Optimize.run ~fuse:false mapping
        | Fuse_unsafe ->
            (* the historical purely syntactic fusion, kept as an A/B
               baseline: inline first without any cross-check, then run
               the certificate-carrying passes on the result *)
            Analysis.Optimize.run ~fuse:false (Mappings.Fuse.mapping mapping)
      in
      (match format with
      | Json -> print_endline (Analysis.Optimize.report_to_json opt)
      | Text ->
          List.iter
            (fun d -> print_endline (Analysis.Diagnostic.to_string d))
            (Analysis.Optimize.diagnostics opt);
          Printf.printf
            "tgds: %d → %d; egds: %d → %d; est. matches: %d → %d\n"
            (List.length opt.Analysis.Optimize.original.Mappings.Mapping.t_tgds)
            (List.length opt.Analysis.Optimize.optimized.Mappings.Mapping.t_tgds)
            (List.length opt.Analysis.Optimize.original.Mappings.Mapping.egds)
            (List.length opt.Analysis.Optimize.optimized.Mappings.Mapping.egds)
            opt.Analysis.Optimize.est_before opt.Analysis.Optimize.est_after);
      if not verify then 0
      else
        match Analysis.Optimize.verify opt with
        | Ok () ->
            print_endline "all certificates verified";
            0
        | Error msg ->
            prerr_endline ("certificate verification failed: " ^ msg);
            1)

let fuse_mode_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("safe", Fuse_safe); ("unsafe", Fuse_unsafe); ("off", Fuse_off) ])
        Fuse_safe
    & info [ "fuse" ] ~docv:"MODE"
        ~doc:
          "Fusion mode: $(b,safe) (default; cost-gated, every step checked \
           on the critical instance), $(b,unsafe) (historical syntactic \
           fusion, no cross-check — baseline only), or $(b,off).")

let no_fuse_arg =
  Arg.(
    value & flag
    & info [ "no-fuse" ] ~doc:"Disable the fusion pass (same as --fuse off).")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Re-validate every emitted certificate and re-chase original vs \
           optimized mapping on the critical instance; non-zero exit on any \
           failure.")

let report_arg =
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "report" ] ~docv:"FORMAT"
        ~doc:"Report format: $(b,text) (default) or $(b,json).")

let optimize_cmd =
  let doc =
    "run the exl-opt containment-based optimizer on a program's mapping: \
     prune subsumed tgds, minimize bodies, fuse temporaries under a cost \
     model, specialize dead outer-combine defaults and discharge implied \
     egds — every step carrying a machine-checkable certificate"
  in
  Cmd.v
    (Cmd.info "optimize" ~doc)
    Term.(
      const optimize $ file_arg $ report_arg $ fuse_mode_arg $ no_fuse_arg
      $ verify_arg)

(* --- fuzz subcommand ------------------------------------------------- *)

let fuzz seed count profile axes fuse out_dir replays =
  let fail msg =
    prerr_endline ("error: " ^ msg);
    1
  in
  if Fuzz.Gen.profile_of_name profile = None then
    fail (Printf.sprintf "unknown profile %s (quick, deep or compat)" profile)
  else
    match replays with
    | _ :: _ ->
        (* replay checked-in repro files instead of running a campaign *)
        let failed = ref 0 in
        List.iter
          (fun file ->
            match Fuzz.Scenario.load file with
            | Error msg ->
                incr failed;
                Printf.eprintf "%s: cannot load: %s\n" file msg
            | Ok scenario ->
                List.iter
                  (fun (c : Fuzz.Harness.check) ->
                    let spec = Fuzz.Lattice.to_spec c.axis c.fuse in
                    match c.outcome with
                    | Fuzz.Harness.Agree ->
                        Printf.printf "%s: %s agrees\n" file spec
                    | Fuzz.Harness.Skip why ->
                        Printf.printf "%s: %s skipped (%s)\n" file spec why
                    | Fuzz.Harness.Disagree detail ->
                        incr failed;
                        Printf.printf "%s: %s DISAGREES: %s\n" file spec detail)
                  (Fuzz.Harness.replay scenario))
          replays;
        if !failed = 0 then 0 else 1
    | [] -> (
        let specs =
          List.map
            (fun spec ->
              match Fuzz.Lattice.of_spec spec with
              | Some parsed -> Ok parsed
              | None -> Error spec)
            axes
        in
        match List.find_opt Result.is_error specs with
        | Some (Error spec) -> fail ("unknown axis " ^ spec)
        | Some (Ok _) -> assert false
        | None ->
            let specs = List.filter_map Result.to_option specs in
            let axes =
              match specs with
              | [] -> Fuzz.Lattice.all
              | specs -> List.map fst specs
            in
            (* an --axes entry like fusion:unsafe selects the fuser too *)
            let fuse =
              List.fold_left
                (fun acc (axis, mode) ->
                  if axis = Fuzz.Lattice.Fusion && mode <> Fuzz.Lattice.Safe then
                    mode
                  else acc)
                fuse specs
            in
            let report =
              Fuzz.Driver.run ~progress:prerr_endline ~axes ~fuse ?out_dir
                ~profile ~seed ~count ()
            in
            print_string (Fuzz.Driver.summary report);
            if report.Fuzz.Driver.r_disagreements = [] then 0 else 1)

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N" ~doc:"First scenario seed (default 1).")

let count_arg =
  Arg.(
    value & opt int 100
    & info [ "count" ] ~docv:"N"
        ~doc:"Number of scenarios (consecutive seeds; default 100).")

let profile_arg =
  Arg.(
    value & opt string "quick"
    & info [ "profile" ] ~docv:"NAME"
        ~doc:
          "Generator profile: $(b,quick) (default; small data, compound \
           statements), $(b,deep) (longer programs, exotic literals) or \
           $(b,compat) (the historical test-suite distribution).")

let axes_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "axes" ] ~docv:"AXIS"
        ~doc:
          "Check only this axis (repeatable): $(b,roundtrip), $(b,lint), \
           $(b,backends), $(b,columnar), $(b,optimize), $(b,fusion) (or \
           $(b,fusion:unsafe), $(b,fusion:off)), $(b,incremental), \
           $(b,faults).  Default: all.")

let fuzz_fuse_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("safe", Fuzz.Lattice.Safe);
             ("unsafe", Fuzz.Lattice.Unsafe);
             ("off", Fuzz.Lattice.Off);
           ])
        Fuzz.Lattice.Safe
    & info [ "fuse" ] ~docv:"MODE"
        ~doc:
          "Fuser used by the fusion axis: $(b,safe) (default), $(b,unsafe) \
           (deliberately reintroduces the historical naive aggregation \
           fusion — the harness must catch and shrink it) or $(b,off).")

let fuzz_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out-dir" ] ~docv:"DIR"
        ~doc:"Write a self-contained .repro file for every disagreement.")

let replay_arg =
  Arg.(
    value
    & opt_all file []
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Replay a .repro file (repeatable) on its recorded axes instead of \
           running a campaign.")

let fuzz_cmd =
  let doc =
    "differential scenario fuzzing: generate well-typed programs, data, \
     update batches and fault plans, run them through every engine \
     configuration (row/columnar, optimized, fused, incremental, faulted, \
     every backend) and diff the results; disagreements are shrunk to \
     minimal self-contained repro files"
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const fuzz $ seed_arg $ count_arg $ profile_arg $ axes_arg
      $ fuzz_fuse_arg $ fuzz_out_arg $ replay_arg)

let cmd =
  let doc = "compile EXL statistical programs into executable schema mappings" in
  Cmd.v
    (Cmd.info "exlc" ~version:"1.0" ~doc)
    Term.(const run $ file_arg $ emit_arg $ out_arg)

(* [exlc lint …] and [exlc optimize …] dispatch to their subcommands;
   anything else keeps the historical positional interface
   ([exlc file.exl --emit tgds]), which a command group would shadow. *)
let () =
  let argv = Sys.argv in
  let sub name command =
    let rest = Array.sub argv 2 (Array.length argv - 2) in
    exit (Cmd.eval' ~argv:(Array.append [| "exlc " ^ name |] rest) command)
  in
  if Array.length argv > 1 && argv.(1) = "lint" then sub "lint" lint_cmd
  else if Array.length argv > 1 && argv.(1) = "optimize" then
    sub "optimize" optimize_cmd
  else if Array.length argv > 1 && argv.(1) = "fuzz" then sub "fuzz" fuzz_cmd
  else exit (Cmd.eval' cmd)
